"""The serve engine end-to-end: solve, cache, coalesce, shed, reject."""

import asyncio
import types

import pytest

from repro.errors import AssaySpecError
from repro.geometry import GridSpec
from repro.serve.breaker import OPEN
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.protocol import JobState, ProtocolError

ASSAY = """# assay demo
input a volume=4
input b volume=4
mix m1 a b duration=6 volume=8 ratio=1:1
detect d1 m1 duration=2
"""

#: same problem, different labels (device names must come back renamed).
RELABELED = """# assay other
input x volume=4
input y volume=4
mix core x y duration=6 volume=8 ratio=1:1
detect probe core duration=2
"""


def config(**overrides):
    defaults = dict(grid=GridSpec(8, 8), workers=2, time_budget=5.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def run(coro):
    return asyncio.run(coro)


class TestSolvePath:
    def test_solve_serves_an_audited_design(self):
        async def body():
            async with ServeEngine(config()) as engine:
                job = await engine.submit(ASSAY)
                await job.wait()
                assert job.state == JobState.DONE, job.error
                assert job.source == "solve"
                payload = job.payload
                assert payload["served"] == "solve"
                assert payload["audit"] is not None
                assert payload["audit"]["ok"] is True
                assert payload["metrics"]["used_valves"] > 0
                names = {d["operation"] for d in payload["design"]["devices"]}
                assert names == {"m1"}
                assert "table" not in payload  # server-side only

        run(body())

    def test_malformed_spec_is_a_client_error(self):
        async def body():
            async with ServeEngine(config()) as engine:
                with pytest.raises(AssaySpecError) as info:
                    await engine.submit("input\nmix broken\n")
                assert info.value.line == 1
                assert engine.submitted == 0  # no job was created

        run(body())

    def test_ill_typed_arguments_are_client_errors(self):
        """Nothing off the wire is trusted: bad types never reach a worker."""

        async def body():
            async with ServeEngine(config()) as engine:
                for budget in ("3", True, 0, -1.0, float("nan"), float("inf")):
                    with pytest.raises(ProtocolError, match="time_budget"):
                        await engine.submit(ASSAY, time_budget=budget)
                with pytest.raises(ProtocolError, match="assay"):
                    await engine.submit(12345)
                with pytest.raises(ProtocolError, match="schedule"):
                    await engine.submit(ASSAY, {"not": "text"})
                assert engine.submitted == 0
                # The engine still works afterwards.
                job = await engine.submit(ASSAY)
                await job.wait()
                assert job.state == JobState.DONE

        run(body())


class TestWorkerResilience:
    def test_unexpected_exception_fails_job_not_worker(self):
        """A poison request settles (with its followers) and the worker
        pool survives to serve the next submission."""

        async def body():
            async with ServeEngine(config(workers=1)) as engine:
                original = engine._solve

                def poisoned(job):
                    raise RuntimeError("boom")

                engine._solve = poisoned
                leader = await engine.submit(ASSAY)
                follower = await engine.submit(ASSAY)
                await asyncio.gather(leader.wait(), follower.wait())
                assert leader.state == JobState.FAILED
                assert "RuntimeError" in leader.error["error"]
                assert follower.state == JobState.FAILED
                # All workers are still alive...
                assert engine.status()["workers"] == 1
                # ...and the next (healthy) submission completes.
                engine._solve = original
                job = await engine.submit(ASSAY)
                await job.wait()
                assert job.state == JobState.DONE, job.error

        run(body())

    def test_settled_state_is_pruned(self):
        """Settled jobs and finished follower tasks do not accumulate."""

        async def body():
            async with ServeEngine(config()) as engine:
                # Leader + two coalesced followers (two follower tasks).
                jobs = [await engine.submit(ASSAY) for _ in range(3)]
                await asyncio.gather(*(j.wait() for j in jobs))
                # add_done_callback pruning runs on the loop; yield once.
                await asyncio.sleep(0)
                assert engine.jobs == {}
                assert len(engine._tasks) == 2
                assert all(t.done() for t in engine._tasks)
                # The next coalesced submission prunes the dead tasks.
                variant = ASSAY.replace("duration=6", "duration=7")
                a = await engine.submit(variant)
                b = await engine.submit(variant)
                assert len(engine._tasks) == 1
                await asyncio.gather(a.wait(), b.wait())

        run(body())

    def test_latency_samples_are_bounded(self):
        async def body():
            async with ServeEngine(config(latency_window=4)) as engine:
                first = await engine.submit(ASSAY)
                await first.wait()
                for _ in range(10):
                    job = await engine.submit(ASSAY)
                    await job.wait()
                assert len(engine._latency["cache"]) == 4

        run(body())


class TestBreakerAudit:
    def test_breaker_open_degraded_result_must_pass_audit(self):
        """The serving invariant holds on the degraded path: a greedy
        answer with a failing audit fails the job, it is never served."""

        async def body():
            async with ServeEngine(config(workers=1)) as engine:
                engine.breaker.allow = lambda key: OPEN
                original = engine._synthesize

                def tainted(job, mapper=None, budget=None):
                    result = original(job, mapper=mapper, budget=budget)
                    result.audit = types.SimpleNamespace(
                        ok=False,
                        summary=lambda: "forced audit failure",
                        as_dict=lambda: {"ok": False},
                    )
                    return result

                engine._synthesize = tainted
                job = await engine.submit(ASSAY)
                await job.wait()
                assert job.state == JobState.FAILED
                assert "audit failed" in job.error["error"]
                assert engine.degraded_served == 0

        run(body())


class TestCachePath:
    def test_identical_resubmission_hits_the_cache(self):
        async def body():
            async with ServeEngine(config()) as engine:
                first = await engine.submit(ASSAY)
                await first.wait()
                second = await engine.submit(ASSAY)
                await second.wait()
                assert second.source == "cache"
                assert second.state == JobState.DONE
                assert second.payload["design"] == first.payload["design"]
                assert engine.cache.hits == 1

        run(body())

    def test_relabeled_resubmission_renames_the_design(self):
        async def body():
            async with ServeEngine(config()) as engine:
                first = await engine.submit(ASSAY)
                await first.wait()
                second = await engine.submit(RELABELED)
                await second.wait()
                assert second.source == "cache", second.error
                names = {
                    d["operation"] for d in second.payload["design"]["devices"]
                }
                assert names == {"core"}
                assert second.payload["design"]["assay"] == "other"
                # Same placements, different labels.
                rects = {
                    (d["x"], d["y"], d["width"], d["height"])
                    for d in second.payload["design"]["devices"]
                }
                assert rects == {
                    (d["x"], d["y"], d["width"], d["height"])
                    for d in first.payload["design"]["devices"]
                }

        run(body())

    def test_disk_cache_round_trip(self, tmp_path):
        async def body():
            directory = str(tmp_path / "cache")
            async with ServeEngine(config(cache_dir=directory)) as engine:
                job = await engine.submit(ASSAY)
                await job.wait()
                assert job.state == JobState.DONE
            # A *fresh* engine (fresh process, conceptually) hits disk.
            async with ServeEngine(config(cache_dir=directory)) as fresh:
                job = await fresh.submit(ASSAY)
                await job.wait()
                assert job.source == "cache"

        run(body())


class TestCoalescing:
    def test_concurrent_identical_submissions_share_one_solve(self):
        async def body():
            async with ServeEngine(config(workers=1)) as engine:
                jobs = [await engine.submit(ASSAY) for _ in range(4)]
                await asyncio.gather(*(j.wait() for j in jobs))
                sources = sorted(j.source for j in jobs)
                assert sources == ["coalesced"] * 3 + ["solve"]
                assert all(j.state == JobState.DONE for j in jobs)
                assert engine.flights.coalesced == 3
                # One solve fed four answers.
                assert engine.completed == 1

        run(body())


class TestAdmission:
    def test_full_queue_rejects_explicitly(self):
        async def body():
            # No workers started: the queue only fills.
            engine = ServeEngine(config(queue_capacity=2))
            variants = [
                ASSAY.replace("duration=6", f"duration={d}")
                for d in (11, 12, 13)
            ]
            first = await engine.submit(variants[0])
            second = await engine.submit(variants[1])
            third = await engine.submit(variants[2])
            assert first.state == JobState.QUEUED
            assert second.state == JobState.QUEUED
            assert third.state == JobState.REJECTED
            assert "queue full" in third.error["error"]

        run(body())

    def test_filling_queue_sheds_budget(self):
        async def body():
            engine = ServeEngine(config(queue_capacity=4))
            variants = [
                ASSAY.replace("duration=6", f"duration={d}")
                for d in (11, 12, 13, 14)
            ]
            jobs = [await engine.submit(v) for v in variants]
            assert [j.shed_multiplier for j in jobs] == [1.0, 1.0, 0.5, 0.25]

        run(body())

    def test_shed_solve_records_the_rung(self):
        async def body():
            engine = ServeEngine(config(queue_capacity=2, workers=1))
            # Prefill to depth 1 so the next submission sheds.
            blocker = await engine.submit(
                ASSAY.replace("duration=6", "duration=9")
            )
            shed = await engine.submit(ASSAY)
            assert shed.shed_multiplier == 0.5
            await engine.start()
            await asyncio.gather(blocker.wait(), shed.wait())
            await engine.stop()
            assert shed.state == JobState.DONE, shed.error
            rungs = shed.payload["resilience"]["rungs"]
            assert rungs.get("serve_shed") == 1

        run(body())


class TestStatus:
    def test_status_shape_and_readiness(self):
        async def body():
            engine = ServeEngine(config())
            assert engine.status()["ready"] is False
            async with engine:
                status = engine.status()
                assert status["ready"] is True
                assert status["workers"] == 2
                assert status["queue"] == {"depth": 0, "capacity": 16}
                job = await engine.submit(ASSAY)
                await job.wait()
                status = engine.status()
                assert status["jobs"]["completed"] == 1
                assert status["latency"]["solve"]["count"] == 1
                assert status["latency"]["solve"]["p50"] > 0

        run(body())
