"""The serve engine end-to-end: solve, cache, coalesce, shed, reject."""

import asyncio

import pytest

from repro.errors import AssaySpecError
from repro.geometry import GridSpec
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.protocol import JobState

ASSAY = """# assay demo
input a volume=4
input b volume=4
mix m1 a b duration=6 volume=8 ratio=1:1
detect d1 m1 duration=2
"""

#: same problem, different labels (device names must come back renamed).
RELABELED = """# assay other
input x volume=4
input y volume=4
mix core x y duration=6 volume=8 ratio=1:1
detect probe core duration=2
"""


def config(**overrides):
    defaults = dict(grid=GridSpec(8, 8), workers=2, time_budget=5.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def run(coro):
    return asyncio.run(coro)


class TestSolvePath:
    def test_solve_serves_an_audited_design(self):
        async def body():
            async with ServeEngine(config()) as engine:
                job = await engine.submit(ASSAY)
                await job.wait()
                assert job.state == JobState.DONE, job.error
                assert job.source == "solve"
                payload = job.payload
                assert payload["served"] == "solve"
                assert payload["audit"] is not None
                assert payload["audit"]["ok"] is True
                assert payload["metrics"]["used_valves"] > 0
                names = {d["operation"] for d in payload["design"]["devices"]}
                assert names == {"m1"}
                assert "table" not in payload  # server-side only

        run(body())

    def test_malformed_spec_is_a_client_error(self):
        async def body():
            async with ServeEngine(config()) as engine:
                with pytest.raises(AssaySpecError) as info:
                    await engine.submit("input\nmix broken\n")
                assert info.value.line == 1
                assert engine.submitted == 0  # no job was created

        run(body())


class TestCachePath:
    def test_identical_resubmission_hits_the_cache(self):
        async def body():
            async with ServeEngine(config()) as engine:
                first = await engine.submit(ASSAY)
                await first.wait()
                second = await engine.submit(ASSAY)
                await second.wait()
                assert second.source == "cache"
                assert second.state == JobState.DONE
                assert second.payload["design"] == first.payload["design"]
                assert engine.cache.hits == 1

        run(body())

    def test_relabeled_resubmission_renames_the_design(self):
        async def body():
            async with ServeEngine(config()) as engine:
                first = await engine.submit(ASSAY)
                await first.wait()
                second = await engine.submit(RELABELED)
                await second.wait()
                assert second.source == "cache", second.error
                names = {
                    d["operation"] for d in second.payload["design"]["devices"]
                }
                assert names == {"core"}
                assert second.payload["design"]["assay"] == "other"
                # Same placements, different labels.
                rects = {
                    (d["x"], d["y"], d["width"], d["height"])
                    for d in second.payload["design"]["devices"]
                }
                assert rects == {
                    (d["x"], d["y"], d["width"], d["height"])
                    for d in first.payload["design"]["devices"]
                }

        run(body())

    def test_disk_cache_round_trip(self, tmp_path):
        async def body():
            directory = str(tmp_path / "cache")
            async with ServeEngine(config(cache_dir=directory)) as engine:
                job = await engine.submit(ASSAY)
                await job.wait()
                assert job.state == JobState.DONE
            # A *fresh* engine (fresh process, conceptually) hits disk.
            async with ServeEngine(config(cache_dir=directory)) as fresh:
                job = await fresh.submit(ASSAY)
                await job.wait()
                assert job.source == "cache"

        run(body())


class TestCoalescing:
    def test_concurrent_identical_submissions_share_one_solve(self):
        async def body():
            async with ServeEngine(config(workers=1)) as engine:
                jobs = [await engine.submit(ASSAY) for _ in range(4)]
                await asyncio.gather(*(j.wait() for j in jobs))
                sources = sorted(j.source for j in jobs)
                assert sources == ["coalesced"] * 3 + ["solve"]
                assert all(j.state == JobState.DONE for j in jobs)
                assert engine.flights.coalesced == 3
                # One solve fed four answers.
                assert engine.completed == 1

        run(body())


class TestAdmission:
    def test_full_queue_rejects_explicitly(self):
        async def body():
            # No workers started: the queue only fills.
            engine = ServeEngine(config(queue_capacity=2))
            variants = [
                ASSAY.replace("duration=6", f"duration={d}")
                for d in (11, 12, 13)
            ]
            first = await engine.submit(variants[0])
            second = await engine.submit(variants[1])
            third = await engine.submit(variants[2])
            assert first.state == JobState.QUEUED
            assert second.state == JobState.QUEUED
            assert third.state == JobState.REJECTED
            assert "queue full" in third.error["error"]

        run(body())

    def test_filling_queue_sheds_budget(self):
        async def body():
            engine = ServeEngine(config(queue_capacity=4))
            variants = [
                ASSAY.replace("duration=6", f"duration={d}")
                for d in (11, 12, 13, 14)
            ]
            jobs = [await engine.submit(v) for v in variants]
            assert [j.shed_multiplier for j in jobs] == [1.0, 1.0, 0.5, 0.25]

        run(body())

    def test_shed_solve_records_the_rung(self):
        async def body():
            engine = ServeEngine(config(queue_capacity=2, workers=1))
            # Prefill to depth 1 so the next submission sheds.
            blocker = await engine.submit(
                ASSAY.replace("duration=6", "duration=9")
            )
            shed = await engine.submit(ASSAY)
            assert shed.shed_multiplier == 0.5
            await engine.start()
            await asyncio.gather(blocker.wait(), shed.wait())
            await engine.stop()
            assert shed.state == JobState.DONE, shed.error
            rungs = shed.payload["resilience"]["rungs"]
            assert rungs.get("serve_shed") == 1

        run(body())


class TestStatus:
    def test_status_shape_and_readiness(self):
        async def body():
            engine = ServeEngine(config())
            assert engine.status()["ready"] is False
            async with engine:
                status = engine.status()
                assert status["ready"] is True
                assert status["workers"] == 2
                assert status["queue"] == {"depth": 0, "capacity": 16}
                job = await engine.submit(ASSAY)
                await job.wait()
                status = engine.status()
                assert status["jobs"]["completed"] == 1
                assert status["latency"]["solve"]["count"] == 1
                assert status["latency"]["solve"]["p50"] > 0

        run(body())
