"""Admission control: admit, shed, reject — in that order of descent."""

import pytest

from repro.resilience.faults import FAULTS
from repro.serve.admission import AdmissionController, AdmissionDecision


class TestDecisions:
    def test_empty_queue_admits_at_full_budget(self):
        decision = AdmissionController(8).decide(0)
        assert decision.action == "admit"
        assert decision.budget_multiplier == 1.0
        assert decision.admitted

    def test_half_full_sheds_half_budget(self):
        decision = AdmissionController(8).decide(4)
        assert decision.action == "shed"
        assert decision.budget_multiplier == 0.5

    def test_three_quarters_sheds_harder(self):
        decision = AdmissionController(8).decide(6)
        assert decision.action == "shed"
        assert decision.budget_multiplier == 0.25

    def test_full_queue_rejects_explicitly(self):
        admission = AdmissionController(8)
        decision = admission.decide(8)
        assert decision.action == "reject"
        assert not decision.admitted
        assert "queue full" in decision.reason
        assert admission.rejected == 1

    def test_overfull_rejects_too(self):
        assert AdmissionController(8).decide(11).action == "reject"

    def test_shed_before_reject_ordering(self):
        """Every depth below capacity is admitted (possibly shed)."""
        admission = AdmissionController(4)
        actions = [admission.decide(d).action for d in range(5)]
        assert actions == ["admit", "admit", "shed", "shed", "reject"]

    def test_counters(self):
        admission = AdmissionController(4)
        for depth in (0, 2, 4):
            admission.decide(depth)
        stats = admission.stats()
        assert stats == {
            "capacity": 4, "admitted": 2, "shed": 1, "rejected": 1,
        }

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(0)


class TestChaosOverflow:
    def test_queue_overflow_site_forces_rejection(self):
        admission = AdmissionController(8)
        with FAULTS.inject({"serve.queue_overflow": 1}):
            forced = admission.decide(0)
            normal = admission.decide(0)
        assert forced.action == "reject"
        assert "chaos" in forced.reason
        assert normal.action == "admit"
        assert FAULTS.fired("serve.queue_overflow") == 1
