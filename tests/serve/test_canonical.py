"""The canonical problem IR: invariance, collision and regression tests.

The serve cache's correctness rests on two claims proven here:

* :func:`problem_key` is invariant under representation accidents
  (operation reordering, node relabeling, dict-order permutations) and
  sensitive to real changes (a duration, a ratio, a grid);
* :func:`spec_key` — extracted from the checkpoint journal into
  :mod:`repro.serve.canonical` — is byte-identical to the journal's
  historical serializer, so existing journals keep resuming.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assay.operation import MixRatio
from repro.assay.schedule import Schedule
from repro.assay.sequencing_graph import SequencingGraph
from repro.geometry import GridSpec, Point
from repro.core.mapping_model import MappingSpec
from repro.core.tasks import MappingTask
from repro.serve.canonical import (
    canonical_ids,
    canonical_json,
    operation_fingerprints,
    problem_key,
    spec_key,
    structure_table,
)


def chain_graph(names=("a", "b", "m", "d"), *, duration=6, ratio=(1, 1)):
    """input a + input b -> mix m -> detect d, under arbitrary names."""
    a, b, m, d = names
    g = SequencingGraph("t")
    g.add_input(a, volume=4)
    g.add_input(b, volume=4)
    g.add_mix(m, (a, b), duration=duration, volume=8, ratio=MixRatio(ratio))
    g.add_detect(d, m, duration=2)
    return g


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [2, None]}) == '{"a":[2,null],"b":1}'

    def test_dict_order_invariant(self):
        assert canonical_json({"x": 1, "y": 2}) == canonical_json(
            {"y": 2, "x": 1}
        )


class TestSpecKeyRegression:
    def test_pinned_hash(self):
        """Byte-for-byte compatible with the pre-extraction journal.

        This hash was computed by the checkpoint journal's original
        in-module canonicalizer; a change here means every existing
        journal on disk stops resuming.
        """
        spec = MappingSpec(
            grid=GridSpec(8, 8),
            tasks=[
                MappingTask("m1", 8, 4, 0, 2, 6, ()),
                MappingTask("m2", 4, 2, 4, 5, 9, ("m1",)),
            ],
            base_load={Point(1, 1): 3},
            blocked_cells=frozenset({Point(0, 0)}),
            anchor_stride=2,
        )
        assert spec_key(spec) == (
            "9ceafa3ece05d953e4276c7e731f064f"
            "af5e556d32d3740ffd65faed094a68d6"
        )

    def test_sensitive_to_grid(self):
        tasks = [MappingTask("m1", 8, 4, 0, 2, 6, ())]
        a = MappingSpec(grid=GridSpec(8, 8), tasks=list(tasks))
        b = MappingSpec(grid=GridSpec(9, 8), tasks=list(tasks))
        assert spec_key(a) != spec_key(b)


class TestProblemKeyInvariance:
    def test_reorder_invariant(self):
        g1 = SequencingGraph("t")
        g1.add_input("a", volume=4)
        g1.add_input("b", volume=4)
        g1.add_mix("m", ("a", "b"), duration=6, volume=8, ratio=MixRatio((1, 1)))
        g2 = SequencingGraph("t")
        g2.add_input("b", volume=4)
        g2.add_input("a", volume=4)
        g2.add_mix("m", ("a", "b"), duration=6, volume=8, ratio=MixRatio((1, 1)))
        assert problem_key(g1) == problem_key(g2)

    def test_relabel_invariant(self):
        g1 = chain_graph(("a", "b", "m", "d"))
        g2 = chain_graph(("x", "y", "z", "w"))
        assert problem_key(g1) == problem_key(g2)

    def test_name_of_graph_ignored(self):
        g1, g2 = chain_graph(), chain_graph()
        g2.name = "completely-different"
        assert problem_key(g1) == problem_key(g2)

    def test_duration_changes_key(self):
        assert problem_key(chain_graph(duration=6)) != problem_key(
            chain_graph(duration=7)
        )

    def test_ratio_changes_key(self):
        assert problem_key(chain_graph(ratio=(1, 1))) != problem_key(
            chain_graph(ratio=(1, 3))
        )

    def test_asymmetric_ratio_orientation_matters(self):
        """1:3 of (a, b) differs from 1:3 of (b, a) when a != b."""
        def oriented(first_volume):
            g = SequencingGraph("t")
            g.add_input("a", volume=first_volume)
            g.add_input("b", volume=4)
            g.add_mix(
                "m", ("a", "b"), duration=6, volume=8, ratio=MixRatio((1, 3))
            )
            return g

        g_ab = oriented(4)
        # Make the inputs distinguishable, then swap which one plays
        # the 3-part: structurally different problems.
        g1 = SequencingGraph("t")
        g1.add_input("a", volume=2)
        g1.add_input("b", volume=4)
        g1.add_mix("m", ("a", "b"), duration=6, volume=8, ratio=MixRatio((1, 3)))
        g2 = SequencingGraph("t")
        g2.add_input("a", volume=2)
        g2.add_input("b", volume=4)
        g2.add_mix("m", ("b", "a"), duration=6, volume=8, ratio=MixRatio((1, 3)))
        assert problem_key(g1) != problem_key(g2)
        assert problem_key(g_ab) == problem_key(g_ab)

    def test_automorphic_swap_same_key(self):
        """Identical inputs under a symmetric ratio: swapping is a no-op."""
        g1 = chain_graph(("a", "b", "m", "d"))
        g2 = chain_graph(("b", "a", "m", "d"))
        assert problem_key(g1) == problem_key(g2)

    def test_schedule_enters_key(self):
        g = chain_graph()
        s1 = Schedule(g, transport_delay=3)
        s2 = Schedule(g, transport_delay=3)
        for name, start in (("a", 0), ("b", 0), ("m", 1), ("d", 8)):
            s1.add(name, start)
            s2.add(name, start + (1 if name == "m" else 0))
        assert problem_key(g, s1) != problem_key(g, s2)

    def test_grid_and_options_enter_key(self):
        g = chain_graph()
        assert problem_key(g, grid=GridSpec(8, 8)) != problem_key(
            g, grid=GridSpec(10, 10)
        )
        assert problem_key(g, anchor_stride=1) != problem_key(
            g, anchor_stride=2
        )
        assert problem_key(g, routing_convenient=True) != problem_key(
            g, routing_convenient=False
        )


class TestStructureTable:
    def test_equal_across_relabel(self):
        g1 = chain_graph(("a", "b", "m", "d"))
        g2 = chain_graph(("p", "q", "r", "s"))
        assert structure_table(g1) == structure_table(g2)

    def test_ids_cover_all_operations(self):
        g = chain_graph()
        ids = canonical_ids(g)
        assert set(ids) == {"a", "b", "m", "d"}
        assert len(set(ids.values())) == 4  # all distinct here

    def test_duplicate_group_indices(self):
        """Structurally identical twins share a fingerprint, not an id."""
        g = SequencingGraph("t")
        g.add_input("a", volume=4)
        g.add_input("b", volume=4)
        fps = operation_fingerprints(g)
        assert fps["a"] == fps["b"]
        ids = canonical_ids(g)
        assert ids["a"] != ids["b"]
        assert {i.rsplit(".", 1)[1] for i in ids.values()} == {"0", "1"}

    def test_table_differs_for_different_problems(self):
        assert structure_table(chain_graph(duration=6)) != structure_table(
            chain_graph(duration=7)
        )

    def test_twin_groups_pair_consistently_across_relabelings(self):
        """Regression (hypothesis-found): twin inputs feeding twin mixes.

        Name-order tie-breaking paired the duplicate groups differently
        under relabeling (mix ``g.0`` ended up with parent ``f.1``
        instead of ``f.0``), so a relabeled resubmission's table never
        matched the cached one.  The canonical (individualize-refine)
        tie-break pairs them consistently.
        """
        ops = [("input", 2)] * 4 + [
            ("mix", 2, 4, (0, 1)),
            ("mix", 2, 4, (0, 2)),
        ]
        base = [f"op{i}" for i in range(len(ops))]
        shuffled = list(base)
        random.Random(1).shuffle(shuffled)
        g1 = _random_problem(ops, base)
        g2 = _random_problem(ops, [f"node_{s}" for s in shuffled])
        assert problem_key(g1) == problem_key(g2)
        assert structure_table(g1) == structure_table(g2)


def _random_problem(draw_ops, names):
    """Build a graph from an abstract op list under the given names."""
    g = SequencingGraph("t")
    for index, op in enumerate(draw_ops):
        name = names[index]
        if op[0] == "input":
            g.add_input(name, volume=op[1])
        else:
            _, duration, volume, parents = op
            g.add_mix(
                name,
                tuple(names[p] for p in parents),
                duration=duration,
                volume=volume,
                ratio=MixRatio((1,) * len(parents)) if len(parents) > 1
                else MixRatio((1, 1)),
            )
    return g


@st.composite
def abstract_problems(draw):
    """A DAG as abstract ops: inputs first, mixes over earlier ops."""
    n_inputs = draw(st.integers(min_value=2, max_value=4))
    ops = [
        ("input", draw(st.sampled_from([2, 3, 4])))
        for _ in range(n_inputs)
    ]
    n_mixes = draw(st.integers(min_value=1, max_value=4))
    for _ in range(n_mixes):
        parents = draw(
            st.lists(
                st.integers(min_value=0, max_value=len(ops) - 1),
                min_size=2,
                max_size=2,
                unique=True,
            )
        )
        ops.append(
            (
                "mix",
                draw(st.integers(min_value=2, max_value=12)),
                draw(st.sampled_from([4, 6, 8, 10])),
                tuple(parents),
            )
        )
    return ops


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(ops=abstract_problems(), seed=st.integers(0, 2**16))
    def test_relabel_never_changes_key(self, ops, seed):
        base = [f"op{i}" for i in range(len(ops))]
        shuffled = list(base)
        random.Random(seed).shuffle(shuffled)
        renamed = [f"node_{s}" for s in shuffled]
        g1 = _random_problem(ops, base)
        g2 = _random_problem(ops, renamed)
        assert problem_key(g1) == problem_key(g2)
        assert structure_table(g1) == structure_table(g2)

    @settings(max_examples=30, deadline=None)
    @given(ops=abstract_problems(), seed=st.integers(0, 2**16))
    def test_mutating_an_attribute_changes_key(self, ops, seed):
        g1 = _random_problem(ops, [f"op{i}" for i in range(len(ops))])
        mutated = list(ops)
        rng = random.Random(seed)
        mixes = [i for i, op in enumerate(mutated) if op[0] == "mix"]
        index = rng.choice(mixes)
        kind, duration, volume, parents = mutated[index]
        mutated[index] = (kind, duration + 1, volume, parents)
        g2 = _random_problem(mutated, [f"op{i}" for i in range(len(mutated))])
        assert problem_key(g1) != problem_key(g2)

    @settings(max_examples=20, deadline=None)
    @given(ops=abstract_problems())
    def test_key_is_deterministic(self, ops):
        names = [f"op{i}" for i in range(len(ops))]
        assert problem_key(_random_problem(ops, names)) == problem_key(
            _random_problem(ops, names)
        )
