"""Result cache (CRC discipline) and single-flight dedup."""

import asyncio
import json
import zlib

import pytest

from repro.errors import CorruptCacheWarning
from repro.resilience.faults import FAULTS
from repro.serve.cache import ResultCache, SingleFlight
from repro.serve.canonical import canonical_json

KEY = "k" * 64
PAYLOAD = {"served": "solve", "design": {"devices": []}, "metrics": {"w": 3}}


class TestMemoryCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.lookup(KEY) is None
        cache.store(KEY, PAYLOAD)
        assert cache.lookup(KEY) == PAYLOAD
        assert cache.stats()["hits"] == 1.0
        assert cache.stats()["misses"] == 1.0
        assert cache.stats()["hit_rate"] == 0.5


class TestMemoryBound:
    def test_lru_trim_keeps_the_cap(self):
        cache = ResultCache(max_entries=2)
        for i in range(3):
            cache.store(f"{i}" * 64, {"n": i})
        assert len(cache) == 2
        assert cache.lookup("0" * 64) is None  # oldest trimmed
        assert cache.lookup("2" * 64) == {"n": 2}
        assert cache.stats()["trimmed"] == 1.0

    def test_lookup_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.store("a" * 64, {"n": 0})
        cache.store("b" * 64, {"n": 1})
        cache.lookup("a" * 64)  # a becomes most recent
        cache.store("c" * 64, {"n": 2})  # so b is the one trimmed
        assert cache.lookup("a" * 64) == {"n": 0}
        assert cache.lookup("b" * 64) is None

    def test_trimmed_disk_entry_reloads(self, tmp_path):
        """Memory trimming never loses a disk-backed result."""
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory, max_entries=1)
        cache.store(KEY, PAYLOAD)
        cache.store("x" * 64, {"n": 1})  # trims KEY from memory
        assert cache.lookup(KEY) == PAYLOAD  # reloaded from disk


class TestDiskCache:
    def test_survives_a_new_instance(self, tmp_path):
        directory = str(tmp_path / "cache")
        ResultCache(directory).store(KEY, PAYLOAD)
        fresh = ResultCache(directory)
        assert fresh.lookup(KEY) == PAYLOAD

    def test_corrupt_entry_evicted_never_served(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory)
        cache.store(KEY, PAYLOAD)
        path = tmp_path / "cache" / f"{KEY}.json"
        raw = path.read_text()
        middle = len(raw) // 2
        path.write_text(raw[:middle] + ("#" if raw[middle] != "#" else "@") + raw[middle + 1:])
        fresh = ResultCache(directory)
        with pytest.warns(CorruptCacheWarning, match="evicting"):
            assert fresh.lookup(KEY) is None
        assert not path.exists()
        assert fresh.stats()["evicted"] == 1.0

    def test_wrong_key_in_record_evicted(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory)
        body = {"key": "x" * 64, "payload": PAYLOAD}
        record = dict(body, crc=zlib.crc32(canonical_json(body).encode()))
        (tmp_path / "cache" / f"{KEY}.json").write_text(
            canonical_json(record)
        )
        with pytest.warns(CorruptCacheWarning, match="key mismatch"):
            assert cache.lookup(KEY) is None

    def test_truncated_record_evicted(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory)
        cache.store(KEY, PAYLOAD)
        path = tmp_path / "cache" / f"{KEY}.json"
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        fresh = ResultCache(directory)
        with pytest.warns(CorruptCacheWarning):
            assert fresh.lookup(KEY) is None

    def test_chaos_site_corrupts_the_write(self, tmp_path):
        """``serve.cache_corrupt`` rots the entry; the CRC catches it."""
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory)
        with FAULTS.inject({"serve.cache_corrupt": 1}):
            cache.store(KEY, PAYLOAD)
        assert FAULTS.fired("serve.cache_corrupt") == 1
        with pytest.warns(CorruptCacheWarning):
            assert cache.lookup(KEY) is None

    def test_record_format_matches_journal_discipline(self, tmp_path):
        directory = str(tmp_path / "cache")
        ResultCache(directory).store(KEY, PAYLOAD)
        record = json.loads((tmp_path / "cache" / f"{KEY}.json").read_text())
        assert set(record) == {"key", "payload", "crc"}
        body = {"key": record["key"], "payload": record["payload"]}
        assert record["crc"] == zlib.crc32(canonical_json(body).encode())


class TestSingleFlight:
    def test_leader_then_followers(self):
        async def run():
            flights = SingleFlight()
            leader, fut1 = flights.claim(KEY)
            follower, fut2 = flights.claim(KEY)
            assert leader and not follower
            assert fut1 is fut2
            flights.resolve(KEY, {"answer": 1})
            assert await fut2 == {"answer": 1}
            assert flights.coalesced == 1

        asyncio.run(run())

    def test_settled_flight_makes_a_new_leader(self):
        async def run():
            flights = SingleFlight()
            leader, fut = flights.claim(KEY)
            flights.resolve(KEY, "done")
            again, fut2 = flights.claim(KEY)
            assert leader and again
            assert fut2 is not fut

        asyncio.run(run())

    def test_failure_delivered_as_value(self):
        """Exceptions travel as results, so nothing warns unobserved."""

        async def run():
            flights = SingleFlight()
            _, fut = flights.claim(KEY)
            flights.claim(KEY)
            error = RuntimeError("solver died")
            flights.resolve(KEY, error)
            assert await fut is error

        asyncio.run(run())
