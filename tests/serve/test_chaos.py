"""Chaos suite for the serve tier (DESIGN.md §15).

Arms the ``serve.*`` fault sites and proves the availability claims:
the server keeps answering under worker loss, cache corruption and
queue overflow; every *served* result passes its audit; and the
breaker's degrade-probe-recover cycle actually cycles.
"""

import asyncio

import pytest

from repro.errors import CorruptCacheWarning
from repro.geometry import GridSpec
from repro.resilience.faults import FAULTS
from repro.serve.breaker import CLOSED, OPEN
from repro.serve.engine import ServeConfig, ServeEngine
from repro.serve.protocol import JobState

ASSAY = """# assay chaos
input a volume=4
input b volume=4
mix m1 a b duration=6 volume=8 ratio=1:1
detect d1 m1 duration=2
"""


def config(**overrides):
    defaults = dict(grid=GridSpec(8, 8), workers=1, time_budget=5.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def run(coro):
    return asyncio.run(coro)


class TestWorkerLoss:
    def test_single_loss_is_retried_to_success(self):
        async def body():
            async with ServeEngine(config()) as engine:
                with FAULTS.inject({"serve.worker_loss": 1}):
                    job = await engine.submit(ASSAY)
                    await job.wait()
                assert job.state == JobState.DONE, job.error
                assert job.retries == 1
                rungs = job.payload["resilience"]["rungs"]
                assert rungs.get("worker_retry") == 1
                assert job.payload["audit"]["ok"] is True

        run(body())

    def test_persistent_loss_fails_the_job_cleanly(self):
        async def body():
            async with ServeEngine(config(retry_attempts=1)) as engine:
                with FAULTS.inject({"serve.worker_loss": {"times": None}}):
                    job = await engine.submit(ASSAY)
                    await job.wait()
                assert job.state == JobState.FAILED
                assert "worker lost" in job.error["error"]
                # The engine survived: the next clean submission solves.
                job = await engine.submit(ASSAY)
                await job.wait()
                assert job.state == JobState.DONE, job.error

        run(body())


class TestBreakerCycle:
    def test_degrade_probe_recover(self):
        async def body():
            engine_config = config(
                retry_attempts=0,
                breaker_threshold=2,
                breaker_cooldown=3600.0,
            )
            async with ServeEngine(engine_config) as engine:
                # Two consecutive losses trip the per-problem breaker.
                with FAULTS.inject({"serve.worker_loss": 2}):
                    for _ in range(2):
                        job = await engine.submit(ASSAY)
                        await job.wait()
                        assert job.state == JobState.FAILED
                key = job.key
                assert engine.breaker.state(key) == OPEN
                # While open: answered degraded-greedy, not rejected.
                degraded = await engine.submit(ASSAY)
                await degraded.wait()
                assert degraded.state == JobState.DONE, degraded.error
                assert degraded.source == "degraded"
                rungs = degraded.payload["resilience"]["rungs"]
                assert rungs.get("serve_breaker") == 1
                # Even the degraded answer is audited.
                assert degraded.payload["audit"]["ok"] is True
                # Degraded answers are never cached.
                assert engine.cache.lookup(key) is None
                assert engine.cache.hits == 0
                # Cooldown over: the next submission is the probe; it
                # succeeds and closes the breaker.
                engine.breaker.cooldown = 0.0
                probe = await engine.submit(ASSAY)
                await probe.wait()
                assert probe.state == JobState.DONE, probe.error
                assert probe.source == "solve"
                assert engine.breaker.state(key) == CLOSED
                # Fully recovered: resubmissions now hit the cache.
                hit = await engine.submit(ASSAY)
                await hit.wait()
                assert hit.source == "cache"

        run(body())


class TestCacheCorruption:
    def test_corrupt_entry_is_evicted_and_resolved(self, tmp_path):
        async def body():
            directory = str(tmp_path / "cache")
            async with ServeEngine(config(cache_dir=directory)) as engine:
                with FAULTS.inject({"serve.cache_corrupt": 1}):
                    job = await engine.submit(ASSAY)
                    await job.wait()
                # The job itself succeeded; only its cache entry rotted.
                assert job.state == JobState.DONE, job.error
                assert job.payload["audit"]["ok"] is True
                # The resubmission detects the rot, evicts, re-solves —
                # and the re-solved entry repairs the cache.
                with pytest.warns(CorruptCacheWarning, match="evicting"):
                    second = await engine.submit(ASSAY)
                    await second.wait()
                assert second.state == JobState.DONE, second.error
                assert second.source == "solve"
                assert engine.cache.evicted == 1
                third = await engine.submit(ASSAY)
                await third.wait()
                assert third.source == "cache"

        run(body())


class TestQueueOverflow:
    def test_forced_overflow_rejects_cleanly_and_recovers(self):
        async def body():
            async with ServeEngine(config()) as engine:
                with FAULTS.inject({"serve.queue_overflow": 1}):
                    rejected = await engine.submit(ASSAY)
                    await rejected.wait()
                assert rejected.state == JobState.REJECTED
                assert "chaos" in rejected.error["error"]
                # Availability: the very next submission is served.
                job = await engine.submit(ASSAY)
                await job.wait()
                assert job.state == JobState.DONE, job.error

        run(body())


class TestEveryServedResultAudited:
    def test_mixed_chaos_never_serves_unaudited(self):
        """Under a mixed fault plan, every DONE payload carries a
        passing audit — the engine's core serving invariant."""

        async def body():
            plan = {
                "serve.worker_loss": {"times": 2, "after": 1},
                "serve.queue_overflow": {"times": 1, "after": 2},
            }
            async with ServeEngine(config(retry_attempts=2)) as engine:
                with FAULTS.inject(plan):
                    jobs = []
                    for duration in (5, 6, 7, 8):
                        jobs.append(
                            await engine.submit(
                                ASSAY.replace(
                                    "duration=6", f"duration={duration}"
                                )
                            )
                        )
                    await asyncio.gather(*(j.wait() for j in jobs))
                assert any(j.state == JobState.DONE for j in jobs)
                for job in jobs:
                    if job.state == JobState.DONE:
                        assert job.payload["audit"] is not None
                        assert job.payload["audit"]["ok"] is True
                # The engine is still ready afterwards.
                assert engine.status()["ready"] is True

        run(body())
