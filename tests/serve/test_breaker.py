"""The per-problem circuit breaker's three-state machine."""

import pytest

from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerOpenError,
    CircuitBreaker,
)

KEY = "problem-key"


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(threshold=3, cooldown=10.0, clock=clock)


class TestClosed:
    def test_unknown_key_is_closed(self, breaker):
        assert breaker.state(KEY) == CLOSED
        assert breaker.allow(KEY) == CLOSED

    def test_failures_below_threshold_stay_closed(self, breaker):
        breaker.record_failure(KEY)
        breaker.record_failure(KEY)
        assert breaker.state(KEY) == CLOSED
        assert breaker.allow(KEY) == CLOSED

    def test_success_resets_the_count(self, breaker):
        breaker.record_failure(KEY)
        breaker.record_failure(KEY)
        breaker.record_success(KEY)
        breaker.record_failure(KEY)
        breaker.record_failure(KEY)
        assert breaker.state(KEY) == CLOSED


class TestOpen:
    def test_threshold_failures_trip(self, breaker):
        for _ in range(3):
            breaker.record_failure(KEY)
        assert breaker.state(KEY) == OPEN
        assert breaker.allow(KEY) == OPEN
        assert breaker.tripped == 1

    def test_check_raises_while_open(self, breaker):
        for _ in range(3):
            breaker.record_failure(KEY)
        with pytest.raises(BreakerOpenError, match="open"):
            breaker.check(KEY)

    def test_keys_are_independent(self, breaker):
        for _ in range(3):
            breaker.record_failure(KEY)
        assert breaker.allow("other") == CLOSED


class TestHalfOpen:
    def _trip(self, breaker):
        for _ in range(3):
            breaker.record_failure(KEY)

    def test_cooldown_admits_one_probe(self, breaker, clock):
        self._trip(breaker)
        clock.advance(10.0)
        assert breaker.allow(KEY) == "probe"
        # A second caller during the probe is still shorted.
        assert breaker.allow(KEY) == OPEN
        assert breaker.probes == 1

    def test_probe_success_closes(self, breaker, clock):
        self._trip(breaker)
        clock.advance(10.0)
        assert breaker.allow(KEY) == "probe"
        breaker.record_success(KEY)
        assert breaker.state(KEY) == CLOSED
        assert breaker.allow(KEY) == CLOSED

    def test_probe_failure_reopens_for_another_cooldown(self, breaker, clock):
        self._trip(breaker)
        clock.advance(10.0)
        assert breaker.allow(KEY) == "probe"
        breaker.record_failure(KEY)
        assert breaker.state(KEY) == OPEN
        assert breaker.allow(KEY) == OPEN  # cooldown restarted
        clock.advance(10.0)
        assert breaker.allow(KEY) == "probe"

    def test_stats_shape(self, breaker, clock):
        self._trip(breaker)
        clock.advance(10.0)
        breaker.allow(KEY)
        stats = breaker.stats()
        assert stats["tripped"] == 1
        assert stats["probes"] == 1
        assert stats["half_open"] == 1
        assert stats["tracked"] == 1
