"""The NDJSON TCP front end: wire protocol and server behavior."""

import asyncio
import json

import pytest

from repro.geometry import GridSpec
from repro.serve.engine import ServeConfig, ServeEngine, ServeServer
from repro.serve.protocol import ProtocolError, decode_message, encode_message

ASSAY = """# assay wire
input a volume=4
input b volume=4
mix m1 a b duration=6 volume=8 ratio=1:1
detect d1 m1 duration=2
"""


class TestMessages:
    def test_round_trip(self):
        message = {"op": "submit", "assay": "input a\n"}
        assert decode_message(encode_message(message)) == message

    def test_rejects_non_json(self):
        with pytest.raises(ProtocolError, match="JSON"):
            decode_message(b"not json at all\n")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_message(b"[1, 2, 3]\n")

    def test_rejects_missing_op(self):
        with pytest.raises(ProtocolError, match="op"):
            decode_message(b'{"assay": "x"}\n')

    def test_rejects_empty_line(self):
        with pytest.raises(ProtocolError, match="empty"):
            decode_message(b"   \n")

    def test_rejects_non_string_assay(self):
        with pytest.raises(ProtocolError, match="assay"):
            decode_message(b'{"op": "submit", "assay": 42}\n')

    def test_rejects_non_string_schedule(self):
        with pytest.raises(ProtocolError, match="schedule"):
            decode_message(
                b'{"op": "submit", "assay": "x", "schedule": [1]}\n'
            )

    @pytest.mark.parametrize(
        "budget", ['"3"', "true", "0", "-2", "NaN", "Infinity"]
    )
    def test_rejects_bad_time_budget(self, budget):
        line = (
            '{"op": "submit", "assay": "x", "time_budget": %s}\n' % budget
        ).encode()
        with pytest.raises(ProtocolError, match="time_budget"):
            decode_message(line)

    def test_accepts_numeric_time_budget(self):
        message = decode_message(
            b'{"op": "submit", "assay": "x", "time_budget": 2.5}\n'
        )
        assert message["time_budget"] == 2.5


async def _request(port, *messages):
    """Send messages, return every response line as a dict."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    for message in messages:
        writer.write(encode_message(message))
    await writer.drain()
    writer.write_eof()
    responses = []
    while True:
        line = await reader.readline()
        if not line:
            break
        responses.append(json.loads(line))
    writer.close()
    await writer.wait_closed()
    return responses


def serve_test(body):
    async def run():
        engine = ServeEngine(
            ServeConfig(grid=GridSpec(8, 8), workers=1, time_budget=5.0)
        )
        server = ServeServer(engine, port=0)
        await server.start()
        try:
            await body(server)
        finally:
            await server.stop()

    asyncio.run(run())


class TestServer:
    def test_ping(self):
        async def body(server):
            responses = await _request(server.port, {"op": "ping"})
            assert responses == [{"event": "pong"}]

        serve_test(body)

    def test_status(self):
        async def body(server):
            responses = await _request(server.port, {"op": "status"})
            assert responses[0]["event"] == "status"
            status = responses[0]["status"]
            assert status["ready"] is True
            assert status["queue"]["capacity"] == 16

        serve_test(body)

    def test_submit_streams_accept_then_done(self):
        async def body(server):
            responses = await _request(
                server.port, {"op": "submit", "assay": ASSAY}
            )
            assert [r["event"] for r in responses] == ["accepted", "done"]
            done = responses[1]
            assert done["job"]["state"] == "done"
            assert done["result"]["audit"]["ok"] is True
            assert done["result"]["design"]["devices"]

        serve_test(body)

    def test_malformed_assay_returns_structured_error(self):
        async def body(server):
            responses = await _request(
                server.port,
                {"op": "submit", "assay": "input a\nmix m a\n"},
            )
            assert responses[0]["event"] == "invalid"
            error = responses[0]["error"]
            assert error["line"] == 2
            assert "mix" in error["context"]

        serve_test(body)

    def test_protocol_error_keeps_the_connection(self):
        async def body(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"garbage\n")
            writer.write(encode_message({"op": "ping"}))
            await writer.drain()
            first = json.loads(await reader.readline())
            second = json.loads(await reader.readline())
            assert first["event"] == "error"
            assert second == {"event": "pong"}
            writer.close()
            await writer.wait_closed()

        serve_test(body)

    def test_ill_typed_submit_keeps_the_connection(self):
        """A submit with wrong field types gets an error event — the
        handler never dies with an unsettled connection."""

        async def body(server):
            responses = await _request(
                server.port,
                {"op": "submit", "assay": 12345},
                {"op": "submit", "assay": ASSAY, "time_budget": "fast"},
                {"op": "ping"},
            )
            assert [r["event"] for r in responses] == [
                "error",
                "error",
                "pong",
            ]
            assert "assay" in responses[0]["error"]
            assert "time_budget" in responses[1]["error"]

        serve_test(body)

    def test_unexpected_engine_error_maps_to_error_event(self):
        """The catch-all: an exception the handler did not anticipate
        becomes an error event, never a dropped connection."""

        async def body(server):
            async def exploding(*args, **kwargs):
                raise RuntimeError("wired to fail")

            server.engine.submit = exploding
            responses = await _request(
                server.port,
                {"op": "submit", "assay": ASSAY},
                {"op": "ping"},
            )
            assert [r["event"] for r in responses] == ["error", "pong"]
            assert "RuntimeError" in responses[0]["error"]

        serve_test(body)

    def test_unknown_op(self):
        async def body(server):
            responses = await _request(server.port, {"op": "frobnicate"})
            assert responses[0]["event"] == "error"
            assert "frobnicate" in responses[0]["error"]

        serve_test(body)

    def test_duplicate_submissions_coalesce_over_the_wire(self):
        async def body(server):
            results = await asyncio.gather(
                _request(server.port, {"op": "submit", "assay": ASSAY}),
                _request(server.port, {"op": "submit", "assay": ASSAY}),
            )
            sources = sorted(
                r[0]["job"]["source"] for r in results
            )
            for responses in results:
                assert responses[-1]["event"] == "done"
            # Either coalesced onto one flight or the second arrived
            # after completion and hit the cache; never two solves.
            assert sources[0] in ("cache", "coalesced", "solve")
            assert server.engine.completed == 1

        serve_test(body)

    def test_rejected_submission_over_the_wire(self):
        async def body(server):
            from repro.resilience.faults import FAULTS

            with FAULTS.inject({"serve.queue_overflow": 1}):
                responses = await _request(
                    server.port, {"op": "submit", "assay": ASSAY}
                )
            assert responses[0]["event"] == "rejected"
            assert "chaos" in responses[0]["job"]["error"]["error"]

        serve_test(body)
