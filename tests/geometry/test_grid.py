"""Unit tests for the grid spec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import GridSpec, Point, Rect


class TestGridSpec:
    def test_cell_count_and_bounds(self):
        g = GridSpec(4, 3)
        assert g.cell_count == 12
        assert g.bounds == Rect(0, 0, 4, 3)

    def test_rejects_degenerate(self):
        with pytest.raises(GeometryError):
            GridSpec(0, 5)

    def test_in_bounds(self):
        g = GridSpec(3, 3)
        assert g.in_bounds(Point(0, 0))
        assert g.in_bounds(Point(2, 2))
        assert not g.in_bounds(Point(3, 0))
        assert not g.in_bounds(Point(0, -1))

    def test_contains_rect(self):
        g = GridSpec(5, 5)
        assert g.contains_rect(Rect(0, 0, 5, 5))
        assert not g.contains_rect(Rect(3, 3, 3, 3))

    def test_clip_drops_off_grid_wall_cells(self):
        g = GridSpec(4, 4)
        walls = Rect(0, 0, 2, 2).wall_cells()
        clipped = g.clip(walls)
        assert all(g.in_bounds(p) for p in clipped)
        assert len(clipped) < len(walls)  # edge walls are free

    def test_cells_iteration_row_major(self):
        cells = list(GridSpec(2, 2).cells())
        assert cells == [Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1)]

    def test_neighbors4_clipped_at_corner(self):
        g = GridSpec(3, 3)
        assert set(g.neighbors4(Point(0, 0))) == {Point(1, 0), Point(0, 1)}

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
    )
    def test_placements_all_inside_and_complete(self, gw, gh, w, h):
        g = GridSpec(gw, gh)
        placements = list(g.placements(w, h))
        assert all(g.contains_rect(r) for r in placements)
        expected = max(gw - w + 1, 0) * max(gh - h + 1, 0)
        assert len(placements) == expected
