"""Unit tests for grid points and distances."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, chebyshev_distance, manhattan_distance

coords = st.integers(min_value=-50, max_value=50)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_unpacking(self):
        x, y = Point(3, 7)
        assert (x, y) == (3, 7)

    def test_translated(self):
        assert Point(1, 2).translated(3, -5) == Point(4, -3)

    def test_neighbors4_are_distance_one(self):
        p = Point(5, 5)
        neighbors = list(p.neighbors4())
        assert len(neighbors) == 4
        assert all(manhattan_distance(p, q) == 1 for q in neighbors)

    def test_neighbors8_count_and_uniqueness(self):
        p = Point(0, 0)
        neighbors = list(p.neighbors8())
        assert len(neighbors) == 8
        assert len(set(neighbors)) == 8
        assert p not in neighbors

    def test_points_are_hashable_and_ordered(self):
        assert Point(1, 2) == Point(1, 2)
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2
        assert Point(1, 2) < Point(2, 1)


class TestDistances:
    def test_manhattan_example(self):
        assert manhattan_distance(Point(0, 0), Point(3, 4)) == 7

    def test_chebyshev_example(self):
        assert chebyshev_distance(Point(0, 0), Point(3, 4)) == 4

    @given(points, points)
    def test_symmetry(self, a, b):
        assert manhattan_distance(a, b) == manhattan_distance(b, a)
        assert chebyshev_distance(a, b) == chebyshev_distance(b, a)

    @given(points, points)
    def test_chebyshev_below_manhattan(self, a, b):
        assert chebyshev_distance(a, b) <= manhattan_distance(a, b)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert manhattan_distance(a, c) <= (
            manhattan_distance(a, b) + manhattan_distance(b, c)
        )

    @given(points)
    def test_identity(self, a):
        assert manhattan_distance(a, a) == 0
        assert chebyshev_distance(a, a) == 0
