"""Brute-force cross-checks of the rectangle predicates.

The non-overlap disjunction (eq. 3) and the routing-convenient
constraints (eqs. 13-16) are all built on these predicates, so they are
verified here against definitions computed cell by cell.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Rect, chebyshev_distance

dims = st.integers(min_value=1, max_value=5)
coords = st.integers(min_value=0, max_value=8)
rects = st.builds(Rect, coords, coords, dims, dims)


@given(rects, rects)
def test_overlap_area_matches_cell_count(a, b):
    brute = len(set(a.cells()) & set(b.cells()))
    assert a.overlap_area(b) == brute


@given(rects, rects)
def test_gap_distance_matches_nearest_cells(a, b):
    nearest = min(
        chebyshev_distance(p, q) for p in a.cells() for q in b.cells()
    )
    expected = max(nearest - 1, 0)
    assert a.gap_distance(b) == expected


@given(rects, rects, st.integers(min_value=1, max_value=5))
def test_within_distance_matches_papers_inequalities(a, b, d):
    # Literal transcription of eqs. (13)-(16).
    paper = (
        a.right > b.left - d
        and a.left < b.right + d
        and a.top > b.bottom - d
        and a.bottom < b.top + d
    )
    assert a.within_distance(b, d) == paper


@given(rects, rects)
def test_non_overlap_disjunction_eq3(a, b):
    # Eq. (3): disjoint iff at least one side-relation holds.
    disjunction = (
        a.right <= b.left
        or b.right <= a.left
        or a.top <= b.bottom
        or b.top <= a.bottom
    )
    assert disjunction == (not a.overlaps(b))


@given(rects)
def test_wall_cells_are_exactly_the_margin(r):
    walls = set(r.wall_cells())
    margin = set(r.expanded(1).cells()) - set(r.cells())
    assert walls == margin
