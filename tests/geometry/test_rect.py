"""Unit and property tests for rectangles (device footprints)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import Point, Rect

dims = st.integers(min_value=1, max_value=8)
coords = st.integers(min_value=-10, max_value=10)
rects = st.builds(Rect, coords, coords, dims, dims)


class TestConstruction:
    def test_boundaries_match_paper_b_variables(self):
        r = Rect(2, 3, 4, 2)
        assert (r.left, r.right, r.bottom, r.top) == (2, 6, 3, 5)

    @pytest.mark.parametrize("w,h", [(0, 1), (1, 0), (-1, 2)])
    def test_degenerate_dimensions_rejected(self, w, h):
        with pytest.raises(GeometryError):
            Rect(0, 0, w, h)

    def test_area_and_corner(self):
        r = Rect(1, 1, 3, 4)
        assert r.area == 12
        assert r.corner == Point(1, 1)


class TestOverlap:
    def test_overlapping(self):
        assert Rect(0, 0, 3, 3).overlaps(Rect(2, 2, 3, 3))

    def test_touching_edges_do_not_overlap(self):
        assert not Rect(0, 0, 3, 3).overlaps(Rect(3, 0, 3, 3))
        assert not Rect(0, 0, 3, 3).overlaps(Rect(0, 3, 3, 3))

    def test_overlap_area_values(self):
        assert Rect(0, 0, 3, 3).overlap_area(Rect(2, 2, 3, 3)) == 1
        assert Rect(0, 0, 4, 4).overlap_area(Rect(1, 1, 2, 2)) == 4
        assert Rect(0, 0, 2, 2).overlap_area(Rect(5, 5, 2, 2)) == 0

    @given(rects, rects)
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)
        assert a.overlap_area(b) == b.overlap_area(a)

    @given(rects, rects)
    def test_overlap_iff_positive_area(self, a, b):
        assert a.overlaps(b) == (a.overlap_area(b) > 0)

    @given(rects, rects)
    def test_intersection_consistent_with_area(self, a, b):
        inter = a.intersection(b)
        if inter is None:
            assert a.overlap_area(b) == 0
        else:
            assert inter.area == a.overlap_area(b)
            assert a.overlaps(b)

    @given(rects, rects)
    def test_overlap_matches_cellwise_check(self, a, b):
        cellwise = bool(set(a.cells()) & set(b.cells()))
        assert a.overlaps(b) == cellwise


class TestDistance:
    def test_gap_distance_zero_when_touching(self):
        assert Rect(0, 0, 2, 2).gap_distance(Rect(2, 0, 2, 2)) == 0

    def test_gap_distance_axis_separation(self):
        assert Rect(0, 0, 2, 2).gap_distance(Rect(5, 0, 2, 2)) == 3
        assert Rect(0, 0, 2, 2).gap_distance(Rect(5, 7, 2, 2)) == 5

    def test_within_distance_is_papers_predicate(self):
        # eqs. (13)-(16) with d=2: gap strictly below 2 on both axes.
        a = Rect(0, 0, 2, 2)
        assert a.within_distance(Rect(3, 0, 2, 2), 2)  # gap 1
        assert not a.within_distance(Rect(4, 0, 2, 2), 2)  # gap 2

    @given(rects, rects, st.integers(min_value=1, max_value=6))
    def test_within_distance_equivalent_to_gap(self, a, b, d):
        assert a.within_distance(b, d) == (a.gap_distance(b) < d)


class TestRings:
    def test_perimeter_of_3x3(self):
        ring = Rect(0, 0, 3, 3).perimeter_cells()
        assert len(ring) == 8  # the paper's 8-unit-volume mixer
        assert Point(1, 1) not in ring

    def test_perimeter_of_2x4_has_8_pump_valves(self):
        assert len(Rect(0, 0, 2, 4).perimeter_cells()) == 8

    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=2, max_value=7))
    def test_ring_length_formula(self, w, h):
        ring = Rect(0, 0, w, h).perimeter_cells()
        assert len(ring) == 2 * (w + h) - 4
        assert len(set(ring)) == len(ring)

    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=2, max_value=7))
    def test_ring_is_closed_cycle(self, w, h):
        ring = Rect(0, 0, w, h).perimeter_cells()
        for i, cell in enumerate(ring):
            nxt = ring[(i + 1) % len(ring)]
            assert abs(cell.x - nxt.x) + abs(cell.y - nxt.y) == 1

    def test_interior_cells(self):
        assert list(Rect(0, 0, 3, 3).interior_cells()) == [Point(1, 1)]
        assert list(Rect(0, 0, 2, 4).interior_cells()) == []

    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=2, max_value=7))
    def test_ring_plus_interior_covers_rect(self, w, h):
        r = Rect(0, 0, w, h)
        covered = set(r.perimeter_cells()) | set(r.interior_cells())
        assert covered == set(r.cells())

    def test_wall_cells_surround_rect(self):
        r = Rect(2, 2, 2, 2)
        walls = r.wall_cells()
        assert len(walls) == 12
        assert all(not r.contains(w) for w in walls)

    def test_expanded(self):
        assert Rect(2, 2, 2, 2).expanded(1) == Rect(1, 1, 4, 4)
