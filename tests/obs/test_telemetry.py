"""Unit tests for the solver telemetry registry."""

import pytest

from repro import obs
from repro.obs import Telemetry


@pytest.fixture
def telemetry():
    return Telemetry()


class TestCounters:
    def test_disabled_by_default(self, telemetry):
        assert not telemetry.enabled
        telemetry.count("simplex.solves")
        assert telemetry.counters() == {}

    def test_count_accumulates(self, telemetry):
        telemetry.enable()
        telemetry.count("bb.nodes_explored")
        telemetry.count("bb.nodes_explored", 4)
        assert telemetry.counters() == {"bb.nodes_explored": 5}

    def test_reset_clears_but_keeps_enabled(self, telemetry):
        telemetry.enable()
        telemetry.count("x", 3)
        telemetry.reset()
        assert telemetry.counters() == {}
        assert telemetry.enabled


class TestTimers:
    def test_add_time_tracks_seconds_and_events(self, telemetry):
        telemetry.enable()
        telemetry.add_time("bb.lp", 0.25, events=10)
        telemetry.add_time("bb.lp", 0.75, events=30)
        timers = telemetry.timers()
        assert timers["bb.lp"]["seconds"] == pytest.approx(1.0)
        assert timers["bb.lp"]["events"] == 40

    def test_span_measures_wall_time(self, telemetry):
        telemetry.enable()
        with telemetry.span("mapper.window_solve"):
            pass
        timers = telemetry.timers()
        assert timers["mapper.window_solve"]["events"] == 1
        assert timers["mapper.window_solve"]["seconds"] >= 0.0

    def test_span_noop_when_disabled(self, telemetry):
        with telemetry.span("mapper.window_solve"):
            pass
        assert telemetry.timers() == {}


class TestSnapshot:
    def test_snapshot_shape(self, telemetry):
        telemetry.enable()
        telemetry.count("routing.heap_pops", 7)
        telemetry.add_time("simplex.pivot", 0.5)
        snap = telemetry.snapshot()
        assert snap == {
            "counters": {"routing.heap_pops": 7},
            "timers": {"simplex.pivot": {"seconds": 0.5, "events": 1}},
        }

    def test_snapshot_is_a_copy(self, telemetry):
        telemetry.enable()
        telemetry.count("a")
        snap = telemetry.snapshot()
        snap["counters"]["a"] = 99
        assert telemetry.counters()["a"] == 1


class TestModuleSingleton:
    def test_module_api_round_trip(self):
        obs.reset()
        obs.enable()
        try:
            obs.count("test.counter", 2)
            with obs.span("test.span"):
                pass
            snap = obs.snapshot()
            assert snap["counters"]["test.counter"] == 2
            assert snap["timers"]["test.span"]["events"] == 1
        finally:
            obs.disable()
            obs.reset()
        assert not obs.enabled()
