"""Tests for valve role timelines."""

import pytest

from repro.geometry import Point
from repro.viz.timeline import (
    render_role_changers,
    render_valve_timeline,
    valve_activity,
)


class TestValveActivity:
    def test_pump_during_mixing_only(self, pcr_result):
        device = pcr_result.device_of("o1")
        ring_cell = device.placement.pump_cells()[0]
        activity = valve_activity(pcr_result, ring_cell)
        # While o1 mixes, the valve pumps...
        assert activity[device.mix_start] == "pump"
        assert activity[device.end - 1] == "pump"
        # ...and after dissolution it is not pumping for o1 anymore.
        later = activity.get(device.end)
        assert later != "pump" or any(
            d.alive_at(device.end)
            and ring_cell in d.placement.pump_cells()
            and device.end >= d.mix_start
            for d in pcr_result.devices.values()
        )

    def test_untouched_valve_idle(self, pcr_result):
        # A valve that is never actuated has an empty activity map.
        untouched = [
            p
            for p in pcr_result.chip.spec.cells()
            if not any(
                p in d.placement.pump_cells()
                or d.rect.contains(p)
                or p in d.placement.wall_cells(pcr_result.chip.spec)
                for d in pcr_result.devices.values()
            )
            and not any(p in r.cells for r in pcr_result.routes)
        ]
        if untouched:
            assert valve_activity(pcr_result, untouched[0]) == {}


class TestRendering:
    def test_timeline_length(self, pcr_result):
        text = render_valve_timeline(pcr_result, Point(0, 0))
        bar = text.split("|")[1]
        assert len(bar) == pcr_result.schedule.makespan + 1

    def test_role_changers_show_mixed_glyphs(self, pcr_result):
        text = render_role_changers(pcr_result, limit=5)
        lines = text.splitlines()[1:]
        assert lines
        # At least one displayed valve both pumps and does something else.
        assert any("P" in l and ("W" in l or "t" in l) for l in lines)

    def test_limit_respected(self, pcr_result):
        text = render_role_changers(pcr_result, limit=3)
        assert len(text.splitlines()) == 4  # header + 3
