"""Tests for the SVG chip renderer."""

import re

import pytest

from repro.viz.svg import render_svg, write_svg


class TestSvgRendering:
    def test_final_wear_document_structure(self, pcr_result):
        svg = render_svg(pcr_result)
        assert svg.startswith("<svg ")
        assert svg.rstrip().endswith("</svg>")
        assert "<title>pcr final wear</title>" in svg
        # One rect per grid cell plus the background.
        cells = pcr_result.chip.spec.cell_count
        assert svg.count("<rect") >= cells + 1

    def test_wear_counters_appear(self, pcr_result):
        svg = render_svg(pcr_result)
        # Pump wear (>= 40) shows as text labels.
        assert re.search(r">4[0-5]</text>", svg)

    def test_snapshot_shows_devices(self, pcr_result):
        svg = render_svg(pcr_result, t=2)
        assert "t=2tu" in svg
        for op in ("o1", "o2", "o3", "o4"):
            assert f">{op}</text>" in svg

    def test_storage_vs_mixer_colors(self, pcr_result):
        # t=9: o7's storage exists alongside running mixers (Fig. 10c).
        svg = render_svg(pcr_result, t=9)
        assert "#4b7bd9" in svg  # storage outline
        assert "#d94b4b" in svg  # mixer outline

    def test_routes_toggle(self, pcr_result):
        with_routes = render_svg(pcr_result, show_routes=True)
        without = render_svg(pcr_result, show_routes=False)
        assert with_routes.count("<polyline") == len(pcr_result.routes)
        assert without.count("<polyline") == 0

    def test_ports_drawn(self, pcr_result):
        svg = render_svg(pcr_result)
        assert svg.count("<circle") == len(pcr_result.chip.ports)
        assert ">in0</text>" in svg

    def test_write_to_file(self, pcr_result, tmp_path):
        target = tmp_path / "chip.svg"
        write_svg(pcr_result, str(target), t=12)
        content = target.read_text()
        assert content == render_svg(pcr_result, t=12)

    def test_deterministic(self, pcr_result):
        assert render_svg(pcr_result, t=6) == render_svg(pcr_result, t=6)
