"""Unit tests for the text visualizations."""

import numpy as np

from repro.geometry import GridSpec, Point
from repro.architecture.valve import ValveRole
from repro.architecture.valve_grid import VirtualValveGrid
from repro.viz.ascii_chip import render_layout, render_matrix, render_snapshot
from repro.viz.gantt import render_gantt
from repro.viz.heatmap import actuation_summary, render_heatmap


class TestMatrixRendering:
    def test_zeros_print_as_dots(self):
        matrix = np.array([[0, 5], [40, 0]])
        text = render_matrix(matrix)
        assert "." in text and "40" in text and "5" in text

    def test_alignment(self):
        matrix = np.array([[1, 100], [40, 2]])
        lines = render_matrix(matrix).splitlines()
        assert len(lines) == 2
        assert len(lines[0]) == len(lines[1])


class TestSnapshotRendering:
    def test_header_names_alive_devices(self, pcr_result):
        text = render_snapshot(pcr_result, 2)
        assert text.startswith("t = 2tu")
        assert "o1" in text
        assert "o7" not in text.splitlines()[0]  # not alive yet

    def test_storage_prefix(self, pcr_result):
        text = render_snapshot(pcr_result, 9)
        assert "S[o7]" in text  # s7 exists from t=9 (the paper's text)

    def test_layout_letters_and_legend(self, pcr_result):
        text = render_layout(pcr_result, 2)
        assert "A=" in text
        assert "." in text


class TestGantt:
    def test_fig9_shape(self, fig9_schedule):
        text = render_gantt(fig9_schedule)
        lines = text.splitlines()
        o7 = next(l for l in lines if l.strip().startswith("o7"))
        bar = o7.split("|")[1]
        # Storage from 9, mixing 25..28 (Figure 9).
        assert bar[9] == "=" and bar[24] == "="
        assert bar[25] == "#" and bar[28] == "#"
        assert bar[5] == "."

    def test_name_filter(self, fig9_schedule):
        text = render_gantt(fig9_schedule, names=["o1", "o2"])
        assert "o7" not in text

    def test_time_step_compression(self, fig9_schedule):
        fine = render_gantt(fig9_schedule, time_step=1)
        coarse = render_gantt(fig9_schedule, time_step=2)
        assert len(coarse.splitlines()[1]) < len(fine.splitlines()[1])


class TestHeatmap:
    def grid(self):
        g = VirtualValveGrid(GridSpec(4, 4))
        g.actuate([Point(0, 0)], ValveRole.PUMP, 80)
        g.actuate([Point(1, 0)], ValveRole.PUMP, 40)
        g.actuate([Point(1, 0)], ValveRole.CONTROL, 2)
        g.actuate([Point(2, 0)], ValveRole.CONTROL, 1)
        return g

    def test_peak_uses_heaviest_glyph(self):
        text = render_heatmap(self.grid())
        assert "@" in text

    def test_untouched_are_spaces(self):
        lines = render_heatmap(self.grid()).splitlines()
        assert set(lines[0]) == {" "}  # top row untouched

    def test_summary_fields(self):
        text = actuation_summary(self.grid())
        assert "valves used: 3" in text
        assert "max: 80" in text
        assert "role-changing valves: 1" in text

    def test_summary_empty_grid(self):
        g = VirtualValveGrid(GridSpec(2, 2))
        assert actuation_summary(g) == "no actuated valves"


class TestDeadHardwareRendering:
    """Remap results must show the hardware the engine routed around."""

    def health(self):
        from repro.architecture.channel_edges import ChannelEdge
        from repro.architecture.health import ChipHealth

        return ChipHealth.healthy().kill_cells([Point(1, 0)]).kill_edges(
            [ChannelEdge(2, 0, horizontal=True)]
        )

    def test_heatmap_marks_dead_cells(self):
        g = VirtualValveGrid(GridSpec(4, 4))
        g.actuate([Point(0, 0)], ValveRole.PUMP, 80)
        g.actuate([Point(1, 0)], ValveRole.PUMP, 80)
        text = render_heatmap(g, self.health())
        bottom = text.splitlines()[-1]  # row y=0 prints last
        assert bottom[0] == "@"  # worn but alive
        assert bottom[1] == "X"  # dead overrides wear

    def test_heatmap_without_health_unchanged(self):
        g = VirtualValveGrid(GridSpec(4, 4))
        g.actuate([Point(0, 0)], ValveRole.PUMP, 80)
        assert "X" not in render_heatmap(g)

    def test_render_health_map(self):
        from repro.viz.ascii_chip import render_health

        text = render_health(GridSpec(4, 4), self.health())
        lines = text.splitlines()
        # 4 cell rows interleaved with 3 channel gaps
        assert len(lines) == 7
        bottom = lines[-1]
        assert bottom[2 * 1] == "X"  # dead cell (1, 0)
        assert bottom[2 * 2 + 1] == "x"  # dead edge (2,0)-(3,0)
        assert bottom[0] == "o"  # healthy cell

    def test_layout_marks_dead_cells(self, pcr_result):
        from dataclasses import replace

        from repro.architecture.chip import Chip
        from repro.architecture.health import ChipHealth

        mask = ChipHealth.healthy().kill_cells([Point(8, 8)])
        chip = Chip(
            pcr_result.chip.spec, list(pcr_result.chip.ports.values()), mask
        )
        wounded = replace(pcr_result, chip=chip)
        text = render_layout(wounded, 2)
        assert "X=dead" in text.splitlines()[0]
        assert "X" in text
