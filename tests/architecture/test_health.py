"""Unit tests for the chip health mask (dead valves / channel edges)."""

import pytest

from repro.architecture.channel_edges import ChannelEdge
from repro.architecture.chip import Chip
from repro.architecture.health import ChipHealth
from repro.geometry import GridSpec, Point, Rect


class TestConstruction:
    def test_healthy_mask_is_empty(self):
        h = ChipHealth.healthy()
        assert h.is_healthy
        assert h.dead_count == 0

    def test_kill_cells_returns_new_mask(self):
        h = ChipHealth.healthy()
        h2 = h.kill_cells([Point(1, 1)])
        assert h.is_healthy  # original untouched
        assert h2.is_cell_dead(Point(1, 1))
        assert h2.dead_count == 1

    def test_kill_edges_returns_new_mask(self):
        edge = ChannelEdge(0, 0, horizontal=True)
        h = ChipHealth.healthy().kill_edges([edge])
        assert h.is_edge_dead(edge)
        assert not h.is_cell_dead(Point(0, 0))

    def test_masks_only_grow(self):
        h = ChipHealth.healthy().kill_cells([Point(0, 0)])
        h2 = h.kill_cells([Point(1, 1)])
        assert h2.dead_cells >= h.dead_cells
        assert h2.dead_count == 2

    def test_kill_is_idempotent(self):
        h = ChipHealth.healthy().kill_cells([Point(0, 0)])
        assert h.kill_cells([Point(0, 0)]).dead_count == 1


class TestBlocking:
    def test_dead_cell_blocks_containing_rect(self):
        h = ChipHealth.healthy().kill_cells([Point(2, 2)])
        assert h.blocks_rect(Rect(1, 1, 3, 3))
        assert not h.blocks_rect(Rect(3, 3, 3, 3))

    def test_dead_edge_blocks_rect_containing_both_cells(self):
        edge = ChannelEdge(2, 2, horizontal=True)  # (2,2)-(3,2)
        h = ChipHealth.healthy().kill_edges([edge])
        assert h.blocks_rect(Rect(2, 2, 3, 2))
        # only one endpoint inside: the segment is outside the device
        assert not h.blocks_rect(Rect(0, 0, 3, 3))

    def test_dead_cell_blocks_path(self):
        h = ChipHealth.healthy().kill_cells([Point(1, 0)])
        assert h.blocks_path([Point(0, 0), Point(1, 0), Point(2, 0)])
        assert not h.blocks_path([Point(0, 1), Point(1, 1)])

    def test_dead_edge_blocks_path_hop(self):
        h = ChipHealth.healthy().kill_edges(
            [ChannelEdge(0, 0, horizontal=True)]
        )
        assert h.blocks_path([Point(0, 0), Point(1, 0)])
        # same cells visited, but not over the dead hop
        assert not h.blocks_path([Point(1, 0), Point(1, 1)])

    def test_healthy_mask_blocks_nothing(self):
        h = ChipHealth.healthy()
        assert not h.blocks_rect(Rect(0, 0, 9, 9))
        assert not h.blocks_path([Point(0, 0), Point(0, 1)])


class TestReporting:
    def test_as_dict_round_trip_friendly(self):
        h = ChipHealth.healthy().kill_cells([Point(1, 2)]).kill_edges(
            [ChannelEdge(3, 4, horizontal=False)]
        )
        d = h.as_dict()
        assert d["dead_cells"] == [[1, 2]]
        assert d["dead_edges"] == [[3, 4, "v"]]

    def test_chip_defaults_to_healthy(self):
        chip = Chip(GridSpec(5, 5))
        assert chip.health.is_healthy

    def test_chip_carries_mask(self):
        mask = ChipHealth.healthy().kill_cells([Point(0, 0)])
        chip = Chip(GridSpec(5, 5), health=mask)
        assert chip.health.is_cell_dead(Point(0, 0))
