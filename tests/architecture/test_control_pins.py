"""Tests for control-pin sharing."""

import pytest

from repro.architecture.control_pins import (
    PERISTALTIC_PHASES,
    assign_control_pins,
)


class TestControlPins:
    @pytest.fixture(scope="class")
    def report(self, pcr_result):
        return assign_control_pins(pcr_result)

    def test_every_kept_valve_gets_a_pin(self, pcr_result, report):
        assert report.valve_count == pcr_result.metrics.used_valves
        assert set(report.pin_of.values()) == set(report.signatures)

    def test_sharing_reduces_pins(self, report):
        assert report.pin_count < report.valve_count
        assert report.sharing_factor > 1.0

    def test_same_signature_same_pin(self, report):
        by_pin = {}
        for cell, pin in report.pin_of.items():
            by_pin.setdefault(pin, []).append(cell)
        for pin, cells in by_pin.items():
            assert len(set(report.signatures[pin] for _ in cells)) == 1

    def test_pump_phases_not_merged_within_one_mixer(self, pcr_result, report):
        """Ring valves of one device spread over >= 3 phase groups."""
        device = pcr_result.device_of("o1")
        ring = device.placement.pump_cells()
        pins = {report.pin_of[cell] for cell in ring if cell in report.pin_of}
        assert len(pins) >= PERISTALTIC_PHASES

    def test_group_sizes_sum_to_valves(self, report):
        assert sum(report.pins_by_size()) == report.valve_count

    def test_deterministic(self, pcr_result):
        a = assign_control_pins(pcr_result)
        b = assign_control_pins(pcr_result)
        assert a.pin_of == b.pin_of
