"""Unit tests for the channel-edge valve geometry (Figure 5 physics)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import Point, Rect
from repro.architecture.channel_edges import (
    ChannelEdge,
    edge_between,
    path_edges,
    ring_edges,
)


class TestEdgeBetween:
    def test_canonical_horizontal(self):
        e1 = edge_between(Point(1, 2), Point(2, 2))
        e2 = edge_between(Point(2, 2), Point(1, 2))
        assert e1 == e2 == ChannelEdge(1, 2, horizontal=True)

    def test_canonical_vertical(self):
        e = edge_between(Point(3, 3), Point(3, 4))
        assert e == ChannelEdge(3, 3, horizontal=False)
        assert e.cells == (Point(3, 3), Point(3, 4))

    def test_non_adjacent_rejected(self):
        with pytest.raises(GeometryError):
            edge_between(Point(0, 0), Point(1, 1))
        with pytest.raises(GeometryError):
            edge_between(Point(0, 0), Point(0, 2))


class TestRingEdges:
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=2, max_value=6),
    )
    def test_edge_count_equals_cell_count(self, w, h):
        r = Rect(0, 0, w, h)
        edges = ring_edges(r)
        assert len(edges) == len(r.perimeter_cells())
        assert len(set(edges)) == len(edges)

    def test_figure5_orientations_are_disjoint(self):
        """The paper's Figure 5(d) claim, exactly."""
        horizontal = Rect(0, 1, 4, 2)
        vertical = Rect(1, 0, 2, 4)
        assert horizontal.overlap_area(vertical) == 4  # they share area
        shared = set(ring_edges(horizontal)) & set(ring_edges(vertical))
        assert shared == set()  # "their pump valves are completely different"

    def test_same_orientation_shares_edges(self):
        a = Rect(0, 0, 2, 4)
        b = Rect(0, 1, 2, 4)
        assert set(ring_edges(a)) & set(ring_edges(b))

    def test_degenerate_rect_rejected(self):
        with pytest.raises(GeometryError):
            ring_edges(Rect(0, 0, 1, 5))


class TestPathEdges:
    def test_path_edge_count(self):
        cells = [Point(0, 0), Point(1, 0), Point(1, 1), Point(2, 1)]
        edges = path_edges(cells)
        assert len(edges) == 3
        assert edges[0] == ChannelEdge(0, 0, True)
        assert edges[1] == ChannelEdge(1, 0, False)

    def test_single_cell_path_has_no_edges(self):
        assert path_edges([Point(0, 0)]) == []
