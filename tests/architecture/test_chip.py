"""Unit tests for the chip (grid + ports)."""

import pytest

from repro.errors import ArchitectureError
from repro.geometry import GridSpec, Point
from repro.architecture.chip import Chip
from repro.architecture.port import ChipPort, PortKind


class TestDefaultLayout:
    def test_paper_port_count(self):
        chip = Chip(GridSpec(9, 9))
        # Section 4: two input ports, one output port.
        assert len(chip.input_ports()) == 2
        assert len(chip.output_ports()) == 1

    def test_ports_on_boundary(self):
        chip = Chip(GridSpec(9, 9))
        for port in chip.ports.values():
            p = port.position
            assert p.x in (0, 8) or p.y in (0, 8)


class TestCustomPorts:
    def test_custom_layout(self):
        ports = [
            ChipPort("inA", Point(0, 0), PortKind.INPUT),
            ChipPort("outA", Point(4, 4), PortKind.OUTPUT),
        ]
        chip = Chip(GridSpec(5, 5), ports)
        assert chip.port("inA").is_input
        assert not chip.port("outA").is_input

    def test_duplicate_name_rejected(self):
        ports = [
            ChipPort("p", Point(0, 0), PortKind.INPUT),
            ChipPort("p", Point(0, 4), PortKind.OUTPUT),
        ]
        with pytest.raises(ArchitectureError, match="duplicate"):
            Chip(GridSpec(5, 5), ports)

    def test_interior_port_rejected(self):
        with pytest.raises(ArchitectureError, match="boundary"):
            Chip(
                GridSpec(5, 5),
                [ChipPort("p", Point(2, 2), PortKind.INPUT)],
            )

    def test_off_grid_port_rejected(self):
        with pytest.raises(ArchitectureError, match="off grid"):
            Chip(
                GridSpec(5, 5),
                [ChipPort("p", Point(9, 0), PortKind.INPUT)],
            )

    def test_unknown_port_lookup(self):
        chip = Chip(GridSpec(5, 5))
        with pytest.raises(ArchitectureError, match="unknown port"):
            chip.port("zzz")

    def test_no_ports_allowed_explicitly(self):
        chip = Chip(GridSpec(5, 5), ports=[])
        assert chip.ports == {}
