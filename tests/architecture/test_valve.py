"""Unit tests for valves and role tracking."""

import pytest

from repro.errors import ArchitectureError
from repro.geometry import Point
from repro.architecture.valve import Valve, ValveRole


class TestValve:
    def test_initial_state(self):
        v = Valve(Point(1, 2))
        assert v.total_actuations == 0
        assert not v.is_actuated
        assert v.roles_played == set()

    def test_actuation_counters_by_role(self):
        v = Valve(Point(0, 0))
        v.actuate(ValveRole.PUMP, 40)
        v.actuate(ValveRole.CONTROL, 3)
        v.actuate(ValveRole.WALL)
        assert v.peristaltic_actuations == 40
        assert v.transport_actuations == 4
        assert v.total_actuations == 44
        assert v.count(ValveRole.WALL) == 1

    def test_role_changing_detection(self):
        v = Valve(Point(0, 0))
        v.actuate(ValveRole.PUMP, 40)
        assert v.roles_played == {ValveRole.PUMP}
        v.actuate(ValveRole.CONTROL, 1)
        assert v.roles_played == {ValveRole.PUMP, ValveRole.CONTROL}

    def test_negative_actuation_rejected(self):
        with pytest.raises(ArchitectureError):
            Valve(Point(0, 0)).actuate(ValveRole.PUMP, -1)

    def test_reset(self):
        v = Valve(Point(0, 0))
        v.actuate(ValveRole.PUMP, 40)
        v.reset()
        assert v.total_actuations == 0
        assert not v.is_actuated
