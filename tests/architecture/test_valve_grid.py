"""Unit tests for the virtual valve grid bookkeeping."""

import pytest

from repro.errors import ArchitectureError
from repro.geometry import GridSpec, Point, Rect
from repro.architecture.valve import ValveRole
from repro.architecture.valve_grid import VirtualValveGrid


@pytest.fixture
def grid():
    return VirtualValveGrid(GridSpec(5, 4))


class TestAccess:
    def test_lazy_creation_same_object(self, grid):
        v1 = grid.valve(Point(1, 1))
        v2 = grid.valve(Point(1, 1))
        assert v1 is v2

    def test_off_grid_rejected(self, grid):
        with pytest.raises(ArchitectureError):
            grid.valve(Point(5, 0))

    def test_valves_sorted_deterministically(self, grid):
        grid.valve(Point(3, 2))
        grid.valve(Point(0, 0))
        positions = [v.position for v in grid.valves()]
        assert positions == sorted(positions)


class TestMetrics:
    def test_used_valve_count_ignores_untouched(self, grid):
        grid.valve(Point(0, 0))  # touched but never actuated
        grid.actuate([Point(1, 1), Point(2, 2)], ValveRole.PUMP, 40)
        assert grid.used_valve_count == 2

    def test_max_metrics(self, grid):
        grid.actuate([Point(0, 0)], ValveRole.PUMP, 40)
        grid.actuate([Point(0, 0)], ValveRole.CONTROL, 5)
        grid.actuate([Point(1, 0)], ValveRole.CONTROL, 50)
        assert grid.max_total_actuations == 50
        assert grid.max_peristaltic_actuations == 40

    def test_role_changing_valves(self, grid):
        grid.actuate([Point(0, 0)], ValveRole.PUMP, 40)
        grid.actuate([Point(0, 0)], ValveRole.CONTROL, 1)
        grid.actuate([Point(1, 0)], ValveRole.PUMP, 40)
        changers = grid.role_changing_valves()
        assert [v.position for v in changers] == [Point(0, 0)]

    def test_histogram(self, grid):
        grid.actuate([Point(0, 0), Point(1, 0)], ValveRole.PUMP, 40)
        grid.actuate([Point(2, 0)], ValveRole.CONTROL, 1)
        assert grid.actuation_histogram() == {40: 2, 1: 1}

    def test_reset(self, grid):
        grid.actuate([Point(0, 0)], ValveRole.PUMP, 40)
        grid.reset()
        assert grid.used_valve_count == 0


class TestMatrices:
    def test_matrix_orientation_top_row_first(self):
        grid = VirtualValveGrid(GridSpec(3, 2))
        grid.actuate([Point(0, 1)], ValveRole.PUMP, 7)  # top-left valve
        matrix = grid.total_actuation_matrix()
        assert matrix.shape == (2, 3)
        assert matrix[0, 0] == 7  # printed like Figure 10
        assert matrix[1, 0] == 0

    def test_peristaltic_matrix_excludes_control(self):
        grid = VirtualValveGrid(GridSpec(2, 2))
        grid.actuate([Point(0, 0)], ValveRole.CONTROL, 9)
        assert grid.peristaltic_matrix().sum() == 0
        assert grid.total_actuation_matrix().sum() == 9

    def test_ring_actuation_roundtrip(self):
        grid = VirtualValveGrid(GridSpec(5, 5))
        ring = Rect(1, 1, 3, 3).perimeter_cells()
        grid.actuate(ring, ValveRole.PUMP, 40)
        matrix = grid.peristaltic_matrix()
        assert (matrix == 40).sum() == 8
        assert matrix[2, 2] == 0  # the interior valve did not pump
