"""Unit tests for placements and dynamic devices."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import GridSpec, Point, Rect
from repro.architecture.device import DeviceKind, DynamicDevice, Placement
from repro.architecture.device_types import DEVICE_TYPES, device_type


def make_device(**overrides):
    defaults = dict(
        operation="op",
        placement=Placement(device_type(3, 3), Point(2, 2)),
        start=4,
        end=12,
        mix_start=8,
    )
    defaults.update(overrides)
    return DynamicDevice(**defaults)


class TestPlacement:
    def test_rect_and_pump_cells(self):
        p = Placement(device_type(2, 4), Point(1, 0))
        assert p.rect == Rect(1, 0, 2, 4)
        assert len(p.pump_cells()) == 8
        assert set(p.port_cells()) == set(p.pump_cells())

    def test_wall_cells_clipped_at_chip_edge(self):
        grid = GridSpec(6, 6)
        inner = Placement(device_type(2, 2), Point(2, 2))
        corner = Placement(device_type(2, 2), Point(0, 0))
        assert len(inner.wall_cells(grid)) == 12
        assert len(corner.wall_cells(grid)) == 5  # edges are free walls

    @given(st.sampled_from(DEVICE_TYPES))
    def test_pump_count_equals_volume(self, dtype):
        p = Placement(dtype, Point(0, 0))
        assert len(p.pump_cells()) == dtype.volume


class TestDynamicDevice:
    def test_lifecycle_kinds(self):
        d = make_device()
        assert d.kind_at(3) is None  # not yet formed
        assert d.kind_at(4) is DeviceKind.STORAGE
        assert d.kind_at(7) is DeviceKind.STORAGE
        assert d.kind_at(8) is DeviceKind.MIXER
        assert d.kind_at(11) is DeviceKind.MIXER
        assert d.kind_at(12) is None  # dissolved

    def test_alive_window_is_half_open(self):
        d = make_device()
        assert not d.alive_at(3)
        assert d.alive_at(4)
        assert d.alive_at(11)
        assert not d.alive_at(12)

    def test_temporal_overlap(self):
        a = make_device()
        b = make_device(operation="b", start=12, end=20, mix_start=12)
        c = make_device(operation="c", start=11, end=20, mix_start=11)
        assert not a.overlaps_in_time(b)  # touching intervals are disjoint
        assert a.overlaps_in_time(c)
        assert c.overlaps_in_time(a)

    def test_volume_delegates_to_type(self):
        assert make_device().volume == 8
