"""Unit tests for the device type registry."""

import pytest

from repro.errors import ArchitectureError
from repro.architecture.device_types import (
    DEVICE_TYPES,
    DeviceType,
    device_type,
    min_device_dimension,
    types_for_volume,
)


class TestRegistry:
    def test_registry_indices_are_positions(self):
        for k, dtype in enumerate(DEVICE_TYPES):
            assert dtype.index == k

    def test_volume_formula_matches_paper(self):
        # Figure 6a: the 3x3 mixer has 8-units volume; Section 4: the
        # 2x4 mixer uses 8 pump valves.
        assert device_type(3, 3).volume == 8
        assert device_type(2, 4).volume == 8

    def test_all_four_size_classes_covered(self):
        assert {t.volume for t in DEVICE_TYPES} == {4, 6, 8, 10}

    def test_types_for_volume(self):
        assert {t.name for t in types_for_volume(8)} == {"2x4", "4x2", "3x3"}
        assert {t.name for t in types_for_volume(4)} == {"2x2"}
        assert {t.name for t in types_for_volume(10)} == {
            "2x5", "5x2", "3x4", "4x3"
        }

    def test_unknown_volume(self):
        with pytest.raises(ArchitectureError):
            types_for_volume(7)

    def test_unknown_dims(self):
        with pytest.raises(ArchitectureError):
            device_type(6, 6)

    def test_orientations_both_registered(self):
        t = device_type(2, 5)
        assert t.rotated() is device_type(5, 2)
        assert t.rotated().volume == t.volume

    def test_min_device_dimension_is_2(self):
        # The routing-convenient constant d of Section 3.4.
        assert min_device_dimension() == 2

    def test_degenerate_type_rejected(self):
        with pytest.raises(ArchitectureError):
            DeviceType(99, 1, 5)
