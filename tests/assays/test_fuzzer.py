"""Tests for the seeded random-assay fuzzer."""

import pytest

from repro.errors import AssayError
from repro.assays import fuzz_case, fuzz_graph, fuzz_policy1, get_case
from repro.assays.fuzzer import MAX_OPERATIONS, MIXER_SIZES
from repro.assays.registry import schedule_for


class TestGeneration:
    def test_exact_operation_count(self):
        for ops in (4, 17, 40, MAX_OPERATIONS):
            assert len(fuzz_graph(0, ops)) == ops

    def test_every_seed_yields_a_valid_graph(self):
        for seed in range(20):
            graph = fuzz_graph(seed, 30)
            graph.validate()  # raises on structural violations

    def test_deterministic_in_seed(self):
        a = fuzz_graph(5, 40)
        b = fuzz_graph(5, 40)
        assert [op.name for op in a.operations()] == [
            op.name for op in b.operations()
        ]
        assert [op.volume for op in a.operations()] == [
            op.volume for op in b.operations()
        ]

    def test_different_seeds_differ(self):
        a = fuzz_graph(1, 40)
        b = fuzz_graph(2, 40)
        assert [
            (op.name, op.volume, [p.name for p in a.parents(op.name)])
            for op in a.operations()
        ] != [
            (op.name, op.volume, [p.name for p in b.parents(op.name)])
            for op in b.operations()
        ]

    def test_volumes_are_standard_sizes(self):
        graph = fuzz_graph(3, 60)
        assert all(
            op.volume in MIXER_SIZES for op in graph.mix_operations()
        )

    def test_volumes_never_shrink_downstream(self):
        graph = fuzz_graph(7, 60)
        for op in graph.mix_operations():
            for parent in graph.mix_parents(op.name):
                assert parent.volume <= op.volume

    def test_size_bounds_rejected(self):
        with pytest.raises(AssayError, match="fuzz graph size"):
            fuzz_graph(0, 3)
        with pytest.raises(AssayError, match="fuzz graph size"):
            fuzz_graph(0, MAX_OPERATIONS + 1)


class TestPolicy:
    def test_policy_covers_used_sizes(self):
        graph = fuzz_graph(4, 50)
        policy = fuzz_policy1(graph)
        used = {op.volume for op in graph.mix_operations()}
        assert set(policy.mixers) == used
        assert all(count == 1 for count in policy.mixers.values())


class TestRegistry:
    def test_get_case_parses_fuzz_names(self):
        case = get_case("fuzz:7:30")
        assert case.name == "fuzz:7:30"
        assert case.total_operations == 30
        case.graph()  # count validation inside BenchmarkCase

    def test_get_case_defaults(self):
        assert get_case("fuzz").total_operations == 40
        assert get_case("fuzz:3").total_operations == 40

    def test_bad_fuzz_names_rejected(self):
        with pytest.raises(AssayError):
            get_case("fuzz:a:b")
        with pytest.raises(AssayError):
            get_case("fuzz:1:2:3")

    def test_unknown_case_error_mentions_fuzz(self):
        with pytest.raises(AssayError, match="fuzz"):
            get_case("nonexistent")

    def test_grid_scales_with_size(self):
        small = fuzz_case(0, 10).grid
        large = fuzz_case(0, 100).grid
        assert small.width < large.width

    def test_fuzz_case_schedules(self):
        case = get_case("fuzz:7:30")
        schedule = schedule_for(case, case.policy1())
        assert schedule.makespan > 0

    def test_policies_sequence_grows(self):
        case = get_case("fuzz:2:24")
        p1, p2 = case.policies(2)
        assert sum(p2.mixers.values()) >= sum(p1.mixers.values())
