"""Unit tests for the PCR benchmark case (Figure 9 fidelity)."""

from repro.assays.pcr import FIG9_STARTS, pcr_fig9_schedule, pcr_graph
from repro.baseline.policies import mixer_demand


class TestGraph:
    def test_operation_counts_match_table1(self):
        g = pcr_graph()
        assert len(g) == 15
        assert len(g.mix_operations()) == 7

    def test_mixer_demand_matches_table1(self):
        assert mixer_demand(pcr_graph()) == {4: 1, 8: 4, 10: 2}

    def test_binary_tree_structure(self):
        g = pcr_graph()
        assert [p.name for p in g.parents("o5")] == ["o1", "o2"]
        assert [p.name for p in g.parents("o6")] == ["o3", "o4"]
        assert [p.name for p in g.parents("o7")] == ["o5", "o6"]
        assert len(g.roots()) == 8  # eight input fluids

    def test_validates(self):
        pcr_graph().validate()


class TestFig9Schedule:
    def test_start_times(self):
        s = pcr_fig9_schedule()
        for name, start in FIG9_STARTS.items():
            assert s.start(name) == start

    def test_end_times_match_gantt_ticks(self):
        s = pcr_fig9_schedule()
        assert s.end("o3") == 3
        assert s.end("o6") == 9
        assert s.end("o2") == 12
        assert s.end("o1") == 15
        assert s.end("o5") == 22
        assert s.end("o7") == 29
        assert s.makespan == 29

    def test_transport_delay_is_3tu(self):
        s = pcr_fig9_schedule()
        assert s.transport_delay == 3
        s.validate()

    def test_storage_formation_times_from_the_text(self):
        """Section 4: s6 at t=3, s5 at t=12, s7 at t=9."""
        s = pcr_fig9_schedule()
        assert s.storage_interval("o6")[0] == 3
        assert s.storage_interval("o5")[0] == 12
        assert s.storage_interval("o7")[0] == 9
