"""Unit tests for the benchmark registry."""

import pytest

from repro.errors import AssayError
from repro.assays import CASES, get_case, list_cases, schedule_for
from repro.experiments.paper_data import paper_row


class TestRegistry:
    def test_all_four_cases_present(self):
        assert set(CASES) == {
            "pcr",
            "mixing_tree",
            "interpolating_dilution",
            "exponential_dilution",
        }

    def test_unknown_case(self):
        with pytest.raises(AssayError, match="unknown benchmark"):
            get_case("nope")

    def test_case_counts_match_paper(self):
        for case in list_cases():
            published = paper_row(case.name, 1)
            assert case.total_operations == published.num_ops
            assert case.mix_operations == published.num_mix_ops
            case.graph()  # generator consistency check built in

    def test_schedules_validate_for_every_policy(self):
        for case in list_cases():
            for policy in case.policies(3):
                schedule = schedule_for(case, policy)
                schedule.validate()

    def test_more_mixers_never_slow_the_assay(self):
        """Growing the bank can only keep or reduce the makespan."""
        for case in list_cases():
            spans = [
                schedule_for(case, policy).makespan
                for policy in case.policies(3)
            ]
            assert spans[0] >= spans[1] >= spans[2]

    def test_grids_fit_biggest_device(self):
        for case in list_cases():
            assert case.grid.width >= 5 and case.grid.height >= 5
