"""Unit tests for the three generated benchmark assays."""

import pytest

from repro.assays.exponential_dilution import exponential_dilution_graph
from repro.assays.interpolating_dilution import interpolating_dilution_graph
from repro.assays.mixing_tree import mixing_tree_graph
from repro.assay.operation import OperationKind
from repro.baseline.policies import mixer_demand


class TestMixingTree:
    def test_counts_match_table1(self):
        g = mixing_tree_graph()
        assert len(g) == 37
        assert len(g.mix_operations()) == 18
        assert mixer_demand(g) == {4: 2, 6: 4, 8: 5, 10: 7}

    def test_tree_reduces_to_single_product(self):
        g = mixing_tree_graph()
        sinks = g.sinks()
        assert len(sinks) == 1 and sinks[0].is_mix

    def test_every_mix_has_two_parents(self):
        g = mixing_tree_graph()
        for op in g.mix_operations():
            assert len(g.parents(op.name)) == 2

    def test_parametric_sizes(self):
        g = mixing_tree_graph(n_inputs=5)
        assert len(g.mix_operations()) == 4

    def test_ratio_sprinkling_valid(self):
        g = mixing_tree_graph()
        g.validate()
        special = [
            op for op in g.mix_operations() if op.ratio.parts != (1, 1)
        ]
        assert special  # the non-1:1 support is exercised
        for op in special:
            op.ratio.volumes(op.volume)  # divisible by construction


class TestInterpolatingDilution:
    def test_counts_match_table1(self):
        g = interpolating_dilution_graph()
        assert len(g) == 71
        assert len(g.mix_operations()) == 35
        assert mixer_demand(g) == {4: 5, 6: 9, 8: 9, 10: 12}

    def test_structure_has_three_stages_and_detects(self):
        g = interpolating_dilution_graph()
        detects = [
            op for op in g.operations() if op.kind is OperationKind.DETECT
        ]
        assert len(detects) == 12
        # Stage-2 mixes interpolate two stage-1 products.
        assert [p.name for p in g.parents("d2_0")] == ["d1_0", "d1_1"]

    def test_validates(self):
        interpolating_dilution_graph().validate()


class TestExponentialDilution:
    def test_counts_match_table1(self):
        g = exponential_dilution_graph()
        assert len(g) == 103
        assert len(g.mix_operations()) == 47
        assert mixer_demand(g) == {4: 6, 6: 16, 8: 13, 10: 12}

    def test_chains_are_serial(self):
        g = exponential_dilution_graph()
        # Step j of a chain consumes step j-1's product plus fresh buffer.
        parents = [p.name for p in g.parents("e0_5")]
        assert "e0_4" in parents and "buf0_5" in parents

    def test_detect_count(self):
        g = exponential_dilution_graph()
        detects = [
            op for op in g.operations() if op.kind is OperationKind.DETECT
        ]
        assert len(detects) == 5

    def test_validates(self):
        exponential_dilution_graph().validate()
