"""Unit tests for the transport router (pass-through, rip-up, crossing)."""

import pytest

from repro.errors import RoutingError
from repro.geometry import GridSpec, Point
from repro.architecture.chip import Chip
from repro.architecture.device import DynamicDevice, Placement
from repro.architecture.device_types import device_type
from repro.architecture.port import ChipPort, PortKind
from repro.routing.path import TransportEvent
from repro.routing.router import Router, RoutingContext


def make_context(devices, free_space=None, width=9, height=9):
    chip = Chip(
        GridSpec(width, height),
        [
            ChipPort("west", Point(0, 4), PortKind.INPUT),
            ChipPort("east", Point(width - 1, 4), PortKind.OUTPUT),
        ],
    )
    return RoutingContext(
        chip=chip,
        devices={d.operation: d for d in devices},
        free_space=free_space or (lambda name, t: 0),
    )


def device(op, dtype, corner, start, end, mix_start=None):
    return DynamicDevice(
        operation=op,
        placement=Placement(device_type(*dtype), Point(*corner)),
        start=start,
        end=end,
        mix_start=mix_start if mix_start is not None else start,
    )


class TestBasicRouting:
    def test_port_to_device(self):
        target = device("m", (3, 3), (3, 3), start=0, end=10)
        router = Router(make_context([target]))
        [path] = router.route_all(
            [TransportEvent(0, "west", "m", source_is_port=True)]
        )
        assert path.cells[0] == Point(0, 4)
        assert path.cells[-1] in target.placement.port_cells()

    def test_device_to_device(self):
        a = device("a", (2, 2), (1, 1), start=0, end=5)
        b = device("b", (2, 2), (6, 6), start=5, end=12)
        router = Router(make_context([a, b]))
        [path] = router.route_all([TransportEvent(5, "a", "b")])
        assert path.cells[0] in a.placement.port_cells()
        assert path.cells[-1] in b.placement.port_cells()

    def test_unmapped_operation_raises(self):
        router = Router(make_context([]))
        with pytest.raises(RoutingError, match="no device"):
            router.route_all([TransportEvent(0, "west", "ghost",
                                             source_is_port=True)])


class TestObstacleAvoidance:
    def test_active_mixer_blocks_path(self):
        # A full-height mixing device wall forces failure.
        blocker = device("block", (3, 4), (3, 0), start=0, end=10)
        tall = device("block2", (3, 4), (3, 4), start=0, end=10)
        extra = DynamicDevice(
            operation="block3",
            placement=Placement(device_type(3, 2), Point(3, 7)),
            start=0, end=10, mix_start=0,
        )
        target = device("m", (2, 2), (7, 7), start=0, end=10)
        router = Router(make_context([blocker, tall, extra, target]))
        with pytest.raises(RoutingError, match="no routing path"):
            router.route_all(
                [TransportEvent(1, "west", "m", source_is_port=True)]
            )

    def test_dead_device_is_no_obstacle(self):
        # Same wall but already dissolved at routing time.
        blocker = device("block", (3, 4), (3, 0), start=0, end=1)
        tall = device("block2", (3, 4), (3, 4), start=0, end=1)
        extra = DynamicDevice(
            operation="block3",
            placement=Placement(device_type(3, 2), Point(3, 7)),
            start=0, end=1, mix_start=0,
        )
        target = device("m", (2, 2), (7, 7), start=0, end=10)
        router = Router(make_context([blocker, tall, extra, target]))
        paths = router.route_all(
            [TransportEvent(5, "west", "m", source_is_port=True)]
        )
        assert len(paths) == 1


class TestStoragePassThrough:
    def wall_of_storage(self, free_units):
        """A storage spanning the full chip height between port and target."""
        storages = [
            device("s0", (3, 4), (3, 0), start=0, end=10, mix_start=9),
            device("s1", (3, 3), (3, 4), start=0, end=10, mix_start=9),
            device("s2", (3, 2), (3, 7), start=0, end=10, mix_start=9),
        ]
        target = device("m", (2, 2), (7, 7), start=0, end=10)
        ctx = make_context(
            [*storages, target],
            free_space=lambda name, t: free_units,
        )
        return Router(ctx), target

    def test_pass_through_with_free_space(self):
        router, target = self.wall_of_storage(free_units=10)
        [path] = router.route_all(
            [TransportEvent(1, "west", "m", source_is_port=True)]
        )
        storage_cells = {
            c
            for d in router.context.alive_at(1)
            if d.operation.startswith("s")
            for c in d.rect.cells()
        }
        assert set(path.cells) & storage_cells  # passed through (Fig. 8b)

    def test_full_storage_blocks(self):
        router, _ = self.wall_of_storage(free_units=0)
        with pytest.raises(RoutingError, match="no routing path"):
            router.route_all(
                [TransportEvent(1, "west", "m", source_is_port=True)]
            )

    def test_rip_up_when_free_space_too_small(self):
        # 2 units free: a straight crossing needs 3 cells -> must rip
        # and fail (no other corridor exists).
        router, _ = self.wall_of_storage(free_units=2)
        with pytest.raises(RoutingError, match="no routing path"):
            router.route_all(
                [TransportEvent(1, "west", "m", source_is_port=True)]
            )


class TestParallelTransport:
    def test_concurrent_paths_avoid_crossing(self):
        a = device("a", (2, 2), (0, 0), start=0, end=10)
        b = device("b", (2, 2), (7, 0), start=0, end=10)
        c = device("c", (2, 2), (0, 7), start=0, end=10)
        d = device("d", (2, 2), (7, 7), start=0, end=10)
        router = Router(make_context([a, b, c, d]))
        paths = router.route_all(
            [TransportEvent(1, "a", "d"), TransportEvent(1, "b", "c")]
        )
        # With the crossing penalty both diagonal transports fit with at
        # most one shared cell (a perfect crossing needs >= 1).
        shared = set(paths[0].cells) & set(paths[1].cells)
        assert len(shared) <= 1
