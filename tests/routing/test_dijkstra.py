"""Unit tests for the Dijkstra path finder."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import GridSpec, Point
from repro.routing.dijkstra import dijkstra_path


def uniform(cell):
    return 1.0


class TestBasicPaths:
    def test_straight_line(self):
        grid = GridSpec(5, 5)
        path = dijkstra_path(grid, [Point(0, 0)], [Point(4, 0)], uniform)
        assert path is not None
        assert path[0] == Point(0, 0) and path[-1] == Point(4, 0)
        assert len(path) == 5

    def test_source_equals_target(self):
        grid = GridSpec(3, 3)
        path = dijkstra_path(grid, [Point(1, 1)], [Point(1, 1)], uniform)
        assert path == [Point(1, 1)]

    def test_multiple_sources_pick_nearest(self):
        grid = GridSpec(7, 7)
        path = dijkstra_path(
            grid, [Point(0, 0), Point(5, 0)], [Point(6, 0)], uniform
        )
        assert path is not None
        assert path[0] == Point(5, 0)

    def test_path_cells_are_connected(self):
        grid = GridSpec(8, 8)
        path = dijkstra_path(grid, [Point(0, 0)], [Point(7, 7)], uniform)
        assert path is not None
        for a, b in zip(path, path[1:]):
            assert abs(a.x - b.x) + abs(a.y - b.y) == 1


class TestObstacles:
    def test_detour_around_wall(self):
        grid = GridSpec(5, 5)
        wall = {Point(2, y) for y in range(4)}  # wall with gap at top

        def cost(cell):
            return math.inf if cell in wall else 1.0

        path = dijkstra_path(grid, [Point(0, 0)], [Point(4, 0)], cost)
        assert path is not None
        assert not (set(path) & wall)
        assert any(p.y == 4 for p in path)  # went through the gap

    def test_fully_blocked_returns_none(self):
        grid = GridSpec(5, 5)
        wall = {Point(2, y) for y in range(5)}

        def cost(cell):
            return math.inf if cell in wall else 1.0

        assert dijkstra_path(grid, [Point(0, 0)], [Point(4, 0)], cost) is None

    def test_expensive_cells_avoided_when_possible(self):
        grid = GridSpec(5, 3)
        pricey = {Point(2, 0)}

        def cost(cell):
            return 100.0 if cell in pricey else 1.0

        path = dijkstra_path(grid, [Point(0, 0)], [Point(4, 0)], cost)
        assert path is not None
        assert Point(2, 0) not in path

    def test_off_grid_endpoints_ignored(self):
        grid = GridSpec(3, 3)
        assert (
            dijkstra_path(grid, [Point(-1, 0)], [Point(2, 2)], uniform)
            is None
        )
        assert (
            dijkstra_path(grid, [Point(0, 0)], [Point(9, 9)], uniform)
            is None
        )


class TestDeterminism:
    @given(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=4))
    def test_same_query_same_path(self, tx, ty):
        grid = GridSpec(5, 5)
        a = dijkstra_path(grid, [Point(0, 0)], [Point(tx, ty)], uniform)
        b = dijkstra_path(grid, [Point(0, 0)], [Point(tx, ty)], uniform)
        assert a == b

    @given(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=4))
    def test_path_length_is_manhattan_on_free_grid(self, tx, ty):
        grid = GridSpec(5, 5)
        path = dijkstra_path(grid, [Point(0, 0)], [Point(tx, ty)], uniform)
        assert path is not None
        assert len(path) == tx + ty + 1
