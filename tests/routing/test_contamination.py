"""Tests for cross-contamination analysis and wash planning."""

import pytest

from repro.routing.contamination import (
    contamination_report,
    find_conflicts,
    plan_washes,
)


class TestConflicts:
    @pytest.fixture(scope="class")
    def conflicts(self, pcr_result):
        return find_conflicts(pcr_result)

    def test_conflicts_ordered_in_time(self, conflicts):
        for conflict in conflicts:
            assert conflict.time_earlier <= conflict.time_later
            assert conflict.severity >= 1

    def test_related_fluids_never_conflict(self, pcr_result, conflicts):
        # o1 -> o5 and o2 -> o5 carry fluids that end up mixed anyway:
        # they must not appear as a conflict pair.
        labels = {(c.earlier, c.later) for c in conflicts}
        assert ("o1->o5@15", "o2->o5@12") not in labels
        assert ("o2->o5@12", "o1->o5@15") not in labels

    def test_deterministic(self, pcr_result):
        assert find_conflicts(pcr_result) == find_conflicts(pcr_result)


class TestWashPlan:
    def test_plan_covers_every_conflict(self, pcr_result):
        plan = plan_washes(pcr_result)
        for conflict in find_conflicts(pcr_result):
            washed = plan.flushes[conflict.time_later]
            assert conflict.shared_cells <= washed

    def test_counts_consistent(self, pcr_result):
        plan = plan_washes(pcr_result)
        assert plan.wash_count == len(plan.flushes)
        assert plan.extra_actuations() == plan.washed_cells_total

    def test_no_routes_no_washes(self, pcr_result):
        import dataclasses

        clone = dataclasses.replace(pcr_result)
        clone.routes = []
        plan = plan_washes(clone)
        assert plan.wash_count == 0


class TestReport:
    def test_report_fields(self, pcr_result):
        text = contamination_report(pcr_result)
        assert "cross-lineage conflicts" in text
        assert "wash flushes needed" in text
        assert "'pcr'" in text
