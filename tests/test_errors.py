"""The exception hierarchy: every deliberate error is a ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.GeometryError,
    errors.ModelError,
    errors.SolverError,
    errors.InfeasibleError,
    errors.UnboundedError,
    errors.AssayError,
    errors.SchedulingError,
    errors.ArchitectureError,
    errors.PlacementError,
    errors.SynthesisError,
    errors.RoutingError,
    errors.BindingError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_subclass_of_repro_error(error_type):
    assert issubclass(error_type, errors.ReproError)


def test_solver_error_specializations():
    assert issubclass(errors.InfeasibleError, errors.SolverError)
    assert issubclass(errors.UnboundedError, errors.SolverError)
    assert str(errors.InfeasibleError()) == "model is infeasible"
    assert str(errors.UnboundedError()) == "model is unbounded"


def test_one_catch_for_everything():
    """Library users can catch ReproError for any deliberate failure."""
    from repro import GridSpec
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        GridSpec(0, 0)
