"""Design-audit mutation tests: every tamper class must be *caught*.

The auditor's contract (ISSUE: robustness) is that a corrupted
synthesis result produces a specific, structured violation — never a
silent pass and never a bare exception.  Each test below corrupts one
aspect of a known-good result and asserts the exact violation kind.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.assays import get_case, schedule_for
from repro.certify import audit
from repro.certify.report import AuditReport, Violation
from repro.core.synthesis import ReliabilitySynthesizer, SynthesisConfig
from repro.geometry import Point
from repro.architecture.device_types import DEVICE_TYPES


@pytest.fixture(scope="module")
def clean_result():
    case = get_case("pcr")
    graph = case.graph()
    schedule = schedule_for(case, case.policies(1)[0])
    return ReliabilitySynthesizer(
        SynthesisConfig(grid=case.grid)
    ).synthesize(graph, schedule)


def _first_device_name(result) -> str:
    return sorted(result.devices)[0]


def _assert_caught(report: AuditReport, kind: str) -> None:
    assert not report.ok
    assert kind in report.kinds(), (
        f"expected a {kind!r} violation, got {report.kinds()}"
    )
    for violation in report.violations:
        assert isinstance(violation, Violation)
        assert violation.kind and violation.subject and violation.detail


def test_clean_result_audits_clean(clean_result) -> None:
    report = audit(clean_result)
    assert report.ok, [str(v) for v in report.violations]
    assert set(report.checks) == {
        "devices", "storage", "routes", "actuation", "ledger", "lifetime",
        "health",
    }


def test_shifted_placement_is_caught(clean_result) -> None:
    devices = dict(clean_result.devices)
    name = _first_device_name(clean_result)
    dev = devices[name]
    dx = 1 if dev.rect.right < clean_result.chip.spec.width else -1
    corner = dev.placement.corner
    devices[name] = replace(
        dev,
        placement=replace(
            dev.placement, corner=Point(corner.x + dx, corner.y)
        ),
    )
    report = audit(replace(clean_result, devices=devices))
    _assert_caught(report, "ledger-mismatch")


def test_understated_objective_is_caught(clean_result) -> None:
    metrics = replace(clean_result.metrics, mapping_objective=1)
    report = audit(replace(clean_result, metrics=metrics))
    _assert_caught(report, "objective-mismatch")


def test_dropped_route_cell_is_caught(clean_result) -> None:
    routes = list(clean_result.routes)
    victim = max(range(len(routes)), key=lambda i: len(routes[i].cells))
    cells = routes[victim].cells
    assert len(cells) >= 3, "need an interior cell to drop"
    routes[victim] = replace(
        routes[victim], cells=cells[: len(cells) // 2] + cells[len(cells) // 2 + 1:]
    )
    report = audit(replace(clean_result, routes=routes))
    _assert_caught(report, "route-invalid")


def test_shifted_device_interval_is_caught(clean_result) -> None:
    devices = dict(clean_result.devices)
    name = _first_device_name(clean_result)
    devices[name] = replace(devices[name], end=devices[name].end + 1)
    report = audit(replace(clean_result, devices=devices))
    _assert_caught(report, "interval-mismatch")


def test_tampered_wear_metric_is_caught(clean_result) -> None:
    metrics = replace(
        clean_result.metrics,
        setting1=replace(
            clean_result.metrics.setting1,
            max_total=clean_result.metrics.setting1.max_total + 13,
        ),
    )
    report = audit(replace(clean_result, metrics=metrics))
    _assert_caught(report, "metrics-mismatch")


def test_wrong_device_type_is_caught(clean_result) -> None:
    devices = dict(clean_result.devices)
    name = _first_device_name(clean_result)
    dev = devices[name]
    wrong = next(
        t for t in DEVICE_TYPES if t.volume != dev.volume
    )
    devices[name] = replace(
        dev, placement=replace(dev.placement, device_type=wrong)
    )
    report = audit(replace(clean_result, devices=devices))
    _assert_caught(report, "device-volume-mismatch")


def test_missing_device_is_caught(clean_result) -> None:
    devices = dict(clean_result.devices)
    devices.pop(_first_device_name(clean_result))
    report = audit(replace(clean_result, devices=devices))
    _assert_caught(report, "device-missing")


def test_report_serializes(clean_result) -> None:
    import json

    report = audit(clean_result)
    payload = report.as_dict()
    assert payload["ok"] is True
    assert json.loads(json.dumps(payload)) == payload
