"""Certificates must survive equilibration: duals and Farkas rays come
out of the *scaled* solve but are checked against the *caller's* rows.

The compiled engine equilibrates opt-in (``scale=True``, power-of-two
row/column scales — DESIGN.md §10) and owes its callers duals in the
original row units: scaling row ``i`` by ``R_i`` multiplies its dual by
``1/R_i``, so a forgotten ``R * y'`` unscale produces a certificate
that fails exactly on badly scaled models — the ones scaling exists
for.  The exact-arithmetic checkers in :mod:`repro.certify.lp` are the
independent referee: these tests pin that every verdict of a scaled
solve (OPTIMAL duals and INFEASIBLE Farkas rays, sparse and dense
engine alike) certifies against the unscaled arrays.  No live bug —
the regression test is the deliverable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.certify.lp import certify_lp
from repro.ilp.compiled import CompiledModel
from repro.ilp.solution import SolveStatus

#: Rows spread across ~9 orders of magnitude, so unscaled and scaled
#: duals differ by large powers of two and a missed unscale cannot
#: hide inside the certificate tolerance.
_WILD = [1e-4, 1.0, 3e4]


def _wild_feasible():
    c = np.array([-2.0, 1.0, -1.0])
    a_ub = np.array(
        [
            [1e-4 * 2.0, 1e-4 * 1.0, 0.0],
            [3.0, -1.0, 2.0],
            [0.0, 3e4 * 1.0, 3e4 * 1.5],
        ]
    )
    b_ub = np.array([1e-4 * 5.0, 4.0, 3e4 * 6.0])
    a_eq = np.array([[1.0, 1.0, 1.0]])
    b_eq = np.array([3.0])
    bounds = [(0.0, 4.0)] * 3
    return c, a_ub, b_ub, a_eq, b_eq, bounds


def _wild_infeasible():
    # Two rescaled copies of the same hyperplane with incompatible
    # right-hand sides: 1e-4 (x+y) <= 1e-4 and 3e4 (x+y) >= 2 * 3e4.
    c = np.array([1.0, 1.0])
    a_ub = np.array(
        [
            [1e-4 * 1.0, 1e-4 * 1.0],
            [-3e4 * 1.0, -3e4 * 1.0],
        ]
    )
    b_ub = np.array([1e-4 * 1.0, -3e4 * 2.0])
    a_eq = np.zeros((0, 2))
    b_eq = np.zeros(0)
    bounds = [(0.0, 10.0)] * 2
    return c, a_ub, b_ub, a_eq, b_eq, bounds


@pytest.mark.parametrize("engine", ["sparse", "dense"])
class TestScaledCertificates:
    def test_optimal_duals_certify_in_caller_units(self, engine: str) -> None:
        c, a_ub, b_ub, a_eq, b_eq, bounds = _wild_feasible()
        compiled = CompiledModel(
            c, a_ub, b_ub, a_eq, b_eq, scale=True, engine=engine
        )
        assert compiled.row_scale is not None  # scaling actually engaged
        result = compiled.solve(bounds, want_duals=True)
        assert result.status is SolveStatus.OPTIMAL
        assert result.duals is not None
        cert = certify_lp(result, c, a_ub, b_ub, a_eq, b_eq, bounds)
        assert cert.ok, [str(v) for v in cert.violations]
        assert "weak-duality-gap" in cert.checks

    def test_farkas_ray_certifies_in_caller_units(self, engine: str) -> None:
        c, a_ub, b_ub, a_eq, b_eq, bounds = _wild_infeasible()
        compiled = CompiledModel(
            c, a_ub, b_ub, a_eq, b_eq, scale=True, engine=engine
        )
        assert compiled.row_scale is not None
        result = compiled.solve(bounds, want_duals=True)
        assert result.status is SolveStatus.INFEASIBLE
        assert result.farkas is not None
        cert = certify_lp(result, c, a_ub, b_ub, a_eq, b_eq, bounds)
        assert cert.ok, [str(v) for v in cert.violations]
        assert cert.status == "certified"

    def test_scaled_and_unscaled_agree(self, engine: str) -> None:
        # The two solves walk different numerics but must land on the
        # same optimum; certifying both closes the loop.
        c, a_ub, b_ub, a_eq, b_eq, bounds = _wild_feasible()
        plain = CompiledModel(c, a_ub, b_ub, a_eq, b_eq, engine=engine)
        scaled = CompiledModel(
            c, a_ub, b_ub, a_eq, b_eq, scale=True, engine=engine
        )
        res_p = plain.solve(bounds, want_duals=True)
        res_s = scaled.solve(bounds, want_duals=True)
        assert res_p.status is res_s.status is SolveStatus.OPTIMAL
        assert res_s.objective == pytest.approx(res_p.objective, abs=1e-7)
        for res in (res_p, res_s):
            cert = certify_lp(res, c, a_ub, b_ub, a_eq, b_eq, bounds)
            assert cert.ok, [str(v) for v in cert.violations]
