"""Chaos tests for the certification layer.

The ``certify.audit`` fault-injection site hands the auditor a tampered
copy of the result; these tests prove the tampering is caught as
structured violations (audit mode) and escalated as
:class:`CertificationError` (strict mode) — and that the injector being
disarmed restores clean audits.
"""

from __future__ import annotations

import pytest

from repro.assays import get_case, schedule_for
from repro.certify import audit
from repro.core.synthesis import ReliabilitySynthesizer, SynthesisConfig
from repro.errors import CertificationError, SynthesisError
from repro.resilience.faults import FAULTS


@pytest.fixture(scope="module")
def pcr_inputs():
    case = get_case("pcr")
    graph = case.graph()
    schedule = schedule_for(case, case.policies(1)[0])
    return case, graph, schedule


@pytest.fixture(scope="module")
def clean_result(pcr_inputs):
    case, graph, schedule = pcr_inputs
    return ReliabilitySynthesizer(
        SynthesisConfig(grid=case.grid)
    ).synthesize(graph, schedule)


def test_injected_tamper_is_caught(clean_result) -> None:
    with FAULTS.inject({"certify.audit": 1}) as injector:
        report = audit(clean_result)
        assert injector.fired("certify.audit") == 1
    assert not report.ok
    assert "ledger-mismatch" in report.kinds()
    assert "objective-mismatch" in report.kinds()
    # Every finding is a structured violation, never a bare exception.
    for violation in report.violations:
        assert violation.kind
        assert violation.subject
        assert violation.detail


def test_disarmed_injector_audits_clean(clean_result) -> None:
    report = audit(clean_result)
    assert report.ok, [str(v) for v in report.violations]


def test_strict_synthesis_raises_on_tamper(pcr_inputs) -> None:
    case, graph, schedule = pcr_inputs
    synthesizer = ReliabilitySynthesizer(
        SynthesisConfig(grid=case.grid, certify="strict")
    )
    with FAULTS.inject({"certify.audit": 1}):
        with pytest.raises(CertificationError, match="design audit"):
            synthesizer.synthesize(graph, schedule)


def test_audit_mode_attaches_report_without_raising(pcr_inputs) -> None:
    case, graph, schedule = pcr_inputs
    synthesizer = ReliabilitySynthesizer(
        SynthesisConfig(grid=case.grid, certify="audit")
    )
    with FAULTS.inject({"certify.audit": 1}):
        result = synthesizer.synthesize(graph, schedule)
    assert result.audit is not None
    assert not result.audit.ok


def test_strict_synthesis_passes_clean(pcr_inputs) -> None:
    case, graph, schedule = pcr_inputs
    result = ReliabilitySynthesizer(
        SynthesisConfig(grid=case.grid, certify="strict")
    ).synthesize(graph, schedule)
    assert result.audit is not None
    assert result.audit.ok


def test_unknown_certify_level_rejected(pcr_inputs) -> None:
    case, graph, schedule = pcr_inputs
    synthesizer = ReliabilitySynthesizer(
        SynthesisConfig(grid=case.grid, certify="paranoid")
    )
    with pytest.raises(SynthesisError, match="certify level"):
        synthesizer.synthesize(graph, schedule)
