"""Exact-arithmetic LP certificates across every LP engine.

Each engine (dense cold-start simplex, compiled cold, compiled
warm-start, scipy/HiGHS linprog) solves the same seeded random LPs; the
:mod:`repro.certify` layer must be able to certify every OPTIMAL answer
through the duality-gap proof, and every INFEASIBLE answer that carries
a Farkas ray.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.certify.lp import certify_lp
from repro.ilp.compiled import CompiledModel
from repro.ilp.simplex import LpResult, solve_lp
from repro.ilp.solution import SolveStatus


def _random_lp(rng: np.random.Generator, n: int = 6, m: int = 4):
    """A bounded random LP that is feasible by construction (x=0)."""
    c = rng.uniform(-5.0, 5.0, size=n)
    a_ub = rng.uniform(-2.0, 2.0, size=(m, n))
    b_ub = rng.uniform(0.5, 4.0, size=m)  # x = 0 satisfies every row
    a_eq = np.zeros((0, n))
    b_eq = np.zeros(0)
    bounds = [(-1.0, 3.0)] * n
    return c, a_ub, b_ub, a_eq, b_eq, bounds


def _scipy_solve(c, a_ub, b_ub, a_eq, b_eq, bounds) -> LpResult:
    from scipy.optimize import linprog

    res = linprog(
        c,
        A_ub=a_ub if a_ub.size else None,
        b_ub=b_ub if a_ub.size else None,
        A_eq=a_eq if a_eq.size else None,
        b_eq=b_eq if a_eq.size else None,
        bounds=bounds,
        method="highs",
    )
    if res.status == 2:
        return LpResult(SolveStatus.INFEASIBLE)
    assert res.status == 0, res.message
    duals = []
    ineq = getattr(res, "ineqlin", None)
    if ineq is not None and a_ub.size:
        duals.extend(np.asarray(ineq.marginals).tolist())
    eq = getattr(res, "eqlin", None)
    if eq is not None and a_eq.size:
        duals.extend(np.asarray(eq.marginals).tolist())
    return LpResult(
        SolveStatus.OPTIMAL,
        x=np.asarray(res.x),
        objective=float(res.fun),
        duals=np.asarray(duals),
    )


def _engines():
    def dense(c, a_ub, b_ub, a_eq, b_eq, bounds):
        return solve_lp(c, a_ub, b_ub, a_eq, b_eq, bounds, want_duals=True)

    def compiled_cold(c, a_ub, b_ub, a_eq, b_eq, bounds):
        return CompiledModel(c, a_ub, b_ub, a_eq, b_eq).solve(
            bounds, want_duals=True
        )

    def compiled_scaled(c, a_ub, b_ub, a_eq, b_eq, bounds):
        return CompiledModel(c, a_ub, b_ub, a_eq, b_eq, scale=True).solve(
            bounds, want_duals=True
        )

    def compiled_warm(c, a_ub, b_ub, a_eq, b_eq, bounds):
        compiled = CompiledModel(c, a_ub, b_ub, a_eq, b_eq)
        parent = compiled.solve(bounds, want_duals=False)
        # Re-solve under a tightened box from the parent basis: the
        # dual-simplex warm path produces the certified answer.
        tighter = [(lo, hi - 0.25) for lo, hi in bounds]
        return compiled.solve(tighter, basis=parent.basis, want_duals=True)

    return {
        "dense": dense,
        "compiled-cold": compiled_cold,
        "compiled-scaled": compiled_scaled,
        "compiled-warm": compiled_warm,
        "scipy-linprog": _scipy_solve,
    }


@pytest.mark.parametrize("engine", sorted(_engines()))
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_random_lps_certify(engine: str, seed: int) -> None:
    rng = np.random.default_rng(seed)
    c, a_ub, b_ub, a_eq, b_eq, bounds = _random_lp(rng)
    solve = _engines()[engine]
    if engine == "compiled-warm":
        result = solve(c, a_ub, b_ub, a_eq, b_eq, bounds)
        # warm solves certify against the bounds they actually solved
        bounds = [(lo, hi - 0.25) for lo, hi in bounds]
    else:
        result = solve(c, a_ub, b_ub, a_eq, b_eq, bounds)
    assert result.status is SolveStatus.OPTIMAL
    cert = certify_lp(result, c, a_ub, b_ub, a_eq, b_eq, bounds)
    assert cert.ok, [str(v) for v in cert.violations]
    assert cert.status == "certified"
    assert "weak-duality-gap" in cert.checks


@pytest.mark.parametrize("engine", sorted(_engines()))
def test_engines_agree_and_certify(engine: str) -> None:
    """All engines find the same optimum on one fixed LP."""
    c = np.array([-1.0, -2.0, 0.5])
    a_ub = np.array([[1.0, 1.0, 0.0], [0.0, 1.0, 1.0]])
    b_ub = np.array([4.0, 3.0])
    a_eq = np.zeros((0, 3))
    b_eq = np.zeros(0)
    bounds = [(0.0, 3.0)] * 3
    result = _engines()[engine](c, a_ub, b_ub, a_eq, b_eq, bounds)
    if engine == "compiled-warm":  # the warm path solved a tighter box
        bounds = [(lo, hi - 0.25) for lo, hi in bounds]
    assert result.status is SolveStatus.OPTIMAL
    cert = certify_lp(result, c, a_ub, b_ub, a_eq, b_eq, bounds)
    assert cert.ok, [str(v) for v in cert.violations]
    if engine != "compiled-warm":  # warm solves a tightened box
        assert result.objective == pytest.approx(-7.0)


def test_beale_degenerate_certifies() -> None:
    """Beale's cycling example: degenerate pivots, exact optimum -0.05."""
    c = np.array([-0.75, 150.0, -0.02, 6.0])
    a_ub = np.array(
        [
            [0.25, -60.0, -1.0 / 25.0, 9.0],
            [0.5, -90.0, -1.0 / 50.0, 3.0],
            [0.0, 0.0, 1.0, 0.0],
        ]
    )
    b_ub = np.array([0.0, 0.0, 1.0])
    a_eq = np.zeros((0, 4))
    b_eq = np.zeros(0)
    bounds = [(0.0, np.inf)] * 4
    for engine in ("dense", "compiled-cold", "compiled-scaled"):
        result = _engines()[engine](c, a_ub, b_ub, a_eq, b_eq, bounds)
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(-0.05)
        cert = certify_lp(result, c, a_ub, b_ub, a_eq, b_eq, bounds)
        assert cert.ok, (engine, [str(v) for v in cert.violations])


@pytest.mark.parametrize(
    "engine", ["dense", "compiled-cold", "compiled-scaled"]
)
def test_farkas_infeasible_certifies(engine: str) -> None:
    """x + y <= 1 and x + y >= 3 cannot both hold on [0, 10]^2."""
    c = np.array([1.0, 1.0])
    a_ub = np.array([[1.0, 1.0], [-1.0, -1.0]])
    b_ub = np.array([1.0, -3.0])
    a_eq = np.zeros((0, 2))
    b_eq = np.zeros(0)
    bounds = [(0.0, 10.0)] * 2
    result = _engines()[engine](c, a_ub, b_ub, a_eq, b_eq, bounds)
    assert result.status is SolveStatus.INFEASIBLE
    cert = certify_lp(result, c, a_ub, b_ub, a_eq, b_eq, bounds)
    assert cert.status == "certified", [str(v) for v in cert.violations]
    assert "farkas-margin" in cert.checks
    assert cert.details["farkas_margin"] > 0


def test_warm_start_infeasible_farkas_certifies() -> None:
    """The dual-simplex warm path emits a usable ray too."""
    c = np.array([1.0, 1.0])
    a_ub = np.array([[1.0, 1.0]])
    b_ub = np.array([1.0])
    a_eq = np.zeros((0, 2))
    b_eq = np.zeros(0)
    compiled = CompiledModel(c, a_ub, b_ub, a_eq, b_eq)
    parent = compiled.solve([(0.0, 1.0)] * 2)
    assert parent.status is SolveStatus.OPTIMAL
    # Tightened child box forces x + y >= 4 > 1: dual-infeasible.
    child_bounds = [(2.0, 3.0)] * 2
    result = compiled.solve(child_bounds, basis=parent.basis, want_duals=True)
    assert result.status is SolveStatus.INFEASIBLE
    cert = certify_lp(result, c, a_ub, b_ub, a_eq, b_eq, child_bounds)
    assert cert.status == "certified", [str(v) for v in cert.violations]


def test_wrong_objective_is_rejected() -> None:
    """A tampered optimum fails the certificate, not an exception."""
    c = np.array([1.0, 2.0])
    a_ub = np.array([[1.0, 1.0]])
    b_ub = np.array([2.0])
    a_eq = np.zeros((0, 2))
    b_eq = np.zeros(0)
    bounds = [(0.0, 5.0)] * 2
    result = solve_lp(c, a_ub, b_ub, a_eq, b_eq, bounds, want_duals=True)
    assert result.status is SolveStatus.OPTIMAL
    result.objective = result.objective - 1.0
    cert = certify_lp(result, c, a_ub, b_ub, a_eq, b_eq, bounds)
    assert not cert.ok
    assert any(v.kind == "lp-objective-mismatch" for v in cert.violations)


def test_tampered_solution_vector_is_rejected() -> None:
    c = np.array([-1.0, -1.0])
    a_ub = np.array([[1.0, 1.0]])
    b_ub = np.array([1.0])
    a_eq = np.zeros((0, 2))
    b_eq = np.zeros(0)
    bounds = [(0.0, 1.0)] * 2
    result = solve_lp(c, a_ub, b_ub, a_eq, b_eq, bounds, want_duals=True)
    result.x = result.x + 0.5  # pushes the packed row over its rhs
    cert = certify_lp(result, c, a_ub, b_ub, a_eq, b_eq, bounds)
    assert not cert.ok
    assert any(v.kind == "lp-primal-infeasible" for v in cert.violations)
