"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_args(self):
        args = build_parser().parse_args(["table1", "pcr"])
        assert args.cases == ["pcr"]

    def test_synth_defaults(self):
        # grid defaults to None so benchmark cases can bring their own
        # grid; assay files fall back to 10 at load time.
        args = build_parser().parse_args(["synth", "assay.txt"])
        assert args.grid is None and args.schedule is None
        assert args.supervised is False and args.checkpoint is None

    def test_synth_crash_safety_flags(self):
        args = build_parser().parse_args(
            ["synth", "pcr", "--supervised", "--checkpoint", "ckpt"]
        )
        assert args.supervised is True and args.checkpoint == "ckpt"

    def test_lifetime_args(self):
        args = build_parser().parse_args([
            "lifetime", "pcr", "--wear-budget", "500", "--mode", "adaptive",
            "--faults", "chip.valve_dead:2@3", "--faults", "chip.edge_dead",
        ])
        assert args.case == "pcr"
        assert args.wear_budget == 500
        assert args.mode == "adaptive"
        assert args.faults == ["chip.valve_dead:2@3", "chip.edge_dead"]


class TestCommands:
    def test_cases_listing(self, capsys):
        assert main(["cases"]) == 0
        out = capsys.readouterr().out
        assert "pcr" in out and "exponential_dilution" in out
        assert "15 ops" in out

    def test_figures_single(self, capsys):
        assert main(["figures", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "dedicated mixer" in out

    def test_synth_from_file(self, tmp_path, capsys):
        assay = tmp_path / "assay.txt"
        assay.write_text(
            "# assay mini\n"
            "input a volume=4\n"
            "input b volume=4\n"
            "mix m a b duration=4 volume=8 ratio=1:1\n"
        )
        assert main(["synth", str(assay), "--grid", "8"]) == 0
        out = capsys.readouterr().out
        assert "vs 1max" in out
        assert "m ->" in out.replace("  ", " ")

    def test_synth_with_schedule_file(self, tmp_path, capsys):
        assay = tmp_path / "assay.txt"
        assay.write_text(
            "# assay mini\n"
            "input a volume=4\n"
            "input b volume=4\n"
            "mix m a b duration=4 volume=8 ratio=1:1\n"
        )
        schedule = tmp_path / "sched.txt"
        schedule.write_text("# schedule transport_delay=3\na @ 0\nb @ 0\nm @ 5\n")
        assert main(
            ["synth", str(assay), "--schedule", str(schedule), "--grid", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "vs 1max" in out

    def test_speedup_command(self, capsys):
        assert main(["speedup", "pcr"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "pcr" in out

    def test_lifetime_command(self, tmp_path, capsys):
        """The whole adaptive-lifetime loop through the CLI, with chaos."""
        out_file = tmp_path / "life.json"
        assert main([
            "lifetime", "fuzz:1:12", "--mapper", "greedy",
            "--wear-budget", "100000", "--max-runs", "4",
            "--mode", "adaptive", "--faults", "chip.valve_dead:1@1",
            "--events", "--json", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "adaptive" in out
        assert "chaos faults fired" in out
        assert "valve-dead" in out
        import json

        data = json.loads(out_file.read_text())
        assert data["adaptive"]["runs"] == 4
        assert data["faults_fired"] == {"chip.valve_dead": 1}
        assert len(data["adaptive"]["final_health"]["dead_cells"]) == 1

    def test_synth_simulate_and_export(self, tmp_path, capsys):
        assay = tmp_path / "assay.txt"
        assay.write_text(
            "# assay mini\n"
            "input a volume=4\n"
            "input b volume=4\n"
            "mix m a b duration=4 volume=8 ratio=1:1\n"
        )
        out_file = tmp_path / "design.json"
        assert main([
            "synth", str(assay), "--grid", "8",
            "--simulate", "--export", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "simulation: OK" in out
        assert out_file.exists()
        import json

        data = json.loads(out_file.read_text())
        assert data["assay"] == "mini"


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 7415
        assert args.grid == 10 and args.workers == 2
        assert args.queue_capacity == 16 and args.time_budget == 5.0
        assert args.cache_dir is None and args.supervised is False

    def test_overrides(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--grid", "8", "--workers", "4",
            "--queue-capacity", "32", "--cache-dir", "cache",
        ])
        assert args.port == 0 and args.grid == 8
        assert args.workers == 4 and args.queue_capacity == 32
        assert args.cache_dir == "cache"


class TestExitCodes:
    """0 = success, 1 = operation failed, 2 = invalid user input —
    always a clean ``error:`` line on stderr, never a traceback."""

    def test_malformed_assay_file_exits_2(self, tmp_path, capsys):
        assay = tmp_path / "bad.txt"
        assay.write_text("input a\nfrobnicate x\n")
        assert main(["synth", str(assay), "--grid", "8"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "line 2" in err
        assert "frobnicate" in err
        assert "Traceback" not in err

    def test_malformed_schedule_file_exits_2(self, tmp_path, capsys):
        assay = tmp_path / "assay.txt"
        assay.write_text(
            "# assay mini\n"
            "input a volume=4\n"
            "input b volume=4\n"
            "mix m a b duration=4 volume=8 ratio=1:1\n"
        )
        schedule = tmp_path / "sched.txt"
        schedule.write_text("m at never\n")
        assert main(
            ["synth", str(assay), "--schedule", str(schedule), "--grid", "8"]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "line 1" in err

    def test_unknown_case_exits_2(self, capsys):
        assert main(["synth", "no-such-case-xyz"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "neither an assay file nor a benchmark case" in err

    def test_unknown_profile_case_exits_1(self, capsys):
        # profile takes registry cases only; an unknown one is an
        # operation failure surfaced as a ReproError.
        code = main(["profile", "no-such-case-xyz"])
        err = capsys.readouterr().err
        assert code in (1, 2)
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_bad_arguments_exit_2(self):
        # argparse's own convention, kept consistent.
        with pytest.raises(SystemExit) as info:
            main(["synth"])
        assert info.value.code == 2
