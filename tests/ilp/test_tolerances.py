"""The centralized tolerance module and its backward-compat aliases."""

from __future__ import annotations

from fractions import Fraction

from repro.ilp import tolerances


def test_all_tolerances_positive() -> None:
    for name in (
        "OPTIMALITY_EPS",
        "FEASIBILITY_EPS",
        "PIVOT_EPS",
        "PHASE1_EPS",
        "DUAL_FLIP_EPS",
        "INTEGRALITY_EPS",
        "GAP_EPS",
        "CHECK_EPS",
        "RESIDUAL_EPS",
        "MILP_GAP_RTOL",
    ):
        assert getattr(tolerances, name) > 0, name


def test_cert_eps_is_exact_rational() -> None:
    assert isinstance(tolerances.CERT_EPS, Fraction)
    assert 0 < tolerances.CERT_EPS < 1


def test_simplex_aliases_track_the_module() -> None:
    """The historical underscore names must stay importable and equal."""
    from repro.ilp import compiled, simplex

    assert simplex._EPS == tolerances.OPTIMALITY_EPS
    assert compiled._EPS == tolerances.OPTIMALITY_EPS
    assert compiled._FEAS_EPS == tolerances.FEASIBILITY_EPS
    assert compiled._PIVOT_EPS == tolerances.PIVOT_EPS


def test_branch_bound_integrality_alias() -> None:
    from repro.ilp import branch_bound

    assert branch_bound._INT_TOL == tolerances.INTEGRALITY_EPS


def test_ordering_makes_sense() -> None:
    """Pivot thresholds must be looser than optimality thresholds."""
    assert tolerances.OPTIMALITY_EPS < tolerances.FEASIBILITY_EPS
    assert tolerances.FEASIBILITY_EPS < tolerances.PIVOT_EPS
    assert tolerances.DUAL_FLIP_EPS < tolerances.OPTIMALITY_EPS
