"""Property-based stress tests for the from-scratch simplex.

Random bounded LPs with mixed inequality/equality rows are solved by
both the from-scratch simplex and HiGHS; statuses and optimal values
must agree, and every reported optimum must actually be feasible.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ilp.simplex import solve_lp
from repro.ilp.solution import SolveStatus


@st.composite
def random_lp(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    m_ub = draw(st.integers(min_value=0, max_value=4))
    m_eq = draw(st.integers(min_value=0, max_value=2))
    coef = st.integers(min_value=-4, max_value=4)

    c = np.array([draw(coef) for _ in range(n)], dtype=float)
    a_ub = np.array(
        [[draw(coef) for _ in range(n)] for _ in range(m_ub)], dtype=float
    ).reshape(m_ub, n)
    b_ub = np.array(
        [draw(st.integers(min_value=0, max_value=15)) for _ in range(m_ub)],
        dtype=float,
    )
    # Equality rows built to be satisfiable by a known point inside the
    # bounds, so "infeasible" only arises from genuine conflicts.
    x0 = np.array(
        [draw(st.integers(min_value=0, max_value=3)) for _ in range(n)],
        dtype=float,
    )
    a_eq = np.array(
        [[draw(coef) for _ in range(n)] for _ in range(m_eq)], dtype=float
    ).reshape(m_eq, n)
    b_eq = a_eq @ x0 if m_eq else np.zeros(0)
    bounds = [(0.0, 8.0)] * n
    return c, a_ub, b_ub, a_eq, b_eq, bounds


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_lp())
def test_simplex_agrees_with_highs(problem):
    from scipy.optimize import linprog

    c, a_ub, b_ub, a_eq, b_eq, bounds = problem
    mine = solve_lp(c, a_ub, b_ub, a_eq, b_eq, bounds)
    ref = linprog(
        c,
        A_ub=a_ub if a_ub.size else None,
        b_ub=b_ub if b_ub.size else None,
        A_eq=a_eq if a_eq.size else None,
        b_eq=b_eq if b_eq.size else None,
        bounds=bounds,
        method="highs",
    )
    if ref.status == 0:
        assert mine.status is SolveStatus.OPTIMAL
        assert mine.objective == pytest.approx(ref.fun, abs=1e-6)
        # The reported point must satisfy every constraint.
        x = mine.x
        assert np.all(x >= -1e-7) and np.all(x <= 8 + 1e-7)
        if a_ub.size:
            assert np.all(a_ub @ x <= b_ub + 1e-6)
        if a_eq.size:
            assert np.allclose(a_eq @ x, b_eq, atol=1e-6)
    elif ref.status == 2:
        assert mine.status is SolveStatus.INFEASIBLE
    # (bounded problem: HiGHS never reports unbounded here)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_lp())
def test_simplex_deterministic(problem):
    c, a_ub, b_ub, a_eq, b_eq, bounds = problem
    first = solve_lp(c, a_ub, b_ub, a_eq, b_eq, bounds)
    second = solve_lp(c, a_ub, b_ub, a_eq, b_eq, bounds)
    assert first.status is second.status
    if first.status is SolveStatus.OPTIMAL:
        assert first.objective == second.objective
        assert np.array_equal(first.x, second.x)
