"""Unit tests for linear expressions and constraints."""

import pytest

from repro.errors import ModelError
from repro.ilp import Constraint, LinExpr, Model, Sense, quicksum


@pytest.fixture
def model():
    return Model("expr-tests")


class TestArithmetic:
    def test_var_plus_var(self, model):
        x, y = model.add_binary("x"), model.add_binary("y")
        expr = x + y
        assert expr.coefficient(x) == 1.0
        assert expr.coefficient(y) == 1.0
        assert expr.constant == 0.0

    def test_scaling_and_constants(self, model):
        x = model.add_continuous("x")
        expr = 3 * x - 2 * x + 5
        assert expr.coefficient(x) == 1.0
        assert expr.constant == 5.0

    def test_cancellation_drops_term(self, model):
        x, y = model.add_continuous("x"), model.add_continuous("y")
        expr = (x + y) - x
        assert x not in expr.terms
        assert expr.coefficient(y) == 1.0

    def test_negation_and_rsub(self, model):
        x = model.add_continuous("x")
        expr = 10 - x
        assert expr.constant == 10.0
        assert expr.coefficient(x) == -1.0
        assert (-x).coefficient(x) == -1.0

    def test_nonlinear_rejected(self, model):
        x, y = model.add_continuous("x"), model.add_continuous("y")
        with pytest.raises(ModelError):
            (x + 1) * (y + 1)  # noqa: B018 - error expected

    def test_evaluate(self, model):
        x, y = model.add_continuous("x"), model.add_continuous("y")
        expr = 2 * x + 3 * y + 1
        assert expr.evaluate({x: 2.0, y: 1.0}) == 8.0

    def test_quicksum_equivalent_to_sum(self, model):
        xs = [model.add_continuous(f"x{i}") for i in range(10)]
        a = quicksum(2 * x for x in xs)
        values = {x: float(i) for i, x in enumerate(xs)}
        assert a.evaluate(values) == sum(2 * i for i in range(10))


class TestConstraints:
    def test_le_normalization(self, model):
        x, y = model.add_continuous("x"), model.add_continuous("y")
        con = x + 2 <= y + 5
        assert con.sense is Sense.LE
        assert con.rhs == 3.0
        assert con.expr.coefficient(x) == 1.0
        assert con.expr.coefficient(y) == -1.0

    def test_eq_via_expressions(self, model):
        x = model.add_continuous("x")
        con = x + 0 == 4
        assert con.sense is Sense.EQ
        assert con.satisfied_by({x: 4.0})
        assert not con.satisfied_by({x: 5.0})

    def test_var_eq_helper(self, model):
        x = model.add_continuous("x")
        con = x.eq(2)
        assert con.sense is Sense.EQ and con.rhs == 2.0

    def test_constraint_as_bool_raises(self, model):
        x = model.add_continuous("x")
        with pytest.raises(ModelError):
            bool(x <= 3)

    def test_constant_constraint_rejected(self):
        with pytest.raises(ModelError):
            Constraint(LinExpr({}, 1.0), Sense.LE, 2.0)

    def test_violation(self, model):
        x = model.add_continuous("x")
        con = x <= 3
        assert con.violation({x: 5.0}) == pytest.approx(2.0)
        assert con.violation({x: 2.0}) == 0.0

    def test_vars_usable_as_dict_keys(self, model):
        # Var deliberately keeps identity ==, so dicts behave normally.
        x, y = model.add_binary("x"), model.add_binary("y")
        d = {x: 1, y: 2}
        assert d[x] == 1 and d[y] == 2
