"""Regression: HiGHS "Solve error" (status 4) falls back to branch & bound.

scipy 1.17's HiGHS returns status 4 on this specific tiny MILP (found
by the hypothesis backend-agreement property and minimized by hand);
the model is perfectly well-posed, so the backend must not report
NO_SOLUTION.  The fallback re-solves with the from-scratch branch &
bound and marks the solution with ``scipy_solve_error``.
"""

from repro.ilp import Model, SolveStatus
from repro.obs import TELEMETRY


def _model() -> Model:
    model = Model("highs_status4")
    x0 = model.add_binary("x0")
    x2 = model.add_continuous("x2", ub=5)
    model.add_constr(2 * x0 + 2 * x2 <= 5)
    model.add_constr(-2 * x0 + 3 * x2 <= 5)
    model.maximize(3 * x2)
    return model


def test_scipy_solve_error_falls_back_to_branch_bound():
    solution = _model().solve(backend="scipy")
    assert solution.status is SolveStatus.OPTIMAL
    assert _model().check_solution(solution.values) == []
    reference = _model().solve(backend="branch_bound", lp_engine="simplex")
    assert abs(solution.objective - reference.objective) < 1e-6
    # When HiGHS solves this model cleanly (a future scipy fix), the
    # fallback simply stops firing — only pin the stats when it did.
    if solution.stats.get("scipy_solve_error"):
        assert solution.backend == "branch_bound"


def test_scipy_solve_error_counts_telemetry():
    TELEMETRY.reset()
    TELEMETRY.enable()
    try:
        solution = _model().solve(backend="scipy")
    finally:
        TELEMETRY.disable()
    counters = TELEMETRY.snapshot()["counters"]
    if solution.stats.get("scipy_solve_error"):
        assert counters.get("scipy.solve_errors", 0) >= 1
