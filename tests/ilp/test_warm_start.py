"""Warm-started branch & bound is equivalent to the cold-start path.

The compiled-model warm-start architecture (parent basis + dual
simplex, see ``repro.ilp.compiled``) is a pure performance feature: on
every instance it must report the same status and, when an optimum
exists, the same objective (within ``absolute_gap``) as the cold-start
path behind ``warm_start=False``.  These tests pin that contract on
seeded random MILPs and on hand-built degenerate/infeasible/unbounded
instances, and exercise the dual-simplex path and the Bland
anti-cycling safeguard directly.
"""

import math
import random

import numpy as np
import pytest

from repro.ilp import CompiledModel, Model, SolveStatus, quicksum


def _random_milp(rng: random.Random) -> Model:
    """A small bounded MILP with x = 0 feasible (statuses predictable)."""
    n = rng.randint(2, 6)
    m = rng.randint(1, 5)
    model = Model("random-warm")
    variables = []
    for i in range(n):
        kind = rng.choice(["binary", "integer", "continuous"])
        if kind == "binary":
            variables.append(model.add_binary(f"x{i}"))
        elif kind == "integer":
            variables.append(model.add_integer(f"x{i}", ub=5))
        else:
            variables.append(model.add_continuous(f"x{i}", ub=5))
    for _ in range(m):
        coefs = [rng.randint(-3, 3) for _ in range(n)]
        if not any(coefs):
            continue
        rhs = rng.randint(0, 12)
        model.add_constr(
            quicksum(c * x for c, x in zip(coefs, variables)) <= rhs
        )
    obj = [rng.randint(-5, 5) for _ in range(n)]
    model.maximize(quicksum(c * x for c, x in zip(obj, variables)))
    return model


def _solve_both(model: Model, **kwargs):
    warm = model.solve(
        backend="branch_bound", lp_engine="simplex", warm_start=True, **kwargs
    )
    cold = model.solve(
        backend="branch_bound", lp_engine="simplex", warm_start=False, **kwargs
    )
    return warm, cold


class TestRandomizedEquivalence:
    def test_seeded_random_milps_agree(self):
        rng = random.Random(20150607)  # DAC'15 vintage
        exercised_dual = 0
        for _ in range(60):
            model = _random_milp(rng)
            warm, cold = _solve_both(model)
            assert warm.status is cold.status
            assert warm.status is SolveStatus.OPTIMAL
            assert warm.objective == pytest.approx(cold.objective, abs=1e-6)
            assert model.check_solution(warm.values) == []
            assert model.check_solution(cold.values) == []
            # The cold path must never report warm activity.
            assert cold.stats["warm_starts"] == 0
            assert cold.stats["dual_pivots"] == 0
            assert cold.stats["basis_reuse_hits"] == 0
            exercised_dual += int(warm.stats["dual_pivots"] > 0)
        # The sample must actually exercise the dual-simplex warm path,
        # not just instances whose root relaxation is already integral.
        assert exercised_dual >= 10

    def test_warm_start_reuses_bases_on_branching_instance(self):
        model = Model("knapsack")
        xs = [model.add_binary(f"x{i}") for i in range(8)]
        weights = [5, 7, 11, 3, 13, 8, 9, 4]
        values = [9, 12, 16, 5, 21, 13, 15, 7]
        model.add_constr(
            quicksum(w * x for w, x in zip(weights, xs)) <= 23
        )
        model.maximize(quicksum(v * x for v, x in zip(values, xs)))
        warm, cold = _solve_both(model)
        assert warm.objective == pytest.approx(cold.objective)
        assert warm.stats["basis_reuse_hits"] > 0
        assert warm.stats["warm_starts"] > 0
        # Warm starting is the point: strictly fewer pivots overall.
        assert warm.stats["simplex_iterations"] < cold.stats["simplex_iterations"]


class TestStatuses:
    def test_infeasible_both_ways(self):
        model = Model("infeasible")
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.add_constr(x + y <= 1)
        model.add_constr(x + y >= 2)
        model.minimize(x)
        warm, cold = _solve_both(model)
        assert warm.status is SolveStatus.INFEASIBLE
        assert cold.status is SolveStatus.INFEASIBLE

    def test_unbounded_both_ways(self):
        model = Model("unbounded")
        x = model.add_continuous("x", lb=0.0, ub=math.inf)
        model.add_constr(x >= 1)
        model.maximize(x)
        warm, cold = _solve_both(model)
        assert warm.status is SolveStatus.UNBOUNDED
        assert cold.status is SolveStatus.UNBOUNDED


class TestCompiledModelDirect:
    """The compiled engine itself: warm re-solve after a bound move."""

    def _knapsack_arrays(self):
        c = np.array([-9.0, -12.0, -16.0, -5.0])  # maximize → minimize -v
        a_ub = np.array([[5.0, 7.0, 11.0, 3.0]])
        b_ub = np.array([13.0])
        a_eq = np.zeros((0, 4))
        b_eq = np.zeros(0)
        return CompiledModel(c, a_ub, b_ub, a_eq, b_eq)

    def test_warm_resolve_matches_cold_after_tightening(self):
        compiled = self._knapsack_arrays()
        bounds = [(0.0, 1.0)] * 4
        root = compiled.solve(bounds)
        assert root.status is SolveStatus.OPTIMAL
        assert root.basis is not None
        # Tighten the most fractional variable to 0, as branching would.
        frac = max(range(4), key=lambda j: abs(root.x[j] - round(root.x[j])))
        child_bounds = list(bounds)
        child_bounds[frac] = (0.0, 0.0)
        warm = compiled.solve(child_bounds, basis=root.basis)
        cold = compiled.solve(child_bounds)
        assert warm.status is cold.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)
        assert warm.warm_started
        assert not warm.cold_fallback
        assert warm.iterations <= cold.iterations

    def test_degenerate_lp_bland_anti_cycling(self):
        # Beale's classic cycling example: the textbook pivot rule loops
        # forever on it; Bland's rule (used by the primal phase) must
        # terminate at the optimum -1/20.
        c = np.array([-0.75, 150.0, -0.02, 6.0])
        a_ub = np.array(
            [
                [0.25, -60.0, -0.04, 9.0],
                [0.5, -90.0, -0.02, 3.0],
                [0.0, 0.0, 1.0, 0.0],
            ]
        )
        b_ub = np.array([0.0, 0.0, 1.0])
        compiled = CompiledModel(c, a_ub, b_ub, np.zeros((0, 4)), np.zeros(0))
        result = compiled.solve(
            [(0.0, math.inf)] * 4, max_iterations=10_000
        )
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(-0.05, abs=1e-9)

    def test_degenerate_dual_resolve(self):
        # A primal-degenerate optimum (several constraints tight with
        # zero slack): the warm re-solve after tightening runs the dual
        # simplex across degenerate breakpoints and must still match
        # the cold answer.
        c = np.array([-1.0, -1.0])
        a_ub = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        b_ub = np.array([1.0, 1.0, 2.0])  # all three tight at (1, 1)
        compiled = CompiledModel(c, a_ub, b_ub, np.zeros((0, 2)), np.zeros(0))
        bounds = [(0.0, 2.0), (0.0, 2.0)]
        root = compiled.solve(bounds)
        assert root.status is SolveStatus.OPTIMAL
        child = [(0.0, 0.5), (0.0, 2.0)]
        warm = compiled.solve(child, basis=root.basis)
        cold = compiled.solve(child)
        assert warm.status is cold.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)
        assert warm.objective == pytest.approx(-1.5, abs=1e-9)
