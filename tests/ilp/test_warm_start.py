"""Warm-started branch & bound is equivalent to the cold-start path.

The compiled-model warm-start architecture (parent basis + dual
simplex, see ``repro.ilp.compiled``) is a pure performance feature: on
every instance it must report the same status and, when an optimum
exists, the same objective (within ``absolute_gap``) as the cold-start
path behind ``warm_start=False``.  These tests pin that contract on
seeded random MILPs and on hand-built degenerate/infeasible/unbounded
instances, and exercise the dual-simplex path and the Bland
anti-cycling safeguard directly.
"""

import math
import random

import numpy as np
import pytest

from repro.ilp import CompiledModel, Model, SolveStatus, quicksum


def _random_milp(rng: random.Random) -> Model:
    """A small bounded MILP with x = 0 feasible (statuses predictable)."""
    n = rng.randint(2, 6)
    m = rng.randint(1, 5)
    model = Model("random-warm")
    variables = []
    for i in range(n):
        kind = rng.choice(["binary", "integer", "continuous"])
        if kind == "binary":
            variables.append(model.add_binary(f"x{i}"))
        elif kind == "integer":
            variables.append(model.add_integer(f"x{i}", ub=5))
        else:
            variables.append(model.add_continuous(f"x{i}", ub=5))
    for _ in range(m):
        coefs = [rng.randint(-3, 3) for _ in range(n)]
        if not any(coefs):
            continue
        rhs = rng.randint(0, 12)
        model.add_constr(
            quicksum(c * x for c, x in zip(coefs, variables)) <= rhs
        )
    obj = [rng.randint(-5, 5) for _ in range(n)]
    model.maximize(quicksum(c * x for c, x in zip(obj, variables)))
    return model


def _solve_both(model: Model, **kwargs):
    # Presolve, root cuts, and the rounding dive are disabled here on
    # purpose: these tests isolate the warm-start machinery, and all
    # three stages would otherwise close many roots (or pre-seed an
    # incumbent) before a single branching (dual-simplex) step.
    # warm_start_min_rows=0 bypasses the small-model wall-time gate —
    # these instances are far below it, and the point here is
    # equivalence, not speed.
    warm = model.solve(
        backend="branch_bound", lp_engine="simplex", warm_start=True,
        warm_start_min_rows=0, presolve=False, cuts=False, dive=False,
        **kwargs
    )
    cold = model.solve(
        backend="branch_bound", lp_engine="simplex", warm_start=False,
        presolve=False, cuts=False, dive=False, **kwargs
    )
    return warm, cold


class TestRandomizedEquivalence:
    def test_seeded_random_milps_agree(self):
        rng = random.Random(20150607)  # DAC'15 vintage
        exercised_dual = 0
        for _ in range(60):
            model = _random_milp(rng)
            warm, cold = _solve_both(model)
            assert warm.status is cold.status
            assert warm.status is SolveStatus.OPTIMAL
            assert warm.objective == pytest.approx(cold.objective, abs=1e-6)
            assert model.check_solution(warm.values) == []
            assert model.check_solution(cold.values) == []
            # The cold path must never report warm activity.
            assert cold.stats["warm_starts"] == 0
            assert cold.stats["dual_pivots"] == 0
            assert cold.stats["basis_reuse_hits"] == 0
            exercised_dual += int(warm.stats["dual_pivots"] > 0)
        # The sample must actually exercise the dual-simplex warm path,
        # not just instances whose root relaxation is already integral.
        # (Dantzig pricing lands on different optimal vertices than pure
        # Bland did, so slightly fewer roots come out fractional.)
        assert exercised_dual >= 8

    def test_warm_start_reuses_bases_on_branching_instance(self):
        model = Model("knapsack")
        xs = [model.add_binary(f"x{i}") for i in range(8)]
        weights = [5, 7, 11, 3, 13, 8, 9, 4]
        values = [9, 12, 16, 5, 21, 13, 15, 7]
        model.add_constr(
            quicksum(w * x for w, x in zip(weights, xs)) <= 23
        )
        model.maximize(quicksum(v * x for v, x in zip(values, xs)))
        warm, cold = _solve_both(model)
        assert warm.objective == pytest.approx(cold.objective)
        assert warm.stats["basis_reuse_hits"] > 0
        assert warm.stats["warm_starts"] > 0
        # Warm starting is the point: strictly fewer pivots overall.
        assert warm.stats["simplex_iterations"] < cold.stats["simplex_iterations"]


class TestWarmStartGates:
    """The size gate and the runtime payoff governor."""

    def test_tiny_models_are_row_gated(self):
        model = Model("tiny")
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.add_constr(x + y <= 1)
        model.maximize(2 * x + 3 * y)
        solution = model.solve(
            backend="branch_bound", lp_engine="simplex", warm_start=True
        )
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.stats["warm_start_gated"] == 1
        assert solution.stats["warm_starts"] == 0
        # ... and the bypass works.
        forced = model.solve(
            backend="branch_bound", lp_engine="simplex", warm_start=True,
            warm_start_min_rows=0,
        )
        assert forced.stats["warm_start_gated"] == 0

    def test_governor_decision_rule(self):
        from repro.ilp.branch_bound import _WarmStartGovernor

        gov = _WarmStartGovernor(probe_after=32, samples=2, factor=2.0)
        assert not gov.probing(31)
        assert gov.probing(32)
        # Alternation: first a cold probe, then a warm sample, ...
        assert gov.force_cold()
        gov.record(False, 1.0)
        assert not gov.force_cold()
        gov.record(True, 10.0)
        assert gov.force_cold()
        gov.record(False, 1.0)
        assert not gov.decided
        gov.record(True, 10.0)
        # Warm mean 10 vs cold mean 1 with factor 2: decisively off.
        assert gov.decided
        assert gov.disable
        assert not gov.probing(100)  # probing ends with the decision

    def test_governor_keeps_decisively_faster_warm(self):
        from repro.ilp.branch_bound import _WarmStartGovernor

        gov = _WarmStartGovernor(samples=2, factor=2.0)
        for warm, wall in (
            (False, 4.0), (True, 1.0), (False, 4.0), (True, 1.0)
        ):
            gov.record(warm, wall)
        assert gov.decided
        assert not gov.disable

    def test_governor_keeps_borderline_warm(self):
        # The asymmetric margin: a marginally slower warm path stays on
        # (disabling a winner costs far more than keeping a near-tie).
        from repro.ilp.branch_bound import _WarmStartGovernor

        gov = _WarmStartGovernor(samples=2, factor=2.0)
        for warm, wall in (
            (False, 1.0), (True, 1.5), (False, 1.0), (True, 1.5)
        ):
            gov.record(warm, wall)
        assert gov.decided
        assert not gov.disable

    def test_governor_probe_preserves_answers(self):
        # A dense random model above the row gate with a tree past the
        # probe threshold: whatever the wall-time decision, statuses
        # and objectives must match the cold path and probes must have
        # actually run.
        rng = random.Random(5)
        model = Model("dense")
        xs = [model.add_binary(f"x{i}") for i in range(30)]
        for _ in range(64):
            coefs = [rng.randint(1, 9) for _ in range(30)]
            model.add_constr(
                quicksum(c * x for c, x in zip(coefs, xs))
                <= rng.randint(90, 150)
            )
        model.maximize(
            quicksum(rng.randint(1, 20) * x for x in xs)
        )
        warm = model.solve(
            backend="branch_bound", lp_engine="simplex", warm_start=True,
            presolve=False, cuts=False, dive=False,
        )
        cold = model.solve(
            backend="branch_bound", lp_engine="simplex", warm_start=False,
            presolve=False, cuts=False, dive=False,
        )
        assert warm.status is cold.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective)
        assert warm.stats["warm_start_gated"] == 0
        assert warm.stats["warm_probe_solves"] > 0
        assert cold.stats["warm_probe_solves"] == 0
        assert model.check_solution(warm.values) == []


class TestStatuses:
    def test_infeasible_both_ways(self):
        model = Model("infeasible")
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.add_constr(x + y <= 1)
        model.add_constr(x + y >= 2)
        model.minimize(x)
        warm, cold = _solve_both(model)
        assert warm.status is SolveStatus.INFEASIBLE
        assert cold.status is SolveStatus.INFEASIBLE

    def test_unbounded_both_ways(self):
        model = Model("unbounded")
        x = model.add_continuous("x", lb=0.0, ub=math.inf)
        model.add_constr(x >= 1)
        model.maximize(x)
        warm, cold = _solve_both(model)
        assert warm.status is SolveStatus.UNBOUNDED
        assert cold.status is SolveStatus.UNBOUNDED


class TestCompiledModelDirect:
    """The compiled engine itself: warm re-solve after a bound move."""

    def _knapsack_arrays(self):
        c = np.array([-9.0, -12.0, -16.0, -5.0])  # maximize → minimize -v
        a_ub = np.array([[5.0, 7.0, 11.0, 3.0]])
        b_ub = np.array([13.0])
        a_eq = np.zeros((0, 4))
        b_eq = np.zeros(0)
        return CompiledModel(c, a_ub, b_ub, a_eq, b_eq)

    def test_warm_resolve_matches_cold_after_tightening(self):
        compiled = self._knapsack_arrays()
        bounds = [(0.0, 1.0)] * 4
        root = compiled.solve(bounds)
        assert root.status is SolveStatus.OPTIMAL
        assert root.basis is not None
        # Tighten the most fractional variable to 0, as branching would.
        frac = max(range(4), key=lambda j: abs(root.x[j] - round(root.x[j])))
        child_bounds = list(bounds)
        child_bounds[frac] = (0.0, 0.0)
        warm = compiled.solve(child_bounds, basis=root.basis)
        cold = compiled.solve(child_bounds)
        assert warm.status is cold.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)
        assert warm.warm_started
        assert not warm.cold_fallback
        assert warm.iterations <= cold.iterations

    def test_degenerate_lp_bland_anti_cycling(self):
        # Beale's classic cycling example: the textbook pivot rule loops
        # forever on it; Bland's rule (used by the primal phase) must
        # terminate at the optimum -1/20.
        c = np.array([-0.75, 150.0, -0.02, 6.0])
        a_ub = np.array(
            [
                [0.25, -60.0, -0.04, 9.0],
                [0.5, -90.0, -0.02, 3.0],
                [0.0, 0.0, 1.0, 0.0],
            ]
        )
        b_ub = np.array([0.0, 0.0, 1.0])
        compiled = CompiledModel(c, a_ub, b_ub, np.zeros((0, 4)), np.zeros(0))
        result = compiled.solve(
            [(0.0, math.inf)] * 4, max_iterations=10_000
        )
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(-0.05, abs=1e-9)

    def test_singular_basis_falls_back_cold(self):
        # A stale basis snapshot can be structurally singular by the
        # time a node reuses it (e.g. after cut rows changed the model
        # shape, or a corrupted cache).  The warm path must detect the
        # singular factorization and recover through the cold start —
        # same OPTIMAL answer, with the wasted reuse attempt recorded —
        # never crash or pivot on garbage factors.
        c = np.array([-9.0, -12.0, -16.0, -5.0])
        a_ub = np.array([[5.0, 7.0, 11.0, 3.0], [1.0, 1.0, 1.0, 1.0]])
        b_ub = np.array([13.0, 2.0])
        compiled = CompiledModel(c, a_ub, b_ub, np.zeros((0, 4)), np.zeros(0))
        bounds = [(0.0, 1.0)] * 4
        reference = compiled.solve(bounds)
        assert reference.status is SolveStatus.OPTIMAL
        m = compiled.m
        assert m > 1
        # Repeat the same slack column in every basis slot: rank 1,
        # certainly singular for m > 1.
        from repro.ilp.compiled import AT_LOWER, BASIC, Basis

        singular_basic = np.full(m, compiled.n, dtype=np.int64)
        status = np.full(compiled.total_ext, AT_LOWER, dtype=np.int8)
        status[compiled.n] = BASIC
        bad = Basis(singular_basic, status)
        res = compiled.solve(bounds, basis=bad)
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(reference.objective, abs=1e-9)
        assert res.cold_fallback
        assert not res.warm_started

    def test_singular_basis_recovery_inside_branch_bound(self):
        # End to end: corrupt every stored basis the search hands back
        # to the engine and the MILP answer must still match the clean
        # run, with the fallbacks showing up in the stats.
        model = Model("knapsack")
        xs = [model.add_binary(f"x{i}") for i in range(8)]
        weights = [5, 7, 11, 3, 13, 8, 9, 4]
        values = [9, 12, 16, 5, 21, 13, 15, 7]
        model.add_constr(quicksum(w * x for w, x in zip(weights, xs)) <= 23)
        # A second row so the basis has rank to lose (m >= 2 below).
        model.add_constr(quicksum(xs) <= 5)
        model.maximize(quicksum(v * x for v, x in zip(values, xs)))
        clean = model.solve(
            backend="branch_bound", lp_engine="simplex", warm_start=True,
            warm_start_min_rows=0, presolve=False, cuts=False, dive=False,
        )

        from repro.ilp import compiled as compiled_mod

        original = compiled_mod.CompiledModel.solve

        def corrupting_solve(self, bounds, basis=None, **kwargs):
            if basis is not None:
                basis = basis.copy()
                basis.basic[:] = basis.basic[0]  # rank-1: singular
            return original(self, bounds, basis=basis, **kwargs)

        compiled_mod.CompiledModel.solve = corrupting_solve
        try:
            corrupted = model.solve(
                backend="branch_bound", lp_engine="simplex", warm_start=True,
                warm_start_min_rows=0, presolve=False, cuts=False, dive=False,
            )
        finally:
            compiled_mod.CompiledModel.solve = original
        assert corrupted.status is SolveStatus.OPTIMAL
        assert corrupted.objective == pytest.approx(clean.objective)
        assert corrupted.stats["warm_fallbacks"] > 0
        assert model.check_solution(corrupted.values) == []

    def test_degenerate_dual_resolve(self):
        # A primal-degenerate optimum (several constraints tight with
        # zero slack): the warm re-solve after tightening runs the dual
        # simplex across degenerate breakpoints and must still match
        # the cold answer.
        c = np.array([-1.0, -1.0])
        a_ub = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        b_ub = np.array([1.0, 1.0, 2.0])  # all three tight at (1, 1)
        compiled = CompiledModel(c, a_ub, b_ub, np.zeros((0, 2)), np.zeros(0))
        bounds = [(0.0, 2.0), (0.0, 2.0)]
        root = compiled.solve(bounds)
        assert root.status is SolveStatus.OPTIMAL
        child = [(0.0, 0.5), (0.0, 2.0)]
        warm = compiled.solve(child, basis=root.basis)
        cold = compiled.solve(child)
        assert warm.status is cold.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)
        assert warm.objective == pytest.approx(-1.5, abs=1e-9)
