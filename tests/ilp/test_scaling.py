"""Geometric-mean equilibration of the compiled simplex engine.

Scaling is opt-in (``CompiledModel(..., scale=True)``); these tests pin
that it changes *conditioning only*: statuses, objectives and solutions
must agree with the unscaled engine, including on badly scaled data
where raw pivots are most fragile.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ilp.compiled import CompiledModel
from repro.ilp.model import Model
from repro.ilp.solution import SolveStatus


def _both(c, a_ub, b_ub, a_eq, b_eq, bounds, want_duals=False):
    plain = CompiledModel(c, a_ub, b_ub, a_eq, b_eq).solve(
        bounds, want_duals=want_duals
    )
    scaled = CompiledModel(c, a_ub, b_ub, a_eq, b_eq, scale=True).solve(
        bounds, want_duals=want_duals
    )
    return plain, scaled


def test_scaled_solve_matches_plain_on_random_lps() -> None:
    rng = np.random.default_rng(7)
    for _ in range(10):
        n, m = 5, 4
        c = rng.uniform(-3, 3, n)
        a_ub = rng.uniform(-2, 2, (m, n))
        b_ub = rng.uniform(0.5, 3.0, m)
        bounds = [(0.0, 2.0)] * n
        plain, scaled = _both(c, a_ub, b_ub, np.zeros((0, n)), np.zeros(0), bounds)
        assert plain.status is scaled.status is SolveStatus.OPTIMAL
        assert scaled.objective == pytest.approx(plain.objective, abs=1e-7)


def test_scaling_fixes_badly_scaled_instance() -> None:
    """Coefficients spanning 10 orders of magnitude still solve right."""
    c = np.array([-1e6, -1e-4])
    a_ub = np.array([[1e6, 1e-4], [1e5, 1e-5]])
    b_ub = np.array([1e6, 1e5])
    bounds = [(0.0, 2.0), (0.0, 1e5)]
    plain, scaled = _both(
        c, a_ub, b_ub, np.zeros((0, 2)), np.zeros(0), bounds, want_duals=True
    )
    assert scaled.status is SolveStatus.OPTIMAL
    assert scaled.objective == pytest.approx(plain.objective, rel=1e-6)
    # Duals come back in the caller's (unscaled) row units.
    assert scaled.duals is not None
    from repro.certify.lp import certify_lp

    cert = certify_lp(
        scaled, c, a_ub, b_ub, np.zeros((0, 2)), np.zeros(0), bounds
    )
    assert cert.ok, [str(v) for v in cert.violations]


def test_scaling_preserves_infeasibility_verdict() -> None:
    c = np.array([1.0, 1.0])
    a_ub = np.array([[1e4, 1e4], [-1e-3, -1e-3]])
    b_ub = np.array([1e4, -3e-3])  # x + y <= 1 and x + y >= 3, rescaled
    bounds = [(0.0, 10.0)] * 2
    plain, scaled = _both(
        c, a_ub, b_ub, np.zeros((0, 2)), np.zeros(0), bounds, want_duals=True
    )
    assert plain.status is scaled.status is SolveStatus.INFEASIBLE


def test_branch_bound_lp_scaling_agrees() -> None:
    from repro.ilp.branch_bound import solve_branch_bound

    from repro.ilp import quicksum

    def build():
        model = Model("knapsack")
        xs = [model.add_binary(f"x{i}") for i in range(6)]
        weights = [3, 5, 7, 4, 6, 2]
        values = [4, 7, 9, 5, 8, 3]
        model.add_constr(
            quicksum(w * x for w, x in zip(weights, xs)) <= 13
        )
        model.maximize(quicksum(v * x for v, x in zip(values, xs)))
        return model

    base = solve_branch_bound(build(), lp_engine="compiled")
    scaled = solve_branch_bound(
        build(), lp_engine="compiled", lp_scaling=True
    )
    assert base.status is scaled.status is SolveStatus.OPTIMAL
    assert scaled.objective == pytest.approx(base.objective)


def test_warm_start_still_works_with_scaling() -> None:
    c = np.array([-1.0, -2.0, -0.5])
    a_ub = np.array([[1.0, 1.0, 1.0], [2.0, 0.5, 1.0]])
    b_ub = np.array([4.0, 5.0])
    compiled = CompiledModel(c, a_ub, b_ub, np.zeros((0, 3)), np.zeros(0), scale=True)
    bounds = [(0.0, 3.0)] * 3
    parent = compiled.solve(bounds)
    assert parent.status is SolveStatus.OPTIMAL
    child = compiled.solve(
        [(0.0, 1.0), (0.0, 3.0), (0.0, 3.0)], basis=parent.basis
    )
    assert child.status is SolveStatus.OPTIMAL
    reference = CompiledModel(
        c, a_ub, b_ub, np.zeros((0, 3)), np.zeros(0)
    ).solve([(0.0, 1.0), (0.0, 3.0), (0.0, 3.0)])
    assert child.objective == pytest.approx(reference.objective)
