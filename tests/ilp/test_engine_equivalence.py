"""Dense-inverse vs sparse-LU engines must be interchangeable.

The dense explicit-inverse factorization is kept exactly for this:
a slow, simple oracle to differential-test the sparse LU + eta-file
engine against.  Same statuses, same objectives, and certified answers
on both — on seeded random MILPs, on hand-built edge shapes, and on a
real mapping window from the paper's table-1 cases.
"""

import math
import random

import numpy as np
import pytest

from repro.certify.lp import certify_lp
from repro.ilp import CompiledModel, Model, SolveStatus, quicksum
from repro.ilp.branch_bound import solve_branch_bound


def _random_milp(rng: random.Random) -> Model:
    n = rng.randint(2, 6)
    model = Model("engine-equiv")
    variables = []
    for i in range(n):
        kind = rng.choice(["binary", "integer", "continuous"])
        if kind == "binary":
            variables.append(model.add_binary(f"x{i}"))
        elif kind == "integer":
            variables.append(model.add_integer(f"x{i}", ub=5))
        else:
            variables.append(model.add_continuous(f"x{i}", ub=5))
    for _ in range(rng.randint(1, 5)):
        coefs = [rng.randint(-3, 3) for _ in range(n)]
        if not any(coefs):
            continue
        model.add_constr(
            quicksum(c * x for c, x in zip(coefs, variables))
            <= rng.randint(0, 12)
        )
    model.maximize(
        quicksum(rng.randint(-5, 5) * x for x in variables)
    )
    return model


class TestRandomizedEquivalence:
    def test_seeded_random_milps_agree(self):
        rng = random.Random(20150608)
        for _ in range(40):
            model = _random_milp(rng)
            sparse = solve_branch_bound(model, engine="sparse")
            dense = solve_branch_bound(model, engine="dense")
            assert sparse.status is dense.status is SolveStatus.OPTIMAL
            assert sparse.objective == pytest.approx(
                dense.objective, abs=1e-6
            )
            assert model.check_solution(sparse.values) == []
            assert model.check_solution(dense.values) == []

    def test_lp_duals_certify_on_both_engines(self):
        rng = np.random.default_rng(7)
        n, m = 6, 4
        c = rng.uniform(-5.0, 5.0, size=n)
        a_ub = rng.uniform(-2.0, 2.0, size=(m, n))
        b_ub = rng.uniform(0.5, 4.0, size=m)
        a_eq = np.zeros((0, n))
        b_eq = np.zeros(0)
        bounds = [(-1.0, 3.0)] * n
        results = {}
        for engine in ("sparse", "dense"):
            compiled = CompiledModel(
                c, a_ub, b_ub, a_eq, b_eq, engine=engine
            )
            res = compiled.solve(bounds, want_duals=True)
            assert res.status is SolveStatus.OPTIMAL
            cert = certify_lp(res, c, a_ub, b_ub, a_eq, b_eq, bounds)
            assert cert.ok, [str(v) for v in cert.violations]
            results[engine] = res.objective
        assert results["sparse"] == pytest.approx(
            results["dense"], abs=1e-9
        )


class TestStatusEquivalence:
    @pytest.mark.parametrize("engine", ["sparse", "dense"])
    def test_infeasible(self, engine):
        model = Model("infeasible")
        x = model.add_binary("x")
        y = model.add_binary("y")
        model.add_constr(x + y <= 1)
        model.add_constr(x + y >= 2)
        model.minimize(x)
        sol = solve_branch_bound(model, engine=engine)
        assert sol.status is SolveStatus.INFEASIBLE

    @pytest.mark.parametrize("engine", ["sparse", "dense"])
    def test_unbounded(self, engine):
        model = Model("unbounded")
        x = model.add_continuous("x", lb=0.0, ub=math.inf)
        model.add_constr(x >= 1)
        model.maximize(x)
        sol = solve_branch_bound(model, engine=engine)
        assert sol.status is SolveStatus.UNBOUNDED


class TestMappingWindowEquivalence:
    def test_pcr_window_same_certified_load(self):
        # A real table-1 sub-model (first two PCR tasks on a coarse
        # anchor grid): both engines must certify the same pump load.
        from repro.assays import get_case, schedule_for
        from repro.core.mapping_model import MappingModelBuilder, MappingSpec
        from repro.core.tasks import build_tasks

        case = get_case("pcr")
        graph = case.graph()
        schedule = schedule_for(case, case.policies(1)[0])
        tasks = build_tasks(graph, schedule)
        spec = MappingSpec(grid=case.grid, tasks=tasks[:2], anchor_stride=3)
        built = MappingModelBuilder(spec).build()
        sparse = built.model.solve(
            backend="branch_bound", lp_engine="simplex", engine="sparse"
        )
        dense = built.model.solve(
            backend="branch_bound", lp_engine="simplex", engine="dense"
        )
        assert sparse.status is dense.status is SolveStatus.OPTIMAL
        assert sparse.objective == pytest.approx(dense.objective, abs=1e-6)
