"""Exact-arithmetic presolve: each reduction, and end-to-end equivalence.

Every reduction in :mod:`repro.ilp.presolve` claims to preserve the
mixed-integer feasible set exactly.  These tests pin each reduction on
a hand-built instance where the intended effect is checkable by eye,
then close the loop: seeded random MILPs must reach the same optimum
with presolve on and off.
"""

import math
import random

import numpy as np
import pytest

from repro.ilp import Model, SolveStatus, quicksum
from repro.ilp.branch_bound import solve_branch_bound
from repro.ilp.presolve import presolve_arrays


def _arrays(a_ub, b_ub, bounds, integrality, a_eq=None, b_eq=None):
    n = len(bounds)
    a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n)
    b_ub = np.asarray(b_ub, dtype=float)
    a_eq = (
        np.asarray(a_eq, dtype=float).reshape(-1, n)
        if a_eq is not None
        else np.zeros((0, n))
    )
    b_eq = np.asarray(b_eq, dtype=float) if b_eq is not None else np.zeros(0)
    return a_ub, b_ub, a_eq, b_eq, list(bounds), np.asarray(integrality, dtype=bool)


class TestReductions:
    def test_singleton_row_folds_into_bound(self):
        out = presolve_arrays(
            *_arrays([[2.0, 0.0]], [6.0], [(0.0, 10.0), (0.0, 10.0)], [0, 0])
        )
        a_ub, _, _, _, bounds, info = out
        assert a_ub.shape[0] == 0  # the row is gone...
        assert bounds[0] == (0.0, 3.0)  # ...folded into the bound
        assert info.stats["rows_dropped"] == 1

    def test_redundant_row_dropped(self):
        out = presolve_arrays(
            *_arrays([[1.0, 1.0]], [100.0], [(0.0, 1.0), (0.0, 1.0)], [1, 1])
        )
        a_ub, _, _, _, _, info = out
        assert a_ub.shape[0] == 0
        assert info.stats["rows_dropped"] == 1
        assert info.kept_ub == []

    def test_bound_tightening_rounds_integer_bounds(self):
        # 2x + 3y <= 7 with x, y >= 0: y <= 7/3, so integer y <= 2.
        out = presolve_arrays(
            *_arrays(
                [[2.0, 3.0]], [7.0], [(0.0, 10.0), (0.0, 10.0)], [0, 1]
            )
        )
        _, _, _, _, bounds, info = out
        assert bounds[1][1] == 2.0
        assert info.stats["bounds_tightened"] >= 1

    def test_singleton_equality_fixes_variable(self):
        out = presolve_arrays(
            *_arrays(
                [[1.0, 1.0]], [10.0], [(0.0, 10.0), (0.0, 10.0)], [0, 0],
                a_eq=[[3.0, 0.0]], b_eq=[6.0],
            )
        )
        _, _, a_eq, _, bounds, info = out
        assert a_eq.shape[0] == 0
        assert bounds[0] == (2.0, 2.0)
        assert info.stats["vars_fixed"] == 1

    def test_big_m_coefficient_strengthens(self):
        # Indicator row 3y - 100 z <= 2 with y in [0, 4]: when z = 1 the
        # row is slack by construction, and the worst excess over z = 0
        # is 3*4 - 2 = 10, so the -100 shrinks to exactly -10.
        out = presolve_arrays(
            *_arrays(
                [[3.0, -100.0]], [2.0], [(0.0, 4.0), (0.0, 1.0)], [0, 1]
            )
        )
        a_ub, _, _, _, _, info = out
        assert a_ub.shape[0] == 1
        assert a_ub[0, 1] == pytest.approx(-10.0)
        assert info.stats["coeffs_strengthened"] == 1

    def test_crossed_integer_bounds_flag_infeasible(self):
        # 0.6 <= x <= 0.4 is empty for integer x (ceil 1 > floor 0).
        out = presolve_arrays(
            *_arrays([[1.0], [-1.0]], [0.4, -0.6], [(0.0, 1.0)], [1])
        )
        _, _, _, _, bounds, info = out
        assert info.infeasible
        assert bounds[info.infeasible_var][0] > bounds[info.infeasible_var][1]

    def test_expand_row_duals_scatters_zeros(self):
        out = presolve_arrays(
            *_arrays(
                [[2.0, 0.0], [1.0, 1.0]],
                [6.0, 4.0],
                [(0.0, 10.0), (0.0, 10.0)],
                [0, 0],
            )
        )
        _, _, _, _, _, info = out
        # The singleton row folded away; the surviving row's dual must
        # land back on its original index with zeros elsewhere.
        kept = len(info.kept_ub)
        y_ub, y_eq = info.expand_row_duals(np.full(kept, -2.5), np.zeros(0))
        assert y_ub.shape == (2,)
        assert sorted(np.flatnonzero(y_ub)) == info.kept_ub
        assert y_eq.shape == (0,)


class TestEndToEndEquivalence:
    def _random_milp(self, rng: random.Random) -> Model:
        n = rng.randint(2, 6)
        model = Model("presolve-equiv")
        variables = []
        for i in range(n):
            kind = rng.choice(["binary", "integer", "continuous"])
            if kind == "binary":
                variables.append(model.add_binary(f"x{i}"))
            elif kind == "integer":
                variables.append(model.add_integer(f"x{i}", ub=5))
            else:
                variables.append(model.add_continuous(f"x{i}", ub=5))
        for _ in range(rng.randint(1, 5)):
            coefs = [rng.randint(-3, 3) for _ in range(n)]
            if not any(coefs):
                continue
            model.add_constr(
                quicksum(c * x for c, x in zip(coefs, variables))
                <= rng.randint(0, 12)
            )
        model.maximize(
            quicksum(rng.randint(-5, 5) * x for x in variables)
        )
        return model

    def test_seeded_random_milps_agree(self):
        rng = random.Random(1952)  # Dantzig's simplex paper
        reduced_something = 0
        for _ in range(40):
            model = self._random_milp(rng)
            on = solve_branch_bound(model, presolve=True, cuts=False)
            off = solve_branch_bound(model, presolve=False, cuts=False)
            assert on.status is off.status is SolveStatus.OPTIMAL
            assert on.objective == pytest.approx(off.objective, abs=1e-6)
            assert model.check_solution(on.values) == []
            reduced_something += int(
                on.stats["presolve_rows_dropped"]
                + on.stats["presolve_bounds_tightened"]
                > 0
            )
        # The sample must actually exercise the reductions, not vacuously
        # compare two identical no-op solves.
        assert reduced_something >= 10

    def test_presolve_proves_infeasibility(self):
        model = Model("empty-box")
        x = model.add_integer("x", ub=1)
        model.add_constr(2 * x >= 1.2)  # x >= 0.6
        model.add_constr(2 * x <= 0.8)  # x <= 0.4
        model.minimize(x)
        sol = solve_branch_bound(model, presolve=True, cuts=False)
        assert sol.status is SolveStatus.INFEASIBLE

    def test_big_m_disjunction_bound_tightens(self):
        # The paper's non-overlap pattern: presolve must shrink the big
        # M without changing the optimum.
        model = Model("disjunction")
        a = model.add_integer("a", ub=6)
        b = model.add_integer("b", ub=6)
        model.add_big_m_disjunction(
            [a - b >= 2, b - a >= 2], big_m=1000
        )
        model.add_constr(a + b <= 8)
        model.maximize(a + b)
        on = solve_branch_bound(model, presolve=True, cuts=False)
        off = solve_branch_bound(model, presolve=False, cuts=False)
        assert on.objective == pytest.approx(off.objective)
        assert on.stats["presolve_coeffs_strengthened"] >= 1
