"""Root cutting planes: validity by brute force, certification, and
end-to-end equivalence.

A cut is a *theorem* about the model — every mixed-integer feasible
point must satisfy it.  The instances here are small enough to
enumerate the full integer box, so validity is checked against ground
truth rather than against the generator's own arithmetic; the
:func:`repro.certify.certify_cut` replay must then agree.  Finally the
branch & bound must reach the same optimum with the cut loop on and
off, and under ``certify=strict`` an invalid cut smuggled into the
separation round must be rejected, not applied.
"""

import itertools
import math
import random

import numpy as np
import pytest

from repro.certify.cuts import certify_cut
from repro.ilp import Model, SolveStatus, quicksum
from repro.ilp.branch_bound import solve_branch_bound
from repro.ilp.compiled import CompiledModel
from repro.ilp.cuts import Cut, cover_cuts, generate_cuts, gomory_cuts


def _enumerate_feasible(a_ub, b_ub, a_eq, b_eq, bounds, integrality):
    """Every mixed-integer feasible point of a small all-integer box."""
    assert all(integrality), "enumeration needs a pure-integer model"
    ranges = [
        range(int(math.ceil(lo)), int(math.floor(hi)) + 1)
        for lo, hi in bounds
    ]
    for point in itertools.product(*ranges):
        x = np.array(point, dtype=float)
        if a_ub.size and np.any(a_ub @ x > b_ub + 1e-9):
            continue
        if a_eq.size and np.any(np.abs(a_eq @ x - b_eq) > 1e-9):
            continue
        yield x


def _assert_valid_and_certified(cuts, a_ub, b_ub, a_eq, b_eq, bounds, integrality):
    assert cuts, "expected at least one cut"
    feasible = list(
        _enumerate_feasible(a_ub, b_ub, a_eq, b_eq, bounds, integrality)
    )
    assert feasible
    for cut in cuts:
        for x in feasible:
            assert cut.row @ x <= cut.rhs + 1e-9, (
                f"{cut.kind} cut violates feasible point {x}"
            )
        cert = certify_cut(
            cut, a_ub, b_ub, a_eq, b_eq, bounds, integrality
        )
        assert cert.status == "certified", [str(v) for v in cert.violations]


class TestCoverCuts:
    def test_cover_cuts_are_valid_and_separate(self):
        # Fractional knapsack optimum: 3x0 + 4x1 + 5x2 <= 6 maximizing
        # the sum rests at a fractional vertex every cover cuts off.
        a_ub = np.array([[3.0, 4.0, 5.0]])
        b_ub = np.array([6.0])
        a_eq = np.zeros((0, 3))
        b_eq = np.zeros(0)
        bounds = [(0.0, 1.0)] * 3
        integrality = np.ones(3, dtype=bool)
        compiled = CompiledModel(
            np.array([-1.0, -1.0, -1.0]), a_ub, b_ub, a_eq, b_eq
        )
        relax = compiled.solve(bounds)
        assert relax.status is SolveStatus.OPTIMAL
        cuts = cover_cuts(a_ub, b_ub, bounds, integrality, relax.x)
        _assert_valid_and_certified(
            cuts, a_ub, b_ub, a_eq, b_eq, bounds, integrality
        )
        for cut in cuts:
            assert cut.kind == "cover"
            # Separation: the fractional optimum violates the cut.
            assert cut.row @ relax.x > cut.rhs + 1e-6

    def test_negative_coefficients_complement(self):
        # A row with a negative coefficient: validity must survive the
        # complement mapping z = 1 - x.
        a_ub = np.array([[4.0, -3.0, 5.0]])
        b_ub = np.array([3.0])
        a_eq = np.zeros((0, 3))
        b_eq = np.zeros(0)
        bounds = [(0.0, 1.0)] * 3
        integrality = np.ones(3, dtype=bool)
        x_star = np.array([0.9, 0.1, 0.7])  # any fractional probe point
        cuts = cover_cuts(a_ub, b_ub, bounds, integrality, x_star)
        if cuts:  # separation depends on the probe; validity must not
            _assert_valid_and_certified(
                cuts, a_ub, b_ub, a_eq, b_eq, bounds, integrality
            )
            assert any(c.complemented for c in cuts)


class TestGomoryCuts:
    def test_gomory_cuts_are_valid_and_separate(self):
        # 2x + 2y <= 3 over the unit box maximizing x + y: the LP rests
        # at (1, 1/2) while the best integer point scores only 1.
        c = np.array([-1.0, -1.0])
        a_ub = np.array([[2.0, 2.0]])
        b_ub = np.array([3.0])
        a_eq = np.zeros((0, 2))
        b_eq = np.zeros(0)
        bounds = [(0.0, 1.0), (0.0, 1.0)]
        integrality = np.ones(2, dtype=bool)
        compiled = CompiledModel(c, a_ub, b_ub, a_eq, b_eq)
        relax = compiled.solve(bounds)
        assert relax.status is SolveStatus.OPTIMAL
        frac = relax.x - np.floor(relax.x)
        assert np.any((frac > 1e-6) & (frac < 1.0 - 1e-6))
        cuts = gomory_cuts(
            a_ub, b_ub, a_eq, b_eq, bounds, integrality, relax, compiled
        )
        _assert_valid_and_certified(
            cuts, a_ub, b_ub, a_eq, b_eq, bounds, integrality
        )
        for cut in cuts:
            assert cut.kind == "gomory"
            assert cut.lam is not None and cut.shifts is not None
            assert cut.row @ relax.x > cut.rhs + 1e-9

    def test_generate_cuts_mixes_families(self):
        # A model with both a binary knapsack row and general-integer
        # fractionality exercises both generators in one round.
        c = np.array([-5.0, -4.0, -3.0, -2.0])
        a_ub = np.array(
            [
                [3.0, 4.0, 5.0, 0.0],
                [2.0, 0.0, 1.0, 3.0],
            ]
        )
        b_ub = np.array([6.0, 7.0])
        a_eq = np.zeros((0, 4))
        b_eq = np.zeros(0)
        bounds = [(0.0, 1.0)] * 3 + [(0.0, 4.0)]
        integrality = np.ones(4, dtype=bool)
        compiled = CompiledModel(c, a_ub, b_ub, a_eq, b_eq)
        relax = compiled.solve(bounds)
        assert relax.status is SolveStatus.OPTIMAL
        cuts = generate_cuts(
            a_ub, b_ub, a_eq, b_eq, bounds, integrality, relax, compiled
        )
        _assert_valid_and_certified(
            cuts, a_ub, b_ub, a_eq, b_eq, bounds, integrality
        )


class TestEndToEndEquivalence:
    def _random_milp(self, rng: random.Random) -> Model:
        n = rng.randint(3, 6)
        model = Model("cuts-equiv")
        xs = [model.add_binary(f"x{i}") for i in range(n)]
        for _ in range(rng.randint(1, 4)):
            coefs = [rng.randint(0, 6) for _ in range(n)]
            if not any(coefs):
                continue
            model.add_constr(
                quicksum(c * x for c, x in zip(coefs, xs))
                <= rng.randint(3, 10)
            )
        model.maximize(quicksum(rng.randint(1, 8) * x for x in xs))
        return model

    def test_seeded_random_milps_agree(self):
        rng = random.Random(1958)  # Gomory's cutting-plane paper
        for _ in range(30):
            model = self._random_milp(rng)
            on = solve_branch_bound(model, cuts=True, presolve=False)
            off = solve_branch_bound(model, cuts=False, presolve=False)
            assert on.status is off.status is SolveStatus.OPTIMAL
            assert on.objective == pytest.approx(off.objective, abs=1e-6)
            assert model.check_solution(on.values) == []
            assert "cuts_added" in on.stats
            assert off.stats["cuts_added"] == 0

    def test_strict_certification_rejects_invalid_cut(self, monkeypatch):
        # Smuggle an *invalid* inequality (it cuts off the optimum) into
        # the separation round: strict mode must refuse to apply it and
        # still reach the true optimum.
        import repro.ilp.cuts as cuts_mod

        def poisoned(a_ub, b_ub, a_eq, b_eq, bounds, integrality, relax,
                     tableau_model, max_cuts=16):
            n = len(bounds)
            row = np.zeros(n)
            row[0] = 1.0
            # claims x0 <= 0, with a payload that cannot re-derive it
            return [
                Cut(
                    row=row, rhs=0.0, kind="gomory",
                    lam=[0] * (a_ub.shape[0] + a_eq.shape[0]),
                    shifts=np.zeros(n, dtype=np.int8),
                )
            ]

        # solve_branch_bound imports generate_cuts at call time, so the
        # patch point is the cuts module itself.
        monkeypatch.setattr(cuts_mod, "generate_cuts", poisoned)
        model = Model("poisoned")
        x = model.add_binary("x0")
        y = model.add_binary("x1")
        # Fractional root (x = 1, y = 1/2) so the separation round runs.
        model.add_constr(2 * x + 2 * y <= 3)
        model.maximize(2 * x + y)
        sol = solve_branch_bound(
            model, cuts=True, presolve=False, certify="strict"
        )
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(2.0)  # x0 = 1 survived
        assert sol.stats["cuts_rejected"] >= 1
        assert sol.stats["cuts_added"] == 0
