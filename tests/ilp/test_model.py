"""Unit tests for model construction and the big-M helper."""

import math

import pytest

from repro.errors import ModelError
from repro.ilp import Model, Sense, SolveStatus, VarType, quicksum


class TestModelConstruction:
    def test_variable_kinds(self):
        m = Model()
        b = m.add_binary("b")
        i = m.add_integer("i", lb=1, ub=5)
        c = m.add_continuous("c", lb=-1.0)
        assert b.vtype is VarType.BINARY and (b.lb, b.ub) == (0.0, 1.0)
        assert i.vtype is VarType.INTEGER and (i.lb, i.ub) == (1.0, 5.0)
        assert c.vtype is VarType.CONTINUOUS and c.ub == math.inf
        assert m.num_vars == 3 and m.num_integer_vars == 2

    def test_bad_bounds_rejected(self):
        m = Model()
        with pytest.raises(ModelError):
            m.add_integer("x", lb=5, ub=1)

    def test_foreign_variable_rejected(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.add_binary("x")
        with pytest.raises(ModelError):
            m2.add_constr(x <= 1)

    def test_add_constr_requires_constraint(self):
        m = Model()
        m.add_binary("x")
        with pytest.raises(ModelError):
            m.add_constr(True)  # type: ignore[arg-type]

    def test_check_solution_reports_violations(self):
        m = Model()
        x = m.add_integer("x", ub=4)
        m.add_constr(x <= 2, "cap")
        assert m.check_solution({x: 2.0}) == []
        problems = m.check_solution({x: 3.5})
        assert any("integrality" in p for p in problems)
        assert any("constraint" in p for p in problems)
        assert any("bound" in p for p in m.check_solution({x: 9.0}))


class TestArrayExport:
    def test_senses_split_into_ub_and_eq(self):
        m = Model()
        x, y = m.add_continuous("x"), m.add_continuous("y")
        m.add_constr(x + y <= 5)
        m.add_constr(x - y >= 1)
        m.add_constr(x + 0 == 2)
        c, a_ub, b_ub, a_eq, b_eq, bounds, integrality = m.to_arrays()
        assert a_ub.shape == (2, 2)  # GE row negated into LE
        assert b_ub.tolist() == [5.0, -1.0]
        assert a_eq.shape == (1, 2) and b_eq.tolist() == [2.0]

    def test_maximize_negates_objective(self):
        m = Model()
        x = m.add_continuous("x", ub=3)
        m.maximize(2 * x)
        c, *_ = m.to_arrays()
        assert c.tolist() == [-2.0]


class TestBigMDisjunction:
    def test_at_least_one_holds(self):
        # x >= 8 or x <= 2; minimizing x with x >= 5 forces x = 8.
        m = Model()
        x = m.add_integer("x", ub=10)
        m.add_big_m_disjunction(
            [x.to_expr() >= 8, x.to_expr() <= 2], big_m=100
        )
        m.add_constr(x >= 5)
        m.minimize(x)
        sol = m.solve(backend="branch_bound")
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.value(x) == pytest.approx(8.0)

    def test_relax_var_disables_disjunction(self):
        # Same disjunction, but a free c5 lets the solver ignore it.
        m = Model()
        x = m.add_integer("x", ub=10)
        c5 = m.add_binary("c5")
        m.add_big_m_disjunction(
            [x.to_expr() >= 8, x.to_expr() <= 2],
            big_m=100,
            relax_var=c5,
        )
        m.add_constr(x >= 5)
        m.minimize(x)
        sol = m.solve(backend="branch_bound")
        assert sol.value(x) == pytest.approx(5.0)
        assert sol.value(c5) == pytest.approx(1.0)

    def test_pinned_relax_var_restores_disjunction(self):
        m = Model()
        x = m.add_integer("x", ub=10)
        c5 = m.add_binary("c5")
        m.add_big_m_disjunction(
            [x.to_expr() >= 8, x.to_expr() <= 2],
            big_m=100,
            relax_var=c5,
        )
        m.add_constr(c5 <= 0)  # Algorithm 1: forbid the overlap again
        m.add_constr(x >= 5)
        m.minimize(x)
        sol = m.solve(backend="branch_bound")
        assert sol.value(x) == pytest.approx(8.0)

    def test_equality_terms_rejected(self):
        m = Model()
        x = m.add_integer("x")
        with pytest.raises(ModelError):
            m.add_big_m_disjunction([x + 0 == 3], big_m=10)

    def test_empty_disjunction_rejected(self):
        with pytest.raises(ModelError):
            Model().add_big_m_disjunction([], big_m=10)


class TestSolveDispatch:
    def test_unknown_backend(self):
        m = Model()
        x = m.add_binary("x")
        m.minimize(x)
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            m.solve(backend="cplex")

    def test_value_requires_solution(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constr(x >= 2)  # infeasible
        sol = m.solve(backend="branch_bound")
        assert sol.status is SolveStatus.INFEASIBLE
        assert not sol
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            sol.value(x)
