"""The external-incumbent API of the branch & bound solver.

:class:`repro.ilp.incumbent.IncumbentPool` is the rendezvous point of
the anytime race (DESIGN.md §13): the heuristic lane offers certified
solution vectors, ``solve_branch_bound(incumbent=pool)`` polls them
once per node, float-replays them against its presolved arrays, and
adopts the survivors as upper bounds.  These tests pin the pool
semantics, the adopt/reject replay, and the root-bound fast path — an
injected incumbent that already matches the proven root relaxation
bound must terminate immediately with OPTIMAL and zero enumerated
nodes.
"""

import numpy as np
import pytest

from repro.ilp import Model, SolveStatus
from repro.ilp.incumbent import IncumbentPool


def _ticking_clock(step: float = 1.0):
    t = [0.0]

    def clock() -> float:
        t[0] += step
        return t[0]

    return clock


class TestIncumbentPool:
    def test_offer_keeps_only_improvements(self):
        pool = IncumbentPool()
        assert pool.offer([1.0, 0.0], 5.0) is True
        assert pool.version == 1
        assert pool.best_objective == 5.0
        # A worse offer is recorded on the timeline but not kept.
        assert pool.offer([0.0, 1.0], 7.0) is False
        assert pool.version == 1
        assert pool.best_objective == 5.0
        # Ties are not improvements either.
        assert pool.offer([0.0, 1.0], 5.0) is False
        assert pool.offer([0.0, 0.0], 3.0) is True
        assert pool.version == 2
        x, objective, source, version = pool.take()
        assert objective == 3.0
        assert source == "heuristic"
        assert version == 2
        np.testing.assert_allclose(x, [0.0, 0.0])

    def test_take_and_offer_copy_vectors(self):
        pool = IncumbentPool()
        working = np.array([1.0, 2.0])
        pool.offer(working, 1.0)
        working[0] = 99.0  # caller keeps mutating its buffer
        x, _, _, _ = pool.take()
        assert x[0] == 1.0
        x[1] = -5.0  # and the taken copy is the caller's to trash
        again, _, _, _ = pool.take()
        assert again[1] == 2.0

    def test_empty_pool_take(self):
        pool = IncumbentPool()
        x, objective, source, version = pool.take()
        assert x is None
        assert objective == float("inf")
        assert version == 0

    def test_timeline_records_offers_incumbents_and_notes(self):
        pool = IncumbentPool(clock=_ticking_clock())
        pool.offer([0.0], 4.0, source="packer")
        pool.offer([0.0], 9.0, source="lns")  # rejected: offer event only
        pool.note("bound", "bb", 2.5)
        events = pool.timeline_snapshot()
        kinds = [(e["kind"], e["source"]) for e in events]
        assert kinds == [
            ("offer", "packer"),
            ("incumbent", "packer"),
            ("offer", "lns"),
            ("bound", "bb"),
        ]
        assert events[-1]["objective"] == 2.5
        # The injected clock ticks once per event: timestamps ascend.
        assert [e["t"] for e in events] == sorted(e["t"] for e in events)


def _fractional_root_model():
    """min 3x + 2y s.t. 2x + 3y >= 7, x,y integer in [0, 10].

    The LP root is fractional (y = 7/3, objective 14/3); the integer
    optimum is y = 3 with objective 6, so an injected incumbent at 6
    is adopted but does NOT meet the root bound.
    """
    model = Model("inject-fractional")
    x = model.add_integer("x", ub=10)
    y = model.add_integer("y", ub=10)
    model.add_constr(2 * x + 3 * y >= 7)
    model.minimize(3 * x + 2 * y)
    return model


def _integral_root_model():
    """min 3x + 2y s.t. x + y >= 4, x,y integer in [0, 10].

    The LP root is integral at (0, 4), objective 8: an injected
    incumbent at 8 matches the proven root bound exactly.
    """
    model = Model("inject-integral")
    x = model.add_integer("x", ub=10)
    y = model.add_integer("y", ub=10)
    model.add_constr(x + y >= 4)
    model.minimize(3 * x + 2 * y)
    return model


class TestExternalInjection:
    def test_feasible_offer_is_adopted(self):
        model = _fractional_root_model()
        pool = IncumbentPool()
        pool.offer([0.0, 3.0], 6.0)  # the integer optimum
        solution = model.solve(backend="branch_bound", incumbent=pool)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(6.0)
        assert solution.stats["external_offers_seen"] == 1
        assert solution.stats["external_incumbents"] == 1
        assert solution.stats["external_rejected"] == 0
        assert model.check_solution(solution.values) == []

    def test_infeasible_offer_is_rejected_not_trusted(self):
        model = _fractional_root_model()
        pool = IncumbentPool()
        # 2x + 3y = 0 < 7: violates the only constraint.  A lying
        # heuristic must not be able to poison the search.
        pool.offer([0.0, 0.0], 0.0)
        solution = model.solve(backend="branch_bound", incumbent=pool)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(6.0)
        assert solution.stats["external_rejected"] == 1
        assert solution.stats["external_incumbents"] == 0
        assert model.check_solution(solution.values) == []

    def test_fractional_offer_is_rejected(self):
        model = _fractional_root_model()
        pool = IncumbentPool()
        pool.offer([0.0, 7.0 / 3.0], 14.0 / 3.0)  # the LP vertex itself
        solution = model.solve(backend="branch_bound", incumbent=pool)
        assert solution.stats["external_rejected"] == 1
        assert solution.objective == pytest.approx(6.0)

    def test_wrong_length_offer_is_ignored(self):
        model = _fractional_root_model()
        pool = IncumbentPool()
        pool.offer([0.0, 3.0, 1.0], 6.0)
        solution = model.solve(backend="branch_bound", incumbent=pool)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.stats["external_offers_seen"] == 0
        assert solution.stats["external_incumbents"] == 0

    def test_solver_publishes_incumbents_and_bound_to_timeline(self):
        model = _fractional_root_model()
        pool = IncumbentPool()
        solution = model.solve(backend="branch_bound", incumbent=pool)
        assert solution.status is SolveStatus.OPTIMAL
        kinds = {e["kind"] for e in pool.timeline_snapshot()}
        assert "incumbent" in kinds  # the solver's own incumbents
        assert "bound" in kinds  # the final proven bound
        bb_incumbents = [
            e for e in pool.timeline_snapshot()
            if e["kind"] == "incumbent" and e["source"] == "bb"
        ]
        assert bb_incumbents[-1]["objective"] == pytest.approx(6.0)

    def test_claimed_objective_is_not_trusted(self):
        # The pool carries the heuristic's *claimed* objective, but the
        # solver recomputes c @ x itself: a wrong claim changes nothing.
        model = _fractional_root_model()
        pool = IncumbentPool()
        pool.offer([0.0, 3.0], -100.0)  # lie about the objective
        solution = model.solve(backend="branch_bound", incumbent=pool)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(6.0)
        assert solution.stats["external_incumbents"] == 1


class TestRootBoundStop:
    """Satellite regression: injected incumbent == root bound → OPTIMAL
    with no enumeration."""

    def test_injected_optimum_stops_at_root(self):
        model = _integral_root_model()
        pool = IncumbentPool()
        pool.offer([0.0, 4.0], 8.0)
        solution = model.solve(backend="branch_bound", incumbent=pool)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(8.0)
        assert solution.stats["root_bound_stop"] == 1
        assert solution.stats["nodes_explored"] == 0
        assert solution.stats["dive_solves"] == 0  # dive skipped too
        assert model.check_solution(solution.values) == []
        # The answer is the injected vector itself.
        values = {var.name: val for var, val in solution.values.items()}
        assert values == {"x": 0.0, "y": 4.0}

    def test_no_stop_when_incumbent_above_root_bound(self):
        model = _fractional_root_model()
        pool = IncumbentPool()
        pool.offer([0.0, 3.0], 6.0)  # optimal, but root bound is 14/3
        # cuts=False pins the root bound at the LP vertex: a Gomory cut
        # could legitimately close the root to 6 and stop immediately,
        # which is the *other* test's behavior.
        solution = model.solve(
            backend="branch_bound", incumbent=pool, cuts=False
        )
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.stats["root_bound_stop"] == 0
        # Proving optimality still requires enumeration.
        assert solution.stats["nodes_explored"] > 0

    def test_without_pool_search_is_unchanged(self):
        model = _integral_root_model()
        solution = model.solve(backend="branch_bound")
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(8.0)
        assert solution.stats["root_bound_stop"] == 0
