"""Unit tests for the from-scratch simplex LP solver."""

import math

import numpy as np
import pytest

from repro.ilp.simplex import solve_lp
from repro.ilp.solution import SolveStatus

INF = math.inf


def lp(c, a_ub=(), b_ub=(), a_eq=(), b_eq=(), bounds=None):
    c = np.array(c, dtype=float)
    n = len(c)
    a_ub = np.array(a_ub, dtype=float).reshape(-1, n)
    a_eq = np.array(a_eq, dtype=float).reshape(-1, n)
    b_ub = np.array(b_ub, dtype=float)
    b_eq = np.array(b_eq, dtype=float)
    bounds = bounds or [(0.0, INF)] * n
    return solve_lp(c, a_ub, b_ub, a_eq, b_eq, bounds)


class TestBasicLPs:
    def test_simple_maximization_as_min(self):
        # max x+y s.t. x<=2, y<=3  ->  min -(x+y) = -5
        res = lp([-1, -1], a_ub=[[1, 0], [0, 1]], b_ub=[2, 3])
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(-5.0)
        assert res.x == pytest.approx([2.0, 3.0])

    def test_equality_constraint(self):
        res = lp([1, 2], a_eq=[[1, 1]], b_eq=[4])
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(4.0)  # all mass on x

    def test_negative_rhs_row(self):
        # -x <= -2  (i.e. x >= 2), minimize x
        res = lp([1], a_ub=[[-1]], b_ub=[-2])
        assert res.status is SolveStatus.OPTIMAL
        assert res.x == pytest.approx([2.0])

    def test_finite_bounds(self):
        res = lp([-1], bounds=[(1.0, 4.0)])
        assert res.status is SolveStatus.OPTIMAL
        assert res.x == pytest.approx([4.0])

    def test_negative_lower_bound(self):
        res = lp([1], bounds=[(-5.0, 5.0)])
        assert res.x == pytest.approx([-5.0])

    def test_free_variable(self):
        res = lp([1], a_ub=[[-1]], b_ub=[3], bounds=[(-INF, INF)])
        assert res.x == pytest.approx([-3.0])

    def test_upper_bounded_only_variable(self):
        res = lp([-1], bounds=[(-INF, 7.0)])
        assert res.x == pytest.approx([7.0])


class TestStatuses:
    def test_infeasible(self):
        res = lp([1], a_ub=[[1], [-1]], b_ub=[1, -3])  # x<=1 and x>=3
        assert res.status is SolveStatus.INFEASIBLE

    def test_infeasible_bounds(self):
        res = lp([1], bounds=[(3.0, 1.0)])
        assert res.status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        res = lp([-1])  # min -x, x >= 0 unbounded
        assert res.status is SolveStatus.UNBOUNDED

    def test_degenerate_redundant_rows(self):
        res = lp(
            [1, 1],
            a_eq=[[1, 1], [2, 2]],
            b_eq=[2, 4],  # consistent duplicates
        )
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(2.0)


class TestAgainstScipy:
    """Cross-check random LPs against HiGHS."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_lp_matches_highs(self, seed):
        from scipy.optimize import linprog

        rng = np.random.default_rng(seed)
        n, m = 5, 4
        c = rng.integers(-5, 6, n).astype(float)
        a = rng.integers(-3, 4, (m, n)).astype(float)
        b = rng.integers(2, 12, m).astype(float)  # positive: x=0 feasible
        bounds = [(0.0, 10.0)] * n  # bounded: never unbounded
        mine = lp(c, a_ub=a, b_ub=b, bounds=bounds)
        ref = linprog(c, A_ub=a, b_ub=b, bounds=bounds, method="highs")
        assert mine.status is SolveStatus.OPTIMAL
        assert ref.status == 0
        assert mine.objective == pytest.approx(ref.fun, abs=1e-6)
