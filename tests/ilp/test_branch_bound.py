"""Unit tests for the from-scratch branch & bound MILP solver."""

import pytest

from repro.ilp import Model, SolveStatus, quicksum
from repro.ilp.branch_bound import solve_branch_bound


def knapsack_model():
    m = Model("knapsack")
    values = [10, 13, 7, 8, 6]
    weights = [5, 6, 3, 4, 2]
    xs = [m.add_binary(f"x{i}") for i in range(5)]
    m.add_constr(quicksum(w * x for w, x in zip(weights, xs)) <= 10)
    m.maximize(quicksum(v * x for v, x in zip(values, xs)))
    return m, xs


class TestBranchBound:
    @pytest.mark.parametrize("lp_engine", ["simplex", "scipy"])
    def test_knapsack_optimum(self, lp_engine):
        m, xs = knapsack_model()
        sol = solve_branch_bound(m, lp_engine=lp_engine)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(23.0)  # items 0, 2 and 4
        for x in xs:
            assert sol.value(x) in (0.0, 1.0)

    def test_integer_variable_branching(self):
        m = Model()
        x = m.add_integer("x", ub=10)
        y = m.add_integer("y", ub=10)
        m.add_constr(2 * x + 3 * y <= 12)
        m.maximize(3 * x + 4 * y)
        sol = solve_branch_bound(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(18.0)  # x=6, y=0
        assert sol.value(x) == pytest.approx(6.0)

    def test_lp_relaxation_gap_is_closed(self):
        # Relaxation gives x = 1.5; the MILP must settle on an integer.
        m = Model()
        x = m.add_integer("x", ub=10)
        m.add_constr(2 * x <= 3)
        m.maximize(x)
        sol = solve_branch_bound(m)
        assert sol.objective == pytest.approx(1.0)

    def test_infeasible_model(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constr(x >= 2)
        assert solve_branch_bound(m).status is SolveStatus.INFEASIBLE

    def test_unbounded_model(self):
        m = Model()
        x = m.add_integer("x")  # no upper bound
        m.maximize(x)
        assert solve_branch_bound(m).status is SolveStatus.UNBOUNDED

    def test_node_limit_degrades_gracefully(self):
        m, _ = knapsack_model()
        # Root cuts would solve this at the root with a proof; disable
        # them so the node limit actually binds.
        sol = solve_branch_bound(m, max_nodes=1, cuts=False)
        assert sol.status in (SolveStatus.FEASIBLE, SolveStatus.NO_SOLUTION)

    def test_equality_constrained_milp(self):
        m = Model()
        x = m.add_integer("x", ub=5)
        y = m.add_integer("y", ub=5)
        m.add_constr(x + y == 4)
        m.minimize(3 * x + y)
        sol = solve_branch_bound(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.value(x) == 0.0 and sol.value(y) == 4.0

    def test_values_exactly_integral(self):
        m, xs = knapsack_model()
        sol = solve_branch_bound(m)
        for x in xs:
            assert sol.value(x) == int(sol.value(x))
