"""Unit tests for solve statuses and solutions."""

import math

import pytest

from repro.errors import SolverError
from repro.ilp import Model, Solution, SolveStatus


class TestSolveStatus:
    def test_has_solution(self):
        assert SolveStatus.OPTIMAL.has_solution
        assert SolveStatus.FEASIBLE.has_solution
        assert not SolveStatus.INFEASIBLE.has_solution
        assert not SolveStatus.UNBOUNDED.has_solution
        assert not SolveStatus.NO_SOLUTION.has_solution


class TestSolution:
    def test_truthiness_tracks_status(self):
        assert Solution(SolveStatus.OPTIMAL, 1.0)
        assert not Solution(SolveStatus.INFEASIBLE)

    def test_value_of_expression(self):
        m = Model()
        x = m.add_integer("x", ub=5)
        y = m.add_integer("y", ub=5)
        solution = Solution(
            SolveStatus.OPTIMAL, 0.0, values={x: 2.0, y: 3.0}
        )
        assert solution.value(x) == 2.0
        assert solution.value(2 * x + y - 1) == 6.0

    def test_value_without_solution_raises(self):
        m = Model()
        x = m.add_binary("x")
        with pytest.raises(SolverError):
            Solution(SolveStatus.INFEASIBLE).value(x)

    def test_backend_recorded(self):
        m = Model()
        x = m.add_binary("x")
        m.minimize(x)
        for backend in ("scipy", "branch_bound"):
            assert m.solve(backend=backend).backend == backend


class TestAvailableBackends:
    def test_registry(self):
        from repro.ilp import available_backends

        backends = available_backends()
        assert "branch_bound" in backends
        assert "scipy" in backends  # scipy is a hard dependency here

    def test_auto_picks_scipy_for_large_models(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(100)]
        from repro.ilp import quicksum

        m.add_constr(quicksum(xs) <= 3)
        m.maximize(quicksum(xs))
        solution = m.solve(backend="auto")
        assert solution.backend == "scipy"

    def test_auto_picks_branch_bound_for_small_models(self):
        m = Model()
        x = m.add_binary("x")
        m.maximize(x)
        assert m.solve(backend="auto").backend == "branch_bound"
