"""Property test: the from-scratch solver and HiGHS find equal optima.

Random small MILPs (bounded, with x = 0 always feasible so statuses are
predictable) must produce the same optimal objective from both
backends — the guarantee that lets the synthesis use HiGHS for speed
while staying verifiable against the self-contained stack.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ilp import Model, SolveStatus, quicksum


@st.composite
def random_milp(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    m = draw(st.integers(min_value=1, max_value=4))
    model = Model("random")
    variables = []
    for i in range(n):
        kind = draw(st.sampled_from(["binary", "integer", "continuous"]))
        if kind == "binary":
            variables.append(model.add_binary(f"x{i}"))
        elif kind == "integer":
            variables.append(model.add_integer(f"x{i}", ub=5))
        else:
            variables.append(model.add_continuous(f"x{i}", ub=5))
    for j in range(m):
        coefs = [
            draw(st.integers(min_value=-3, max_value=3)) for _ in range(n)
        ]
        if not any(coefs):
            continue  # an all-zero row is not a constraint
        rhs = draw(st.integers(min_value=0, max_value=12))  # 0 feasible
        model.add_constr(
            quicksum(c * x for c, x in zip(coefs, variables)) <= rhs
        )
    obj = [draw(st.integers(min_value=-5, max_value=5)) for _ in range(n)]
    model.maximize(quicksum(c * x for c, x in zip(obj, variables)))
    return model


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(random_milp())
def test_backends_find_equal_optima(model):
    mine = model.solve(backend="branch_bound", lp_engine="simplex")
    highs = model.solve(backend="scipy")
    assert mine.status is SolveStatus.OPTIMAL
    assert highs.status is SolveStatus.OPTIMAL
    assert mine.objective == pytest.approx(highs.objective, abs=1e-5)
    # Both solutions must actually satisfy the model.
    assert model.check_solution(mine.values) == []
    assert model.check_solution(highs.values) == []
