"""Regression tests: solver behavior at its own limits.

Three bugs shared one root cause — treating "the solver gave up" as
"the subproblem has no solution":

1. a branch-&-bound node whose LP relaxation hit its iteration cap
   (``NO_SOLUTION``) was pruned as if proven infeasible, letting the
   search report OPTIMAL / INFEASIBLE over a subtree it never explored;
2. an UNBOUNDED relaxation below the root was silently dropped while
   the search still claimed exhaustion;
3. the simplex ratio test accepted a new minimum only when it was more
   than ``_EPS`` smaller, so a strictly smaller ratio inside the
   epsilon band could be skipped, driving a basic variable negative.
"""

import math

import numpy as np
import pytest

import repro.ilp.branch_bound as bb
from repro.ilp import Model, SolveStatus, quicksum
from repro.ilp.branch_bound import solve_branch_bound
from repro.ilp.simplex import _EPS, LpResult, _simplex_core, solve_lp


def knapsack_model():
    m = Model("knapsack")
    values = [10, 13, 7, 8, 6]
    weights = [5, 6, 3, 4, 2]
    xs = [m.add_binary(f"x{i}") for i in range(5)]
    m.add_constr(quicksum(w * x for w, x in zip(weights, xs)) <= 10)
    m.maximize(quicksum(v * x for v, x in zip(values, xs)))
    return m


class TestLpIterationCap:
    def test_capped_lp_reports_no_solution(self):
        # A cap of 1 pivot cannot finish even phase 1 of the knapsack
        # relaxation; the LP must say "unknown", not "infeasible".
        res = solve_lp(
            np.array([-1.0, -1.0]),
            np.array([[1.0, 1.0]]),
            np.array([2.0]),
            np.zeros((0, 2)),
            np.zeros(0),
            [(0.0, 1.0), (0.0, 1.0)],
            max_iterations=1,
        )
        assert res.status is SolveStatus.NO_SOLUTION

    def test_capped_relaxations_do_not_fake_infeasibility(self):
        # Every relaxation hits the cap, so nothing is explored — the
        # search must degrade to NO_SOLUTION, never claim INFEASIBLE.
        sol = solve_branch_bound(knapsack_model(), lp_max_iterations=1)
        assert sol.status is SolveStatus.NO_SOLUTION
        assert sol.stats["nodes_lp_limit"] > 0

    def test_generous_cap_recovers_the_optimum(self):
        sol = solve_branch_bound(knapsack_model(), lp_max_iterations=10_000)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(23.0)


class TestUnboundedBelowRoot:
    def test_dropped_subtree_breaks_exhaustion(self, monkeypatch):
        # With exact arithmetic a child region (a subset of the root's)
        # can never be unbounded when the root was bounded, so the only
        # real-world source is a numerically confused LP engine — fake
        # one: OPTIMAL-fractional at the root, UNBOUNDED below it.
        calls = {"n": 0}

        def flaky_relaxation(c, a_ub, b_ub, a_eq, b_eq, bounds, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                return LpResult(
                    SolveStatus.OPTIMAL, np.array([1.5]), -1.5
                )
            return LpResult(SolveStatus.UNBOUNDED)

        monkeypatch.setattr(bb, "_solve_relaxation", flaky_relaxation)
        m = Model()
        x = m.add_integer("x", ub=10)
        m.add_constr(2 * x <= 3)
        m.maximize(x)
        # Presolve would fold 2x <= 3 into the bound (making the faked
        # ceil child trivially empty), and the cut loop and rounding
        # dive would bypass the monkeypatch; disable all three to keep
        # the scenario intact.
        sol = solve_branch_bound(m, presolve=False, cuts=False, dive=False)
        # Both children were dropped unexplored: the search must report
        # "unknown", not certify infeasibility.
        assert sol.status is SolveStatus.NO_SOLUTION
        assert sol.stats["nodes_unbounded_dropped"] == 2

    def test_unbounded_root_still_reported(self):
        m = Model()
        x = m.add_integer("x")  # no upper bound
        m.maximize(x)
        assert solve_branch_bound(m).status is SolveStatus.UNBOUNDED


class TestRatioTestEpsilonBand:
    def test_chained_near_ties_keep_basis_feasible(self):
        # Six rows whose ratios ascend by 0.9e-9 — each within _EPS of
        # its predecessor but the last 4.5e-9 above the true minimum —
        # while basis indices descend, so a tie-break that *updates* the
        # best ratio walks all the way up the chain and pivots on the
        # largest ratio, driving row 0 negative beyond _EPS.  The fix
        # takes the exact minimum ratio and applies Bland's smallest-
        # basis-index tie-break only inside the band around it.
        m = 6
        a = np.zeros((m, 1 + m))
        a[:, 0] = 1.0  # the entering column
        for i in range(m):
            a[i, m - i] = 1.0  # anti-diagonal identity: basic columns
        basis = [m - i for i in range(m)]  # [6, 5, 4, 3, 2, 1]
        b = np.array([1.0 + i * 0.9e-9 for i in range(m)])
        c = np.zeros(1 + m)
        c[0] = -1.0  # column 0 prices in immediately
        status, _, iterations = _simplex_core(a, b, c, basis, 100)
        assert status is SolveStatus.OPTIMAL
        assert iterations >= 1
        # The invariant the seed code violated: every basic value stays
        # within _EPS of feasibility after the pivot.
        assert np.all(b >= -_EPS), f"negative basic values: {b.min()}"

    def test_strictly_smaller_ratio_always_wins(self):
        # A ratio well below the incumbent (not a near-tie) must be
        # taken no matter the basis ordering.
        a = np.array([[1.0, 1.0, 0.0], [1.0, 0.0, 1.0]])
        basis = [2, 1]  # larger basis index owns the smaller ratio
        b = np.array([5.0, 1.0])
        c = np.array([-1.0, 0.0, 0.0])
        status, objective, _ = _simplex_core(a, b, c, basis, 100)
        assert status is SolveStatus.OPTIMAL
        assert objective == pytest.approx(-1.0)
        assert np.all(b >= -_EPS)


class TestBackendsAgreeOnWindowedMapping:
    def test_branch_bound_matches_highs_on_pcr_window(self):
        # One rolling-horizon window of the PCR assay (the first two
        # tasks on a coarse anchor grid): the from-scratch stack and
        # HiGHS must certify the same minimal pump load.
        from repro.assays import get_case, schedule_for
        from repro.core.mapping_model import MappingModelBuilder, MappingSpec
        from repro.core.tasks import build_tasks

        case = get_case("pcr")
        graph = case.graph()
        schedule = schedule_for(case, case.policies(1)[0])
        tasks = build_tasks(graph, schedule)
        spec = MappingSpec(grid=case.grid, tasks=tasks[:2], anchor_stride=3)
        built = MappingModelBuilder(spec).build()

        mine = built.model.solve(backend="branch_bound", lp_engine="simplex")
        highs = built.model.solve(backend="scipy")
        assert mine.status is SolveStatus.OPTIMAL
        assert highs.status is SolveStatus.OPTIMAL
        assert mine.objective == pytest.approx(highs.objective, abs=1e-6)
        assert not math.isnan(mine.objective)
        assert mine.stats["nodes_explored"] > 0
