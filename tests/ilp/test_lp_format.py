"""Unit tests for the LP-format export."""

import pytest

from repro.ilp import Model, quicksum
from repro.ilp.lp_format import to_lp_string, write_lp


def small_model():
    m = Model("demo")
    x = m.add_binary("x")
    y = m.add_integer("y", lb=1, ub=7)
    z = m.add_continuous("z", lb=-2.0, ub=3.5)
    m.add_constr(2 * x + y - z <= 5, "cap")
    m.add_constr(y + 0 == 4)
    m.maximize(3 * x + y + 0.5 * z)
    return m, (x, y, z)


class TestLpExport:
    def test_sections_present(self):
        m, _ = small_model()
        text = to_lp_string(m)
        for section in ("Maximize", "Subject To", "Bounds",
                        "Generals", "Binaries", "End"):
            assert section in text

    def test_constraints_rendered(self):
        m, _ = small_model()
        text = to_lp_string(m)
        assert "cap_0:" in text
        assert "<= 5" in text
        assert "= 4" in text

    def test_bounds_rendered(self):
        m, _ = small_model()
        text = to_lp_string(m)
        assert "1 <= y__1 <= 7" in text
        assert "-2 <= z__2 <= 3.5" in text

    def test_minimize_header(self):
        m = Model()
        x = m.add_binary("x")
        m.minimize(x)
        assert "Minimize" in to_lp_string(m)

    def test_nasty_names_sanitized(self):
        m = Model()
        s = m.add_binary("s[3,4,k=2,op o1]")
        m.minimize(s)
        text = to_lp_string(m)
        assert "[" not in text.split("\\", 1)[-1].replace("\\", "")
        assert "s_3_4_k_2_op_o1___0" in text  # trailing ']' -> '_'

    def test_file_write(self, tmp_path):
        m, _ = small_model()
        path = tmp_path / "model.lp"
        write_lp(m, str(path))
        assert path.read_text() == to_lp_string(m)

    def test_real_mapping_model_exports(self, pcr, fig9_schedule):
        from repro.core.mapping_model import MappingModelBuilder, MappingSpec
        from repro.core.tasks import build_tasks
        from repro.geometry import GridSpec

        tasks = build_tasks(pcr, fig9_schedule)
        built = MappingModelBuilder(
            MappingSpec(grid=GridSpec(9, 9), tasks=tasks)
        ).build()
        text = to_lp_string(built.model)
        assert "one_device_o1" in text.replace("[", "_").replace("]", "_")
        assert text.endswith("End\n")
        assert text.count("\n") > built.model.num_constrs
