"""Tests for the fault-adaptive lifetime engine (DESIGN.md §12)."""

import pytest

from repro.errors import SynthesisError
from repro.geometry import GridSpec, Point
from repro.architecture.channel_edges import ChannelEdge
from repro.core.mappers import GreedyMapper
from repro.core.synthesis import ReliabilitySynthesizer, SynthesisConfig
from repro.resilience import (
    FAULTS,
    AdaptiveLifetimeEngine,
    FailureModel,
    FailureProcess,
    RemapPolicy,
    compare_lifetimes,
)

from tests.conftest import build_tiny_assay


@pytest.fixture(scope="module")
def tiny():
    return build_tiny_assay()


def tiny_config(side: int = 10) -> SynthesisConfig:
    return SynthesisConfig(grid=GridSpec(side, side), mapper=GreedyMapper())


@pytest.fixture(scope="module")
def tiny_wear(tiny):
    """Max per-valve wear of one tiny-assay run on the 10x10 grid."""
    graph, schedule = tiny
    result = ReliabilitySynthesizer(tiny_config()).synthesize(graph, schedule)
    return result.metrics.setting1.max_total


class TestFailureModel:
    def test_defaults_are_valid(self):
        assert FailureModel().wear_budget == 4000

    def test_rejects_bad_budget(self):
        with pytest.raises(SynthesisError, match="wear budget"):
            FailureModel(wear_budget=0)

    def test_rejects_bad_probability(self):
        with pytest.raises(SynthesisError, match="not a probability"):
            FailureModel(valve_fail_prob=1.5)

    def test_rejects_negative_acceleration(self):
        with pytest.raises(SynthesisError, match="wear_acceleration"):
            FailureModel(wear_acceleration=-0.1)


class TestFailureProcess:
    def test_exhaustion_is_prospective(self):
        process = FailureProcess(FailureModel(wear_budget=100))
        cells = {Point(0, 0): 60}
        process.commit_run(cells, {})
        # 60 worn; another 60 would blow the 100 budget
        dead_c, dead_e = process.exhausted_by_next_run(cells, {})
        assert dead_c == [Point(0, 0)] and dead_e == []

    def test_commit_accumulates(self):
        process = FailureProcess(FailureModel(wear_budget=100))
        edge = ChannelEdge(0, 0, horizontal=True)
        process.commit_run({Point(1, 1): 5}, {edge: 7})
        process.commit_run({Point(1, 1): 5}, {edge: 7})
        assert process.cell_wear[Point(1, 1)] == 10
        assert process.edge_wear[edge] == 14

    def test_sampling_is_seeded(self):
        def draws(seed):
            process = FailureProcess(
                FailureModel(valve_fail_prob=0.3, seed=seed)
            )
            cells = {Point(x, 0): 1 for x in range(20)}
            return [process.sample_failures(cells, {}) for _ in range(5)]

        assert draws(3) == draws(3)
        assert draws(3) != draws(4)

    def test_no_hazard_no_deaths(self):
        process = FailureProcess(FailureModel())
        dead_c, dead_e = process.sample_failures({Point(0, 0): 1}, {})
        assert dead_c == [] and dead_e == []


class TestStaticBaseline:
    def test_static_matches_synthesis_lifetime(self, tiny, tiny_wear):
        """Static repetitions == wear_budget // wear_per_run exactly."""
        graph, schedule = tiny
        model = FailureModel(wear_budget=3 * tiny_wear + 1, seed=0)
        engine = AdaptiveLifetimeEngine(
            graph, schedule, tiny_config(), model=model
        )
        report = engine.run(max_runs=50, adaptive=False)
        assert report.runs == 3
        assert "static design cannot remap" in report.terminal_cause
        assert not report.adaptive
        assert report.failures > 0  # the wear-out deaths are recorded

    def test_dead_on_arrival_chip_runs_zero(self, tiny, tiny_wear):
        """Budget below one run's wear: explicit 0-run terminal report."""
        graph, schedule = tiny
        model = FailureModel(wear_budget=tiny_wear - 1, seed=0)
        engine = AdaptiveLifetimeEngine(
            graph, schedule, tiny_config(), model=model,
            policy=RemapPolicy(max_attempts=1, preventive_horizon=None),
        )
        report = engine.run(max_runs=5, adaptive=False)
        assert report.runs == 0
        assert report.terminal_cause is not None


class TestAdaptiveEngine:
    def test_adaptive_outlives_static(self, tiny, tiny_wear):
        graph, schedule = tiny
        model = FailureModel(wear_budget=3 * tiny_wear + 1, seed=0)
        comparison = compare_lifetimes(
            graph, schedule, tiny_config(), model=model, max_runs=50
        )
        assert comparison.static.runs == 3
        assert comparison.adaptive.runs > comparison.static.runs
        assert comparison.gain > 1.0
        assert comparison.adaptive.remaps >= 1

    def test_runs_are_deterministic(self, tiny, tiny_wear):
        graph, schedule = tiny
        model = FailureModel(
            wear_budget=3 * tiny_wear + 1, valve_fail_prob=0.001, seed=11
        )

        def lifetime():
            engine = AdaptiveLifetimeEngine(
                graph, schedule, tiny_config(), model=model
            )
            return engine.run(max_runs=30, adaptive=True).runs

        assert lifetime() == lifetime()

    def test_every_generation_is_validated(self, tiny, tiny_wear):
        """The oracle stamps each adopted design with a clean audit."""
        graph, schedule = tiny
        model = FailureModel(wear_budget=3 * tiny_wear + 1, seed=0)
        engine = AdaptiveLifetimeEngine(
            graph, schedule, tiny_config(), model=model
        )
        report = engine.run(max_runs=50, adaptive=True)
        assert report.remaps >= 1
        # remap events only enter the log after simulate() + audit pass
        remap_events = [e for e in report.events if e.kind == "remap"]
        assert len(remap_events) >= 1
        assert all("mapper=" in e.detail for e in remap_events)

    def test_run_limit_terminates_cleanly(self, tiny):
        graph, schedule = tiny
        engine = AdaptiveLifetimeEngine(
            graph, schedule, tiny_config(),
            model=FailureModel(wear_budget=10**6, seed=0),
        )
        report = engine.run(max_runs=3, adaptive=True)
        assert report.runs == 3
        assert "run limit" in report.terminal_cause

    def test_report_serializes(self, tiny, tiny_wear):
        graph, schedule = tiny
        model = FailureModel(wear_budget=3 * tiny_wear + 1, seed=0)
        engine = AdaptiveLifetimeEngine(
            graph, schedule, tiny_config(), model=model
        )
        payload = engine.run(max_runs=20, adaptive=True).as_dict()
        assert payload["assay"] == "tiny"
        assert payload["runs"] > 0
        assert isinstance(payload["final_health"]["dead_cells"], list)
        assert all(
            set(e) == {"run", "kind", "detail"} for e in payload["events"]
        )


class TestChaosInjection:
    def test_injected_valve_and_edge_deaths_are_remapped(self, tiny):
        """chip.* sites force deterministic deaths; the engine survives."""
        graph, schedule = tiny
        engine = AdaptiveLifetimeEngine(
            graph, schedule, tiny_config(),
            model=FailureModel(wear_budget=10**5, seed=0),
        )
        plan = {
            "chip.valve_dead": {"times": 2, "after": 1},
            "chip.edge_dead": 1,
        }
        with FAULTS.inject(plan):
            report = engine.run(max_runs=8, adaptive=True)
            fired = FAULTS.fired()
        assert fired == {"chip.valve_dead": 2, "chip.edge_dead": 1}
        assert report.runs == 8  # survived to the run limit
        assert report.remaps == 3
        assert len(report.final_health.dead_cells) == 2
        assert len(report.final_health.dead_edges) == 1

    def test_static_design_dies_at_first_injected_fault(self, tiny):
        graph, schedule = tiny
        engine = AdaptiveLifetimeEngine(
            graph, schedule, tiny_config(),
            model=FailureModel(wear_budget=10**5, seed=0),
        )
        with FAULTS.inject({"chip.valve_dead": 1}):
            report = engine.run(max_runs=8, adaptive=False)
        assert report.runs == 1
        assert "hardware fault" in report.terminal_cause

    def test_sites_free_when_disarmed(self, tiny):
        graph, schedule = tiny
        engine = AdaptiveLifetimeEngine(
            graph, schedule, tiny_config(),
            model=FailureModel(wear_budget=10**5, seed=0),
        )
        report = engine.run(max_runs=2, adaptive=True)
        assert report.failures == 0
        assert report.final_health.is_healthy


class TestGracefulDegradation:
    def test_infeasible_remap_is_terminal_not_a_crash(self, tiny):
        """A tight grid cannot absorb batch wear-out: terminal report."""
        graph, schedule = tiny
        config = tiny_config(side=8)
        result = ReliabilitySynthesizer(config).synthesize(graph, schedule)
        wear = result.metrics.setting1.max_total
        engine = AdaptiveLifetimeEngine(
            graph, schedule, config,
            model=FailureModel(wear_budget=wear + 1, seed=0),
            policy=RemapPolicy(max_attempts=2, preventive_horizon=None),
        )
        report = engine.run(max_runs=10, adaptive=True)
        assert report.runs >= 1
        assert "remap infeasible" in report.terminal_cause
        assert any(e.kind == "remap-failed" for e in report.events)
        assert report.events[-1].kind == "terminal"

    def test_initial_synthesis_failure_is_terminal(self, tiny):
        from repro.architecture.health import ChipHealth

        graph, schedule = tiny
        # kill the whole grid: nothing can even be placed
        dead = ChipHealth.healthy().kill_cells(
            [Point(x, y) for x in range(10) for y in range(10)]
        )
        config = SynthesisConfig(
            grid=GridSpec(10, 10), mapper=GreedyMapper(), health=dead
        )
        engine = AdaptiveLifetimeEngine(graph, schedule, config)
        report = engine.run(max_runs=5, adaptive=True)
        assert report.runs == 0
        assert "initial synthesis" in report.terminal_cause


class TestTable1Gains:
    """ISSUE acceptance: >= 1.5x repetitions-to-failure on two assays."""

    def test_mixing_tree_gain(self):
        from repro.assays import get_case, schedule_for

        case = get_case("mixing_tree")
        graph = case.graph()
        schedule = schedule_for(case, case.policy1())
        comparison = compare_lifetimes(
            graph, schedule,
            SynthesisConfig(grid=GridSpec(13, 13), mapper=GreedyMapper()),
            model=FailureModel(wear_budget=500, seed=7),
            max_runs=100,
        )
        assert comparison.gain >= 1.5
        assert comparison.adaptive.runs >= 10

    def test_pcr_gain(self):
        from repro.assays import get_case, schedule_for

        case = get_case("pcr")
        graph = case.graph()
        schedule = schedule_for(case, case.policy1())
        comparison = compare_lifetimes(
            graph, schedule,
            SynthesisConfig(grid=GridSpec(11, 11)),
            model=FailureModel(wear_budget=500, seed=7),
            max_runs=100,
        )
        assert comparison.gain >= 1.5
