"""End-to-end crash/resume: SIGKILL a checkpointed synthesis, resume it.

The one test the whole crash-safety layer exists for (DESIGN.md §14):

1. a driver process runs a supervised, checkpointed, windowed
   synthesis of a deep mixing tree;
2. the parent polls the journal and SIGKILLs the driver the moment at
   least one window record is durable — a real, unannounced ``kill -9``
   mid-run;
3. a resumed run pointed at the same checkpoint directory must replay
   the surviving records (``checkpoint_resume`` rung, journal hits),
   re-solve only what is absent, and land on the *same* certified
   mapping objective with a clean independent audit as an
   uninterrupted reference run.
"""

import os
import signal
import subprocess
import sys
import time
import warnings

import pytest

from repro.assay.scheduler import ListScheduler, SchedulerConfig
from repro.assay.sequencing_graph import SequencingGraph
from repro.core.mappers import WindowedILPMapper
from repro.core.synthesis import ReliabilitySynthesizer, SynthesisConfig
from repro.errors import DegradedResultWarning
from repro.geometry import GridSpec
from repro.resilience import DegradationLadder

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO, "src")

#: The driver re-builds the identical assay from this module, so the
#: window spec keys of both processes agree byte for byte.
DRIVER = """\
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {repo!r})
from tests.resilience.test_crash_resume import build_deep_assay, make_config
from repro.core.synthesis import ReliabilitySynthesizer

graph, schedule = build_deep_assay()
config = make_config(checkpoint={ckpt!r}, supervised=True)
ReliabilitySynthesizer(config).synthesize(graph, schedule)
"""


def build_deep_assay():
    """A 7-mix binary tree — enough windows that a kill lands mid-run."""
    graph = SequencingGraph("deep")
    for i in range(8):
        graph.add_input(f"in{i}", volume=4)
    for i in range(4):
        graph.add_mix(f"a{i}", (f"in{2 * i}", f"in{2 * i + 1}"),
                      duration=6, volume=8)
    for i in range(2):
        graph.add_mix(f"b{i}", (f"a{2 * i}", f"a{2 * i + 1}"),
                      duration=6, volume=8)
    graph.add_mix("c", ("b0", "b1"), duration=4, volume=8)
    schedule = ListScheduler(SchedulerConfig()).schedule(graph)
    return graph, schedule


def make_config(checkpoint=None, supervised=False):
    return SynthesisConfig(
        grid=GridSpec(10, 10),
        mapper=WindowedILPMapper(window_size=2),
        certify="audit",
        checkpoint=checkpoint,
        supervised=supervised,
    )


def _journal_records(ckpt):
    path = os.path.join(ckpt, "journal.jsonl")
    try:
        with open(path, "r", encoding="utf-8") as f:
            return sum(1 for line in f if line.strip())
    except OSError:
        return 0


@pytest.mark.slow
def test_sigkill_mid_synthesis_then_resume(tmp_path):
    ckpt = str(tmp_path / "ckpt")

    # Uninterrupted reference (no checkpoint involved).
    graph, schedule = build_deep_assay()
    reference = ReliabilitySynthesizer(make_config()).synthesize(
        graph, schedule
    )
    assert reference.audit is not None and reference.audit.ok

    # Crash: kill -9 the driver as soon as one record is durable.
    driver = subprocess.Popen(
        [sys.executable, "-c", DRIVER.format(src=SRC, repo=REPO, ckpt=ckpt)],
        cwd=REPO,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 120.0
    try:
        while _journal_records(ckpt) < 1:
            if driver.poll() is not None:
                stderr = driver.stderr.read().decode(errors="replace")
                pytest.fail(
                    f"driver exited (rc={driver.returncode}) before the "
                    f"first journal record:\n{stderr}"
                )
            if time.monotonic() > deadline:
                pytest.fail("no journal record within 120 s")
            time.sleep(0.005)
    finally:
        if driver.poll() is None:
            driver.send_signal(signal.SIGKILL)
        driver.wait(timeout=30.0)
        driver.stderr.close()
    assert driver.returncode == -signal.SIGKILL
    survived = _journal_records(ckpt)
    assert survived >= 1

    # Resume: replay what survived, re-solve only what is absent.
    graph, schedule = build_deep_assay()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        resumed = ReliabilitySynthesizer(
            make_config(checkpoint=ckpt)
        ).synthesize(graph, schedule)
    hits = resumed.resilience.count(DegradationLadder.CHECKPOINT_RESUME)
    assert hits >= 1
    assert any(w.category is DegradedResultWarning for w in caught)

    # The resumed design is the reference design: same certified
    # mapping objective, clean independent audit.
    assert resumed.metrics.mapping_objective == (
        reference.metrics.mapping_objective
    )
    assert resumed.audit is not None and resumed.audit.ok
    assert resumed.metrics.setting1.max_total == (
        reference.metrics.setting1.max_total
    )
    assert resumed.metrics.setting2.max_total == (
        reference.metrics.setting2.max_total
    )
