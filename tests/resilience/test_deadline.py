"""Unit tests for the Deadline budget and the ladder/report pair."""

import pytest

from repro.errors import TimeLimitError
from repro.obs import TELEMETRY
from repro.resilience import Deadline, DegradationLadder, ResilienceReport


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_fresh_deadline_not_expired(self):
        clock = FakeClock()
        d = Deadline(10.0, clock=clock)
        assert not d.expired
        assert d.budget == 10.0
        assert d.remaining() == pytest.approx(10.0)

    def test_expires_exactly_at_budget(self):
        clock = FakeClock()
        d = Deadline(10.0, clock=clock)
        clock.advance(9.999)
        assert not d.expired
        clock.advance(0.001)
        assert d.expired
        assert d.remaining() == 0.0

    def test_remaining_clamped_at_zero(self):
        clock = FakeClock()
        d = Deadline(1.0, clock=clock)
        clock.advance(5.0)
        assert d.remaining() == 0.0

    def test_check_raises_time_limit_error_with_stage(self):
        clock = FakeClock()
        d = Deadline(1.0, clock=clock)
        d.check("mapping")  # fine while fresh
        clock.advance(2.0)
        with pytest.raises(TimeLimitError, match="mapping"):
            d.check("mapping")

    def test_limit_returns_remaining(self):
        clock = FakeClock()
        d = Deadline(10.0, clock=clock)
        clock.advance(4.0)
        assert d.limit() == pytest.approx(6.0)

    def test_limit_cap_wins_when_tighter(self):
        clock = FakeClock()
        d = Deadline(10.0, clock=clock)
        assert d.limit(2.0) == pytest.approx(2.0)
        clock.advance(9.0)
        assert d.limit(2.0) == pytest.approx(1.0)

    def test_limit_zero_when_expired(self):
        clock = FakeClock()
        d = Deadline(1.0, clock=clock)
        clock.advance(2.0)
        assert d.limit() == 0.0
        assert d.limit(5.0) == 0.0

    def test_sub_carves_fraction_of_remaining(self):
        clock = FakeClock()
        d = Deadline(10.0, clock=clock)
        clock.advance(2.0)  # 8 s left
        child = d.sub(0.5)
        assert child.budget == pytest.approx(4.0)
        assert child.remaining() == pytest.approx(4.0)
        # The parent is unaffected.
        assert d.remaining() == pytest.approx(8.0)

    def test_sub_child_expires_before_parent(self):
        clock = FakeClock()
        d = Deadline(10.0, clock=clock)
        child = d.sub(0.5)
        clock.advance(6.0)
        assert child.expired
        assert not d.expired

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.5])
    def test_sub_rejects_bad_fraction(self, fraction):
        with pytest.raises(ValueError):
            Deadline(10.0, clock=FakeClock()).sub(fraction)


class TestResilienceReport:
    def test_clean_report(self):
        report = ResilienceReport(budget=30.0)
        assert not report.degraded
        assert report.rung_counts() == {}
        assert report.summary() == "no degradation"
        assert report.as_dict() == {
            "budget": 30.0,
            "degraded": False,
            "rungs": {},
            "events": [],
        }

    def test_record_and_counts(self):
        report = ResilienceReport()
        report.record("mapping", "window_shrink", "w1")
        report.record("mapping", "window_shrink", "w2")
        report.record("routing", "routing_relaxed")
        assert report.degraded
        assert report.count("window_shrink") == 2
        assert report.rung_counts() == {
            "window_shrink": 2,
            "routing_relaxed": 1,
        }
        assert "window_shrink x2" in report.summary()
        data = report.as_dict()
        assert data["degraded"] is True
        assert data["events"][0] == {
            "stage": "mapping",
            "rung": "window_shrink",
            "detail": "w1",
        }

    def test_record_mirrors_into_telemetry(self):
        TELEMETRY.reset()
        TELEMETRY.enabled = True
        try:
            report = ResilienceReport()
            report.record("pool", "pool_serial")
            counters = TELEMETRY.snapshot()["counters"]
        finally:
            TELEMETRY.enabled = False
            TELEMETRY.reset()
        assert counters["resilience.pool_serial"] == 1


class TestDegradationLadder:
    def test_engage_records_on_report(self):
        report = ResilienceReport()
        ladder = DegradationLadder(report)
        ladder.engage("mapping", DegradationLadder.WINDOW_GREEDY, "w")
        assert ladder.fired(DegradationLadder.WINDOW_GREEDY) == 1
        assert report.count(DegradationLadder.WINDOW_GREEDY) == 1

    def test_default_report_is_owned(self):
        ladder = DegradationLadder()
        ladder.engage("mapping", DegradationLadder.WHOLE_GREEDY)
        assert ladder.report.degraded

    def test_rung_constants_are_complete(self):
        assert set(DegradationLadder.RUNGS) == {
            "window_shrink",
            "window_greedy",
            "pool_serial",
            "worker_retry",
            "worker_serial",
            "checkpoint_resume",
            "whole_greedy",
            "mapping_greedy",
            "deadline_greedy",
            "anytime_heuristic",
            "routing_relaxed",
            "routing_overrun",
            "serve_shed",
            "serve_breaker",
        }
