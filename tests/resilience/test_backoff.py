"""BackoffPolicy: capped exponential growth, deterministic jitter."""

import pytest

from repro.resilience import BackoffPolicy


class TestShape:
    def test_unjittered_schedule_is_exact(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=1.0, jitter=0.0)
        assert policy.schedule(5, "site") == [0.1, 0.2, 0.4, 0.8, 1.0]

    def test_cap_bounds_every_delay(self):
        policy = BackoffPolicy(base=0.5, factor=3.0, cap=0.75, jitter=0.5)
        for delay in policy.schedule(8, "site"):
            assert delay <= 0.75

    def test_jitter_only_shaves_never_extends(self):
        policy = BackoffPolicy(base=0.2, factor=2.0, cap=10.0, jitter=0.5)
        for attempt, delay in enumerate(policy.schedule(6, "site")):
            nominal = min(10.0, 0.2 * 2.0 ** attempt)
            assert 0.5 * nominal <= delay <= nominal

    def test_delays_iterator_matches_schedule(self):
        policy = BackoffPolicy()
        stream = policy.delays("mapper", seed=7)
        assert [next(stream) for _ in range(4)] == policy.schedule(
            4, "mapper", seed=7
        )


class TestDeterminism:
    def test_same_site_and_seed_sleep_identically(self):
        policy = BackoffPolicy(jitter=1.0)
        assert policy.schedule(6, "synthesis", seed=3) == policy.schedule(
            6, "synthesis", seed=3
        )

    def test_site_keys_the_jitter_stream(self):
        policy = BackoffPolicy(jitter=1.0)
        assert policy.schedule(6, "a", seed=0) != policy.schedule(
            6, "b", seed=0
        )

    def test_seed_perturbs_the_jitter_stream(self):
        policy = BackoffPolicy(jitter=1.0)
        assert policy.schedule(6, "a", seed=0) != policy.schedule(
            6, "a", seed=1
        )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": -0.1},
            {"factor": 0.5},
            {"cap": -1.0},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_bad_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)
