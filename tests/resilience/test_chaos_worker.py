"""Chaos suite for the crash-safety layer (DESIGN.md §14).

Mirrors :mod:`tests.resilience.test_chaos`: each test arms one of the
four new fault sites, runs a full synthesis in supervised and/or
checkpointed mode, and asserts the run degrades along the intended
rung while the result still executes on the chip simulator.
"""

import warnings

import pytest

from repro.core.mappers import WindowedILPMapper
from repro.core.simulation import ChipSimulator
from repro.core.synthesis import ReliabilitySynthesizer, SynthesisConfig
from repro.errors import CorruptJournalWarning, DegradedResultWarning
from repro.geometry import GridSpec
from repro.resilience import FAULTS, DegradationLadder

from tests.conftest import build_tiny_assay


def synthesize_tiny(expect_degraded=True, **config_kwargs):
    graph, schedule = build_tiny_assay()
    config = SynthesisConfig(grid=GridSpec(8, 8), **config_kwargs)
    synthesizer = ReliabilitySynthesizer(config)
    if expect_degraded:
        with pytest.warns(DegradedResultWarning):
            return synthesizer.synthesize(graph, schedule)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DegradedResultWarning)
        return synthesizer.synthesize(graph, schedule)


def assert_simulator_valid(result):
    report = ChipSimulator(result).run()
    assert report.products_delivered >= 1


class TestWorkerSites:
    def test_worker_crash_retries_and_recovers(self):
        with FAULTS.inject({"worker.crash": 1}):
            result = synthesize_tiny(supervised=True)
            assert FAULTS.fired("worker.crash") == 1
        assert result.resilience.count(DegradationLadder.WORKER_RETRY) >= 1
        assert result.resilience.count(DegradationLadder.WORKER_SERIAL) == 0
        assert_simulator_valid(result)

    def test_worker_hang_is_killed_and_retried(self):
        with FAULTS.inject({"worker.hang": 1}):
            result = synthesize_tiny(supervised=True)
        assert result.resilience.count(DegradationLadder.WORKER_RETRY) >= 1
        assert_simulator_valid(result)

    def test_worker_oom_is_killed_and_retried(self):
        with FAULTS.inject({"worker.oom": 1}):
            result = synthesize_tiny(supervised=True)
        assert result.resilience.count(DegradationLadder.WORKER_RETRY) >= 1
        assert_simulator_valid(result)

    def test_every_attempt_lost_falls_back_to_serial(self):
        # Enough planned crashes to exhaust all retries of the first
        # supervised solve: the mapper must re-solve in-process (the
        # worker_serial rung), not fail the synthesis.
        with FAULTS.inject({"worker.crash": 3}):
            result = synthesize_tiny(supervised=True)
        assert result.resilience.count(DegradationLadder.WORKER_SERIAL) >= 1
        assert_simulator_valid(result)

    def test_unfaulted_supervised_run_is_clean(self):
        result = synthesize_tiny(supervised=True, expect_degraded=False)
        assert result.resilience is None or not result.resilience.degraded
        assert_simulator_valid(result)


class TestCheckpointSite:
    def test_corrupt_append_costs_one_resolve(self, tmp_path):
        # Windowed mapping writes one record per window, so flipping a
        # single append still leaves intact records to replay from.
        ckpt = str(tmp_path)
        with FAULTS.inject({"checkpoint.corrupt": 1}):
            first = synthesize_tiny(
                expect_degraded=False,
                checkpoint=ckpt,
                mapper=WindowedILPMapper(window_size=2),
            )
            assert FAULTS.fired("checkpoint.corrupt") == 1

        # The resumed run loads the damaged journal: the flipped record
        # warns and misses, every intact record replays, and the final
        # design matches the uninterrupted one.  (One recording context
        # for both categories — nested pytest.warns would swallow the
        # inner capture.)
        graph, schedule = build_tiny_assay()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            second = ReliabilitySynthesizer(
                SynthesisConfig(
                    grid=GridSpec(8, 8),
                    checkpoint=ckpt,
                    mapper=WindowedILPMapper(window_size=2),
                )
            ).synthesize(graph, schedule)
        categories = {w.category for w in caught}
        assert CorruptJournalWarning in categories
        assert DegradedResultWarning in categories
        assert second.resilience.count(
            DegradationLadder.CHECKPOINT_RESUME
        ) >= 1
        assert second.metrics.mapping_objective == (
            first.metrics.mapping_objective
        )
        assert_simulator_valid(second)

    def test_clean_checkpoint_resume_replays_everything(self, tmp_path):
        ckpt = str(tmp_path)
        first = synthesize_tiny(expect_degraded=False, checkpoint=ckpt)
        second = synthesize_tiny(checkpoint=ckpt)
        mapping_stats = second.metrics  # resumed run, same design
        assert second.resilience.count(
            DegradationLadder.CHECKPOINT_RESUME
        ) >= 1
        assert mapping_stats.mapping_objective == (
            first.metrics.mapping_objective
        )
        assert_simulator_valid(second)
