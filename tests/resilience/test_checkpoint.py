"""CheckpointJournal: round-trips, content keys, corruption, tampering.

The journal's contract is asymmetric by design: the write path is one
hashed JSON line per solve, and ALL trust lives on the replay path —
CRC at load, full model re-check plus exact-arithmetic certification at
replay.  The fuzz tests therefore never expect an exception from
loading: a damaged journal costs re-solves, never a crash and never a
wrong answer.
"""

import json
import os
import warnings
import zlib

import pytest

from repro.core.mappers import ILPMapper
from repro.core.mapping_model import MappingSpec
from repro.core.tasks import MappingTask
from repro.errors import CheckpointError, CorruptJournalWarning
from repro.geometry import GridSpec
from repro.resilience import FAULTS, CheckpointJournal, DegradationLadder, spec_key
from repro.resilience.checkpoint import _JOURNAL_NAME


def task(name, start, end, volume=8, parents=()):
    return MappingTask(
        name=name,
        volume=volume,
        pump_rate=40,
        start=start,
        mix_start=start,
        end=end,
        mix_parents=tuple(parents),
    )


def small_spec(n=3, grid=8):
    tasks = []
    t = 0
    for i in range(n):
        parents = (f"m{i - 1}",) if i else ()
        tasks.append(task(f"m{i}", t, t + 4, parents=parents))
        t += 7
    return MappingSpec(GridSpec(grid, grid), tasks)


@pytest.fixture
def solved():
    spec = small_spec()
    return spec, ILPMapper().map_tasks(spec)


def journal_path(directory):
    return os.path.join(directory, _JOURNAL_NAME)


class TestRoundTrip:
    def test_record_then_replay_after_reopen(self, tmp_path, solved):
        spec, result = solved
        with CheckpointJournal(str(tmp_path)) as journal:
            journal.record(spec, result)
            assert journal.appended == 1

        ladder = DegradationLadder()
        with CheckpointJournal(str(tmp_path), ladder=ladder) as journal:
            assert len(journal) == 1
            replayed = journal.replay(spec)
        assert replayed is not None
        assert replayed.objective == result.objective
        assert replayed.placements == result.placements
        assert replayed.stats["checkpoint_replayed"] == 1.0
        assert ladder.fired(DegradationLadder.CHECKPOINT_RESUME) == 1

    def test_miss_on_unknown_spec(self, tmp_path, solved):
        spec, result = solved
        with CheckpointJournal(str(tmp_path)) as journal:
            journal.record(spec, result)
            assert journal.replay(small_spec(n=2)) is None
            assert journal.misses == 1

    def test_unwritable_directory_raises(self, solved):
        with pytest.raises(CheckpointError):
            CheckpointJournal("/proc/definitely/not/writable")


class TestSpecKey:
    def test_key_is_stable(self):
        assert spec_key(small_spec()) == spec_key(small_spec())

    def test_key_sees_grid(self):
        assert spec_key(small_spec(grid=8)) != spec_key(small_spec(grid=9))

    def test_key_sees_tasks(self):
        assert spec_key(small_spec(n=3)) != spec_key(small_spec(n=4))

    def test_key_sees_health(self):
        from repro.architecture.health import ChipHealth
        from repro.geometry import Point

        sick = small_spec()
        sick.health = ChipHealth(dead_cells=frozenset({Point(2, 2)}))
        assert spec_key(sick) != spec_key(small_spec())

    def test_key_ignores_solver_choice(self):
        # Same spec solved by any backend shares the record.
        spec = small_spec()
        key = spec_key(spec)
        assert key == spec_key(spec)  # no hidden mutable state consumed


class TestCorruptionFuzz:
    def _corrupt_and_load(self, tmp_path, mutate):
        path = journal_path(tmp_path)
        with open(path, "r", encoding="utf-8") as f:
            lines = f.readlines()
        with open(path, "w", encoding="utf-8") as f:
            f.writelines(mutate(lines))
        with pytest.warns(CorruptJournalWarning):
            journal = CheckpointJournal(str(tmp_path))
        journal.close()
        return journal

    def test_truncated_tail_skips_last_record(self, tmp_path, solved):
        spec, result = solved
        with CheckpointJournal(str(tmp_path)) as journal:
            journal.record(spec, result)
        journal = self._corrupt_and_load(
            tmp_path, lambda lines: lines[:-1] + [lines[-1][: len(lines[-1]) // 2]]
        )
        assert journal.corrupt == 1
        assert len(journal) == 0

    def test_flipped_byte_fails_crc(self, tmp_path, solved):
        spec, result = solved
        with CheckpointJournal(str(tmp_path)) as journal:
            journal.record(spec, result)

        def flip(lines):
            line = lines[0]
            middle = len(line) // 2
            swap = "#" if line[middle] != "#" else "@"
            return [line[:middle] + swap + line[middle + 1:]]

        journal = self._corrupt_and_load(tmp_path, flip)
        assert journal.corrupt == 1
        assert len(journal) == 0

    def test_garbage_lines_are_skipped(self, tmp_path, solved):
        spec, result = solved
        with CheckpointJournal(str(tmp_path)) as journal:
            journal.record(spec, result)

        def garbage(lines):
            return ["not json at all\n", "\x00\xff binary-ish\n"] + lines + [
                '{"key": "x"}\n'  # parseable, wrong shape
            ]

        journal = self._corrupt_and_load(tmp_path, garbage)
        assert journal.corrupt == 3
        assert len(journal) == 1  # the good record survived
        replayed = journal.replay(spec)
        assert replayed is not None
        assert replayed.objective == result.objective

    def test_empty_lines_are_not_corruption(self, tmp_path, solved):
        spec, result = solved
        with CheckpointJournal(str(tmp_path)) as journal:
            journal.record(spec, result)
        path = journal_path(tmp_path)
        with open(path, "a", encoding="utf-8") as f:
            f.write("\n\n")
        with warnings.catch_warnings():
            warnings.simplefilter("error", CorruptJournalWarning)
            journal = CheckpointJournal(str(tmp_path))
        journal.close()
        assert journal.corrupt == 0
        assert len(journal) == 1


class TestTamperRejection:
    def _rewrite_payload(self, tmp_path, edit):
        """Tamper with the payload and RECOMPUTE the CRC — the line is
        valid JSONL, so only replay certification can catch it."""
        path = journal_path(tmp_path)
        with open(path, "r", encoding="utf-8") as f:
            record = json.loads(f.readline())
        edit(record["payload"])
        body = {"key": record["key"], "payload": record["payload"]}
        canon = json.dumps(body, sort_keys=True, separators=(",", ":"))
        record["crc"] = zlib.crc32(canon.encode())
        with open(path, "w", encoding="utf-8") as f:
            f.write(json.dumps(record) + "\n")

    def test_overlapping_placements_rejected(self, tmp_path, solved):
        spec, result = solved
        with CheckpointJournal(str(tmp_path)) as journal:
            journal.record(spec, result)

        def collide(payload):
            first = next(iter(payload["placements"]))
            for name in payload["placements"]:
                payload["placements"][name] = list(
                    payload["placements"][first]
                )

        self._rewrite_payload(tmp_path, collide)
        journal = CheckpointJournal(str(tmp_path))
        with pytest.warns(CorruptJournalWarning):
            assert journal.replay(spec) is None
        assert journal.rejected == 1
        journal.close()

    def test_lying_objective_rejected(self, tmp_path, solved):
        spec, result = solved
        with CheckpointJournal(str(tmp_path)) as journal:
            journal.record(spec, result)
        self._rewrite_payload(
            tmp_path, lambda payload: payload.update(objective=1)
        )
        journal = CheckpointJournal(str(tmp_path))
        with pytest.warns(CorruptJournalWarning):
            assert journal.replay(spec) is None
        assert journal.rejected == 1
        journal.close()


class TestChaosSite:
    def test_checkpoint_corrupt_flips_one_append(self, tmp_path, solved):
        spec, result = solved
        with FAULTS.inject({"checkpoint.corrupt": 1}):
            with CheckpointJournal(str(tmp_path)) as journal:
                journal.record(spec, result)
            assert FAULTS.fired("checkpoint.corrupt") == 1
        with pytest.warns(CorruptJournalWarning):
            journal = CheckpointJournal(str(tmp_path))
        assert journal.corrupt == 1
        assert journal.replay(spec) is None  # miss — record lost, not wrong
        journal.close()

    def test_last_write_wins_on_duplicate_keys(self, tmp_path, solved):
        spec, result = solved
        with CheckpointJournal(str(tmp_path)) as journal:
            journal.record(spec, result)
            journal.record(spec, result)
        journal = CheckpointJournal(str(tmp_path))
        assert len(journal) == 1
        assert journal.replay(spec) is not None
        journal.close()
