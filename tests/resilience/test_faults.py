"""Unit tests for the deterministic fault injector."""

import pytest

from repro.resilience import FAULTS, FaultInjector, FaultSpec


@pytest.fixture
def injector():
    return FaultInjector()


class TestArming:
    def test_disarmed_by_default(self, injector):
        assert not injector.armed

    def test_inject_arms_and_disarms(self, injector):
        with injector.inject({"x": 1}):
            assert injector.armed
        assert not injector.armed

    def test_disarms_on_error(self, injector):
        with pytest.raises(RuntimeError, match="boom"):
            with injector.inject({"x": 1}):
                raise RuntimeError("boom")
        assert not injector.armed

    def test_double_arm_rejected(self, injector):
        with injector.inject({"x": 1}):
            with pytest.raises(RuntimeError, match="already armed"):
                with injector.inject({"y": 1}):
                    pass

    def test_fired_counts_survive_disarm(self, injector):
        with injector.inject({"x": 2}):
            assert injector.should_fire("x")
            assert injector.should_fire("x")
        assert injector.fired("x") == 2
        assert injector.fired() == {"x": 2}


class TestPlans:
    def test_int_plan_fires_n_times(self, injector):
        with injector.inject({"x": 2}):
            fires = [injector.should_fire("x") for _ in range(5)]
        assert fires == [True, True, False, False, False]

    def test_after_skips_leading_calls(self, injector):
        with injector.inject({"x": FaultSpec(times=1, after=2)}):
            fires = [injector.should_fire("x") for _ in range(5)]
        assert fires == [False, False, True, False, False]

    def test_times_none_fires_every_call(self, injector):
        with injector.inject({"x": FaultSpec(times=None)}):
            assert all(injector.should_fire("x") for _ in range(10))

    def test_mapping_plan_normalized(self, injector):
        with injector.inject({"x": {"times": 1, "after": 1}}):
            assert not injector.should_fire("x")
            assert injector.should_fire("x")

    def test_bad_plan_rejected(self, injector):
        with pytest.raises(TypeError):
            with injector.inject({"x": "often"}):
                pass

    def test_unplanned_site_never_fires(self, injector):
        with injector.inject({"x": 1}):
            assert not injector.should_fire("y")
        assert injector.fired("y") == 0


class TestDeterminism:
    def probabilistic_run(self, seed):
        injector = FaultInjector()
        with injector.inject(
            {"x": FaultSpec(times=None, prob=0.5)}, seed=seed
        ):
            return [injector.should_fire("x") for _ in range(32)]

    def test_same_seed_same_fires(self):
        assert self.probabilistic_run(7) == self.probabilistic_run(7)

    def test_different_seed_different_fires(self):
        assert self.probabilistic_run(1) != self.probabilistic_run(2)

    def test_reentry_replays_the_same_stream(self, injector):
        """Re-arming resets the crc32(site)^seed RNGs: the probabilistic
        stream replays identically across inject re-entry."""
        plan = {"x": FaultSpec(times=None, prob=0.5)}
        streams = []
        for _ in range(2):
            with injector.inject(plan, seed=9):
                streams.append(
                    [injector.should_fire("x") for _ in range(32)]
                )
        assert streams[0] == streams[1]

    def test_sites_draw_independent_streams(self, injector):
        plan = {
            "a": FaultSpec(times=None, prob=0.5),
            "b": FaultSpec(times=None, prob=0.5),
        }
        with injector.inject(plan, seed=3):
            a = [injector.should_fire("a") for _ in range(32)]
            b = [injector.should_fire("b") for _ in range(32)]
        assert a != b  # site key is part of the RNG seed


class TestModuleSingleton:
    def test_production_singleton_disarmed(self):
        assert not FAULTS.armed

    def test_all_documented_sites_exist_in_code(self):
        """Every site listed in the module docstring is actually checked."""
        import pathlib

        import repro

        src = pathlib.Path(repro.__file__).parent
        code = "\n".join(
            p.read_text() for p in src.rglob("*.py") if p.name != "faults.py"
        )
        for site in (
            "bb.time_limit",
            "scipy.milp",
            "mapper.pool",
            "routing.route",
            "chip.valve_dead",
            "chip.edge_dead",
        ):
            assert f'should_fire("{site}")' in code, site


class TestChipSitesZeroOverhead:
    """The chip.* sites cost one attribute read when disarmed."""

    def test_disarmed_injected_failures_never_consult_the_plan(
        self, monkeypatch
    ):
        from repro.geometry import Point
        from repro.resilience import FailureModel, FailureProcess
        import repro.resilience.faults as faults_module

        process = FailureProcess(FailureModel())

        def boom(self, site):  # pragma: no cover - must not run
            raise AssertionError("should_fire consulted while disarmed")

        monkeypatch.setattr(faults_module.FaultInjector, "should_fire", boom)
        assert not faults_module.FAULTS.armed
        dead_c, dead_e = process.injected_failures({Point(0, 0): 1}, {})
        assert dead_c == [] and dead_e == []

    def test_armed_chip_sites_kill_the_most_worn_resource(self):
        from repro.geometry import Point
        from repro.architecture.channel_edges import ChannelEdge
        from repro.resilience import FAULTS, FailureModel, FailureProcess

        process = FailureProcess(FailureModel())
        cells = {Point(0, 0): 5, Point(1, 0): 9}
        edges = {
            ChannelEdge(0, 0, horizontal=True): 3,
            ChannelEdge(0, 0, horizontal=False): 8,
        }
        with FAULTS.inject({"chip.valve_dead": 1, "chip.edge_dead": 1}):
            dead_c, dead_e = process.injected_failures(cells, edges)
        assert dead_c == [Point(1, 0)]
        assert dead_e == [ChannelEdge(0, 0, horizontal=False)]
