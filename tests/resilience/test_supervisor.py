"""WorkerSupervisor unit suite: every outcome of a watched attempt.

Worker functions live at module top level so they stay picklable under
any multiprocessing start method.  All sleeps and backoff delays are
kept in the low tens of milliseconds — the whole suite must stay fast
enough for tier 1.
"""

import os
import signal
import time

import pytest

from repro.errors import SynthesisError, WorkerCrashError
from repro.resilience import (
    FAULTS,
    BackoffPolicy,
    Deadline,
    DegradationLadder,
    WorkerSupervisor,
    run_supervised,
)
from repro.resilience.supervisor import _read_rss_mb

#: Fast retries so exhaustion tests finish in milliseconds.
FAST = BackoffPolicy(base=0.01, factor=2.0, cap=0.05, jitter=0.0)


def _double(payload):
    return payload * 2


def _boom(payload):
    raise SynthesisError(f"deterministic failure on {payload!r}")


def _suicide(payload):
    os.kill(os.getpid(), signal.SIGKILL)


def _sleep(payload):
    time.sleep(payload)
    return "slept"


class TestHappyPath:
    def test_result_crosses_the_process_boundary(self):
        assert WorkerSupervisor(backoff=FAST).run(_double, 21) == 42

    def test_run_supervised_wrapper(self):
        assert run_supervised(_double, (1, 2), backoff=FAST) == (1, 2, 1, 2)


class TestDeterministicErrors:
    def test_worker_exception_reraises_unchanged(self):
        with pytest.raises(SynthesisError, match="deterministic"):
            WorkerSupervisor(backoff=FAST).run(_boom, "x")

    def test_worker_exception_is_not_retried(self):
        ladder = DegradationLadder()
        with pytest.raises(SynthesisError):
            WorkerSupervisor(backoff=FAST, ladder=ladder).run(_boom, "x")
        assert not ladder.report.degraded


class TestCrashRecovery:
    def test_crash_every_attempt_raises_structured_error(self):
        ladder = DegradationLadder()
        supervisor = WorkerSupervisor(
            max_attempts=2, backoff=FAST, ladder=ladder
        )
        with pytest.raises(WorkerCrashError) as info:
            supervisor.run(_suicide, None, label="ilp")
        crash = info.value
        assert crash.attempts == 2
        assert crash.outcomes == ("crash", "crash")
        assert crash.signal == signal.SIGKILL
        assert len(crash.backoff_history) == 1
        assert "ilp" in str(crash)
        # One retry happened between the two attempts.
        assert ladder.fired(DegradationLadder.WORKER_RETRY) == 1

    def test_chaos_crash_then_recover(self):
        ladder = DegradationLadder()
        supervisor = WorkerSupervisor(
            max_attempts=3, backoff=FAST, ladder=ladder
        )
        with FAULTS.inject({"worker.crash": 1}):
            assert supervisor.run(_double, 5) == 10
        assert ladder.fired(DegradationLadder.WORKER_RETRY) == 1

    def test_chaos_hang_kills_and_recovers(self):
        # The worker must outlive the watchdog's first poll (20 ms) or
        # it legitimately beats the forced-stale check and wins.
        ladder = DegradationLadder()
        supervisor = WorkerSupervisor(
            max_attempts=2, backoff=FAST, ladder=ladder
        )
        with FAULTS.inject({"worker.hang": 1}):
            assert supervisor.run(_sleep, 0.3) == "slept"
        assert ladder.fired(DegradationLadder.WORKER_RETRY) == 1
        detail = ladder.report.events[0].detail
        assert "hang" in detail

    def test_chaos_oom_kills_and_recovers(self):
        ladder = DegradationLadder()
        supervisor = WorkerSupervisor(
            max_attempts=2, backoff=FAST, ladder=ladder
        )
        with FAULTS.inject({"worker.oom": 1}):
            assert supervisor.run(_sleep, 0.3) == "slept"
        assert ladder.fired(DegradationLadder.WORKER_RETRY) == 1


class TestResourceKills:
    def test_real_rss_budget_kills_the_worker(self):
        # Any live Python process exceeds 1 MiB resident, so the
        # watchdog's genuine /proc-based check fires (no chaos flag).
        supervisor = WorkerSupervisor(
            max_attempts=1, backoff=FAST, rss_limit_mb=1.0
        )
        with pytest.raises(WorkerCrashError) as info:
            supervisor.run(_sleep, 5.0)
        assert info.value.outcomes == ("oom",)

    def test_deadline_kill_is_not_retried(self):
        supervisor = WorkerSupervisor(max_attempts=3, backoff=FAST)
        start = time.monotonic()
        with pytest.raises(WorkerCrashError) as info:
            supervisor.run(_sleep, 30.0, deadline=Deadline(0.1))
        assert info.value.outcomes == ("deadline",)
        # One grace window, not three 30 s sleeps.
        assert time.monotonic() - start < 10.0

    def test_read_rss_of_this_process(self):
        rss = _read_rss_mb(os.getpid())
        assert rss is not None and rss > 1.0

    def test_read_rss_of_dead_pid_is_none(self):
        assert _read_rss_mb(2 ** 22 + 12345) is None


class TestBackoffDeterminism:
    def test_same_site_and_seed_record_identical_backoff(self):
        jittered = BackoffPolicy(base=0.005, cap=0.01, jitter=1.0)

        def history():
            supervisor = WorkerSupervisor(
                max_attempts=3, backoff=jittered, site="mapping", seed=11
            )
            with pytest.raises(WorkerCrashError) as info:
                supervisor.run(_suicide, None)
            return info.value.backoff_history

        first, second = history(), history()
        assert first == second
        assert first == tuple(jittered.schedule(2, "mapping", seed=11))
