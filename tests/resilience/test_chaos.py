"""Chaos suite: every degradation-ladder rung engages under injected faults.

Each test arms the process-wide :data:`FAULTS` injector with one
failure mode, runs a full synthesis, and asserts that

1. the corresponding ladder rung is recorded in the run's
   :class:`ResilienceReport`;
2. the degraded result still replays cleanly on the chip simulator;
3. the run warns (once) with :class:`DegradedResultWarning`.
"""

import warnings

import pytest

from repro.core.mappers import ILPMapper, WindowedILPMapper
from repro.core.simulation import ChipSimulator
from repro.core.synthesis import ReliabilitySynthesizer, SynthesisConfig
from repro.errors import DegradedResultWarning
from repro.geometry import GridSpec
from repro.obs import TELEMETRY
from repro.resilience import FAULTS, Deadline, DegradationLadder, FaultSpec

from tests.conftest import build_tiny_assay


def synthesize_tiny(
    mapper=None, deadline=None, expect_degraded=True, **config_kwargs
):
    """Run the tiny assay, asserting the degradation warning contract."""
    graph, schedule = build_tiny_assay()
    config = SynthesisConfig(grid=GridSpec(8, 8), mapper=mapper, **config_kwargs)
    synthesizer = ReliabilitySynthesizer(config)
    if expect_degraded:
        with pytest.warns(DegradedResultWarning):
            result = synthesizer.synthesize(graph, schedule, deadline=deadline)
    else:
        with warnings.catch_warnings():
            warnings.simplefilter("error", DegradedResultWarning)
            result = synthesizer.synthesize(graph, schedule, deadline=deadline)
    return result


def assert_simulator_valid(result):
    """The degraded result must still execute the assay end to end."""
    report = ChipSimulator(result).run()
    assert report.products_delivered >= 1
    return report


class TestWindowRungs:
    def test_solver_fault_shrinks_window(self):
        """One failed window solve → ``window_shrink``, halves succeed."""
        with FAULTS.inject({"scipy.milp": 1}):
            result = synthesize_tiny(
                mapper=WindowedILPMapper(window_size=2, refine_passes=0)
            )
        assert FAULTS.fired("scipy.milp") == 1
        report = result.resilience
        assert report.count(DegradationLadder.WINDOW_SHRINK) == 1
        assert report.count(DegradationLadder.WINDOW_GREEDY) == 0
        assert result.metrics.mapper == WindowedILPMapper.name
        assert_simulator_valid(result)

    def test_persistent_solver_fault_descends_to_window_greedy(self):
        """Backend down for good → shrink fails → ``window_greedy``."""
        with FAULTS.inject({"scipy.milp": FaultSpec(times=None)}):
            result = synthesize_tiny(
                mapper=WindowedILPMapper(window_size=2, refine_passes=0)
            )
        report = result.resilience
        assert report.count(DegradationLadder.WINDOW_SHRINK) >= 1
        assert report.count(DegradationLadder.WINDOW_GREEDY) >= 1
        assert_simulator_valid(result)

    def test_rungs_mirrored_into_telemetry(self):
        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            with FAULTS.inject({"scipy.milp": FaultSpec(times=None)}):
                synthesize_tiny(
                    mapper=WindowedILPMapper(window_size=2, refine_passes=0)
                )
            counters = TELEMETRY.snapshot()["counters"]
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
        assert counters["resilience.window_shrink"] >= 1
        assert counters["resilience.window_greedy"] >= 1


class TestMonolithicRungs:
    def test_bb_limit_fault_falls_back_to_greedy(self):
        """The B&B stops as if timed out with no incumbent →
        ``mapping_greedy`` re-maps with the greedy balancer."""
        with FAULTS.inject({"bb.time_limit": 1}):
            result = synthesize_tiny(mapper=ILPMapper(backend="branch_bound"))
        assert FAULTS.fired("bb.time_limit") == 1
        assert result.resilience.count(DegradationLadder.MAPPING_GREEDY) >= 1
        assert result.metrics.mapper == "greedy"
        assert_simulator_valid(result)

    def test_scipy_fault_on_monolithic_ilp(self):
        with FAULTS.inject({"scipy.milp": FaultSpec(times=None)}):
            result = synthesize_tiny(mapper=ILPMapper(backend="scipy"))
        assert result.resilience.count(DegradationLadder.MAPPING_GREEDY) >= 1
        assert_simulator_valid(result)


class TestPoolRung:
    def test_pool_crash_recreates_pool_once(self):
        """A single broken pool future → ``worker_retry``: the failed
        windows re-solve serially and the pool is recreated for the
        remaining passes (not degraded to serial for good)."""
        with FAULTS.inject({"mapper.pool": 1}):
            result = synthesize_tiny(
                mapper=WindowedILPMapper(
                    window_size=2, parallel=True, max_workers=2
                )
            )
        assert FAULTS.fired("mapper.pool") == 1
        report = result.resilience
        assert report.count(DegradationLadder.WORKER_RETRY) == 1
        assert report.count(DegradationLadder.POOL_SERIAL) == 0
        assert_simulator_valid(result)

    def test_second_pool_crash_degrades_to_serial(self):
        """The recreate budget is one: a second pool failure engages
        ``pool_serial`` and the run finishes serially."""
        graph, schedule = build_tiny_assay()
        mapper = WindowedILPMapper(
            window_size=2, parallel=True, max_workers=2, refine_passes=3
        )
        with FAULTS.inject({"mapper.pool": 2}):
            config = SynthesisConfig(grid=GridSpec(8, 8), mapper=mapper)
            with pytest.warns(DegradedResultWarning):
                result = ReliabilitySynthesizer(config).synthesize(
                    graph, schedule
                )
        assert FAULTS.fired("mapper.pool") == 2
        report = result.resilience
        assert report.count(DegradationLadder.WORKER_RETRY) == 1
        assert report.count(DegradationLadder.POOL_SERIAL) == 1
        # The forensic detail carries the structured WorkerCrashError.
        serial = [
            e for e in report.events
            if e.rung == DegradationLadder.POOL_SERIAL
        ]
        assert "attempts=2" in serial[0].detail

    def test_pool_crash_marks_serial_windows_in_stats(self):
        graph, schedule = build_tiny_assay()
        mapper = WindowedILPMapper(window_size=2, parallel=True, max_workers=2)
        with FAULTS.inject({"mapper.pool": 1}):
            config = SynthesisConfig(grid=GridSpec(8, 8), mapper=mapper)
            with pytest.warns(DegradedResultWarning):
                result = ReliabilitySynthesizer(config).synthesize(
                    graph, schedule
                )
        # The windows whose futures failed were re-solved serially and
        # the failure was counted.
        assert result.metrics is not None
        assert result.resilience.count(DegradationLadder.WORKER_RETRY) == 1


class TestRoutingRungs:
    def test_routing_fault_relaxes_convenience(self):
        """Routing fails on every reserved-corridor attempt →
        ``routing_relaxed`` re-synthesizes without the distance caps."""
        with FAULTS.inject({"routing.route": 3}):
            result = synthesize_tiny()
        assert FAULTS.fired("routing.route") == 3
        assert result.resilience.count(DegradationLadder.ROUTING_RELAXED) == 1
        assert_simulator_valid(result)

    def test_routing_fault_exhausting_every_attempt_is_terminal(self):
        """When even the relaxed retry fails, the ladder is exhausted and
        the run raises SynthesisError (not a bare RoutingError)."""
        from repro.errors import SynthesisError

        graph, schedule = build_tiny_assay()
        config = SynthesisConfig(grid=GridSpec(8, 8))
        with FAULTS.inject({"routing.route": FaultSpec(times=None)}):
            with pytest.raises(SynthesisError, match="relaxed"):
                ReliabilitySynthesizer(config).synthesize(graph, schedule)


class TestDeadlineRungs:
    def test_expired_deadline_goes_greedy_and_finishes(self):
        """A zero budget degrades (greedy mapping, routing overrun) but
        still yields a simulator-valid result."""
        result = synthesize_tiny(
            mapper=WindowedILPMapper(window_size=2),
            deadline=Deadline(0.0),
        )
        report = result.resilience
        # The pipeline re-runs after the overrun, so the mapping rung
        # may engage once per pipeline run.
        assert report.count(DegradationLadder.DEADLINE_GREEDY) >= 1
        assert report.count(DegradationLadder.ROUTING_OVERRUN) == 1
        assert_simulator_valid(result)

    def test_clean_run_reports_no_degradation(self):
        result = synthesize_tiny(
            expect_degraded=False, time_budget=120.0
        )
        assert result.resilience is not None
        assert not result.resilience.degraded
        assert result.resilience.budget == 120.0
        assert_simulator_valid(result)


class TestInjectionHygiene:
    def test_faults_disarmed_after_every_test(self):
        assert not FAULTS.armed

    def test_synthesis_unaffected_by_disarmed_injector(self):
        result = synthesize_tiny(expect_degraded=False)
        assert not result.resilience.degraded
