"""Property-based end-to-end invariants of the synthesis pipeline.

Random small assays are generated, scheduled, and synthesized; the
result must satisfy the structural invariants of the paper's method
regardless of the assay shape:

* every mixing operation gets exactly one on-grid device of its volume;
* concurrent devices never overlap except (storage, parent) pairs;
* parent/child devices respect the routing-convenient distance unless
  the mapper had to relax it (greedy tier-2);
* every transport event is realized by a connected path with legal
  endpoints;
* the maximum total actuation is the pump maximum plus a small control
  margin, and setting 2 never exceeds setting 1.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.assay.operation import MIXER_SIZES
from repro.assay.scheduler import ListScheduler, SchedulerConfig
from repro.assay.sequencing_graph import SequencingGraph
from repro.core.mappers import GreedyMapper
from repro.core.synthesis import ReliabilitySynthesizer, SynthesisConfig
from repro.geometry import GridSpec


@st.composite
def random_assay(draw):
    """A small random DAG of 2-6 mixing operations."""
    n_mix = draw(st.integers(min_value=2, max_value=6))
    graph = SequencingGraph("random")
    products = []
    input_counter = 0

    def fresh_input():
        nonlocal input_counter
        name = f"in{input_counter}"
        input_counter += 1
        graph.add_input(name, volume=2)
        return name

    for i in range(n_mix):
        volume = draw(st.sampled_from(MIXER_SIZES))
        n_parents = draw(st.integers(min_value=2, max_value=2))
        parents = []
        for _ in range(n_parents):
            # Bias toward consuming earlier products (chains/trees).
            use_product = products and draw(st.booleans())
            if use_product:
                parents.append(products.pop(draw(
                    st.integers(min_value=0, max_value=len(products) - 1)
                )))
            else:
                parents.append(fresh_input())
        duration = draw(st.integers(min_value=2, max_value=8))
        name = f"m{i}"
        graph.add_mix(name, parents, duration=duration, volume=volume)
        products.append(name)
    graph.validate()
    return graph


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(random_assay(), st.sampled_from([1, 2]))
def test_synthesis_invariants(graph, mixers_per_size):
    schedule = ListScheduler(
        SchedulerConfig(mixers={s: mixers_per_size for s in MIXER_SIZES})
    ).schedule(graph)
    config = SynthesisConfig(grid=GridSpec(10, 10), mapper=GreedyMapper())
    result = ReliabilitySynthesizer(config).synthesize(graph, schedule)

    # Every mix mapped, correct volume, on grid.
    mixes = {op.name: op for op in graph.mix_operations()}
    assert set(result.devices) == set(mixes)
    for name, device in result.devices.items():
        assert device.volume == mixes[name].volume
        assert config.grid.contains_rect(device.rect)

    # Concurrent non-overlap except storage/parent pairs.
    devices = list(result.devices.values())
    for i, a in enumerate(devices):
        for b in devices[i + 1:]:
            if not a.overlaps_in_time(b) or not a.rect.overlaps(b.rect):
                continue
            related = b.operation in {
                p.name for p in graph.mix_parents(a.operation)
            } or a.operation in {
                p.name for p in graph.mix_parents(b.operation)
            }
            assert related, (a.operation, b.operation)

    # Paths are connected and start/end at legal cells.
    for route in result.routes:
        for u, v in zip(route.cells, route.cells[1:]):
            assert abs(u.x - v.x) + abs(u.y - v.y) == 1
        event = route.event
        if event.source_is_port:
            assert route.cells[0] == result.chip.port(event.source).position
        else:
            source = result.devices[event.source]
            assert route.cells[0] in source.placement.port_cells()
        if event.target_is_port:
            assert route.cells[-1] == result.chip.port(event.target).position
        else:
            target = result.devices[event.target]
            assert route.cells[-1] in target.placement.port_cells()

    # Wear structure.
    m = result.metrics
    assert m.setting1.max_peristaltic % 40 == 0
    assert m.setting1.max_peristaltic >= 40
    assert m.setting1.max_total >= m.setting1.max_peristaltic
    assert m.setting2.max_total <= m.setting1.max_total
    assert m.used_valves == len(result.grid_setting1.actuated_valves())
    # Control wear stays an order of magnitude below pump wear (the
    # paper's justification for modeling only peristalsis in the ILP).
    assert m.setting1.max_total - m.setting1.max_peristaltic <= 20


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(random_assay())
def test_synthesis_deterministic(graph):
    schedule = ListScheduler(SchedulerConfig()).schedule(graph)
    config = SynthesisConfig(grid=GridSpec(10, 10), mapper=GreedyMapper())
    a = ReliabilitySynthesizer(config).synthesize(graph, schedule)
    b = ReliabilitySynthesizer(config).synthesize(graph, schedule)
    assert {n: d.rect for n, d in a.devices.items()} == {
        n: d.rect for n, d in b.devices.items()
    }
    assert a.metrics.setting1 == b.metrics.setting1
    assert a.metrics.used_valves == b.metrics.used_valves
