"""End-to-end pipeline tests across mappers and cases."""

import pytest

from repro.assays import get_case, schedule_for
from repro.baseline.valve_count import traditional_design
from repro.core.mappers import GreedyMapper, WindowedILPMapper
from repro.core.synthesis import ReliabilitySynthesizer, SynthesisConfig


@pytest.fixture(scope="module")
def mixing_tree_setup():
    case = get_case("mixing_tree")
    graph = case.graph()
    policy = case.policy1()
    schedule = schedule_for(case, policy)
    return case, graph, policy, schedule


class TestMixingTreeEndToEnd:
    """The 18-op case through both large-case engines."""

    @pytest.fixture(scope="class")
    def windowed(self, mixing_tree_setup):
        case, graph, _, schedule = mixing_tree_setup
        return ReliabilitySynthesizer(
            SynthesisConfig(grid=case.grid)
        ).synthesize(graph, schedule)

    @pytest.fixture(scope="class")
    def greedy(self, mixing_tree_setup):
        case, graph, _, schedule = mixing_tree_setup
        return ReliabilitySynthesizer(
            SynthesisConfig(grid=case.grid, mapper=GreedyMapper())
        ).synthesize(graph, schedule)

    def test_both_beat_the_traditional_design(
        self, mixing_tree_setup, windowed, greedy
    ):
        _, graph, policy, schedule = mixing_tree_setup
        design = traditional_design(graph, policy, schedule)
        assert windowed.metrics.setting1.max_total < design.max_pump_actuations
        assert greedy.metrics.setting1.max_total < design.max_pump_actuations
        # Table 1 mixing tree p1: paper reduces 280 -> 93.
        assert windowed.metrics.setting1.max_total <= 100

    def test_windowed_at_least_as_balanced_as_greedy(self, windowed, greedy):
        assert (
            windowed.metrics.mapping_objective
            <= greedy.metrics.mapping_objective + 40
        )

    def test_all_devices_mapped_by_both(self, windowed, greedy):
        assert set(windowed.devices) == set(greedy.devices)

    def test_setting2_improvement_larger(self, mixing_tree_setup, windowed):
        _, graph, policy, schedule = mixing_tree_setup
        design = traditional_design(graph, policy, schedule)
        imp1 = 1 - windowed.metrics.setting1.max_total / design.max_pump_actuations
        imp2 = 1 - windowed.metrics.setting2.max_total / design.max_pump_actuations
        assert imp2 > imp1  # the paper's "results are much better"

    def test_storage_overlaps_within_capacity(self, mixing_tree_setup, windowed):
        """Algorithm 1's loop must leave no violating pair behind."""
        _, graph, _, schedule = mixing_tree_setup
        placements = {
            name: device.placement
            for name, device in windowed.devices.items()
        }
        assert windowed.storage_plan.overlap_violations(placements) == set()


class TestScheduleVariation:
    def test_different_policies_different_schedules_same_pipeline(self):
        case = get_case("pcr")
        graph = case.graph()
        results = []
        for policy in case.policies(3):
            schedule = schedule_for(case, policy)
            result = ReliabilitySynthesizer(
                SynthesisConfig(grid=case.grid)
            ).synthesize(graph, schedule)
            results.append(result)
        # Looser schedules (p1, serialized) can't do worse than 40 pump;
        # all three must stay near the single-use optimum.
        for result in results:
            assert result.metrics.setting1.max_peristaltic <= 80

    def test_transport_delay_respected_in_events(self):
        case = get_case("pcr")
        graph = case.graph()
        schedule = schedule_for(case, case.policy1())
        result = ReliabilitySynthesizer(
            SynthesisConfig(grid=case.grid)
        ).synthesize(graph, schedule)
        for route in result.routes:
            event = route.event
            if not event.source_is_port and not event.target_is_port:
                # Product transfers happen when the parent completes.
                assert event.time == schedule.end(event.source)
