"""The from-scratch MILP stack driving the *real* mapping model.

The reproduction must not silently depend on HiGHS: these tests run the
paper's dynamic-device mapping ILP through the self-contained branch &
bound (with the from-scratch simplex and with scipy's LP as relaxation
engines) and require the same optimum HiGHS finds.
"""

import pytest

from repro.core.mappers import ILPMapper
from repro.core.mapping_model import MappingSpec
from repro.core.tasks import MappingTask
from repro.geometry import GridSpec


def tiny_spec():
    """Two concurrent ops + one child whose storage overlaps them in
    time (so the c5 machinery is actually exercised) — small enough for
    pure Python."""
    tasks = [
        MappingTask("a", 4, 40, 0, 0, 5, ()),
        MappingTask("b", 4, 40, 0, 0, 5, ()),
        MappingTask("c", 4, 40, 3, 8, 12, ("a", "b")),
    ]
    return MappingSpec(GridSpec(5, 5), tasks)


@pytest.mark.parametrize("lp_engine", ["simplex", "scipy"])
def test_branch_bound_solves_real_mapping_model(lp_engine):
    own = ILPMapper(
        backend="branch_bound", lp_engine=lp_engine, max_nodes=50_000
    ).map_tasks(tiny_spec())
    highs = ILPMapper(backend="scipy").map_tasks(tiny_spec())
    assert own.optimal and highs.optimal
    assert own.objective == highs.objective == 40

    # Both must produce legal layouts (non-overlap of a and b).
    for result in (own, highs):
        ra = result.placements["a"].rect
        rb = result.placements["b"].rect
        assert not ra.overlaps(rb)


def test_branch_bound_respects_c5_forbidding():
    spec = tiny_spec()
    spec.forbidden_overlaps = {("a", "c"), ("b", "c")}
    own = ILPMapper(
        backend="branch_bound", lp_engine="scipy", max_nodes=50_000
    ).map_tasks(spec)
    rc = own.placements["c"].rect
    assert not rc.overlaps(own.placements["b"].rect)
