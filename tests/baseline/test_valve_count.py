"""Unit tests for the traditional-design valve-count model."""

from repro.assays import get_case, list_cases, schedule_for
from repro.baseline.valve_count import traditional_design
from repro.experiments.paper_data import paper_row


class TestTraditionalDesign:
    def test_components_assembled(self):
        case = get_case("pcr")
        graph = case.graph()
        policy = case.policy1()
        design = traditional_design(graph, policy, schedule_for(case, policy))
        assert len(design.mixers) == policy.mixer_count
        assert len(design.detectors) == policy.detectors
        assert design.storage.cells >= 1

    def test_valve_count_increases_with_policy(self):
        """More mixers -> more valves (the paper's structural trend)."""
        for case in list_cases():
            graph = case.graph()
            counts = []
            for policy in case.policies(3):
                design = traditional_design(
                    graph, policy, schedule_for(case, policy)
                )
                counts.append(design.valve_count)
            assert counts == sorted(counts)

    def test_calibration_near_paper(self):
        """Within 20% of every published #v (model, not layout tool)."""
        for case in list_cases():
            graph = case.graph()
            for policy in case.policies(3):
                design = traditional_design(
                    graph, policy, schedule_for(case, policy)
                )
                published = paper_row(case.name, policy.index).v_traditional
                assert abs(design.valve_count - published) / published < 0.20

    def test_vs_tmax_passthrough(self):
        case = get_case("pcr")
        graph = case.graph()
        policy = case.policy1()
        design = traditional_design(graph, policy, schedule_for(case, policy))
        assert design.max_pump_actuations == 160
