"""Unit tests for the optimal (balanced) binding."""

import pytest

from repro.errors import BindingError
from repro.assays import get_case, list_cases, schedule_for
from repro.baseline.binding import bind_operations
from repro.baseline.dedicated import PUMP_ACTUATIONS_PER_OP
from repro.baseline.policies import Policy
from repro.experiments.paper_data import paper_row


class TestBinding:
    def test_every_mix_operation_assigned(self):
        case = get_case("pcr")
        graph = case.graph()
        binding = bind_operations(graph, case.policy1())
        assert set(binding.assignment) == {
            op.name for op in graph.mix_operations()
        }

    def test_assignment_respects_sizes(self):
        case = get_case("pcr")
        graph = case.graph()
        binding = bind_operations(graph, case.policy1())
        for op in graph.mix_operations():
            mixer_name = binding.assignment[op.name]
            assert mixer_name.startswith(f"mixer{op.volume}.")

    def test_loads_balanced_within_one(self):
        case = get_case("mixing_tree")
        graph = case.graph()
        policy = Policy(1, {4: 1, 6: 2, 8: 2, 10: 3})
        binding = bind_operations(graph, policy)
        by_size = {}
        for op in graph.mix_operations():
            mixer = binding.assignment[op.name]
            size = op.volume
            by_size.setdefault(size, {}).setdefault(mixer, 0)
            by_size[size][mixer] += 1
        for loads in by_size.values():
            assert max(loads.values()) - min(loads.values()) <= 1

    def test_missing_size_raises(self):
        case = get_case("pcr")
        with pytest.raises(BindingError, match="no size-8"):
            bind_operations(case.graph(), Policy(1, {4: 1, 10: 1}))

    def test_vs_tmax_matches_paper_for_all_rows(self):
        """The vs_tmax column of Table 1, all 12 rows, exactly."""
        for case in list_cases():
            graph = case.graph()
            for policy in case.policies(3):
                schedule = schedule_for(case, policy)
                binding = bind_operations(graph, policy, schedule)
                published = paper_row(case.name, policy.index)
                assert binding.max_pump_actuations == published.vs_tmax

    def test_max_total_equals_pump_max(self):
        case = get_case("pcr")
        binding = bind_operations(case.graph(), case.policy1())
        assert binding.max_total_actuations() == binding.max_pump_actuations

    def test_mixer_wear_accumulated(self):
        case = get_case("pcr")
        binding = bind_operations(case.graph(), case.policy1())
        size8 = [m for m in binding.mixers if m.volume == 8]
        assert size8[0].operations_run == 4
        assert size8[0].pump_actuations() == 4 * PUMP_ACTUATIONS_PER_OP
