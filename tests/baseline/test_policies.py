"""Unit tests for policies and the mixer-bank growth rule."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import BindingError
from repro.assays import get_case, list_cases
from repro.baseline.policies import (
    Policy,
    balanced_loads,
    distribution_string,
    max_load,
    mixer_demand,
    next_policy,
    policy_sequence,
)
from repro.experiments.paper_data import paper_row


class TestBalancedLoads:
    def test_even_split(self):
        assert balanced_loads(6, 3) == [2, 2, 2]

    def test_uneven_split_descending(self):
        assert balanced_loads(7, 3) == [3, 2, 2]
        assert balanced_loads(5, 2) == [3, 2]

    def test_more_mixers_than_ops(self):
        assert balanced_loads(2, 4) == [1, 1, 0, 0]

    def test_zero_ops(self):
        assert balanced_loads(0, 2) == [0, 0]

    def test_no_mixer_but_demand_raises(self):
        with pytest.raises(BindingError):
            balanced_loads(3, 0)

    @given(
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=1, max_value=12),
    )
    def test_loads_sum_and_balance(self, n, m):
        loads = balanced_loads(n, m)
        assert sum(loads) == n
        assert max(loads) - min(loads) <= 1
        assert loads == sorted(loads, reverse=True)


class TestGrowthRule:
    def test_pcr_policy_sequence(self):
        case = get_case("pcr")
        demand = mixer_demand(case.graph())
        p1, p2, p3 = case.policies(3)
        assert p1.mixers == {4: 1, 8: 1, 10: 1}
        assert p2.mixers == {4: 1, 8: 2, 10: 1}  # size 8 was heaviest (4)
        # p2 has sizes 8 and 10 both at load 2: one mixer added to EACH.
        assert p3.mixers == {4: 1, 8: 3, 10: 2}
        assert max_load(p1, demand) == 4
        assert max_load(p3, demand) == 2

    def test_every_case_reproduces_paper_columns(self):
        """#d and #m of all 12 published rows."""
        for case in list_cases():
            demand = mixer_demand(case.graph())
            for policy in case.policies(3):
                published = paper_row(case.name, policy.index)
                assert policy.device_count == published.num_devices
                assert (
                    distribution_string(policy, demand)
                    == published.m_distribution
                )

    def test_growth_without_demand_raises(self):
        with pytest.raises(BindingError):
            next_policy(Policy(1, {8: 1}), {})

    def test_policy_sequence_length(self):
        case = get_case("mixing_tree")
        assert [p.index for p in case.policies(3)] == [1, 2, 3]

    def test_growth_monotone(self):
        case = get_case("exponential_dilution")
        demand = mixer_demand(case.graph())
        policies = policy_sequence(case.policy1(), demand, 5)
        for earlier, later in zip(policies, policies[1:]):
            assert later.mixer_count > earlier.mixer_count
            assert max_load(later, demand) <= max_load(earlier, demand)


class TestDistributionString:
    def test_formats(self):
        demand = {4: 1, 8: 4, 10: 2}
        p = Policy(1, {4: 1, 8: 1, 10: 1})
        assert distribution_string(p, demand) == "1-0-4-2"
        p2 = Policy(2, {4: 1, 8: 2, 10: 1})
        assert distribution_string(p2, demand) == "1-0-(2,2)-2"
