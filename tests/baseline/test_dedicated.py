"""Unit tests for dedicated devices (Figure 2 wear profile)."""

import pytest

from repro.errors import ArchitectureError
from repro.baseline.dedicated import (
    DedicatedDetector,
    DedicatedMixer,
    DedicatedStorage,
    PUMP_ACTUATIONS_PER_OP,
)


class TestDedicatedMixer:
    def test_figure2_valve_budget(self):
        mixer = DedicatedMixer(volume=8)
        assert mixer.pump_valves == 3
        assert mixer.control_valves == 6
        assert mixer.valve_count == 9

    def test_figure2f_profile_after_two_operations(self):
        mixer = DedicatedMixer(volume=8)
        mixer.run_operations(2)
        profile = mixer.actuation_profile()
        assert profile["pump"] == [80, 80, 80]
        assert profile["control"] == [8, 8, 4, 4, 4, 4]
        assert mixer.max_actuations() == 80

    def test_valve_count_scales_with_volume(self):
        assert DedicatedMixer(volume=4).valve_count == 5
        assert DedicatedMixer(volume=10).valve_count == 11

    def test_pump_valves_dominate_wear(self):
        mixer = DedicatedMixer(volume=6)
        mixer.run_operations(5)
        assert mixer.max_actuations() == 5 * PUMP_ACTUATIONS_PER_OP

    def test_unrun_mixer(self):
        assert DedicatedMixer(volume=8).max_actuations() == 0

    def test_too_small_volume_rejected(self):
        with pytest.raises(ArchitectureError):
            DedicatedMixer(volume=2)

    def test_negative_run_rejected(self):
        with pytest.raises(ArchitectureError):
            DedicatedMixer(volume=8).run_operations(-1)


class TestStorageAndDetector:
    def test_storage_valves(self):
        assert DedicatedStorage(cells=4).valve_count == 14  # 4*3 + 2

    def test_detector_valves(self):
        assert DedicatedDetector().valve_count == 4
