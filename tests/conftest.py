"""Shared fixtures: assays, schedules and (cached) synthesis results."""

from __future__ import annotations

import pytest

from repro.assay.schedule import Schedule
from repro.assay.scheduler import ListScheduler, SchedulerConfig
from repro.assay.sequencing_graph import SequencingGraph
from repro.assays.pcr import pcr_fig9_schedule, pcr_graph
from repro.core.synthesis import ReliabilitySynthesizer, SynthesisConfig
from repro.geometry import GridSpec


@pytest.fixture
def pcr():
    """The PCR sequencing graph."""
    return pcr_graph()


@pytest.fixture
def fig9_schedule(pcr):
    """The PCR Figure-9 schedule bound to the ``pcr`` fixture's graph."""
    return pcr_fig9_schedule(pcr)


@pytest.fixture(scope="session")
def pcr_result():
    """A full PCR synthesis (ILP mapper), shared across the session.

    Deterministic: the same placements every run, so downstream
    assertions on devices/routes are stable.
    """
    graph = pcr_graph()
    schedule = pcr_fig9_schedule(graph)
    synthesizer = ReliabilitySynthesizer(SynthesisConfig(grid=GridSpec(9, 9)))
    return synthesizer.synthesize(graph, schedule)


def build_tiny_assay() -> tuple[SequencingGraph, Schedule]:
    """Two mixes feeding a third — the smallest assay with a storage."""
    graph = SequencingGraph("tiny")
    for i in range(4):
        graph.add_input(f"in{i}", volume=4)
    graph.add_mix("a", ("in0", "in1"), duration=4, volume=8)
    graph.add_mix("b", ("in2", "in3"), duration=8, volume=8)
    graph.add_mix("c", ("a", "b"), duration=4, volume=8)
    schedule = ListScheduler(SchedulerConfig()).schedule(graph)
    return graph, schedule


@pytest.fixture
def tiny_assay():
    return build_tiny_assay()


@pytest.fixture(scope="session")
def tiny_result():
    graph, schedule = build_tiny_assay()
    synthesizer = ReliabilitySynthesizer(SynthesisConfig(grid=GridSpec(8, 8)))
    return synthesizer.synthesize(graph, schedule)
