"""Regression pins for LoadLedger vs. the from-scratch rebuild.

The PR-5 certification sweep audited the incremental
:class:`~repro.core.mappers.LoadLedger` against
``WindowedILPMapper._cell_loads`` and found one divergence: a
zero-pump-rate task used to leave explicit load-0 entries in the
rebuild but none in the ledger (and could flip ``measure()`` when the
peak was 0).  Both sides now agree that a zero-rate contribution leaves
no trace; these tests pin that, plus base-load and churn behavior the
design auditor (:mod:`repro.certify.audit`) relies on.
"""

from __future__ import annotations

import pytest

from repro.geometry import GridSpec, Point
from repro.core.mappers import LoadLedger, WindowedILPMapper
from repro.core.mapping_model import MappingSpec
from repro.core.tasks import MappingTask
from repro.architecture.device_types import device_type
from repro.architecture.device import Placement


def _task(name, pump_rate, start=0, end=4):
    return MappingTask(
        name=name,
        volume=8,
        pump_rate=pump_rate,
        start=start,
        mix_start=start,
        end=end,
        mix_parents=(),
    )


def _placement(x, y, w=3, h=3):
    return Placement(device_type(w, h), Point(x, y))


def _oracle(spec, ordered, placements):
    return WindowedILPMapper._cell_loads(spec, ordered, placements)


def test_zero_rate_task_leaves_no_trace() -> None:
    """The drift the sweep found: zero-rate == absent, on both sides."""
    spec = MappingSpec(GridSpec(9, 9), [])
    zero = _task("z", pump_rate=0)
    loaded = _task("m", pump_rate=40)
    placements = {"z": _placement(0, 0), "m": _placement(4, 4)}
    ordered = [zero, loaded]

    ledger = LoadLedger.from_placements(spec, ordered, placements)
    naive = _oracle(spec, ordered, placements)
    assert ledger.loads() == naive
    assert all(cell not in naive for cell in placements["z"].pump_cells()
               if cell not in placements["m"].pump_cells())
    # Removing the zero-rate task is also a no-op.
    ledger.remove(zero, placements["z"])
    assert ledger.loads() == naive


def test_zero_rate_only_ledger_measures_empty() -> None:
    spec = MappingSpec(GridSpec(9, 9), [])
    zero = _task("z", pump_rate=0)
    placements = {"z": _placement(0, 0)}
    ledger = LoadLedger.from_placements(spec, [zero], placements)
    naive = _oracle(spec, [zero], placements)
    assert ledger.loads() == naive == {}
    assert ledger.measure() == (0, 0)
    assert ledger.peak_cells() == frozenset()


def test_base_load_cells_survive_return_to_base() -> None:
    """Base cells stay present even when task churn cancels out."""
    base = {Point(2, 2): 7, Point(5, 5): 0}
    spec = MappingSpec(GridSpec(9, 9), [], base_load=base)
    t = _task("m", pump_rate=40)
    p = _placement(2, 2)
    ledger = LoadLedger(spec.base_load)
    ledger.add(t, p)
    ledger.remove(t, p)
    assert ledger.loads() == _oracle(spec, [t], {}) == base
    assert ledger.peak() == 7


def test_interleaved_churn_matches_oracle() -> None:
    """Overlapping rings, adds and removes in adversarial order."""
    spec = MappingSpec(GridSpec(12, 12), [])
    tasks = [
        _task("a", 40), _task("b", 30), _task("c", 20), _task("d", 40),
    ]
    placements = {
        "a": _placement(0, 0),
        "b": _placement(2, 2),   # overlaps a's ring corner
        "c": _placement(2, 0, 4, 2),
        "d": _placement(8, 8),   # disjoint
    }
    ledger = LoadLedger({})
    live = []
    script = [
        ("add", "a"), ("add", "b"), ("add", "c"),
        ("remove", "b"), ("add", "d"), ("add", "b"),
        ("remove", "a"), ("remove", "c"), ("add", "a"), ("add", "c"),
    ]
    by_name = {t.name: t for t in tasks}
    for op, name in script:
        task = by_name[name]
        if op == "add":
            ledger.add(task, placements[name])
            live.append(task)
        else:
            ledger.remove(task, placements[name])
            live.remove(task)
        want = _oracle(spec, live, placements)
        assert ledger.loads() == want, (op, name)
        assert ledger.peak() == max(want.values(), default=0), (op, name)
        peak_cells = {
            c for c, v in want.items()
            if v == max(want.values(), default=0)
        } if want else set()
        assert ledger.peak_cells() == frozenset(peak_cells), (op, name)


def test_from_placements_skips_unplaced_tasks() -> None:
    spec = MappingSpec(GridSpec(9, 9), [])
    tasks = [_task("a", 40), _task("ghost", 30)]
    placements = {"a": _placement(1, 1)}
    ledger = LoadLedger.from_placements(spec, tasks, placements)
    assert ledger.loads() == _oracle(spec, tasks, placements)
    assert ledger.peak() == 40
