"""Unit tests for mapping-task construction."""

import pytest

from repro.errors import SynthesisError
from repro.core.tasks import MappingTask, build_tasks


class TestMappingTask:
    def test_interval_consistency_enforced(self):
        with pytest.raises(SynthesisError):
            MappingTask("x", 8, 40, start=5, mix_start=4, end=9,
                        mix_parents=())

    def test_storage_phase_detection(self):
        with_storage = MappingTask("a", 8, 40, 2, 6, 9, ())
        without = MappingTask("b", 8, 40, 6, 6, 9, ())
        assert with_storage.has_storage_phase
        assert not without.has_storage_phase

    def test_temporal_overlap(self):
        a = MappingTask("a", 8, 40, 0, 0, 5, ())
        b = MappingTask("b", 8, 40, 5, 5, 9, ())
        c = MappingTask("c", 8, 40, 4, 4, 9, ())
        assert not a.overlaps_in_time(b)
        assert a.overlaps_in_time(c)


class TestBuildTasks:
    def test_pcr_tasks(self, pcr, fig9_schedule):
        tasks = build_tasks(pcr, fig9_schedule)
        by_name = {t.name: t for t in tasks}
        assert set(by_name) == {f"o{i}" for i in range(1, 8)}
        # Ordered by operation start time (the schedule's mix order).
        assert [t.name for t in tasks] == [
            "o1", "o2", "o3", "o4", "o6", "o5", "o7",
        ]

    def test_device_intervals_include_storage(self, pcr, fig9_schedule):
        tasks = {t.name: t for t in build_tasks(pcr, fig9_schedule)}
        assert tasks["o7"].interval == (9, 29)  # s7 from t=9
        assert tasks["o7"].mix_start == 25
        assert tasks["o1"].interval == (0, 15)  # no storage phase

    def test_pump_rate_is_setting1(self, pcr, fig9_schedule):
        tasks = build_tasks(pcr, fig9_schedule)
        assert all(t.pump_rate == 40 for t in tasks)

    def test_mix_parents_only(self, pcr, fig9_schedule):
        tasks = {t.name: t for t in build_tasks(pcr, fig9_schedule)}
        assert tasks["o5"].mix_parents == ("o1", "o2")
        assert tasks["o1"].mix_parents == ()  # inputs are not mix parents
