"""Unit tests for channel-edge wear analysis."""

import pytest

from repro.core.edge_wear import edge_wear


class TestEdgeWear:
    @pytest.fixture(scope="class")
    def report(self, pcr_result):
        return edge_wear(pcr_result)

    def test_max_pump_matches_cell_view(self, pcr_result, report):
        # On PCR no valve pumps twice, so cell and edge views agree on
        # the peristaltic maximum.
        assert report.max_pump == pcr_result.metrics.setting1.max_peristaltic

    def test_edge_view_never_exceeds_cell_view(self, pcr_result, report):
        # The cell view merges segments meeting at a cell, so its
        # maximum dominates the edge maximum.
        assert report.max_total <= pcr_result.metrics.setting1.max_total + 1

    def test_edge_count_scale(self, pcr_result, report):
        # A ring of k cells has k edges and paths have len-1 edges, so
        # the two #v views live in the same range.
        cell_count = pcr_result.metrics.used_valves
        assert 0.5 * cell_count <= report.edges_used <= 2.0 * cell_count

    def test_role_changing_edges_exist(self, report):
        assert len(report.role_changing_edges()) >= 5

    def test_setting2_scales_down(self, pcr_result):
        report2 = edge_wear(pcr_result, setting=2)
        report1 = edge_wear(pcr_result, setting=1)
        assert report2.max_pump < report1.max_pump

    def test_totals_additive(self, report):
        edge = report.role_changing_edges()[0]
        assert report.total(edge) == report.pump[edge] + report.control[edge]
