"""Tests for the execution simulator, including fault injection."""

import dataclasses

import pytest

from repro.architecture.device import DynamicDevice, Placement
from repro.architecture.device_types import device_type
from repro.core.simulation import ChipSimulator, SimulationError, simulate
from repro.geometry import Point
from repro.routing.path import RoutedPath, TransportEvent


class TestSuccessfulReplay:
    def test_pcr_replays_cleanly(self, pcr_result):
        report = simulate(pcr_result)
        assert report.ok
        assert report.transports_executed == len(pcr_result.routes)
        assert report.products_delivered == 1  # only o7's product leaves

    def test_event_log_ordered(self, pcr_result):
        report = simulate(pcr_result)
        times = [e.time for e in report.events]
        assert times == sorted(times)

    def test_log_contains_lifecycle(self, pcr_result):
        log = simulate(pcr_result).log()
        assert "form" in log and "mix" in log and "dissolve" in log

    def test_tiny_assay_replays(self, tiny_result):
        report = simulate(tiny_result)
        assert report.products_delivered == 1
        assert report.peak_occupied_cells > 0


class TestFaultInjection:
    """Corrupt a valid result and watch the simulator object."""

    def _corrupted(self, result, **device_overrides):
        clone = dataclasses.replace(result)
        clone.devices = dict(result.devices)
        for name, overrides in device_overrides.items():
            old = clone.devices[name]
            clone.devices[name] = DynamicDevice(
                operation=old.operation,
                placement=overrides.get("placement", old.placement),
                start=overrides.get("start", old.start),
                end=overrides.get("end", old.end),
                mix_start=overrides.get("mix_start", old.mix_start),
            )
        return clone

    def test_unrelated_overlap_detected(self, pcr_result):
        # Move o2 exactly onto o1 (both run at t=0, unrelated).
        target = pcr_result.devices["o1"].placement
        broken = self._corrupted(pcr_result, o2={"placement": target})
        with pytest.raises(SimulationError, match="overlap"):
            simulate(broken)

    def test_mixing_overlap_with_parent_detected(self, pcr_result):
        # Make o5 start mixing while its parent o1 still runs AND force
        # the rects to overlap: the storage-only permission is violated.
        o1 = pcr_result.devices["o1"]
        broken = self._corrupted(
            pcr_result,
            o5={
                "placement": o1.placement,
                "start": o1.start + 1,
                "mix_start": o1.start + 1,
                "end": o1.end + 10,
            },
        )
        with pytest.raises(SimulationError):
            simulate(broken)

    def test_transport_through_mixer_detected(self, pcr_result):
        clone = dataclasses.replace(pcr_result)
        clone.devices = dict(pcr_result.devices)
        clone.routes = list(pcr_result.routes)
        # Reroute one product transfer straight through a busy mixer.
        victim = next(
            r for r in clone.routes
            if not r.event.source_is_port and not r.event.target_is_port
        )
        mixer = next(
            d for d in clone.devices.values()
            if d.alive_at(victim.time)
            and d.operation not in (victim.event.source, victim.event.target)
            and d.kind_at(victim.time).value == "mixer"
        )
        bad_cells = list(mixer.rect.cells())
        clone.routes[clone.routes.index(victim)] = RoutedPath(
            victim.event, bad_cells
        )
        with pytest.raises(SimulationError, match="crosses the active"):
            simulate(clone)

    def test_missing_final_delivery_detected(self, pcr_result):
        clone = dataclasses.replace(pcr_result)
        clone.routes = [
            r for r in pcr_result.routes if not r.event.target_is_port
        ]
        with pytest.raises(SimulationError, match="never reached"):
            simulate(clone)

    def test_missing_product_transfer_detected(self, pcr_result):
        clone = dataclasses.replace(pcr_result)
        clone.routes = [
            r
            for r in pcr_result.routes
            if not (r.event.source == "o1" and r.event.target == "o5")
        ]
        with pytest.raises(SimulationError, match="without products"):
            simulate(clone)
