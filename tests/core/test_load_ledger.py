"""The incremental LoadLedger must match the naive rebuild exactly.

The windowed mapper's refinement loops trust the ledger for every
accept/revert decision; any divergence from the from-scratch helpers
(`_cell_loads` / `_load_measure` / `_max_load_cells`) would silently
change which placements survive refinement.  These tests drive the
ledger through add/remove churn and diff it against the naive oracle
after every step.
"""

import pytest

from repro.geometry import GridSpec, Point
from repro.core.mappers import (
    GreedyMapper,
    LoadLedger,
    WindowedILPMapper,
)
from repro.core.mapping_model import MappingSpec
from repro.core.tasks import MappingTask


def task(name, start, end, volume=8, pump_rate=40):
    return MappingTask(
        name=name,
        volume=volume,
        pump_rate=pump_rate,
        start=start,
        mix_start=start,
        end=end,
        mix_parents=(),
    )


@pytest.fixture
def spec():
    # Mixed rates and staggered lifetimes so rings overlap partially.
    tasks = [
        task("m0", 0, 4, pump_rate=40),
        task("m1", 2, 8, pump_rate=30),
        task("m2", 5, 11, pump_rate=40),
        task("m3", 9, 14, volume=4, pump_rate=20),
        task("m4", 12, 18, pump_rate=40),
    ]
    return MappingSpec(GridSpec(9, 9), tasks)


@pytest.fixture
def mapped(spec):
    result = GreedyMapper().map_tasks(spec)
    ordered = sorted(spec.tasks, key=lambda t: (t.start, t.name))
    return ordered, result.placements


def assert_matches_oracle(ledger, spec, ordered, placements):
    naive = WindowedILPMapper._cell_loads(spec, ordered, placements)
    assert ledger.loads() == naive
    assert ledger.measure() == WindowedILPMapper._load_measure(
        spec, ordered, placements
    )
    assert ledger.peak_cells() == WindowedILPMapper._max_load_cells(
        spec, ordered, placements
    )
    assert ledger.peak() == max(naive.values(), default=0)


class TestAgainstNaiveRebuild:
    def test_from_placements_matches(self, spec, mapped):
        ordered, placements = mapped
        ledger = LoadLedger.from_placements(spec, ordered, placements)
        assert_matches_oracle(ledger, spec, ordered, placements)

    def test_matches_through_remove_add_churn(self, spec, mapped):
        ordered, placements = mapped
        placements = dict(placements)
        ledger = LoadLedger.from_placements(spec, ordered, placements)
        # Walk every task through every candidate placement, checking
        # the ledger against the oracle after each move.
        for t in ordered:
            candidates = spec.candidate_placements(t)
            for replacement in candidates[::7]:
                ledger.remove(t, placements.pop(t.name))
                assert_matches_oracle(ledger, spec, ordered, placements)
                placements[t.name] = replacement
                ledger.add(t, replacement)
                assert_matches_oracle(ledger, spec, ordered, placements)

    def test_remove_all_returns_to_base(self, spec, mapped):
        ordered, placements = mapped
        base = {Point(0, 0): 7, Point(3, 3): 0}
        ledger = LoadLedger(base)
        for t in ordered:
            ledger.add(t, placements[t.name])
        for t in ordered:
            ledger.remove(t, placements[t.name])
        # Exact dict equality: zero-valued cells outside the base load
        # must be dropped, base entries (even zero ones) must survive.
        assert ledger.loads() == base
        assert ledger.peak() == 7

    def test_empty_ledger(self):
        ledger = LoadLedger({})
        assert ledger.peak() == 0
        assert ledger.measure() == (0, 0)
        assert ledger.peak_cells() == frozenset()
        assert ledger.loads() == {}


class TestWorstValveEquivalence:
    def test_min_peak_cell_is_the_oracle_worst_valve(self, spec, mapped):
        # The refinement loop replaced _tasks_on_worst_valve with
        # "tasks covering min(peak_cells)" — same cell, same culprits.
        ordered, placements = mapped
        ledger = LoadLedger.from_placements(spec, ordered, placements)
        oracle = WindowedILPMapper._tasks_on_worst_valve(
            spec, ordered, placements
        )
        worst = min(ledger.peak_cells())
        mine = [
            t for t in ordered if worst in placements[t.name].pump_cells()
        ]
        assert [t.name for t in mine] == [t.name for t in oracle]


class TestMapperStats:
    def test_windowed_result_carries_stats(self, spec):
        result = WindowedILPMapper(window_size=2, refine_passes=1).map_tasks(
            spec
        )
        for key in (
            "windows_solved",
            "window_seconds",
            "greedy_windows",
            "refine_probes",
            "refine_accepted",
            "refine_rejected",
            "targeted_rounds",
        ):
            assert key in result.stats
        assert result.stats["windows_solved"] >= 3
        assert result.stats["window_seconds"] > 0.0

    def test_greedy_result_carries_stats(self, spec):
        result = GreedyMapper().map_tasks(spec)
        assert result.stats["candidates_scanned"] >= len(spec.tasks)
