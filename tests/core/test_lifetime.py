"""Unit tests for the chip-lifetime estimator."""

import pytest

from repro.errors import SynthesisError
from repro.assays import get_case, schedule_for
from repro.baseline.valve_count import traditional_design
from repro.core.lifetime import (
    DEFAULT_WEAR_BUDGET,
    LifetimeEstimate,
    lifetime_gain,
    synthesis_lifetime,
    traditional_lifetime,
)


class TestEstimates:
    def test_simple_division(self):
        estimate = LifetimeEstimate(wear_budget=4000, wear_per_run=45, runs=88)
        assert estimate.runs == 4000 // 45
        assert not estimate.is_single_use

    def test_synthesis_lifetime_from_result(self, pcr_result):
        estimate = synthesis_lifetime(pcr_result)
        wear = pcr_result.metrics.setting1.max_total
        assert estimate.wear_per_run == wear
        assert estimate.runs == DEFAULT_WEAR_BUDGET // wear

    def test_setting2_lives_longer(self, pcr_result):
        s1 = synthesis_lifetime(pcr_result, setting=1)
        s2 = synthesis_lifetime(pcr_result, setting=2)
        assert s2.runs >= s1.runs

    def test_traditional_lifetime(self):
        case = get_case("pcr")
        graph = case.graph()
        policy = case.policy1()
        design = traditional_design(graph, policy, schedule_for(case, policy))
        estimate = traditional_lifetime(design)
        assert estimate.runs == DEFAULT_WEAR_BUDGET // 160

    def test_gain_matches_paper_direction(self, pcr_result):
        """PCR p1: 160 -> ~45 per run means ~3.5x more assay runs."""
        case = get_case("pcr")
        graph = case.graph()
        policy = case.policy1()
        design = traditional_design(graph, policy, schedule_for(case, policy))
        gain = lifetime_gain(pcr_result, design)
        assert gain >= 3.0

    def test_single_use_detection(self):
        estimate = LifetimeEstimate(wear_budget=100, wear_per_run=90, runs=1)
        assert estimate.is_single_use
        assert not estimate.is_dead_on_arrival  # one run still completes

    def test_invalid_budget(self, pcr_result):
        with pytest.raises(SynthesisError):
            synthesis_lifetime(pcr_result, wear_budget=0)


class TestDeadOnArrival:
    """wear_per_run > wear_budget must never pass silently as runs=0."""

    def test_synthesis_lifetime_raises_by_default(self, pcr_result):
        wear = pcr_result.metrics.setting1.max_total
        with pytest.raises(SynthesisError, match="dead on arrival"):
            synthesis_lifetime(pcr_result, wear_budget=wear - 1)

    def test_allow_dead_returns_flagged_estimate(self, pcr_result):
        wear = pcr_result.metrics.setting1.max_total
        estimate = synthesis_lifetime(
            pcr_result, wear_budget=wear - 1, allow_dead=True
        )
        assert estimate.runs == 0
        assert estimate.is_dead_on_arrival
        assert estimate.is_single_use  # DOA is a subset of single-use

    def test_traditional_lifetime_raises_too(self):
        case = get_case("pcr")
        graph = case.graph()
        policy = case.policy1()
        design = traditional_design(graph, policy, schedule_for(case, policy))
        with pytest.raises(SynthesisError, match="dead on arrival"):
            traditional_lifetime(design, wear_budget=10)
        estimate = traditional_lifetime(design, wear_budget=10, allow_dead=True)
        assert estimate.is_dead_on_arrival

    def test_exact_budget_is_one_run_not_doa(self):
        estimate = LifetimeEstimate(wear_budget=90, wear_per_run=90, runs=1)
        assert not estimate.is_dead_on_arrival

    def test_audit_flags_doa_instead_of_raising(self, pcr_result):
        """The auditor must report a DOA design as a violation, not crash."""
        from types import SimpleNamespace

        from repro.certify.audit import _check_lifetime
        from repro.certify.report import AuditReport

        report = AuditReport("ok")
        _check_lifetime(pcr_result, report)  # healthy result: no flags
        assert not any(
            v.kind == "lifetime-claim" for v in report.violations
        )

        doa = SimpleNamespace(
            metrics=SimpleNamespace(
                setting1=SimpleNamespace(
                    max_total=DEFAULT_WEAR_BUDGET + 1
                )
            )
        )
        report = AuditReport("doa")
        _check_lifetime(doa, report)  # must not raise
        flagged = [
            v for v in report.violations if v.kind == "lifetime-claim"
        ]
        assert len(flagged) == 1
        assert "dead on arrival" in flagged[0].detail
