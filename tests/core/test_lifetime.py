"""Unit tests for the chip-lifetime estimator."""

import pytest

from repro.errors import SynthesisError
from repro.assays import get_case, schedule_for
from repro.baseline.valve_count import traditional_design
from repro.core.lifetime import (
    DEFAULT_WEAR_BUDGET,
    LifetimeEstimate,
    lifetime_gain,
    synthesis_lifetime,
    traditional_lifetime,
)


class TestEstimates:
    def test_simple_division(self):
        estimate = LifetimeEstimate(wear_budget=4000, wear_per_run=45, runs=88)
        assert estimate.runs == 4000 // 45
        assert not estimate.is_single_use

    def test_synthesis_lifetime_from_result(self, pcr_result):
        estimate = synthesis_lifetime(pcr_result)
        wear = pcr_result.metrics.setting1.max_total
        assert estimate.wear_per_run == wear
        assert estimate.runs == DEFAULT_WEAR_BUDGET // wear

    def test_setting2_lives_longer(self, pcr_result):
        s1 = synthesis_lifetime(pcr_result, setting=1)
        s2 = synthesis_lifetime(pcr_result, setting=2)
        assert s2.runs >= s1.runs

    def test_traditional_lifetime(self):
        case = get_case("pcr")
        graph = case.graph()
        policy = case.policy1()
        design = traditional_design(graph, policy, schedule_for(case, policy))
        estimate = traditional_lifetime(design)
        assert estimate.runs == DEFAULT_WEAR_BUDGET // 160

    def test_gain_matches_paper_direction(self, pcr_result):
        """PCR p1: 160 -> ~45 per run means ~3.5x more assay runs."""
        case = get_case("pcr")
        graph = case.graph()
        policy = case.policy1()
        design = traditional_design(graph, policy, schedule_for(case, policy))
        gain = lifetime_gain(pcr_result, design)
        assert gain >= 3.0

    def test_single_use_detection(self):
        estimate = LifetimeEstimate(wear_budget=100, wear_per_run=90, runs=1)
        assert estimate.is_single_use

    def test_invalid_budget(self, pcr_result):
        with pytest.raises(SynthesisError):
            synthesis_lifetime(pcr_result, wear_budget=0)
