"""Tests for the windowed mapper's refinement machinery."""

import pytest

from repro.geometry import GridSpec, Point
from repro.core.mappers import GreedyMapper, WindowedILPMapper
from repro.core.mapping_model import MappingModelBuilder, MappingSpec
from repro.core.tasks import MappingTask


def task(name, start, end, volume=8, parents=()):
    return MappingTask(
        name=name,
        volume=volume,
        pump_rate=40,
        start=start,
        mix_start=start,
        end=end,
        mix_parents=tuple(parents),
    )


def concurrent_spec(n, grid):
    return MappingSpec(
        GridSpec(grid, grid), [task(f"m{i}", 0, 9) for i in range(n)]
    )


class TestRefinement:
    def test_refinement_never_worse_than_rolling(self):
        spec = concurrent_spec(4, 9)
        plain = WindowedILPMapper(window_size=2, refine_passes=0)
        refined = WindowedILPMapper(window_size=2, refine_passes=2)
        assert (
            refined.map_tasks(spec).objective
            <= plain.map_tasks(spec).objective
        )

    def test_refinement_reaches_monolithic_on_balanced_case(self):
        """Four concurrent rings fit a 9x9 grid at 40 each."""
        spec = concurrent_spec(4, 9)
        result = WindowedILPMapper(window_size=2).map_tasks(spec)
        assert result.objective == 40

    def test_zero_passes_supported(self):
        spec = concurrent_spec(2, 8)
        result = WindowedILPMapper(
            window_size=1, refine_passes=0
        ).map_tasks(spec)
        assert set(result.placements) == {"m0", "m1"}

    def test_whole_problem_greedy_fallback(self):
        """When every window dead-ends, the mapper degrades to greedy."""
        # 3 concurrent 8-rings only just fit a 7x7 grid; window commits
        # can dead-end, but the fallback must deliver a valid result.
        spec = concurrent_spec(3, 8)
        result = WindowedILPMapper(window_size=3).map_tasks(spec)
        assert set(result.placements) == {"m0", "m1", "m2"}


class TestDiscouragedCells:
    def test_secondary_objective_steers_ties(self):
        """Two equally-optimal placements: the discouraged one loses."""
        grid = GridSpec(4, 7)
        base = MappingSpec(grid, [task("a", 0, 5, volume=8)])
        # Discourage the lower half: the chosen rect must avoid it.
        lower = frozenset(
            Point(x, y) for x in range(4) for y in range(3)
        )
        discouraged_spec = MappingSpec(
            grid,
            [task("a", 0, 5, volume=8)],
            discouraged_cells=lower,
        )
        built = MappingModelBuilder(discouraged_spec).build()
        solution = built.model.solve(backend="scipy")
        placement = built.extract_placements(solution)["a"]
        covered = sum(
            1 for c in placement.pump_cells() if c in lower
        )
        assert covered == 0  # a discouragement-free optimum exists
        # Primary objective unchanged: still a single pump rate.
        assert round(solution.value(built.w)) == 40

    def test_penalty_never_trades_primary_objective(self):
        """The secondary term stays below 1, so w is still minimal."""
        grid = GridSpec(3, 3)
        everything = frozenset(grid.cells())
        spec = MappingSpec(
            grid,
            [task("a", 0, 5), task("b", 10, 15)],
            discouraged_cells=everything,
        )
        built = MappingModelBuilder(spec).build()
        solution = built.model.solve(backend="scipy")
        # Only one 3x3 position exists: stacking is forced, and the
        # all-cells penalty must not push the solver into infeasibility
        # or a worse w.
        assert round(solution.value(built.w)) == 80
