"""Unit tests for transport-event extraction."""

import pytest

from repro.geometry import GridSpec
from repro.architecture.chip import Chip
from repro.core.events import build_transport_events


@pytest.fixture
def chip():
    return Chip(GridSpec(9, 9))


class TestPcrEvents(object):
    def test_event_inventory(self, pcr, fig9_schedule, chip):
        events = build_transport_events(pcr, fig9_schedule, chip)
        # 8 input loadings + 6 product transfers + 1 final removal.
        input_loads = [e for e in events if e.source_is_port]
        transfers = [
            e for e in events if not e.source_is_port and not e.target_is_port
        ]
        removals = [e for e in events if e.target_is_port]
        assert len(input_loads) == 8
        assert len(transfers) == 6
        assert len(removals) == 1

    def test_product_transfer_times_are_parent_ends(self, pcr, fig9_schedule, chip):
        events = build_transport_events(pcr, fig9_schedule, chip)
        o2_to_o5 = [
            e for e in events if e.source == "o2" and e.target == "o5"
        ]
        assert len(o2_to_o5) == 1
        assert o2_to_o5[0].time == fig9_schedule.end("o2") == 12

    def test_input_loading_at_mix_start(self, pcr, fig9_schedule, chip):
        events = build_transport_events(pcr, fig9_schedule, chip)
        loads_o1 = [
            e for e in events if e.target == "o1" and e.source_is_port
        ]
        assert len(loads_o1) == 2
        assert all(e.time == 0 for e in loads_o1)

    def test_final_product_leaves_at_o7_end(self, pcr, fig9_schedule, chip):
        events = build_transport_events(pcr, fig9_schedule, chip)
        [removal] = [e for e in events if e.target_is_port]
        assert removal.source == "o7"
        assert removal.time == fig9_schedule.end("o7") == 29

    def test_input_ports_alternate(self, pcr, fig9_schedule, chip):
        events = build_transport_events(pcr, fig9_schedule, chip)
        used = {e.source for e in events if e.source_is_port}
        assert used == {"in0", "in1"}

    def test_events_sorted_by_time(self, pcr, fig9_schedule, chip):
        events = build_transport_events(pcr, fig9_schedule, chip)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_volumes_follow_ratio(self, pcr, fig9_schedule, chip):
        events = build_transport_events(pcr, fig9_schedule, chip)
        transfer = next(
            e for e in events if e.source == "o1" and e.target == "o5"
        )
        assert transfer.volume == 5  # half of o5's 10 units (1:1)


class TestDetectHandling:
    def test_detect_child_pulls_product_to_port(self, chip):
        from repro.assay.sequencing_graph import SequencingGraph
        from repro.assay.scheduler import ListScheduler, SchedulerConfig

        g = SequencingGraph("det")
        g.add_input("i0")
        g.add_input("i1")
        g.add_mix("m", ("i0", "i1"), duration=4, volume=8)
        g.add_detect("d", "m", duration=2)
        schedule = ListScheduler(SchedulerConfig()).schedule(g)
        events = build_transport_events(g, schedule, chip)
        [removal] = [e for e in events if e.target_is_port]
        assert removal.source == "m"
        assert removal.time == schedule.start("d")
