"""Unit tests for the design export."""

import json

from repro.core.export import design_dict, design_json, design_listing


class TestDesignExport:
    def test_dict_structure(self, pcr_result):
        data = design_dict(pcr_result)
        assert data["assay"] == "pcr"
        assert data["grid"] == {"width": 9, "height": 9}
        assert len(data["devices"]) == 7
        assert len(data["valves"]) == pcr_result.metrics.used_valves
        assert len(data["routes"]) == len(pcr_result.routes)
        assert data["summary"]["max_peristaltic_actuations"] == 40

    def test_valves_only_actuated_ones(self, pcr_result):
        data = design_dict(pcr_result)
        assert all(v["total_actuations"] > 0 for v in data["valves"])
        assert all(
            v["total_actuations"]
            == v["pump_actuations"] + v["control_actuations"]
            for v in data["valves"]
        )

    def test_devices_carry_lifecycle(self, pcr_result):
        data = design_dict(pcr_result)
        o7 = next(d for d in data["devices"] if d["operation"] == "o7")
        assert o7["storage_from"] == 9  # s7 forms at t=9 (paper text)
        assert o7["mixing_from"] == 25
        assert o7["dissolves_at"] == 29

    def test_json_round_trip(self, pcr_result):
        data = json.loads(design_json(pcr_result))
        assert data["summary"]["valve_count"] == pcr_result.metrics.used_valves

    def test_setting2_export_differs(self, pcr_result):
        s1 = design_dict(pcr_result, setting=1)
        s2 = design_dict(pcr_result, setting=2)
        assert (
            s2["summary"]["max_peristaltic_actuations"]
            < s1["summary"]["max_peristaltic_actuations"]
        )
        # Same physical valves in both settings.
        assert len(s1["valves"]) == len(s2["valves"])

    def test_listing_readable(self, pcr_result):
        text = design_listing(pcr_result)
        assert text.startswith("# design for assay 'pcr'")
        assert "valve (" in text
        assert "device o1" in text
