"""The anytime mapper tier (DESIGN.md §13).

Three contracts pinned here:

* **equivalence** — with the heuristic lane disabled the anytime
  mapper degenerates to the pure monolithic ILP, byte-identical
  placements included; with the LNS budget merely exhausted the race
  still ends at the exact lane's objective;
* **the race** — first feasible in milliseconds, incumbents certified
  before injection, the solver sees them, a heuristic win engages the
  ``anytime_heuristic`` rung, and the race never returns a worse
  objective than the exact mapper alone would within the same model;
* **fuzz** — on generated assays (``fuzz:<seed>:<ops>``) every adopted
  heuristic mapping completes to a full variable assignment that
  replays clean against a fresh model build and certifies, and a whole
  budgeted synthesis stays simulator-valid and audit-clean.
"""

import warnings

import pytest

from repro.assays import get_case, schedule_for
from repro.certify import certify_assignment
from repro.core import ChipSimulator, ReliabilitySynthesizer, SynthesisConfig
from repro.core.anytime import AnytimeMapper
from repro.core.lns import LargeNeighborhoodSearch
from repro.core.mappers import GreedyMapper, ILPMapper, LoadLedger
from repro.core.mapping_model import (
    MappingModelBuilder,
    MappingSpec,
    complete_solution,
)
from repro.core.tasks import build_tasks
from repro.errors import DegradedResultWarning
from repro.resilience import Deadline, DegradationLadder


def spec_for(case_name, n_tasks=None, stride=1):
    case = get_case(case_name)
    schedule = schedule_for(case, case.policies(1)[0])
    tasks = build_tasks(case.graph(), schedule)
    if n_tasks is not None:
        tasks = tasks[:n_tasks]
    return MappingSpec(grid=case.grid, tasks=tasks, anchor_stride=stride)


def assert_model_valid(spec, placements):
    """The placements complete to a certified assignment of a fresh
    model build — the offer pipeline's own validity contract."""
    built = MappingModelBuilder(spec).build()
    values = complete_solution(built, placements)
    assert values is not None
    assert built.model.check_solution(values) == []
    cert = certify_assignment(built.model, values)
    assert cert.status == "certified"
    return int(round(values[built.w]))


class TestEquivalence:
    def test_exact_only_mode_is_byte_identical_to_ilp(self):
        anytime = AnytimeMapper(
            heuristic=False, backend="branch_bound"
        ).map_tasks(spec_for("pcr", 2, 3))
        ilp = ILPMapper(backend="branch_bound").map_tasks(
            spec_for("pcr", 2, 3)
        )
        assert anytime.placements == ilp.placements
        assert anytime.objective == ilp.objective
        assert anytime.optimal and ilp.optimal
        assert anytime.used_overlaps == ilp.used_overlaps
        assert anytime.mapper == "anytime"

    def test_exhausted_lns_budget_matches_ilp_objective(self):
        # Zero LNS rounds leaves only the packer incumbent; the bound
        # it injects may reshape the search tree, so placements are not
        # byte-pinned here — the certified objective is.
        anytime = AnytimeMapper(lns_max_rounds=0).map_tasks(
            spec_for("pcr", 2, 3)
        )
        ilp = ILPMapper(backend="branch_bound").map_tasks(
            spec_for("pcr", 2, 3)
        )
        assert anytime.objective == ilp.objective
        assert anytime.optimal

    def test_windowed_exact_only_delegates(self):
        spec = spec_for("pcr")  # 8 tasks > limit of 4 below
        result = AnytimeMapper(
            heuristic=False, ilp_task_limit=4, window_size=3
        ).map_tasks(spec)
        assert result.placements  # every task placed
        assert set(result.placements) == {t.name for t in spec.tasks}


class TestRace:
    def test_probe_race_matches_exact_optimum(self):
        spec = spec_for("pcr", 2, 3)
        result = AnytimeMapper(seed=1).map_tasks(
            spec, deadline=Deadline(5.0)
        )
        ilp = ILPMapper(backend="branch_bound").map_tasks(
            spec_for("pcr", 2, 3)
        )
        # Never worse than the ILP alone, and here the budget is ample
        # so the exact lane finishes and proves it.
        assert result.objective == ilp.objective
        assert result.optimal
        assert result.stats["race_winner_heuristic"] == 0.0

    def test_first_feasible_is_fast_and_certified(self):
        spec = spec_for("pcr")  # the full case
        result = AnytimeMapper(seed=0).map_tasks(
            spec, deadline=Deadline(1.0)
        )
        stats = result.stats
        assert stats["first_feasible_seconds"] < 0.1
        assert stats["offers_certified"] >= 1
        assert stats["seconds_to_best_certified"] < 1.0
        # The certified incumbent is never worse than the bare packer.
        greedy = GreedyMapper().map_tasks(spec_for("pcr"))
        assert result.objective <= greedy.objective

    def test_injected_incumbent_reaches_the_solver(self):
        result = AnytimeMapper(seed=1).map_tasks(
            spec_for("pcr", 2, 3), deadline=Deadline(5.0)
        )
        assert result.stats["injectable"] == 1.0
        assert result.stats["solver_external_offers_seen"] >= 1
        assert result.stats["solver_external_rejected"] == 0

    def test_heuristic_win_engages_the_rung(self):
        # stride-1 exponential sub-model: far too hard for the exact
        # lane inside the budget, trivially packable by the heuristic.
        spec = spec_for("exponential_dilution", 5, 1)
        ladder = DegradationLadder()
        result = AnytimeMapper(seed=1).map_tasks(
            spec, deadline=Deadline(0.75), ladder=ladder
        )
        assert result.stats["race_winner_heuristic"] == 1.0
        assert not result.optimal
        assert ladder.fired(DegradationLadder.ANYTIME_HEURISTIC) == 1
        # The adopted mapping is certified against a fresh build.
        peak = assert_model_valid(
            spec_for("exponential_dilution", 5, 1), result.placements
        )
        assert peak == result.objective

    def test_race_timeline_is_recorded(self):
        result = AnytimeMapper(seed=1).map_tasks(
            spec_for("pcr", 2, 3), deadline=Deadline(5.0)
        )
        timeline = result.stats["race_timeline"]
        kinds = {event["kind"] for event in timeline}
        assert "offer" in kinds
        assert "incumbent" in kinds
        times = [event["t"] for event in timeline]
        assert times == sorted(times)


class TestLNS:
    def test_improves_or_keeps_and_stays_model_valid(self):
        spec = spec_for("exponential_dilution", 5, 1)
        greedy = GreedyMapper().map_tasks(spec)
        placements = dict(greedy.placements)
        before = LoadLedger.from_placements(
            spec, sorted(spec.tasks, key=lambda t: (t.start, t.name)),
            placements,
        ).measure()
        stats = LargeNeighborhoodSearch(spec, seed=3).run(
            placements, max_rounds=40
        )
        after = LoadLedger.from_placements(
            spec, sorted(spec.tasks, key=lambda t: (t.start, t.name)),
            placements,
        ).measure()
        assert after <= before
        assert stats["lns_rounds"] <= 40
        assert stats["lns_peak"] == after[0]
        assert_model_valid(
            spec_for("exponential_dilution", 5, 1), placements
        )

    def test_deterministic_in_seed(self):
        def run(seed):
            spec = spec_for("pcr")
            placements = dict(GreedyMapper().map_tasks(spec).placements)
            LargeNeighborhoodSearch(spec, seed=seed).run(
                placements, max_rounds=25
            )
            return placements

        assert run(11) == run(11)

    def test_stall_limit_stops_early(self):
        spec = spec_for("pcr", 2, 3)
        placements = dict(GreedyMapper().map_tasks(spec).placements)
        stats = LargeNeighborhoodSearch(spec, seed=0).run(
            placements, max_rounds=500, stall_limit=5
        )
        assert stats["lns_rounds"] <= 5 + stats["lns_accepted"] * 5


@pytest.mark.parametrize("seed,ops", [(3, 6), (11, 7), (29, 6)])
class TestFuzzObjectiveGap:
    def test_race_beats_or_ties_packer_and_certifies(self, seed, ops):
        case = get_case(f"fuzz:{seed}:{ops}")
        schedule = schedule_for(case, case.policies(1)[0])
        tasks = build_tasks(case.graph(), schedule)
        spec = MappingSpec(grid=case.grid, tasks=tasks)
        result = AnytimeMapper(seed=seed).map_tasks(
            spec, deadline=Deadline(1.0)
        )
        greedy = GreedyMapper().map_tasks(
            MappingSpec(grid=case.grid, tasks=tasks)
        )
        assert result.objective <= greedy.objective
        peak = assert_model_valid(
            MappingSpec(grid=case.grid, tasks=tasks), result.placements
        )
        assert peak == result.objective


class TestFuzzSynthesis:
    def test_budgeted_fuzz_synthesis_is_valid_and_audit_clean(self):
        case = get_case("fuzz:5:8")
        graph = case.graph()
        schedule = schedule_for(case, case.policies(1)[0])
        config = SynthesisConfig(
            grid=case.grid, time_budget=15.0, certify="strict"
        )
        with warnings.catch_warnings():
            # A tight budget may legitimately degrade to the certified
            # heuristic; strict certification still gates the result.
            warnings.simplefilter("ignore", DegradedResultWarning)
            result = ReliabilitySynthesizer(config).synthesize(
                graph, schedule
            )
        assert result.metrics.mapper == "anytime"
        assert result.audit is not None and result.audit.ok
        report = ChipSimulator(result).run()
        assert report.products_delivered >= 1
