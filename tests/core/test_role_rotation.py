"""Unit tests for the Figure 2/3 role-rotation concept module."""

import pytest

from repro.errors import ArchitectureError
from repro.core.role_rotation import RoleRotatingMixer
from repro.baseline.dedicated import DedicatedMixer


class TestFig3Assignment:
    def test_reproduces_figure3_max_48(self):
        mixer = RoleRotatingMixer(ring_size=8)
        mixer.run_fig3()
        assert mixer.max_actuations == 48
        assert mixer.valve_count == 8

    def test_halves_the_dedicated_wear(self):
        dedicated = DedicatedMixer(volume=8)
        dedicated.run_operations(2)
        rotating = RoleRotatingMixer(ring_size=8)
        rotating.run_fig3()
        # "the service life of this mixer is nearly doubled" with one
        # valve fewer (8 vs 9).
        assert rotating.max_actuations <= dedicated.max_actuations() * 0.6
        assert rotating.valve_count == dedicated.valve_count - 1

    def test_no_valve_pumps_twice(self):
        mixer = RoleRotatingMixer(ring_size=8)
        mixer.run_fig3()
        assert mixer.max_peristaltic == 40

    def test_role_changing_valves_exist(self):
        mixer = RoleRotatingMixer(ring_size=8)
        mixer.run_fig3()
        assert mixer.role_changing_valves() >= 6


class TestGreedyRotation:
    def test_greedy_never_worse_than_fig3(self):
        greedy = RoleRotatingMixer(ring_size=8)
        greedy.run_operation()
        greedy.run_operation()
        assert greedy.max_actuations <= 48

    def test_rotation_spreads_over_many_operations(self):
        """With 8 valves and 3-valve runs, wear grows ~40 per 2-3 ops."""
        mixer = RoleRotatingMixer(ring_size=8)
        for _ in range(8):
            mixer.run_operation()
        # Perfect balance would be 8*3/8 = 3 pump turns per valve.
        assert mixer.max_peristaltic <= 4 * 40
        dedicated = DedicatedMixer(volume=8)
        dedicated.run_operations(8)
        assert mixer.max_actuations < dedicated.max_actuations()

    def test_run_is_consecutive(self):
        mixer = RoleRotatingMixer(ring_size=8)
        run = mixer.run_operation()
        assert len(run) == 3
        for a, b in zip(run, run[1:]):
            assert (a + 1) % 8 == b

    def test_deterministic(self):
        a = RoleRotatingMixer(ring_size=8)
        b = RoleRotatingMixer(ring_size=8)
        for _ in range(4):
            assert a.run_operation() == b.run_operation()


class TestValidation:
    def test_too_small_ring(self):
        with pytest.raises(ArchitectureError):
            RoleRotatingMixer(ring_size=3)

    def test_bad_ports(self):
        with pytest.raises(ArchitectureError):
            RoleRotatingMixer(ring_size=8, ports=(1, 9))

    def test_counts_lengths(self):
        mixer = RoleRotatingMixer(ring_size=10)
        assert len(mixer.counts) == 10
        assert len(mixer.pump_counts) == 10
