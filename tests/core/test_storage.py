"""Unit tests for in-situ storage planning and Algorithm 1's check."""

import pytest

from repro.errors import AssayError
from repro.assay.schedule import Schedule
from repro.assay.sequencing_graph import SequencingGraph
from repro.assay.operation import MixRatio
from repro.architecture.device import Placement
from repro.architecture.device_types import device_type
from repro.geometry import Point
from repro.core.storage import StoragePlan, product_volume


@pytest.fixture
def diamond():
    g = SequencingGraph("diamond")
    for i in range(4):
        g.add_input(f"i{i}")
    g.add_mix("oa", ("i0", "i1"), duration=4, volume=8)
    g.add_mix("ob", ("i2", "i3"), duration=9, volume=8)
    g.add_mix(
        "oc", ("oa", "ob"), duration=5, volume=8, ratio=MixRatio((1, 3))
    )
    s = Schedule(g, transport_delay=3)
    for i in range(4):
        s.add(f"i{i}", 0)
    s.add("oa", 0)
    s.add("ob", 0)
    s.add("oc", 12)
    return g, s


class TestProductVolume:
    def test_ratio_aligned_with_parent_order(self, diamond):
        g, _ = diamond
        assert product_volume(g, "oc", "oa") == 2  # 1 part of 8
        assert product_volume(g, "oc", "ob") == 6  # 3 parts of 8

    def test_even_split_fallback(self, diamond):
        g, _ = diamond
        assert product_volume(g, "oa", "i0") == 4

    def test_unrelated_parent_rejected(self, diamond):
        g, _ = diamond
        with pytest.raises(AssayError):
            product_volume(g, "oc", "i0")


class TestStorageInfo:
    def test_storage_created_only_when_needed(self, diamond):
        g, s = diamond
        plan = StoragePlan(g, s)
        assert plan.storage("oa") is None  # input-fed: no buffering
        assert plan.storage("oc") is not None

    def test_fill_level_over_time(self, diamond):
        g, s = diamond
        info = StoragePlan(g, s).storage("oc")
        assert info.capacity == 8
        assert info.stored_volume(3) == 0  # before formation
        assert info.stored_volume(4) == 2  # oa's product arrives
        assert info.stored_volume(9) == 8  # ob's product (6 units) too
        assert info.stored_volume(12) == 0  # storage became the mixer

    def test_free_space(self, diamond):
        g, s = diamond
        plan = StoragePlan(g, s)
        assert plan.free_space("oc", 4) == 6
        assert plan.free_space("oc", 9) == 0
        assert plan.free_space("oc", 20) == 0  # outside the phase
        assert plan.free_space("nonexistent", 4) == 0


class TestOverlapViolations:
    def place(self, oc_at, ob_at):
        return {
            "oa": Placement(device_type(2, 4), Point(6, 0)),
            "ob": Placement(device_type(2, 4), Point(*ob_at)),
            "oc": Placement(device_type(2, 4), Point(*oc_at)),
        }

    def test_no_spatial_overlap_no_violation(self, diamond):
        g, s = diamond
        plan = StoragePlan(g, s)
        assert plan.overlap_violations(self.place((0, 0), (3, 0))) == set()

    def test_small_overlap_fits_free_space(self, diamond):
        g, s = diamond
        plan = StoragePlan(g, s)
        # oc storage holds oa's 2 units while ob runs: 6 units free;
        # a 1x4-cell overlap with ob's device fits.
        placements = self.place((0, 0), (1, 0))
        # ob at (1,0), oc at (0,0): 2x4 rects overlap in a 1x4 strip.
        assert plan.overlap_violations(placements) == set()

    def test_large_overlap_flagged(self, diamond):
        g, s = diamond
        plan = StoragePlan(g, s)
        placements = self.place((0, 0), (0, 0))  # full 8-cell overlap
        assert plan.overlap_violations(placements) == {("ob", "oc")}

    def test_finished_parent_never_flagged(self, diamond):
        g, s = diamond
        plan = StoragePlan(g, s)
        # oa ends exactly when oc's storage forms: sharing oa's cells is
        # the paper's Figure 7 reuse, never a violation.
        placements = {
            "oa": Placement(device_type(2, 4), Point(0, 0)),
            "ob": Placement(device_type(2, 4), Point(3, 0)),
            "oc": Placement(device_type(2, 4), Point(0, 0)),
        }
        assert plan.overlap_violations(placements) == set()

    def test_storages_listing(self, diamond):
        g, s = diamond
        plan = StoragePlan(g, s)
        assert [info.operation for info in plan.storages()] == ["oc"]
