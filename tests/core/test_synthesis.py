"""Integration-level tests for the full synthesis (Algorithm 1)."""

import pytest

from repro.errors import SynthesisError
from repro.geometry import GridSpec
from repro.assay.scheduler import ListScheduler, SchedulerConfig
from repro.assay.sequencing_graph import SequencingGraph
from repro.core.mappers import GreedyMapper, ILPMapper, WindowedILPMapper
from repro.core.synthesis import ReliabilitySynthesizer, SynthesisConfig


class TestPcrSynthesis:
    """The paper's own example: PCR/p1 with the Figure-9 schedule."""

    def test_matches_paper_vs1(self, pcr_result):
        # Table 1 PCR p1: vs 1max = 45(40).  The peristaltic part is the
        # ILP optimum and must match exactly; the total adds a few
        # control actuations whose exact count depends on equally
        # optimal placements, so a small margin applies.
        assert pcr_result.metrics.setting1.max_peristaltic == 40
        assert 41 <= pcr_result.metrics.setting1.max_total <= 48

    def test_matches_paper_vs2(self, pcr_result):
        # Table 1 PCR p1: vs 2max = 35(30).
        assert pcr_result.metrics.setting2.max_peristaltic == 30
        assert 31 <= pcr_result.metrics.setting2.max_total <= 38

    def test_valve_count_near_paper(self, pcr_result):
        # Paper: 71 valves; the model must land in the same range and
        # clearly below the traditional 83.
        assert 60 <= pcr_result.metrics.used_valves <= 83

    def test_every_mix_mapped(self, pcr_result):
        assert set(pcr_result.devices) == {f"o{i}" for i in range(1, 8)}

    def test_concurrent_devices_never_overlap_illegally(self, pcr_result):
        devices = list(pcr_result.devices.values())
        plan = pcr_result.storage_plan
        for i, a in enumerate(devices):
            for b in devices[i + 1:]:
                if not a.overlaps_in_time(b):
                    continue
                if not a.rect.overlaps(b.rect):
                    continue
                pair = {a.operation, b.operation}
                parents_a = {
                    p.name
                    for p in pcr_result.graph.mix_parents(a.operation)
                }
                parents_b = {
                    p.name
                    for p in pcr_result.graph.mix_parents(b.operation)
                }
                assert (
                    b.operation in parents_a or a.operation in parents_b
                ), f"illegal overlap {pair}"

    def test_role_changing_happens(self, pcr_result):
        # The headline concept: many valves serve in several roles.
        assert pcr_result.metrics.role_changing_valves >= 10

    def test_pump_balance_is_optimal(self, pcr_result):
        # 7 ops with rings of 4..10 valves fit a 9x9 grid without any
        # valve pumping twice: the ILP proves w = 40.
        assert pcr_result.metrics.mapping_objective == 40
        assert pcr_result.metrics.mapper == "ilp"

    def test_routes_cover_all_transports(self, pcr_result):
        assert len(pcr_result.routes) == 15  # 8 loads + 6 transfers + 1 out

    def test_snapshot_monotone_in_time(self, pcr_result):
        earlier = pcr_result.snapshot(6).sum()
        later = pcr_result.snapshot(25).sum()
        assert later > earlier

    def test_final_positions_match_used_count(self, pcr_result):
        assert (
            len(pcr_result.final_valve_positions())
            == pcr_result.metrics.used_valves
        )


class TestConfig:
    def test_auto_mapper_selection(self):
        config = SynthesisConfig(grid=GridSpec(9, 9), ilp_task_limit=8)
        assert isinstance(config.resolve_mapper(7), ILPMapper)
        assert isinstance(config.resolve_mapper(9), WindowedILPMapper)

    def test_explicit_mapper_wins(self):
        mapper = GreedyMapper()
        config = SynthesisConfig(grid=GridSpec(9, 9), mapper=mapper)
        assert config.resolve_mapper(100) is mapper

    def test_assay_without_mixes_rejected(self):
        g = SequencingGraph("empty")
        g.add_input("i0")
        schedule = ListScheduler(SchedulerConfig()).schedule(g)
        with pytest.raises(SynthesisError, match="no mixing operations"):
            ReliabilitySynthesizer(
                SynthesisConfig(grid=GridSpec(6, 6))
            ).synthesize(g, schedule)


class TestTinyAssay:
    def test_storage_becomes_device(self, tiny_result):
        c = tiny_result.device_of("c")
        storage = tiny_result.storage_plan.storage("c")
        assert storage is not None
        assert c.start == storage.start
        assert c.mix_start == storage.mix_start

    def test_settings_share_placements(self, tiny_result):
        g1 = tiny_result.grid_setting1
        g2 = tiny_result.grid_setting2
        assert {v.position for v in g1.actuated_valves()} == {
            v.position for v in g2.actuated_valves()
        }

    def test_setting2_weaker_wear(self, tiny_result):
        assert (
            tiny_result.metrics.setting2.max_total
            <= tiny_result.metrics.setting1.max_total
        )

    def test_greedy_config_runs_end_to_end(self, tiny_assay):
        graph, schedule = tiny_assay
        result = ReliabilitySynthesizer(
            SynthesisConfig(grid=GridSpec(8, 8), mapper=GreedyMapper())
        ).synthesize(graph, schedule)
        assert result.metrics.mapper == "greedy"
        assert result.metrics.setting1.max_peristaltic >= 40
