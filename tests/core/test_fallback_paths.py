"""Coverage for the mapper fallback paths that predate the ladder.

``whole_problem_fallback`` (window dead-end → greedy for the whole
problem), ``greedy_windows`` (one window → greedy), and a FEASIBLE
(incumbent, not proven optimal) solution flowing through
:class:`ILPMapper` were all reachable before the resilience work but
untested; these tests pin their semantics.
"""

import pytest

from repro.core.mappers import (
    GreedyMapper,
    ILPMapper,
    MappingResult,
    WindowedILPMapper,
)
from repro.core.mapping_model import MappingSpec
from repro.core.tasks import MappingTask
from repro.errors import SynthesisError
from repro.geometry import GridSpec
from repro.ilp.solution import SolveStatus
from repro.resilience import FAULTS, DegradationLadder, FaultSpec


def make_spec(n_tasks: int = 3, grid: int = 8) -> MappingSpec:
    """Sequential mixing tasks, deliberately overlapping in time."""
    tasks = [
        MappingTask(
            name=f"m{i}",
            volume=8,
            pump_rate=2,
            start=i * 2,
            mix_start=i * 2 + 1,
            end=i * 2 + 6,
            mix_parents=(),
        )
        for i in range(n_tasks)
    ]
    return MappingSpec(grid=GridSpec(grid, grid), tasks=tasks)


class TestWholeProblemFallback:
    def test_window_dead_end_falls_back_to_whole_greedy(self, monkeypatch):
        """A SynthesisError out of the rolling pass → greedy remap of the
        entire problem, recorded in stats and on the ladder."""
        mapper = WindowedILPMapper(window_size=2)

        def explode(*args, **kwargs):
            raise SynthesisError("window dead end (test)")

        monkeypatch.setattr(mapper, "_solve_window", explode)
        ladder = DegradationLadder()
        result = mapper.map_tasks(make_spec(), ladder=ladder)
        assert result.mapper == GreedyMapper.name
        assert result.stats["whole_problem_fallback"] == 1
        assert ladder.fired(DegradationLadder.WHOLE_GREEDY) == 1
        assert len(result.placements) == 3

    def test_clean_solve_does_not_fall_back(self):
        result = WindowedILPMapper(window_size=2).map_tasks(make_spec())
        assert result.stats["whole_problem_fallback"] == 0
        assert result.mapper == WindowedILPMapper.name


class TestGreedyWindows:
    def test_solver_down_counts_greedy_windows(self):
        """Every window ILP failing → per-window greedy fallbacks, all
        placements still produced."""
        mapper = WindowedILPMapper(window_size=2, refine_passes=0)
        with FAULTS.inject({"scipy.milp": FaultSpec(times=None)}):
            result = mapper.map_tasks(make_spec())
        assert result.stats["greedy_windows"] >= 1
        # The mapper as a whole still reports itself (windowed), only
        # individual windows degraded.
        assert result.mapper == WindowedILPMapper.name
        assert len(result.placements) == 3

    def test_greedy_window_result_feasible(self):
        """Greedy-window placements obey the non-overlap constraints."""
        mapper = WindowedILPMapper(window_size=2, refine_passes=0)
        with FAULTS.inject({"scipy.milp": FaultSpec(times=None)}):
            result = mapper.map_tasks(make_spec())
        spec = make_spec()
        tasks = {t.name: t for t in spec.tasks}
        names = sorted(result.placements)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                ta, tb = tasks[a], tasks[b]
                if ta.start < tb.end and tb.start < ta.end:
                    assert not result.rect_of(a).overlaps(result.rect_of(b))


class TestFeasibleIncumbent:
    def test_bb_limit_with_incumbent_flows_through_ilp_mapper(self):
        """A B&B search cut short *after* finding an incumbent returns
        FEASIBLE, and ILPMapper accepts it as a valid (non-optimal)
        mapping instead of raising."""
        # Let a few nodes complete so an integral incumbent exists, then
        # stop the search as if the time limit expired.
        for after in (2, 4, 8, 16, 32):
            with FAULTS.inject(
                {"bb.time_limit": FaultSpec(times=1, after=after)}
            ):
                try:
                    result = ILPMapper(backend="branch_bound").map_tasks(
                        make_spec(n_tasks=2)
                    )
                except SynthesisError:
                    continue  # stopped before the first incumbent: retry later
            if not result.optimal:
                break
        else:
            pytest.skip("search finished before any injection point")
        assert isinstance(result, MappingResult)
        assert result.optimal is False  # FEASIBLE, not proven OPTIMAL
        assert len(result.placements) == 2
        assert result.objective >= 0

    def test_feasible_status_reaches_solution(self):
        """Same cut-short search, asserted at the solver layer."""
        from repro.core.mapping_model import MappingModelBuilder

        built = MappingModelBuilder(make_spec(n_tasks=2)).build()
        for after in (2, 4, 8, 16, 32):
            with FAULTS.inject(
                {"bb.time_limit": FaultSpec(times=1, after=after)}
            ):
                solution = built.model.solve(backend="branch_bound")
            if solution.status is SolveStatus.FEASIBLE:
                assert solution.status.has_solution
                return
        pytest.skip("no injection point split the search mid-incumbent")
