"""Unit tests for the three mapping engines, including cross-checks."""

import pytest

from repro.errors import SynthesisError
from repro.geometry import GridSpec
from repro.core.mappers import GreedyMapper, ILPMapper, WindowedILPMapper
from repro.core.mapping_model import MappingSpec
from repro.core.tasks import MappingTask


def task(name, start, end, volume=8, parents=(), mix_start=None):
    return MappingTask(
        name=name,
        volume=volume,
        pump_rate=40,
        start=start,
        mix_start=start if mix_start is None else mix_start,
        end=end,
        mix_parents=tuple(parents),
    )


def chain_spec(n=5, grid=8):
    """A serial chain: each op is the next one's parent."""
    tasks = []
    t = 0
    for i in range(n):
        parents = (f"m{i - 1}",) if i else ()
        tasks.append(task(f"m{i}", t, t + 4, parents=parents))
        t += 7
    return MappingSpec(GridSpec(grid, grid), tasks)


def parallel_spec(n=3, grid=10):
    """n concurrent operations (pairwise non-overlap applies)."""
    return MappingSpec(
        GridSpec(grid, grid), [task(f"m{i}", 0, 9) for i in range(n)]
    )


def validate_result(spec, result):
    """Common invariants every mapper must satisfy."""
    assert set(result.placements) == {t.name for t in spec.tasks}
    by_name = {t.name: t for t in spec.tasks}
    for name, placement in result.placements.items():
        assert spec.grid.contains_rect(placement.rect)
        assert placement.device_type.volume == by_name[name].volume
    # Non-overlap for concurrent pairs (storage-overlap pairs exempt).
    names = list(result.placements)
    allowed = set(result.used_overlaps)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            ta, tb = by_name[a], by_name[b]
            if not ta.overlaps_in_time(tb):
                continue
            pair = spec.storage_pair(a, b)
            if pair is not None and pair in allowed:
                continue
            ra = result.placements[a].rect
            rb = result.placements[b].rect
            assert not ra.overlaps(rb), (a, b)


MAPPERS = [
    ILPMapper(backend="scipy"),
    WindowedILPMapper(window_size=2),
    GreedyMapper(),
]


@pytest.mark.parametrize("mapper", MAPPERS, ids=lambda m: m.name)
class TestAllMappers:
    def test_chain(self, mapper):
        spec = chain_spec()
        result = mapper.map_tasks(spec)
        validate_result(spec, result)

    def test_parallel(self, mapper):
        spec = parallel_spec()
        result = mapper.map_tasks(spec)
        validate_result(spec, result)

    def test_objective_accounts_all_loads(self, mapper):
        spec = parallel_spec()
        result = mapper.map_tasks(spec)
        loads = {}
        for name, placement in result.placements.items():
            for cell in placement.pump_cells():
                loads[cell] = loads.get(cell, 0) + 40
        assert result.objective == max(loads.values())

    def test_determinism(self, mapper):
        a = mapper.map_tasks(chain_spec())
        b = mapper.map_tasks(chain_spec())
        assert {n: p.rect for n, p in a.placements.items()} == {
            n: p.rect for n, p in b.placements.items()
        }


class TestOptimality:
    def test_ilp_at_least_as_good_as_greedy(self):
        for spec_factory in (chain_spec, parallel_spec):
            exact = ILPMapper(backend="scipy").map_tasks(spec_factory())
            greedy = GreedyMapper().map_tasks(spec_factory())
            assert exact.optimal
            assert exact.objective <= greedy.objective

    def test_windowed_matches_monolithic_on_small_chain(self):
        """Rolling horizon reaches the optimum on a loose instance."""
        exact = ILPMapper(backend="scipy").map_tasks(chain_spec(4))
        windowed = WindowedILPMapper(window_size=2).map_tasks(chain_spec(4))
        assert windowed.objective == exact.objective == 40

    def test_single_window_is_monolithic(self):
        spec = parallel_spec(2)
        windowed = WindowedILPMapper(window_size=10).map_tasks(spec)
        assert windowed.optimal


class TestGreedyFallbacks:
    def test_distance_limit_relaxed_when_unsatisfiable(self):
        # Parents placed at opposite corners by fixed load shaping would
        # make a within-d child impossible; the greedy tier-2 fallback
        # must still place everything.
        tasks = [
            task("p1", 0, 20),
            task("p2", 0, 20),
            task("c", 25, 30, parents=("p1", "p2")),
        ]
        spec = MappingSpec(GridSpec(12, 12), tasks)
        result = GreedyMapper().map_tasks(spec)
        assert set(result.placements) == {"p1", "p2", "c"}

    def test_greedy_infeasible_raises(self):
        spec = parallel_spec(n=5, grid=5)  # five concurrent 8-rings
        with pytest.raises(SynthesisError, match="no feasible placement"):
            GreedyMapper().map_tasks(spec)

    def test_greedy_prefers_fresh_valves(self):
        spec = chain_spec(2, grid=10)
        result = GreedyMapper().map_tasks(spec)
        rects = [p.rect for p in result.placements.values()]
        assert result.objective == 40  # no pump valve reused
        assert not set(rects[0].perimeter_cells()) & set(
            rects[1].perimeter_cells()
        )


class TestILPErrors:
    def test_infeasible_reports_synthesis_error(self):
        spec = parallel_spec(n=4, grid=5)
        with pytest.raises(SynthesisError, match="infeasible"):
            ILPMapper(backend="scipy").map_tasks(spec)
