"""Tests for run-to-run wear leveling (extension)."""

import pytest

from repro.errors import SynthesisError
from repro.core.lifetime import synthesis_lifetime
from repro.core.repetition import leveled_lifetime, plan_repetitions
from repro.core.synthesis import SynthesisConfig
from repro.geometry import GridSpec


@pytest.fixture
def setup(tiny_assay):
    graph, schedule = tiny_assay
    config = SynthesisConfig(grid=GridSpec(10, 10))
    return graph, schedule, config


class TestRepetitionPlan:
    def test_plan_length(self, setup):
        graph, schedule, config = setup
        plan = plan_repetitions(graph, schedule, config, runs=3)
        assert plan.run_count == 3
        assert set(plan.runs[0]) == {"a", "b", "c"}

    def test_later_runs_use_different_valves_first(self, setup):
        graph, schedule, config = setup
        plan = plan_repetitions(graph, schedule, config, runs=2)
        rings_run1 = {
            cell
            for placement in plan.runs[0].values()
            for cell in placement.pump_cells()
        }
        rings_run2 = {
            cell
            for placement in plan.runs[1].values()
            for cell in placement.pump_cells()
        }
        # The balancer must not simply reuse the first layout.
        assert rings_run1 != rings_run2

    def test_wear_grows_sublinearly(self, setup):
        """Leveling beats repeating one layout (wear 40 per run)."""
        graph, schedule, config = setup
        plan = plan_repetitions(graph, schedule, config, runs=4)
        assert plan.wear_after(4) < 4 * 40
        assert plan.wear_after(4) == plan.max_load

    def test_wear_after_monotone(self, setup):
        graph, schedule, config = setup
        plan = plan_repetitions(graph, schedule, config, runs=3)
        wears = [plan.wear_after(k) for k in range(4)]
        assert wears[0] == 0
        assert wears == sorted(wears)

    def test_invalid_runs(self, setup):
        graph, schedule, config = setup
        with pytest.raises(SynthesisError):
            plan_repetitions(graph, schedule, config, runs=0)
        plan = plan_repetitions(graph, schedule, config, runs=1)
        with pytest.raises(SynthesisError):
            plan.wear_after(5)


class TestLeveledLifetime:
    def test_leveling_extends_lifetime(self, setup, tiny_result):
        graph, schedule, config = setup
        fixed = synthesis_lifetime(tiny_result, wear_budget=400).runs
        leveled = leveled_lifetime(graph, schedule, config, wear_budget=400)
        assert leveled > fixed

    def test_budget_respected(self, setup):
        graph, schedule, config = setup
        runs = leveled_lifetime(graph, schedule, config, wear_budget=400)
        plan = plan_repetitions(graph, schedule, config, runs=runs)
        assert plan.max_load <= 400

    def test_max_runs_cap(self, setup):
        graph, schedule, config = setup
        runs = leveled_lifetime(
            graph, schedule, config, wear_budget=10**9, max_runs=3
        )
        assert runs == 3
