"""Unit tests for the pump-rate settings."""

import pytest

from repro.errors import SynthesisError
from repro.core.rates import (
    DEDICATED_MIXER_TOTAL_ACTUATIONS,
    pump_rate_setting1,
    pump_rate_setting2,
)


class TestRates:
    def test_dedicated_total_is_120(self):
        assert DEDICATED_MIXER_TOTAL_ACTUATIONS == 120

    @pytest.mark.parametrize("ring", [4, 6, 8, 10])
    def test_setting1_constant_40(self, ring):
        assert pump_rate_setting1(ring) == 40

    @pytest.mark.parametrize(
        "ring,expected", [(4, 30), (6, 20), (8, 15), (10, 12)]
    )
    def test_setting2_preserves_mixer_total(self, ring, expected):
        # The paper's example: "we change the number of actuations of
        # each valve in the mixer using 8 pump valves to 15".
        assert pump_rate_setting2(ring) == expected
        assert pump_rate_setting2(ring) * ring == 120

    def test_bad_ring_sizes(self):
        with pytest.raises(SynthesisError):
            pump_rate_setting1(0)
        with pytest.raises(SynthesisError):
            pump_rate_setting2(-2)
        with pytest.raises(SynthesisError):
            pump_rate_setting2(7)  # does not divide 120... (it does not)
