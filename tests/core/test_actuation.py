"""Unit tests for actuation accounting (both settings)."""

import pytest

from repro.errors import SynthesisError
from repro.geometry import GridSpec, Point
from repro.architecture.device import DynamicDevice, Placement
from repro.architecture.device_types import device_type
from repro.core.actuation import AccountingPolicy, ActuationAccountant
from repro.routing.path import RoutedPath, TransportEvent


def mixer(op="m", corner=(1, 1), dims=(3, 3), start=0, end=5):
    return DynamicDevice(
        operation=op,
        placement=Placement(device_type(*dims), Point(*corner)),
        start=start,
        end=end,
        mix_start=start,
    )


def route(cells, t=0):
    return RoutedPath(TransportEvent(t, "a", "b"), list(cells))


class TestAccountingPolicy:
    def test_setting_rates(self):
        assert AccountingPolicy(setting=1).pump_rate(8) == 40
        assert AccountingPolicy(setting=2).pump_rate(8) == 15

    def test_unknown_setting(self):
        with pytest.raises(SynthesisError):
            AccountingPolicy(setting=3).pump_rate(8)


class TestDeviceAccounting:
    def test_ring_gets_pump_plus_formation(self):
        accountant = ActuationAccountant(GridSpec(6, 6), AccountingPolicy())
        accountant.account_devices([mixer()])
        grid = accountant.grid
        ring_valve = grid.valve(Point(1, 1))
        assert ring_valve.peristaltic_actuations == 40
        assert ring_valve.transport_actuations == 1  # formation

    def test_interior_opens_once(self):
        accountant = ActuationAccountant(GridSpec(6, 6), AccountingPolicy())
        accountant.account_devices([mixer()])
        interior = accountant.grid.valve(Point(2, 2))
        assert interior.peristaltic_actuations == 0
        assert interior.total_actuations == 1

    def test_walls_are_functionless_by_default(self):
        accountant = ActuationAccountant(GridSpec(6, 6), AccountingPolicy())
        accountant.account_devices([mixer()])
        wall = accountant.grid.valve(Point(0, 0))
        assert wall.total_actuations == 0  # removed at L20

    def test_wall_events_opt_in(self):
        policy = AccountingPolicy(wall_events=2)
        accountant = ActuationAccountant(GridSpec(6, 6), policy)
        accountant.account_devices([mixer()])
        assert accountant.grid.valve(Point(0, 0)).total_actuations == 2

    def test_setting2_scales_by_ring(self):
        accountant = ActuationAccountant(
            GridSpec(8, 8), AccountingPolicy(setting=2)
        )
        accountant.account_devices(
            [mixer(dims=(3, 3)), mixer(op="n", dims=(2, 2), corner=(5, 5))]
        )
        grid = accountant.grid
        assert grid.valve(Point(1, 1)).peristaltic_actuations == 15
        assert grid.valve(Point(5, 5)).peristaltic_actuations == 30


class TestRouteAccounting:
    def test_path_cells_get_control(self):
        accountant = ActuationAccountant(GridSpec(6, 6), AccountingPolicy())
        accountant.account_routes([route([Point(0, 0), Point(1, 0)])])
        assert accountant.grid.valve(Point(0, 0)).transport_actuations == 1

    def test_repeated_paths_accumulate(self):
        accountant = ActuationAccountant(GridSpec(6, 6), AccountingPolicy())
        cells = [Point(0, 0), Point(1, 0)]
        accountant.account_routes([route(cells, 0), route(cells, 5)])
        assert accountant.grid.valve(Point(1, 0)).transport_actuations == 2

    def test_run_combines_everything(self):
        accountant = ActuationAccountant(GridSpec(6, 6), AccountingPolicy())
        grid = accountant.run(
            [mixer()], [route([Point(1, 1), Point(0, 1)])]
        )
        # Ring valve (1,1): 40 pump + 1 formation + 1 path.
        assert grid.valve(Point(1, 1)).total_actuations == 42
        assert grid.max_peristaltic_actuations == 40


class TestRoleChangeVisibility:
    def test_pump_then_path_is_role_changing(self):
        accountant = ActuationAccountant(
            GridSpec(6, 6), AccountingPolicy(device_formation=0)
        )
        grid = accountant.run(
            [mixer()], [route([Point(1, 1), Point(0, 1)])]
        )
        changers = {v.position for v in grid.role_changing_valves()}
        assert Point(1, 1) in changers
