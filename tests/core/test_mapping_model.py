"""Unit tests for the dynamic-device mapping ILP builder."""

import pytest

from repro.errors import SynthesisError
from repro.geometry import GridSpec, Point
from repro.architecture.device import DynamicDevice, Placement
from repro.architecture.device_types import device_type
from repro.core.mapping_model import MappingModelBuilder, MappingSpec
from repro.core.tasks import MappingTask


def task(name, start, end, volume=8, parents=(), mix_start=None):
    return MappingTask(
        name=name,
        volume=volume,
        pump_rate=40,
        start=start,
        mix_start=start if mix_start is None else mix_start,
        end=end,
        mix_parents=tuple(parents),
    )


def solve(spec):
    built = MappingModelBuilder(spec).build()
    solution = built.model.solve(backend="scipy")
    assert solution.status.has_solution, solution.status
    return built, solution


class TestCandidatePlacements:
    def test_all_shapes_of_the_volume_enumerated(self):
        spec = MappingSpec(GridSpec(6, 6), [task("a", 0, 5)])
        placements = spec.candidate_placements(spec.tasks[0])
        names = {p.device_type.name for p in placements}
        assert names == {"2x4", "4x2", "3x3"}

    def test_anchor_stride_thins_candidates(self):
        dense = MappingSpec(GridSpec(6, 6), [task("a", 0, 5)])
        sparse = MappingSpec(
            GridSpec(6, 6), [task("a", 0, 5)], anchor_stride=2
        )
        assert len(sparse.candidate_placements(sparse.tasks[0])) < len(
            dense.candidate_placements(dense.tasks[0])
        )

    def test_blocked_cells_respected(self):
        spec = MappingSpec(
            GridSpec(6, 6),
            [task("a", 0, 5)],
            blocked_cells=frozenset({Point(0, 0)}),
        )
        for placement in spec.candidate_placements(spec.tasks[0]):
            assert not placement.rect.contains(Point(0, 0))

    def test_impossible_placement_raises(self):
        spec = MappingSpec(GridSpec(2, 2), [task("a", 0, 5, volume=10)])
        with pytest.raises(SynthesisError, match="no feasible placement"):
            spec.candidate_placements(spec.tasks[0])


class TestSingleTask:
    def test_one_placement_selected(self):
        spec = MappingSpec(GridSpec(6, 6), [task("a", 0, 5)])
        built, solution = solve(spec)
        placements = built.extract_placements(solution)
        assert set(placements) == {"a"}
        assert placements["a"].device_type.volume == 8

    def test_objective_is_single_rate(self):
        spec = MappingSpec(GridSpec(6, 6), [task("a", 0, 5)])
        built, solution = solve(spec)
        assert solution.value(built.w) == pytest.approx(40.0)


class TestLoadBalancing:
    def test_sequential_tasks_avoid_stacking(self):
        """Two non-concurrent ops can share area but spread pump load."""
        spec = MappingSpec(
            GridSpec(6, 6), [task("a", 0, 5), task("b", 10, 15)]
        )
        built, solution = solve(spec)
        assert solution.value(built.w) == pytest.approx(40.0)

    def test_forced_stacking_on_tiny_grid(self):
        """A 3x3 grid fits only one 3x3 ring: loads must stack."""
        spec = MappingSpec(
            GridSpec(3, 3), [task("a", 0, 5), task("b", 10, 15)]
        )
        built, solution = solve(spec)
        assert solution.value(built.w) == pytest.approx(80.0)

    def test_base_load_counts_toward_objective(self):
        base = {cell: 40 for cell in Placement(
            device_type(3, 3), Point(0, 0)
        ).pump_cells()}
        spec = MappingSpec(GridSpec(3, 3), [task("a", 0, 5)], base_load=base)
        built, solution = solve(spec)
        assert solution.value(built.w) == pytest.approx(80.0)

    def test_committed_only_load_bounds_w(self):
        base = {Point(5, 5): 77}  # outside any candidate ring on purpose
        spec = MappingSpec(GridSpec(6, 6), [task("a", 0, 3)], base_load=base)
        built, solution = solve(spec)
        assert solution.value(built.w) >= 77.0


class TestNonOverlap:
    def test_concurrent_tasks_disjoint(self):
        spec = MappingSpec(
            GridSpec(8, 8), [task("a", 0, 9), task("b", 0, 9)]
        )
        built, solution = solve(spec)
        placements = built.extract_placements(solution)
        assert not placements["a"].rect.overlaps(placements["b"].rect)

    def test_non_concurrent_tasks_may_overlap(self):
        """On a tiny grid, sequential devices must reuse the same cells."""
        spec = MappingSpec(
            GridSpec(3, 3), [task("a", 0, 5), task("b", 10, 15)]
        )
        built, solution = solve(spec)
        placements = built.extract_placements(solution)
        assert placements["a"].rect.overlaps(placements["b"].rect)

    def test_infeasible_when_two_concurrent_on_tiny_grid(self):
        spec = MappingSpec(
            GridSpec(3, 3), [task("a", 0, 9), task("b", 0, 9)]
        )
        built = MappingModelBuilder(spec).build()
        solution = built.model.solve(backend="scipy")
        assert not solution.status.has_solution

    def test_fixed_device_blocks_concurrent_task(self):
        fixed = DynamicDevice(
            operation="f",
            placement=Placement(device_type(3, 3), Point(0, 0)),
            start=0,
            end=9,
            mix_start=0,
        )
        spec = MappingSpec(
            GridSpec(6, 6),
            [task("a", 0, 9)],
            fixed={"f": fixed},
        )
        built, solution = solve(spec)
        placements = built.extract_placements(solution)
        assert not placements["a"].rect.overlaps(fixed.rect)


class TestStorageOverlapPermission:
    def grid_forcing_overlap(self, forbidden=frozenset()):
        """Parent b alive [0,9); child c's storage exists [4,9) on a grid
        barely fitting two devices — only the c5 permission (or not)
        decides feasibility."""
        return MappingSpec(
            GridSpec(4, 6),
            [
                task("a", 0, 4),
                task("b", 0, 9),
                task("c", 4, 14, parents=("a", "b"), mix_start=9),
            ],
            forbidden_overlaps=set(forbidden),
            routing_convenient=False,
        )

    def test_c5_allows_parent_child_overlap(self):
        built, solution = solve(self.grid_forcing_overlap())
        placements = built.extract_placements(solution)
        if placements["c"].rect.overlaps(placements["b"].rect):
            assert ("b", "c") in built.extract_overlaps(solution)

    def test_forbidden_pair_pins_c5(self):
        spec = self.grid_forcing_overlap(forbidden={("b", "c")})
        built = MappingModelBuilder(spec).build()
        assert ("b", "c") not in built.c5_vars
        solution = built.model.solve(backend="scipy")
        if solution.status.has_solution:
            placements = built.extract_placements(solution)
            assert not placements["c"].rect.overlaps(placements["b"].rect)

    def test_global_switch_disables_c5(self):
        spec = self.grid_forcing_overlap()
        spec.allow_storage_overlap = False
        built = MappingModelBuilder(spec).build()
        assert built.c5_vars == {}


class TestRoutingConvenient:
    def test_child_placed_near_parent(self):
        spec = MappingSpec(
            GridSpec(12, 12),
            [task("p", 0, 5), task("c", 8, 13, parents=("p",))],
        )
        built, solution = solve(spec)
        placements = built.extract_placements(solution)
        d = spec.resolved_distance_limit()
        assert placements["c"].rect.within_distance(placements["p"].rect, d)

    def test_disabled_allows_distance(self):
        spec = MappingSpec(
            GridSpec(12, 12),
            [task("p", 0, 5), task("c", 8, 13, parents=("p",))],
            routing_convenient=False,
        )
        assert spec.resolved_distance_limit() is None
        solve(spec)  # builds and solves without the constraints
