"""Unit tests for report formatting helpers."""

from repro.experiments.reporting import format_columns, percent


class TestFormatColumns:
    def test_alignment(self):
        text = format_columns(
            ["name", "value"],
            [["a", 1], ["long-name", 22.5]],
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len(set(len(line) for line in lines)) == 1

    def test_float_formatting(self):
        text = format_columns(["v"], [[1.23456]])
        assert "1.23" in text and "1.2345" not in text

    def test_header_rule(self):
        text = format_columns(["a", "b"], [])
        assert "-" in text.splitlines()[1]


class TestPercent:
    def test_improvement(self):
        assert percent(160, 45) == 71.875

    def test_regression_is_negative(self):
        assert percent(100, 110) == -10.0

    def test_zero_baseline(self):
        assert percent(0, 5) == 0.0
