"""Tests for the Table 1 harness (fast configurations)."""

import pytest

from repro.assays import get_case
from repro.core.mappers import GreedyMapper
from repro.experiments.table1 import (
    format_table,
    run_cell,
    run_table1,
    summarize,
)
from repro.experiments.paper_data import paper_row


@pytest.fixture(scope="module")
def pcr_rows():
    """All three PCR policies with the exact (ILP) mapper."""
    return run_table1(["pcr"])


class TestPcrRows:
    def test_baseline_columns_exact(self, pcr_rows):
        for row in pcr_rows:
            published = paper_row(row.case, int(row.policy[1:]))
            assert row.num_devices == published.num_devices
            assert row.m_distribution == published.m_distribution
            assert row.vs_tmax == published.vs_tmax

    def test_our_columns_shape(self, pcr_rows):
        for row in pcr_rows:
            published = paper_row(row.case, int(row.policy[1:]))
            # Peristaltic part: exact (the ILP proves the same optimum).
            assert row.vs1_pump == published.vs1_pump
            # Totals within a small control-wear margin of the paper.
            assert abs(row.vs1_total - published.vs1_total) <= 5
            assert abs(row.vs2_total - published.vs2_total) <= 5
            # Valve count in the published range (a smaller count than
            # the paper's is fine — fewer valves is strictly better).
            assert 0.70 * published.v_ours <= row.v_ours <= 1.15 * published.v_ours

    def test_improvements_positive(self, pcr_rows):
        for row in pcr_rows:
            assert row.imp1_percent > 40
            assert row.imp2_percent > row.imp1_percent
            assert row.impv_percent > 0

    def test_summary_keys(self, pcr_rows):
        summary = summarize(pcr_rows)
        assert set(summary) == {
            "avg_imp1_percent",
            "avg_imp2_percent",
            "avg_impv_percent",
        }

    def test_format_contains_both_tables(self, pcr_rows):
        text = format_table(pcr_rows)
        assert "published values" in text
        assert "vs_tmax" in text
        assert "45(40)" in text  # the paper's famous PCR cell


class TestGreedyCell:
    def test_greedy_runs_any_case_fast(self):
        case = get_case("mixing_tree")
        row = run_cell(case, case.policy1(), mapper=GreedyMapper())
        assert row.mapper == "greedy"
        assert row.vs1_pump >= 80  # two ops per valve at best here
        assert row.vs_tmax == 280
