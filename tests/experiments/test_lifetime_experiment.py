"""Tests for the lifetime experiment driver (``repro lifetime``)."""

import pytest

from repro.errors import ReproError
from repro.resilience.faults import FaultSpec
from repro.experiments.lifetime import GRID_MARGIN, parse_fault, run_lifetime


class TestParseFault:
    def test_bare_site_fires_once(self):
        site, spec = parse_fault("chip.valve_dead")
        assert site == "chip.valve_dead"
        assert spec == FaultSpec(times=1, after=0, prob=None)

    def test_count_and_after(self):
        site, spec = parse_fault("chip.valve_dead:2@3")
        assert spec == FaultSpec(times=2, after=3, prob=None)

    def test_probability_spec(self):
        site, spec = parse_fault("chip.edge_dead:p0.25")
        assert spec == FaultSpec(times=None, after=0, prob=0.25)

    def test_after_without_count(self):
        site, spec = parse_fault("routing.route:@5")
        assert spec == FaultSpec(times=1, after=5, prob=None)

    def test_empty_site_rejected(self):
        with pytest.raises(ReproError, match="empty site"):
            parse_fault(":1")


class TestRunLifetime:
    def test_compare_payload_shape(self):
        payload = run_lifetime(
            "fuzz:1:12", mapper="greedy", wear_budget=100000,
            max_runs=3, mode="compare",
        )
        assert set(payload) >= {"adaptive", "static", "gain", "case", "grid"}
        assert payload["adaptive"]["runs"] == 3
        assert payload["static"]["runs"] == 3
        assert payload["gain"] == 1.0  # nothing died: same service life

    def test_grid_margin_default(self):
        payload = run_lifetime(
            "fuzz:1:12", mapper="greedy", wear_budget=100000,
            max_runs=1, mode="static",
        )
        from repro.assays import get_case

        case = get_case("fuzz:1:12")
        assert payload["grid"] == max(
            case.grid.width, case.grid.height
        ) + GRID_MARGIN

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError, match="unknown mode"):
            run_lifetime("pcr", mode="chaotic")
