"""Tests for the ``python -m repro profile`` report."""

import json

import pytest

from repro import obs
from repro.__main__ import build_parser, main
from repro.experiments.profile import format_report, run_profile


@pytest.fixture(scope="module")
def report():
    # The greedy mapper keeps the full-synthesis part fast; the solver
    # probe still exercises the branch-&-bound / simplex stack.
    return run_profile("pcr", mapper="greedy", probe=True)


class TestRunProfile:
    def test_report_shape(self, report):
        assert report["case"] == "pcr"
        assert report["mapper"] == "greedy"
        assert report["wall_seconds"] > 0.0
        assert report["metrics"]["used_valves"] > 0
        assert report["metrics"]["routed_paths"] > 0

    def test_counters_cover_every_subsystem(self, report):
        counters = report["telemetry"]["counters"]
        assert counters["mapper.greedy_solves"] >= 1
        assert counters["routing.dijkstra_calls"] >= 1
        assert counters["routing.heap_pops"] > 0
        # The probe feeds the from-scratch solver counters even though
        # the synthesis itself may never touch that backend.
        assert counters["bb.solves"] == 1
        assert counters["bb.nodes_explored"] > 0
        assert counters["simplex.iterations"] > 0

    def test_probe_solved_to_optimality(self, report):
        probe = report["solver_probe"]
        assert probe["status"] == "optimal"
        assert probe["nodes_explored"] > 0

    def test_timers_present(self, report):
        timers = report["telemetry"]["timers"]
        assert timers["bb.lp"]["events"] > 0
        assert timers["simplex.pivot"]["seconds"] >= 0.0

    def test_telemetry_left_disabled(self, report):
        assert not obs.enabled()

    def test_report_is_json_serializable(self, report):
        parsed = json.loads(json.dumps(report))
        assert parsed["case"] == "pcr"

    def test_format_report_mentions_the_counters(self, report):
        text = format_report(report)
        assert "profile: pcr" in text
        assert "bb.nodes_explored" in text
        assert "solver probe: optimal" in text


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["profile", "pcr"])
        assert args.policy == 1
        assert args.mapper == "auto"
        assert args.json is None
        assert not args.no_probe

    def test_cli_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        assert (
            main(
                [
                    "profile", "pcr", "--mapper", "greedy",
                    "--no-probe", "--json", str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "profile: pcr" in out
        data = json.loads(out_path.read_text())
        assert data["case"] == "pcr"
        assert "solver_probe" not in data
        assert data["telemetry"]["counters"]["routing.dijkstra_calls"] >= 1
