"""Tests for the future-work speedup study."""

import pytest

from repro.assays import get_case
from repro.experiments.acceleration import (
    dynamic_schedule,
    format_speedup,
    measure_case,
    run_speedup,
)


class TestDynamicSchedule:
    def test_pcr_dynamic_equals_fig9(self):
        """Unconstrained scheduling of PCR is exactly Figure 9."""
        schedule = dynamic_schedule(get_case("pcr"))
        assert schedule.makespan == 29

    def test_dynamic_never_slower(self):
        rows = measure_case(get_case("pcr"))
        for row in rows:
            assert row.dynamic_makespan <= row.traditional_makespan
            assert row.speedup >= 1.0

    def test_area_feasibility_verified(self):
        rows = measure_case(get_case("pcr"))
        assert all(row.area_feasible for row in rows)

    def test_speedup_shrinks_with_policy_index(self):
        """More dedicated mixers -> the traditional gap closes."""
        rows = measure_case(get_case("mixing_tree"))
        speedups = [row.speedup for row in rows]
        assert speedups == sorted(speedups, reverse=True)


class TestHarness:
    def test_run_selected_cases(self):
        rows = run_speedup(["pcr"])
        assert [row.policy for row in rows] == ["p1", "p2", "p3"]

    def test_formatting(self):
        rows = run_speedup(["pcr"])
        text = format_speedup(rows)
        assert "speedup" in text and "pcr" in text
