"""Tests for the figure reproductions."""

import pytest

from repro.experiments import figures
from repro.experiments.paper_data import (
    FIG2_CONTROL_ACTUATIONS,
    FIG2_PUMP_ACTUATIONS,
    FIG2_VALVES,
    FIG3_MAX_ACTUATIONS,
    FIG3_VALVES,
)


class TestFigure2:
    def test_profile_matches_paper(self):
        profile = figures.figure2()
        assert profile["pump"] == [FIG2_PUMP_ACTUATIONS] * 3
        assert tuple(profile["control"]) == FIG2_CONTROL_ACTUATIONS
        assert len(profile["pump"]) + len(profile["control"]) == FIG2_VALVES

    def test_render(self):
        text = figures.render_figure2()
        assert "80" in text and "9" in text


class TestFigure3:
    def test_numbers_match_paper(self):
        data = figures.figure3()
        assert data.dedicated_max == FIG2_PUMP_ACTUATIONS
        assert data.rotating_max == FIG3_MAX_ACTUATIONS  # 48
        assert data.rotating_valves == FIG3_VALVES  # 8
        assert data.greedy_max <= FIG3_MAX_ACTUATIONS

    def test_render(self):
        text = figures.render_figure3()
        assert "48" in text and "80" in text


class TestFigure5:
    def test_disjoint_channel_valves(self):
        data = figures.figure5()
        assert data.area_overlap > 0
        assert data.shared_pump_channel_valves == 0
        assert data.shared_pump_cells > 0  # the conservative cell view

    def test_render(self):
        assert "completely different" in figures.render_figure5()


class TestFigure7:
    @pytest.fixture(scope="class")
    def data(self):
        return figures.figure7()

    def test_storage_interval(self, data):
        assert data.storage_interval == (4, 12)

    def test_storage_becomes_device(self, data):
        oc = data.result.device_of("oc")
        assert oc.start == 4 and oc.mix_start == 12

    def test_render(self, data):
        text = figures.render_figure7()
        assert "s_c" in text and "becomes d_c" in text


class TestFigure9:
    def test_schedule_is_fig9(self):
        schedule = figures.figure9()
        assert schedule.start("o7") == 25
        assert schedule.makespan == 29

    def test_render_contains_all_ops(self):
        text = figures.render_figure9()
        for i in range(1, 8):
            assert f"o{i}" in text


class TestFigure10:
    @pytest.fixture(scope="class")
    def fig10(self):
        return figures.figure10(times=(2, 25))

    def test_panel_count(self, fig10):
        _, panels = fig10
        assert len(panels) == 2

    def test_wear_counters_visible(self, fig10):
        _, panels = fig10
        # Pump wear (40) + formation (1) appears as 41 at t=2.
        assert "41" in panels[0]
        assert "t = 25tu" in panels[1]

    def test_result_matches_table(self, fig10):
        result, _ = fig10
        assert result.metrics.setting1.max_peristaltic == 40


class TestFigure4:
    def test_size_change_in_same_area(self):
        data = figures.figure4()
        assert data.smaller.device_type.volume < data.larger.device_type.volume
        # The larger device fully reuses the smaller one's area.
        assert data.shared_area == data.smaller.rect.area
        assert data.extra_ring_valves > 0

    def test_render(self):
        text = figures.render_figure4()
        assert "different sizes" in text
