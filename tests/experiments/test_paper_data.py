"""Consistency checks on the transcribed Table 1 reference data."""

import pytest

from repro.errors import ReproError
from repro.experiments.paper_data import (
    PAPER_AVERAGE_IMP1,
    PAPER_AVERAGE_IMP2,
    PAPER_AVERAGE_IMPV,
    PAPER_TABLE1,
    paper_row,
)


class TestTable1Transcription:
    def test_twelve_rows(self):
        assert len(PAPER_TABLE1) == 12

    def test_lookup(self):
        row = paper_row("pcr", 1)
        assert row.vs_tmax == 160 and row.v_traditional == 83

    def test_unknown_lookup(self):
        with pytest.raises(ReproError):
            paper_row("pcr", 9)

    def test_improvement_columns_recompute(self):
        """The printed percentages follow from the printed counts."""
        for row in PAPER_TABLE1:
            imp1 = (row.vs_tmax - row.vs1_total) / row.vs_tmax * 100
            imp2 = (row.vs_tmax - row.vs2_total) / row.vs_tmax * 100
            impv = (
                (row.v_traditional - row.v_ours) / row.v_traditional * 100
            )
            assert imp1 == pytest.approx(row.imp1_percent, abs=0.02)
            assert imp2 == pytest.approx(row.imp2_percent, abs=0.02)
            assert impv == pytest.approx(row.impv_percent, abs=0.02)

    def test_published_averages_recompute(self):
        """The 55.76 / 72.97 / 10.62 bottom line of Table 1."""
        n = len(PAPER_TABLE1)
        avg1 = sum(r.imp1_percent for r in PAPER_TABLE1) / n
        avg2 = sum(r.imp2_percent for r in PAPER_TABLE1) / n
        avgv = sum(r.impv_percent for r in PAPER_TABLE1) / n
        assert avg1 == pytest.approx(PAPER_AVERAGE_IMP1, abs=0.02)
        assert avg2 == pytest.approx(PAPER_AVERAGE_IMP2, abs=0.02)
        assert avgv == pytest.approx(PAPER_AVERAGE_IMPV, abs=0.02)

    def test_vs_tmax_is_40_times_max_load(self):
        for row in PAPER_TABLE1:
            assert row.vs_tmax % 40 == 0

    def test_setting2_never_worse_than_setting1(self):
        for row in PAPER_TABLE1:
            assert row.vs2_total <= row.vs1_total
