"""Tests for the ALAP schedule adjustment."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.assay.alap import alap_adjust, storage_time_saved
from repro.assay.scheduler import ListScheduler, SchedulerConfig
from repro.assays.pcr import pcr_fig9_schedule, pcr_graph

from tests.assay.test_scheduler_properties import layered_assay


class TestAlapOnPcr:
    def test_makespan_preserved(self, pcr, fig9_schedule):
        adjusted = alap_adjust(fig9_schedule)
        assert adjusted.makespan == fig9_schedule.makespan == 29

    def test_early_ops_pushed_late(self, pcr, fig9_schedule):
        adjusted = alap_adjust(fig9_schedule)
        # o6 slides from [6,9) right up against o7 (start 25, 3 tu
        # transport): [19,22).  o3/o4 follow: end 16 = o6 start - delay.
        assert adjusted.start("o6") == 19
        assert adjusted.start("o3") == 13
        assert adjusted.start("o4") == 13
        # o1 is on the critical path: it cannot move.
        assert adjusted.start("o1") == 0

    def test_total_storage_time_reduced(self, pcr, fig9_schedule):
        adjusted = alap_adjust(fig9_schedule)
        # 16 storage time-units disappear on PCR (the instantaneous
        # *peak* demand may still shift around, only the total is
        # guaranteed to shrink).
        assert storage_time_saved(fig9_schedule, adjusted) == 16

    def test_still_valid(self, fig9_schedule):
        alap_adjust(fig9_schedule).validate()

    def test_idempotent(self, fig9_schedule):
        once = alap_adjust(fig9_schedule)
        twice = alap_adjust(once)
        assert {n: e.start for n, e in once.entries.items()} == {
            n: e.start for n, e in twice.entries.items()
        }


class TestAlapWithBindings:
    def test_bound_devices_stay_exclusive(self):
        graph = pcr_graph()
        schedule = ListScheduler(
            SchedulerConfig(mixers={4: 1, 8: 2, 10: 1})
        ).schedule(graph)
        adjusted = alap_adjust(schedule)
        adjusted.validate()
        by_device = {}
        for so in adjusted.scheduled_mixes():
            by_device.setdefault(so.device, []).append(so.interval)
        for intervals in by_device.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2


class TestAlapProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(layered_assay())
    def test_never_earlier_never_longer(self, graph):
        schedule = ListScheduler(SchedulerConfig()).schedule(graph)
        adjusted = alap_adjust(schedule)
        adjusted.validate()
        assert adjusted.makespan == schedule.makespan
        for name, entry in schedule.entries.items():
            assert adjusted.start(name) >= entry.start

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(layered_assay())
    def test_storage_never_grows(self, graph):
        schedule = ListScheduler(SchedulerConfig()).schedule(graph)
        adjusted = alap_adjust(schedule)
        assert storage_time_saved(schedule, adjusted) >= 0
