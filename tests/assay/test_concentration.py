"""Unit tests for concentration propagation."""

from fractions import Fraction

import pytest

from repro.errors import AssayError
from repro.assay.concentration import dilution_factor, propagate_concentrations
from repro.assay.operation import MixRatio
from repro.assay.sequencing_graph import SequencingGraph
from repro.assays.exponential_dilution import exponential_dilution_graph
from repro.assays.interpolating_dilution import interpolating_dilution_graph


def serial_chain(steps, ratio=(1, 1)):
    graph = SequencingGraph("chain")
    graph.add_input("sample")
    previous = "sample"
    for i in range(steps):
        graph.add_input(f"buf{i}")
        graph.add_mix(
            f"m{i}", (previous, f"buf{i}"), duration=4, volume=8,
            ratio=MixRatio(ratio),
        )
        previous = f"m{i}"
    return graph


class TestPropagation:
    def test_serial_halving(self):
        graph = serial_chain(3)
        inputs = {"sample": 1, "buf0": 0, "buf1": 0, "buf2": 0}
        c = propagate_concentrations(graph, inputs)
        assert c["m0"] == Fraction(1, 2)
        assert c["m1"] == Fraction(1, 4)
        assert c["m2"] == Fraction(1, 8)

    def test_ratio_weighting(self):
        graph = serial_chain(1, ratio=(1, 3))
        c = propagate_concentrations(
            graph, {"sample": 1, "buf0": 0}
        )
        assert c["m0"] == Fraction(1, 4)  # 1 part sample in 4

    def test_interpolation_between_inputs(self):
        graph = SequencingGraph("interp")
        graph.add_input("lo")
        graph.add_input("hi")
        graph.add_mix("mid", ("lo", "hi"), duration=4, volume=8)
        c = propagate_concentrations(graph, {"lo": Fraction(1, 4), "hi": 1})
        assert c["mid"] == Fraction(5, 8)

    def test_detect_passes_through(self):
        graph = serial_chain(1)
        graph.add_detect("d", "m0", duration=2)
        c = propagate_concentrations(graph, {"sample": 1, "buf0": 0})
        assert c["d"] == c["m0"]

    def test_missing_input_rejected(self):
        graph = serial_chain(1)
        with pytest.raises(AssayError, match="no input concentration"):
            propagate_concentrations(graph, {"sample": 1})

    def test_dilution_factor(self):
        graph = serial_chain(3)
        inputs = {"sample": 1, "buf0": 0, "buf1": 0, "buf2": 0}
        assert dilution_factor(graph, inputs, "m2", "sample") == 8

    def test_zero_concentration_factor_rejected(self):
        graph = serial_chain(1)
        inputs = {"sample": 0, "buf0": 0}
        with pytest.raises(AssayError, match="unbounded"):
            dilution_factor(graph, inputs, "m0", "sample")


class TestBenchmarkSemantics:
    def test_exponential_dilution_really_is_exponential(self):
        """Each chain's tail is an exponentially diluted sample."""
        graph = exponential_dilution_graph()
        inputs = {
            op.name: (1 if op.name.startswith("sample") else 0)
            for op in graph.operations()
            if op.is_input
        }
        c = propagate_concentrations(graph, inputs)
        # Chain 0: 12 steps, 1:1 mostly but every 6th step uses a
        # stronger ratio, so the dilution factor is at least 2^12.
        factor = dilution_factor(graph, inputs, "e0_11", "sample0")
        assert factor >= 2 ** 12
        # Monotone along the chain.
        previous = Fraction(1)
        for j in range(12):
            assert c[f"e0_{j}"] < previous
            previous = c[f"e0_{j}"]

    def test_interpolating_dilution_interpolates(self):
        """Stage-2 products lie between their stage-1 parents."""
        graph = interpolating_dilution_graph()
        inputs = {}
        for op in graph.operations():
            if not op.is_input:
                continue
            if op.name.startswith("sample"):
                # A gradient of source concentrations.
                inputs[op.name] = Fraction(int(op.name[6:]) + 1, 12)
            else:
                inputs[op.name] = 0
        c = propagate_concentrations(graph, inputs)
        for i in range(9):
            lo = min(c[f"d1_{i}"], c[f"d1_{i + 1}"])
            hi = max(c[f"d1_{i}"], c[f"d1_{i + 1}"])
            assert lo <= c[f"d2_{i}"] <= hi
