"""Property-based tests for the list scheduler.

Random assays under random mixer banks: the produced schedule must
respect precedence + transport delay, never double-book a device, and
shrink (or hold) its makespan when resources grow.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.assay.operation import MIXER_SIZES
from repro.assay.scheduler import ListScheduler, SchedulerConfig
from repro.assay.sequencing_graph import SequencingGraph


@st.composite
def layered_assay(draw):
    """2-3 layers of mixes; layer k feeds layer k+1."""
    graph = SequencingGraph("layered")
    n_layers = draw(st.integers(min_value=1, max_value=3))
    width = draw(st.integers(min_value=1, max_value=4))
    previous: list = []
    counter = 0
    for layer in range(n_layers):
        current = []
        for i in range(width):
            parents = []
            if previous and draw(st.booleans()):
                parents.append(
                    previous[draw(st.integers(0, len(previous) - 1))]
                )
            while len(parents) < 2:
                name = f"in{counter}"
                counter += 1
                graph.add_input(name)
                parents.append(name)
            volume = draw(st.sampled_from(MIXER_SIZES))
            op = f"m{layer}_{i}"
            graph.add_mix(
                op, parents,
                duration=draw(st.integers(min_value=1, max_value=9)),
                volume=volume,
            )
            current.append(op)
        previous = current
    graph.validate()
    return graph


banks = st.sampled_from([
    None,
    {size: 1 for size in MIXER_SIZES},
    {size: 2 for size in MIXER_SIZES},
])


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(layered_assay(), banks, st.integers(min_value=0, max_value=5))
def test_schedule_is_always_valid(graph, bank, delay):
    schedule = ListScheduler(
        SchedulerConfig(mixers=bank, transport_delay=delay)
    ).schedule(graph)
    schedule.validate()  # precedence + transport delay


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(layered_assay())
def test_devices_never_double_booked(graph):
    bank = {size: 1 for size in MIXER_SIZES}
    schedule = ListScheduler(SchedulerConfig(mixers=bank)).schedule(graph)
    by_device: dict = {}
    for so in schedule.scheduled_mixes():
        by_device.setdefault(so.device, []).append(so.interval)
    for intervals in by_device.values():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(layered_assay())
def test_more_resources_never_hurt(graph):
    small = ListScheduler(
        SchedulerConfig(mixers={size: 1 for size in MIXER_SIZES})
    ).schedule(graph)
    large = ListScheduler(
        SchedulerConfig(mixers={size: 3 for size in MIXER_SIZES})
    ).schedule(graph)
    unlimited = ListScheduler(SchedulerConfig()).schedule(graph)
    assert unlimited.makespan <= large.makespan <= small.makespan


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(layered_assay(), st.integers(min_value=0, max_value=4))
def test_storage_intervals_precede_start(graph, delay):
    schedule = ListScheduler(
        SchedulerConfig(transport_delay=delay)
    ).schedule(graph)
    for so in schedule.scheduled_mixes():
        interval = schedule.storage_interval(so.name)
        if interval is not None:
            begin, end = interval
            assert begin < end <= so.start + so.operation.duration
            assert end == so.start
