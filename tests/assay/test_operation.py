"""Unit tests for operations and mix ratios."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AssayError
from repro.assay.operation import MIXER_SIZES, MixRatio, Operation, OperationKind


class TestMixRatio:
    def test_normalization_by_gcd(self):
        assert MixRatio((2, 6)).parts == (1, 3)
        assert MixRatio((5, 5)).parts == (1, 1)

    def test_total(self):
        assert MixRatio((1, 3)).total == 4

    def test_volume_split(self):
        assert MixRatio((1, 3)).volumes(8) == (2, 6)
        assert MixRatio((1, 1)).volumes(10) == (5, 5)

    def test_indivisible_volume_rejected(self):
        with pytest.raises(AssayError):
            MixRatio((1, 2)).volumes(10)  # 10 % 3 != 0

    def test_more_than_two_parts(self):
        assert MixRatio((1, 1, 2)).volumes(8) == (2, 2, 4)

    @pytest.mark.parametrize("parts", [(0, 1), (-1, 2), (1,)])
    def test_invalid_parts(self, parts):
        with pytest.raises(AssayError):
            MixRatio(parts)

    def test_str(self):
        assert str(MixRatio((2, 6))) == "1:3"

    @given(
        st.lists(st.integers(min_value=1, max_value=9), min_size=2, max_size=4)
    )
    def test_normalized_parts_are_coprime(self, parts):
        import math

        normalized = MixRatio(tuple(parts)).parts
        g = 0
        for p in normalized:
            g = math.gcd(g, p)
        assert g == 1


class TestOperation:
    def test_mix_gets_default_ratio(self):
        op = Operation("m", OperationKind.MIX, duration=4, volume=8)
        assert op.ratio == MixRatio((1, 1))
        assert op.is_mix and not op.is_input

    def test_mix_volume_must_be_a_size_class(self):
        with pytest.raises(AssayError):
            Operation("m", OperationKind.MIX, duration=4, volume=7)
        for size in MIXER_SIZES:
            Operation("m", OperationKind.MIX, duration=4, volume=size)

    def test_mix_needs_positive_duration(self):
        with pytest.raises(AssayError):
            Operation("m", OperationKind.MIX, duration=0, volume=8)

    def test_non_mix_cannot_carry_ratio(self):
        with pytest.raises(AssayError):
            Operation(
                "i", OperationKind.INPUT, ratio=MixRatio((1, 1))
            )

    def test_nameless_rejected(self):
        with pytest.raises(AssayError):
            Operation("", OperationKind.INPUT)

    def test_negative_duration_rejected(self):
        with pytest.raises(AssayError):
            Operation("d", OperationKind.DETECT, duration=-1)
