"""Round-trip tests for the text serialization."""

import pytest

from repro.errors import AssayError, SchedulingError
from repro.assay import (
    ListScheduler,
    SchedulerConfig,
    graph_from_text,
    graph_to_text,
    schedule_from_text,
    schedule_to_text,
)
from repro.assays.pcr import pcr_fig9_schedule, pcr_graph


class TestGraphRoundTrip:
    def test_pcr_round_trip(self):
        g = pcr_graph()
        g2 = graph_from_text(graph_to_text(g))
        assert g2.name == g.name
        assert len(g2) == len(g)
        for op in g.operations():
            other = g2.operation(op.name)
            assert other.kind == op.kind
            assert other.duration == op.duration
            assert other.volume == op.volume
            assert [p.name for p in g2.parents(op.name)] == [
                p.name for p in g.parents(op.name)
            ]
        g2.validate()

    def test_ratio_preserved(self):
        from repro.assay.operation import MixRatio
        from repro.assay.sequencing_graph import SequencingGraph

        g = SequencingGraph("r")
        g.add_input("a")
        g.add_input("b")
        g.add_mix("m", ("a", "b"), duration=4, volume=8, ratio=MixRatio((1, 3)))
        g2 = graph_from_text(graph_to_text(g))
        assert g2.operation("m").ratio.parts == (1, 3)

    def test_comments_and_blank_lines_ignored(self):
        text = "# assay demo\n\n# a comment\ninput a\ninput b\nmix m a b duration=4 volume=8 ratio=1:1\n"
        g = graph_from_text(text)
        assert g.name == "demo" and len(g) == 3

    def test_bad_directive(self):
        with pytest.raises(AssayError, match="line"):
            graph_from_text("frobnicate x\n")

    def test_empty_text(self):
        with pytest.raises(AssayError):
            graph_from_text("\n\n")

    def test_missing_mix_fields(self):
        with pytest.raises(AssayError):
            graph_from_text("input a\nmix m a duration=4\n")


class TestScheduleRoundTrip:
    def test_fig9_round_trip(self):
        g = pcr_graph()
        s = pcr_fig9_schedule(g)
        s2 = schedule_from_text(schedule_to_text(s), g)
        assert s2.transport_delay == s.transport_delay
        assert {n: e.start for n, e in s2.entries.items()} == {
            n: e.start for n, e in s.entries.items()
        }
        s2.validate()

    def test_bindings_survive(self):
        g = pcr_graph()
        s = ListScheduler(
            SchedulerConfig(mixers={4: 1, 8: 2, 10: 1})
        ).schedule(g)
        s2 = schedule_from_text(schedule_to_text(s), g)
        assert s2["o1"].device == s["o1"].device

    def test_bad_line(self):
        g = pcr_graph()
        with pytest.raises(SchedulingError, match="line"):
            schedule_from_text("o1 at never\n", g)
