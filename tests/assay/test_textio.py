"""Round-trip tests for the text serialization."""

import pytest

from repro.errors import AssayError, SchedulingError
from repro.assay import (
    ListScheduler,
    SchedulerConfig,
    graph_from_text,
    graph_to_text,
    schedule_from_text,
    schedule_to_text,
)
from repro.assays.pcr import pcr_fig9_schedule, pcr_graph


class TestGraphRoundTrip:
    def test_pcr_round_trip(self):
        g = pcr_graph()
        g2 = graph_from_text(graph_to_text(g))
        assert g2.name == g.name
        assert len(g2) == len(g)
        for op in g.operations():
            other = g2.operation(op.name)
            assert other.kind == op.kind
            assert other.duration == op.duration
            assert other.volume == op.volume
            assert [p.name for p in g2.parents(op.name)] == [
                p.name for p in g.parents(op.name)
            ]
        g2.validate()

    def test_ratio_preserved(self):
        from repro.assay.operation import MixRatio
        from repro.assay.sequencing_graph import SequencingGraph

        g = SequencingGraph("r")
        g.add_input("a")
        g.add_input("b")
        g.add_mix("m", ("a", "b"), duration=4, volume=8, ratio=MixRatio((1, 3)))
        g2 = graph_from_text(graph_to_text(g))
        assert g2.operation("m").ratio.parts == (1, 3)

    def test_comments_and_blank_lines_ignored(self):
        text = "# assay demo\n\n# a comment\ninput a\ninput b\nmix m a b duration=4 volume=8 ratio=1:1\n"
        g = graph_from_text(text)
        assert g.name == "demo" and len(g) == 3

    def test_bad_directive(self):
        with pytest.raises(AssayError, match="line"):
            graph_from_text("frobnicate x\n")

    def test_empty_text(self):
        with pytest.raises(AssayError):
            graph_from_text("\n\n")

    def test_missing_mix_fields(self):
        with pytest.raises(AssayError):
            graph_from_text("input a\nmix m a duration=4\n")


class TestScheduleRoundTrip:
    def test_fig9_round_trip(self):
        g = pcr_graph()
        s = pcr_fig9_schedule(g)
        s2 = schedule_from_text(schedule_to_text(s), g)
        assert s2.transport_delay == s.transport_delay
        assert {n: e.start for n, e in s2.entries.items()} == {
            n: e.start for n, e in s.entries.items()
        }
        s2.validate()

    def test_bindings_survive(self):
        g = pcr_graph()
        s = ListScheduler(
            SchedulerConfig(mixers={4: 1, 8: 2, 10: 1})
        ).schedule(g)
        s2 = schedule_from_text(schedule_to_text(s), g)
        assert s2["o1"].device == s["o1"].device

    def test_bad_line(self):
        g = pcr_graph()
        with pytest.raises(SchedulingError, match="line"):
            schedule_from_text("o1 at never\n", g)


class TestStructuredGraphErrors:
    """Malformed specs raise AssaySpecError with position + context."""

    def test_unknown_directive_carries_position(self):
        from repro.errors import AssaySpecError

        with pytest.raises(AssaySpecError) as info:
            graph_from_text("input a\nfrobnicate x\n")
        error = info.value
        assert error.line == 2
        assert error.column == 1
        assert error.context == "frobnicate x"
        assert "frobnicate" in error.message

    def test_missing_operand_no_key_error(self):
        from repro.errors import AssaySpecError

        with pytest.raises(AssaySpecError, match="missing operation name"):
            graph_from_text("input\n")

    def test_non_integer_option_no_value_error(self):
        from repro.errors import AssaySpecError

        with pytest.raises(AssaySpecError, match="integer"):
            graph_from_text("input a volume=lots\n")

    def test_missing_required_option(self):
        from repro.errors import AssaySpecError

        with pytest.raises(AssaySpecError, match="duration"):
            graph_from_text("input a\ninput b\nmix m a b volume=8\n")

    def test_bad_ratio_blames_the_token(self):
        from repro.errors import AssaySpecError

        text = "input a\ninput b\nmix m a b duration=4 volume=8 ratio=x:y\n"
        with pytest.raises(AssaySpecError, match="ratio") as info:
            graph_from_text(text)
        assert info.value.line == 3
        assert info.value.column == text.splitlines()[2].find("ratio=") + 1

    def test_mix_without_parents(self):
        from repro.errors import AssaySpecError

        with pytest.raises(AssaySpecError, match="no input"):
            graph_from_text("mix m duration=4 volume=8\n")

    def test_semantic_error_gains_position(self):
        from repro.errors import AssaySpecError

        # Unknown parent is rejected by the graph layer; the parser
        # must re-raise it with the line attached.
        with pytest.raises(AssaySpecError) as info:
            graph_from_text("input a\nmix m a ghost duration=4 volume=8\n")
        assert info.value.line == 2

    def test_detect_with_two_parents(self):
        from repro.errors import AssaySpecError

        with pytest.raises(AssaySpecError, match="exactly one parent"):
            graph_from_text("input a\ninput b\ndetect d a b duration=2\n")

    def test_empty_spec_still_assay_error(self):
        from repro.errors import AssaySpecError

        with pytest.raises(AssaySpecError, match="empty"):
            graph_from_text("")

    def test_as_dict_shape(self):
        from repro.errors import AssaySpecError

        with pytest.raises(AssaySpecError) as info:
            graph_from_text("input a volume=lots\n")
        data = info.value.as_dict()
        assert set(data) == {"error", "line", "column", "context"}
        assert data["line"] == 1

    def test_str_includes_position_and_context(self):
        from repro.errors import AssaySpecError

        with pytest.raises(AssaySpecError) as info:
            graph_from_text("frobnicate x\n")
        text = str(info.value)
        assert "line 1" in text
        assert ">> frobnicate x" in text


class TestStructuredScheduleErrors:
    """Schedule parse failures are both AssaySpecError and SchedulingError."""

    def test_both_hierarchies(self):
        from repro.errors import AssaySpecError, ScheduleSpecError

        g = pcr_graph()
        with pytest.raises(ScheduleSpecError) as info:
            schedule_from_text("o1 at never\n", g)
        assert isinstance(info.value, AssaySpecError)
        assert isinstance(info.value, SchedulingError)
        assert info.value.line == 1

    def test_non_integer_start(self):
        from repro.errors import ScheduleSpecError

        g = pcr_graph()
        with pytest.raises(ScheduleSpecError, match="integer") as info:
            schedule_from_text("o1 @ soon\n", g)
        assert info.value.context == "o1 @ soon"

    def test_bad_trailing_tokens(self):
        from repro.errors import ScheduleSpecError

        g = pcr_graph()
        with pytest.raises(ScheduleSpecError, match="on <device>"):
            schedule_from_text("o1 @ 0 at mixer8.0\n", g)

    def test_unknown_operation_gains_position(self):
        from repro.errors import ScheduleSpecError

        g = pcr_graph()
        with pytest.raises(ScheduleSpecError) as info:
            schedule_from_text("o1 @ 0\nghost @ 4\n", g)
        assert info.value.line == 2

    def test_bad_transport_delay(self):
        from repro.errors import ScheduleSpecError

        g = pcr_graph()
        with pytest.raises(ScheduleSpecError, match="transport_delay"):
            schedule_from_text("# schedule transport_delay=fast\n", g)
