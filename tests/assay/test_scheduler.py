"""Unit tests for the resource-constrained list scheduler."""

import pytest

from repro.errors import SchedulingError
from repro.assay.scheduler import ListScheduler, SchedulerConfig
from repro.assay.sequencing_graph import SequencingGraph
from repro.assays.pcr import FIG9_STARTS, pcr_graph


def chain_graph(n=3, volume=8):
    g = SequencingGraph("chain")
    g.add_input("seed")
    prev = "seed"
    for i in range(n):
        g.add_input(f"buf{i}")
        g.add_mix(f"m{i}", (prev, f"buf{i}"), duration=4, volume=volume)
        prev = f"m{i}"
    return g


class TestUnlimitedResources:
    def test_pcr_reproduces_figure9(self):
        """With no resource conflicts the ALAP-free schedule is Fig. 9."""
        schedule = ListScheduler(SchedulerConfig()).schedule(pcr_graph())
        for name, start in FIG9_STARTS.items():
            assert schedule.start(name) == start
        assert schedule.makespan == 29

    def test_chain_respects_transport_delay(self):
        schedule = ListScheduler(
            SchedulerConfig(transport_delay=3)
        ).schedule(chain_graph(3))
        assert schedule.start("m0") == 0
        assert schedule.start("m1") == 7  # 4 + 3
        assert schedule.start("m2") == 14


class TestResourceConstraints:
    def test_single_mixer_serializes(self):
        g = SequencingGraph("par")
        for i in range(4):
            g.add_input(f"i{i}")
        g.add_mix("a", ("i0", "i1"), duration=5, volume=8)
        g.add_mix("b", ("i2", "i3"), duration=5, volume=8)
        schedule = ListScheduler(
            SchedulerConfig(mixers={8: 1})
        ).schedule(g)
        intervals = sorted([schedule["a"].interval, schedule["b"].interval])
        assert intervals[0][1] <= intervals[1][0]  # no overlap

    def test_two_mixers_run_parallel(self):
        g = SequencingGraph("par")
        for i in range(4):
            g.add_input(f"i{i}")
        g.add_mix("a", ("i0", "i1"), duration=5, volume=8)
        g.add_mix("b", ("i2", "i3"), duration=5, volume=8)
        schedule = ListScheduler(
            SchedulerConfig(mixers={8: 2})
        ).schedule(g)
        assert schedule.start("a") == 0 and schedule.start("b") == 0

    def test_missing_mixer_size_raises(self):
        with pytest.raises(SchedulingError, match="no mixer of size"):
            ListScheduler(SchedulerConfig(mixers={4: 1})).schedule(
                chain_graph(2, volume=8)
            )

    def test_bindings_recorded(self):
        schedule = ListScheduler(
            SchedulerConfig(mixers={8: 2})
        ).schedule(chain_graph(2))
        devices = {schedule[f"m{i}"].device for i in range(2)}
        assert all(d and d.startswith("mixer8.") for d in devices)

    def test_detector_resource(self):
        g = chain_graph(1)
        g.add_detect("d0", "m0", duration=2)
        g.add_detect("d1", "m0", duration=2)
        schedule = ListScheduler(
            SchedulerConfig(mixers={8: 1}, detectors=1)
        ).schedule(g)
        a, b = schedule["d0"].interval, schedule["d1"].interval
        assert a[1] <= b[0] or b[1] <= a[0]  # serialized on one detector

    def test_schedule_always_validates(self):
        for mixers in ({8: 1}, {8: 2}, {8: 3}):
            schedule = ListScheduler(
                SchedulerConfig(mixers=mixers)
            ).schedule(chain_graph(4))
            schedule.validate()  # precedence + transport respected


class TestDeterminism:
    def test_same_input_same_schedule(self):
        g = pcr_graph()
        cfg = SchedulerConfig(mixers={4: 1, 8: 2, 10: 1})
        s1 = ListScheduler(cfg).schedule(g)
        s2 = ListScheduler(cfg).schedule(pcr_graph())
        assert {n: so.start for n, so in s1.entries.items()} == {
            n: so.start for n, so in s2.entries.items()
        }
