"""Unit tests for schedules, storage intervals and device lifetimes."""

import pytest

from repro.errors import SchedulingError
from repro.assay.schedule import Schedule
from repro.assay.sequencing_graph import SequencingGraph


@pytest.fixture
def diamond():
    """Two parallel mixes feeding a third (oa, ob -> oc of Figure 7)."""
    g = SequencingGraph("diamond")
    for i in range(4):
        g.add_input(f"i{i}")
    g.add_mix("oa", ("i0", "i1"), duration=4, volume=8)
    g.add_mix("ob", ("i2", "i3"), duration=9, volume=8)
    g.add_mix("oc", ("oa", "ob"), duration=5, volume=8)
    s = Schedule(g, transport_delay=3)
    for i in range(4):
        s.add(f"i{i}", 0)
    s.add("oa", 0)
    s.add("ob", 0)
    s.add("oc", 12)
    return g, s


class TestBasics:
    def test_entry_access(self, diamond):
        _, s = diamond
        assert s.start("oa") == 0
        assert s.end("ob") == 9
        assert s["oc"].interval == (12, 17)
        assert s.makespan == 17

    def test_double_schedule_rejected(self, diamond):
        _, s = diamond
        with pytest.raises(SchedulingError):
            s.add("oa", 5)

    def test_negative_start_rejected(self, diamond):
        g, _ = diamond
        s2 = Schedule(g)
        with pytest.raises(SchedulingError):
            s2.add("oa", -1)

    def test_unknown_lookup(self, diamond):
        _, s = diamond
        with pytest.raises(SchedulingError):
            s.start("zz")

    def test_scheduled_mixes_sorted(self, diamond):
        _, s = diamond
        assert [m.name for m in s.scheduled_mixes()] == ["oa", "ob", "oc"]


class TestValidation:
    def test_valid(self, diamond):
        _, s = diamond
        s.validate()

    def test_missing_operation(self, diamond):
        g, _ = diamond
        s = Schedule(g, transport_delay=3)
        s.add("oa", 0)
        with pytest.raises(SchedulingError, match="not scheduled"):
            s.validate()

    def test_transport_delay_enforced(self, diamond):
        g, _ = diamond
        s = Schedule(g, transport_delay=3)
        for i in range(4):
            s.add(f"i{i}", 0)
        s.add("oa", 0)
        s.add("ob", 0)
        s.add("oc", 10)  # ob ends at 9, needs >= 12
        with pytest.raises(SchedulingError, match="transport"):
            s.validate()


class TestStorageAnalysis:
    def test_storage_interval_from_first_parent(self, diamond):
        _, s = diamond
        # oa finishes at 4; its product waits until oc starts at 12.
        assert s.storage_interval("oc") == (4, 12)

    def test_no_storage_when_inputs_only(self, diamond):
        _, s = diamond
        assert s.storage_interval("oa") is None

    def test_device_interval_includes_storage(self, diamond):
        _, s = diamond
        assert s.device_interval("oc") == (4, 17)
        assert s.device_interval("oa") == (0, 4)

    def test_stored_products_over_time(self, diamond):
        _, s = diamond
        assert s.stored_products(4) == ["oa"]
        assert sorted(s.stored_products(9)) == ["oa", "ob"]
        assert s.stored_products(12) == []

    def test_peak_storage_demand(self, diamond):
        _, s = diamond
        assert s.peak_storage_demand() == 2

    def test_fig9_storage_intervals(self, fig9_schedule):
        # The paper: s6 appears at t=3, s5 at t=12, s7 at t=9.
        assert fig9_schedule.storage_interval("o6") == (3, 6)
        assert fig9_schedule.storage_interval("o5") == (12, 18)
        assert fig9_schedule.storage_interval("o7") == (9, 25)
