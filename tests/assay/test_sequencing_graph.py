"""Unit tests for the sequencing graph DAG."""

import pytest

from repro.errors import AssayError
from repro.assay.operation import OperationKind
from repro.assay.sequencing_graph import SequencingGraph


def small_graph():
    g = SequencingGraph("g")
    g.add_input("i0")
    g.add_input("i1")
    g.add_mix("a", ("i0", "i1"), duration=4, volume=8)
    g.add_input("i2")
    g.add_mix("b", ("a", "i2"), duration=4, volume=8)
    g.add_detect("d", "b", duration=2)
    return g


class TestConstruction:
    def test_duplicate_names_rejected(self):
        g = SequencingGraph()
        g.add_input("x")
        with pytest.raises(AssayError):
            g.add_input("x")

    def test_unknown_parent_rejected(self):
        g = SequencingGraph()
        g.add_input("x")
        with pytest.raises(AssayError):
            g.add_dependency("nope", "x")

    def test_self_edge_rejected(self):
        g = SequencingGraph()
        g.add_input("x")
        with pytest.raises(AssayError):
            g.add_dependency("x", "x")

    def test_duplicate_edge_rejected(self):
        g = small_graph()
        with pytest.raises(AssayError):
            g.add_dependency("i0", "a")

    def test_accessors(self):
        g = small_graph()
        assert len(g) == 6
        assert "a" in g and "zz" not in g
        assert [p.name for p in g.parents("b")] == ["a", "i2"]
        assert [c.name for c in g.children("a")] == ["b"]
        assert [op.name for op in g.mix_operations()] == ["a", "b"]
        assert [op.name for op in g.mix_parents("b")] == ["a"]
        assert {op.name for op in g.roots()} == {"i0", "i1", "i2"}
        assert {op.name for op in g.sinks()} == {"d"}


class TestAnalysis:
    def test_topological_order_respects_edges(self):
        g = small_graph()
        order = [op.name for op in g.topological_order()]
        assert order.index("a") < order.index("b") < order.index("d")

    def test_cycle_detection(self):
        g = SequencingGraph()
        g.add_input("i0")
        g.add_input("i1")
        g.add_mix("a", ("i0",), duration=4, volume=8)
        g.add_mix("b", ("i1", "a"), duration=4, volume=8)
        g.add_dependency("b", "a")  # closes a cycle
        with pytest.raises(AssayError, match="cycle"):
            g.topological_order()

    def test_critical_path_length(self):
        g = small_graph()
        # a (4) -> b (4) -> d (2) = 10
        assert g.critical_path_length("a") == 10
        assert g.critical_path_length("d") == 2

    def test_ancestors(self):
        g = small_graph()
        assert g.ancestors("d") == {"b", "a", "i0", "i1", "i2"}
        assert g.ancestors("i0") == set()


class TestValidation:
    def test_valid_graph_passes(self):
        small_graph().validate()

    def test_mix_without_inputs(self):
        g = SequencingGraph()
        g.add_operation(
            __import__("repro.assay.operation", fromlist=["Operation"]).Operation(
                "m", OperationKind.MIX, duration=4, volume=8
            )
        )
        with pytest.raises(AssayError, match="no inputs"):
            g.validate()

    def test_detect_needs_exactly_one_parent(self):
        g = small_graph()
        g.add_input("i3")
        g.add_dependency("i3", "d")
        with pytest.raises(AssayError, match="exactly one parent"):
            g.validate()

    def test_input_with_parent_rejected(self):
        g = SequencingGraph()
        g.add_input("i0")
        g.add_input("i1")
        g._children["i0"].append("i1")  # bypass the public API
        g._parents["i1"].append("i0")
        with pytest.raises(AssayError, match="no parents"):
            g.validate()

    def test_ratio_parent_count_mismatch(self):
        from repro.assay.operation import MixRatio

        g = SequencingGraph()
        for i in range(3):
            g.add_input(f"i{i}")
        g.add_mix(
            "m", ("i0", "i1", "i2"), duration=4, volume=8,
            ratio=MixRatio((1, 3)),
        )
        with pytest.raises(AssayError, match="ratio"):
            g.validate()
