"""Chip-lifetime study: dedicated mixers vs valve-role-changing.

Run::

    python examples/reliability_comparison.py

Valves on flow-based biochips survive only "a few thousand" reliable
actuations (Section 1).  This example sweeps the number of mixing
operations executed on (a) one dedicated mixer, (b) one role-rotating
mixer (Figure 3) and (c) the full dynamic architecture, and reports how
many operations fit into a wear budget before the first valve dies.
"""

from repro import GridSpec, ReliabilitySynthesizer, SynthesisConfig
from repro.assay import ListScheduler, SchedulerConfig, SequencingGraph
from repro.baseline import DedicatedMixer
from repro.core import RoleRotatingMixer

#: Reliable actuations before a valve wears out (order of magnitude
#: from the paper's citation [4]: "a few thousand times").
WEAR_BUDGET = 4000


def ops_until_worn_dedicated() -> int:
    """Operations one dedicated mixer survives."""
    mixer = DedicatedMixer(volume=8)
    ops = 0
    while True:
        mixer.run_operations(1)
        if mixer.max_actuations() > WEAR_BUDGET:
            return ops
        ops += 1


def ops_until_worn_rotating() -> int:
    """Operations one role-rotating 8-valve mixer survives."""
    mixer = RoleRotatingMixer(ring_size=8)
    ops = 0
    while True:
        mixer.run_operation()
        if mixer.max_actuations > WEAR_BUDGET:
            return ops
        ops += 1


def chain_assay(n_ops: int) -> SequencingGraph:
    graph = SequencingGraph(f"chain{n_ops}")
    graph.add_input("seed", volume=4)
    previous = "seed"
    for i in range(n_ops):
        graph.add_input(f"buf{i}", volume=4)
        graph.add_mix(f"m{i}", (previous, f"buf{i}"), duration=4, volume=8)
        previous = f"m{i}"
    return graph


def dynamic_wear_per_op(n_ops: int = 12) -> float:
    """Average max-wear growth per operation on a 12x12 architecture."""
    graph = chain_assay(n_ops)
    schedule = ListScheduler(SchedulerConfig()).schedule(graph)
    result = ReliabilitySynthesizer(
        SynthesisConfig(grid=GridSpec(12, 12))
    ).synthesize(graph, schedule)
    return result.metrics.setting1.max_total / n_ops


def main() -> None:
    dedicated = ops_until_worn_dedicated()
    rotating = ops_until_worn_rotating()
    per_op = dynamic_wear_per_op()
    dynamic = int(WEAR_BUDGET / per_op)

    print(f"wear budget per valve: {WEAR_BUDGET} actuations\n")
    print(f"dedicated mixer:        {dedicated:>5} operations "
          "(every op costs its 3 pump valves 40 actuations)")
    print(f"role-rotating mixer:    {rotating:>5} operations "
          "(Figure 3: the pump trio rotates around the ring)")
    print(f"dynamic architecture:   {dynamic:>5} operations "
          f"(whole-chip balancing, ~{per_op:.1f} max-wear per op)")
    print()
    print(f"role changing alone extends the mixer life "
          f"{rotating / dedicated:.1f}x;")
    print(f"the full dynamic-device mapping reaches "
          f"{dynamic / dedicated:.1f}x the dedicated-chip lifetime.")


if __name__ == "__main__":
    main()
