"""Quickstart: describe an assay, schedule it, synthesize a chip.

Run::

    python examples/quickstart.py

Builds a four-operation assay, schedules it with the list scheduler and
maps it onto a 10x10 valve-centered architecture.  Prints the wear
metrics (the paper's ``vs max`` numbers), the valve count after
non-actuated-valve removal, and a wear heat map.
"""

from repro import (
    GridSpec,
    ListScheduler,
    MixRatio,
    ReliabilitySynthesizer,
    SchedulerConfig,
    SequencingGraph,
    SynthesisConfig,
)
from repro.viz import actuation_summary, render_heatmap


def build_assay() -> SequencingGraph:
    """Two sample preparations merged and then diluted 1:3."""
    graph = SequencingGraph("quickstart")
    graph.add_input("sample_a")
    graph.add_input("sample_b")
    graph.add_input("reagent")
    graph.add_input("buffer")

    graph.add_mix("prep_a", ["sample_a", "reagent"], duration=6, volume=8)
    graph.add_mix("prep_b", ["sample_b", "reagent"], duration=6, volume=8)
    graph.add_mix("merge", ["prep_a", "prep_b"], duration=8, volume=10)
    graph.add_mix(
        "dilute", ["merge", "buffer"], duration=4, volume=8,
        ratio=MixRatio((1, 3)),
    )
    graph.validate()
    return graph


def main() -> None:
    graph = build_assay()

    # Schedule: unlimited devices, products travel 3 tu between devices.
    schedule = ListScheduler(SchedulerConfig(transport_delay=3)).schedule(graph)
    print(f"schedule: makespan {schedule.makespan} tu")
    for so in schedule.scheduled_mixes():
        print(f"  {so.name:>7} runs [{so.start:>2}, {so.end:>2})")

    # Synthesize onto a 10x10 virtual valve grid.
    result = ReliabilitySynthesizer(
        SynthesisConfig(grid=GridSpec(10, 10))
    ).synthesize(graph, schedule)

    m = result.metrics
    print(f"\nlargest actuation count (setting 1): {m.setting1}")
    print(f"largest actuation count (setting 2): {m.setting2}")
    print(f"valves kept after removal: {m.used_valves}")
    print(f"valves that changed roles: {m.role_changing_valves}")
    print(f"mapping engine: {m.mapper} ({m.wall_time:.2f}s)")

    print("\ndevice placements:")
    for name, device in sorted(result.devices.items()):
        print(f"  {name:>7} -> {device.placement} "
              f"alive [{device.start}, {device.end})")

    print("\nwear heat map (darker = more actuations):")
    print(render_heatmap(result.grid_setting1))
    print("\n" + actuation_summary(result.grid_setting1))


if __name__ == "__main__":
    main()
