"""A custom serial-dilution assay written in the text format.

Run::

    python examples/custom_dilution_assay.py

Shows the plain-text assay format, scheduling against a constrained
mixer bank (one mixer per size — a traditional p1 design), and how the
dynamic architecture supports the non-1:1 mixing ratios the paper
highlights (Section 1: no dedicated per-ratio mixers needed).
"""

from repro import GridSpec, ReliabilitySynthesizer, SynthesisConfig
from repro.assay import (
    ListScheduler,
    SchedulerConfig,
    graph_from_text,
    schedule_to_text,
)
from repro.baseline import Policy, traditional_design
from repro.viz import render_gantt

ASSAY_TEXT = """
# assay serial_dilution
input stock  volume=5
input buf0   volume=5
input buf1   volume=5
input buf2   volume=5
input buf3   volume=5

# Each step mixes the previous product with fresh buffer.  The ratios
# differ per step: 1:1 halves the concentration, 1:3 quarters it.
mix step0 stock buf0  duration=8  volume=8   ratio=1:1
mix step1 step0 buf1  duration=10 volume=10  ratio=1:4
mix step2 step1 buf2  duration=6  volume=6   ratio=1:2
mix step3 step2 buf3  duration=4  volume=4   ratio=1:3
detect check step3 duration=2
"""


def main() -> None:
    graph = graph_from_text(ASSAY_TEXT)
    graph.validate()
    print(f"assay {graph.name!r}: {len(graph)} operations, "
          f"{len(graph.mix_operations())} mixing")
    for op in graph.mix_operations():
        parts = op.ratio.volumes(op.volume)
        print(f"  {op.name}: volume {op.volume}, ratio {op.ratio} "
              f"-> parts {parts}")

    # Traditional p1 bank: one mixer per size class, one detector.
    policy = Policy(index=1, mixers={4: 1, 6: 1, 8: 1, 10: 1}, detectors=1)
    schedule = ListScheduler(
        SchedulerConfig(mixers=dict(policy.mixers), detectors=1)
    ).schedule(graph)
    print("\nschedule (text format):")
    print(schedule_to_text(schedule))
    print(render_gantt(schedule))

    design = traditional_design(graph, policy, schedule)
    result = ReliabilitySynthesizer(
        SynthesisConfig(grid=GridSpec(10, 10))
    ).synthesize(graph, schedule)

    m = result.metrics
    print(f"\ntraditional design: vs_tmax = {design.max_pump_actuations}, "
          f"#v = {design.valve_count}")
    print(f"dynamic devices:    vs_1max = {m.setting1}, "
          f"vs_2max = {m.setting2}, #v = {m.used_valves}")
    print("\nNote: the four different ratios run on *one* architecture —")
    print("a traditional chip would need a dedicated mixer per ratio "
          "and port layout.")


if __name__ == "__main__":
    main()
