"""The paper's running example: PCR, policy p1, Figure-9 schedule.

Run::

    python examples/pcr_full_flow.py

Reproduces the full Section-4 walkthrough: the Figure-9 Gantt chart,
the Figure-10 chip snapshots, and the PCR row of Table 1 (traditional
baseline vs reliability-aware synthesis in both settings).
"""

from repro import ReliabilitySynthesizer, SynthesisConfig
from repro.assays import get_case, schedule_for
from repro.assays.pcr import pcr_fig9_schedule, pcr_graph
from repro.baseline import traditional_design
from repro.experiments.figures import FIG10_TIMES
from repro.viz import render_gantt, render_snapshot


def main() -> None:
    case = get_case("pcr")
    graph = pcr_graph()

    # --- Figure 9: the scheduling result ------------------------------
    schedule = pcr_fig9_schedule(graph)
    print("Figure 9 — scheduling result of case PCR (transport delay 3 tu):")
    print(render_gantt(schedule, names=[f"o{i}" for i in range(1, 8)]))

    # --- Synthesis (Algorithm 1) ---------------------------------------
    result = ReliabilitySynthesizer(
        SynthesisConfig(grid=case.grid)
    ).synthesize(graph, schedule)
    m = result.metrics

    # --- Figure 10: chip snapshots --------------------------------------
    print("\nFigure 10 — chip snapshots (setting 1):")
    for t in FIG10_TIMES:
        print()
        print(render_snapshot(result, t))

    # --- Table 1, PCR row -------------------------------------------------
    policy = case.policy1()
    design = traditional_design(graph, policy, schedule_for(case, policy))
    vs_tmax = design.max_pump_actuations
    print("\nTable 1 — PCR p1:")
    print(f"  traditional: vs_tmax = {vs_tmax}, #v = {design.valve_count}")
    print(
        f"  ours:        vs_1max = {m.setting1}  "
        f"({(1 - m.setting1.max_total / vs_tmax) * 100:.2f}% better)"
    )
    print(
        f"               vs_2max = {m.setting2}  "
        f"({(1 - m.setting2.max_total / vs_tmax) * 100:.2f}% better)"
    )
    print(f"               #v = {m.used_valves}  "
          f"({(1 - m.used_valves / design.valve_count) * 100:.2f}% fewer)")
    print(f"  paper:       vs_1max = 45(40), vs_2max = 35(30), #v = 71")


if __name__ == "__main__":
    main()
