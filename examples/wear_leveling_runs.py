"""Extension demo: wear leveling across repeated assay executions.

Run::

    python examples/wear_leveling_runs.py

A production chip repeats the same assay many times.  Repeating one
synthesized layout re-loads the same valves every run; because the
valve-centered architecture is programmable, consecutive runs can use
rotated placements instead — the valve-role-changing idea lifted to the
run level.  This demo compares both strategies and exports the final
design of a run plan.
"""

from repro import GridSpec, ReliabilitySynthesizer, SynthesisConfig
from repro.assay import ListScheduler, SchedulerConfig, SequencingGraph
from repro.core import (
    DEFAULT_WEAR_BUDGET,
    design_listing,
    leveled_lifetime,
    plan_repetitions,
    synthesis_lifetime,
)


def build_assay() -> SequencingGraph:
    graph = SequencingGraph("production")
    for i in range(4):
        graph.add_input(f"in{i}", volume=4)
    graph.add_mix("stage1a", ["in0", "in1"], duration=6, volume=8)
    graph.add_mix("stage1b", ["in2", "in3"], duration=6, volume=8)
    graph.add_mix("final", ["stage1a", "stage1b"], duration=8, volume=10)
    return graph


def main() -> None:
    graph = build_assay()
    schedule = ListScheduler(SchedulerConfig()).schedule(graph)
    config = SynthesisConfig(grid=GridSpec(10, 10))

    # Strategy A: one layout, repeated.
    result = ReliabilitySynthesizer(config).synthesize(graph, schedule)
    fixed = synthesis_lifetime(result)
    print(f"wear budget: {DEFAULT_WEAR_BUDGET} actuations per valve")
    print(f"fixed layout:   max wear/run = {fixed.wear_per_run:>3}  ->  "
          f"{fixed.runs} runs before the first valve dies")

    # Strategy B: wear-leveled layouts.
    leveled = leveled_lifetime(graph, schedule, config)
    print(f"leveled layouts: rotating placements every run      ->  "
          f"{leveled} runs  ({leveled / fixed.runs:.1f}x)")

    # Show how the first few leveled runs move around the grid.
    plan = plan_repetitions(graph, schedule, config, runs=3)
    print("\nfinal-mixer placement per run:")
    for i, placements in enumerate(plan.runs, start=1):
        print(f"  run {i}: final -> {placements['final']}")
    print(f"\naccumulated max pump load after 3 runs: {plan.max_load} "
          f"(one fixed layout would be at {3 * 40})")

    print("\nmanufacturing listing of the single-run design "
          "(first 12 lines):")
    print("\n".join(design_listing(result).splitlines()[:12]))


if __name__ == "__main__":
    main()
