"""Full chip report: synthesis + verification + artifacts.

Run::

    python examples/chip_report.py [output_dir]

Synthesizes the paper's PCR example, then produces everything a lab
would want before fabricating:

* the execution-simulation certificate;
* the cross-contamination / wash analysis;
* the control-pin sharing summary;
* an SVG snapshot gallery (Figure-10 times) plus the final wear map;
* the manufacturable design as JSON.
"""

import sys
from pathlib import Path

from repro import ReliabilitySynthesizer, SynthesisConfig, get_case
from repro.architecture import assign_control_pins
from repro.assays.pcr import pcr_fig9_schedule, pcr_graph
from repro.core import design_json, simulate
from repro.experiments.figures import FIG10_TIMES
from repro.routing import contamination_report, plan_washes
from repro.viz import render_role_changers
from repro.viz.svg import write_svg


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "pcr_report")
    out_dir.mkdir(parents=True, exist_ok=True)

    graph = pcr_graph()
    schedule = pcr_fig9_schedule(graph)
    result = ReliabilitySynthesizer(
        SynthesisConfig(grid=get_case("pcr").grid)
    ).synthesize(graph, schedule)
    print(f"synthesized: {result.metrics.setting1} / "
          f"{result.metrics.setting2}, #v = {result.metrics.used_valves}")

    # 1. Verification.
    report = simulate(result)
    print(f"simulation: OK — {report.transports_executed} transports, "
          f"peak occupancy {report.peak_occupied_cells} cells")

    # 2. Contamination / washes.
    print()
    print(contamination_report(result))
    washes = plan_washes(result)

    # 3. Control pins.
    pins = assign_control_pins(result)
    print(f"\ncontrol pins: {pins.pin_count} pins drive "
          f"{pins.valve_count} valves "
          f"(sharing factor {pins.sharing_factor:.2f})")

    # 4. Role-changing timelines.
    print()
    print(render_role_changers(result, limit=6))

    # 5. Artifacts.
    for t in FIG10_TIMES:
        write_svg(result, str(out_dir / f"snapshot_t{t:02d}.svg"), t=t)
    write_svg(result, str(out_dir / "final_wear.svg"))
    (out_dir / "design.json").write_text(design_json(result))
    print(f"\nartifacts written to {out_dir}/ "
          f"({len(FIG10_TIMES) + 1} SVGs + design.json); "
          f"{washes.wash_count} wash flush(es) would add "
          f"{washes.extra_actuations()} actuations")


if __name__ == "__main__":
    main()
