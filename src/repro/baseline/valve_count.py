"""Valve counting for complete traditional designs (``#v`` baseline).

The paper reports the number of valves of each traditional design but
not the layout generator behind it, so this module implements a
documented parametric model (see DESIGN.md §3.3):

* each dedicated mixer of volume ``v`` contributes ``v + 1`` valves
  (Figure 2: the volume-8 mixer has 9);
* the dedicated storage contributes 3 valves per cell plus 2, with the
  cell count equal to the schedule's peak number of simultaneously
  stored products (Section 4);
* every device (mixer, detector, storage) taps into the chip's routing
  network through a switch region of ``TAP_VALVES`` valves — this
  models the control valves of the channel network between devices;
* each chip port needs an isolation valve pair.

The constants are calibrated so the PCR row lands near the paper's
values; the policy *trend* (each added mixer costs its own valves plus a
tap) is structural.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.assay.schedule import Schedule
from repro.assay.sequencing_graph import SequencingGraph
from repro.baseline.binding import OptimalBinding, bind_operations
from repro.baseline.dedicated import (
    DedicatedDetector,
    DedicatedMixer,
    DedicatedStorage,
)
from repro.baseline.policies import Policy

#: Valves of the routing-network switch region connecting one device.
TAP_VALVES: int = 10

#: Isolation valves per chip port.
PORT_VALVES: int = 2

#: Chip ports of the reference floorplan (two inputs + one output).
DEFAULT_PORTS: int = 3


@dataclass
class TraditionalDesign:
    """A complete traditional chip for one assay and policy."""

    policy: Policy
    binding: OptimalBinding
    storage: DedicatedStorage
    detectors: List[DedicatedDetector] = field(default_factory=list)
    ports: int = DEFAULT_PORTS

    @property
    def mixers(self) -> List[DedicatedMixer]:
        return self.binding.mixers

    @property
    def valve_count(self) -> int:
        """``#v`` of Table 1 for the traditional design."""
        mixer_valves = sum(m.valve_count for m in self.mixers)
        detector_valves = sum(d.valve_count for d in self.detectors)
        device_count = len(self.mixers) + len(self.detectors) + 1  # + storage
        return (
            mixer_valves
            + detector_valves
            + self.storage.valve_count
            + device_count * TAP_VALVES
            + self.ports * PORT_VALVES
        )

    @property
    def max_pump_actuations(self) -> int:
        """``vs_tmax`` — see :class:`OptimalBinding`."""
        return self.binding.max_pump_actuations


def traditional_design(
    graph: SequencingGraph,
    policy: Policy,
    schedule: Schedule,
) -> TraditionalDesign:
    """Assemble the traditional design for one (assay, policy) pair."""
    binding = bind_operations(graph, policy, schedule)
    storage = DedicatedStorage(cells=max(schedule.peak_storage_demand(), 1))
    detectors = [
        DedicatedDetector(f"detector.{i}") for i in range(policy.detectors)
    ]
    return TraditionalDesign(policy, binding, storage, detectors)
