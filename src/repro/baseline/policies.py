"""Mixer-bank policies p1/p2/p3 for traditional designs.

Section 4: "we add one more mixer for each mixer type that is under the
heaviest loading as the policy index increases to alleviate the heavy
burden."  The *loading* of a mixer is the number of operations bound to
it under the optimal (balanced) binding; a size class's heaviest-loaded
mixer carries ``ceil(#ops_of_size / #mixers_of_size)`` operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List

from repro.errors import BindingError
from repro.assay.operation import MIXER_SIZES
from repro.assay.sequencing_graph import SequencingGraph


@dataclass(frozen=True)
class Policy:
    """A traditional design's device bank.

    ``mixers`` maps mixer volume class to mixer count; ``detectors`` is
    the number of dedicated detectors.  ``index`` is the 1-based policy
    number (p1, p2, ...).
    """

    index: int
    mixers: Dict[int, int] = field(default_factory=dict)
    detectors: int = 0

    @property
    def name(self) -> str:
        return f"p{self.index}"

    @property
    def mixer_count(self) -> int:
        return sum(self.mixers.values())

    @property
    def device_count(self) -> int:
        """``#d`` of Table 1: mixers plus detectors."""
        return self.mixer_count + self.detectors


def mixer_demand(graph: SequencingGraph) -> Dict[int, int]:
    """Number of mixing operations per volume class."""
    demand: Dict[int, int] = {}
    for op in graph.mix_operations():
        demand[op.volume] = demand.get(op.volume, 0) + 1
    return demand


def balanced_loads(n_ops: int, n_mixers: int) -> List[int]:
    """Even distribution of ``n_ops`` over ``n_mixers``, descending.

    This is the optimal binding's per-mixer loading for one size class:
    e.g. 5 operations on 2 mixers -> ``[3, 2]``.
    """
    if n_mixers <= 0:
        if n_ops:
            raise BindingError(f"{n_ops} operations but no mixer for them")
        return []
    base, extra = divmod(n_ops, n_mixers)
    return [base + 1] * extra + [base] * (n_mixers - extra)


def max_load(policy: Policy, demand: Dict[int, int]) -> int:
    """Heaviest per-mixer loading over all size classes."""
    worst = 0
    for size, n_ops in demand.items():
        loads = balanced_loads(n_ops, policy.mixers.get(size, 0))
        if loads:
            worst = max(worst, loads[0])
    return worst


def next_policy(policy: Policy, demand: Dict[int, int]) -> Policy:
    """The next policy: one more mixer for *every* heaviest-loaded type.

    PCR p2 -> p3 in Table 1 shows the "every" part: size-8 and size-10
    are both at load 2, and p3 adds one mixer to each.
    """
    heaviest = max_load(policy, demand)
    if heaviest == 0:
        raise BindingError("no operations to balance; policy cannot grow")
    mixers = dict(policy.mixers)
    for size, n_ops in demand.items():
        loads = balanced_loads(n_ops, policy.mixers.get(size, 0))
        if loads and loads[0] == heaviest:
            mixers[size] = mixers.get(size, 0) + 1
    return replace(policy, index=policy.index + 1, mixers=mixers)


def policy_sequence(p1: Policy, demand: Dict[int, int], count: int = 3) -> List[Policy]:
    """p1 and its successors under the growth rule, ``count`` in total."""
    policies = [p1]
    while len(policies) < count:
        policies.append(next_policy(policies[-1], demand))
    return policies


def distribution_string(policy: Policy, demand: Dict[int, int]) -> str:
    """Table 1's ``#m 4-6-8-10`` column, e.g. ``1-0-(2,2)-2``.

    Per size class: ``0`` when unused, the single load when one mixer,
    or the parenthesized loads when several.
    """
    parts: List[str] = []
    for size in MIXER_SIZES:
        n_ops = demand.get(size, 0)
        n_mixers = policy.mixers.get(size, 0)
        if n_ops == 0:
            parts.append("0")
            continue
        loads = balanced_loads(n_ops, n_mixers)
        if len(loads) == 1:
            parts.append(str(loads[0]))
        else:
            parts.append("(" + ",".join(str(l) for l in loads) + ")")
    return "-".join(parts)
