"""Optimal binding of operations to dedicated mixers.

Section 4: "If there are multiple mixers with the same size, we apply an
optimal binding regarding valve actuation by distributing operations to
mixers as evenly as possible."  With identical per-operation wear, even
distribution minimizes the maximum per-mixer load, so the heaviest pump
valve of the traditional design sees

    vs_tmax = 40 * max_over_sizes ceil(#ops_of_size / #mixers_of_size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import BindingError
from repro.assay.schedule import Schedule
from repro.assay.sequencing_graph import SequencingGraph
from repro.baseline.dedicated import DedicatedMixer, PUMP_ACTUATIONS_PER_OP
from repro.baseline.policies import Policy, balanced_loads, mixer_demand


@dataclass
class OptimalBinding:
    """Result of binding a scheduled assay onto a policy's mixer bank."""

    policy: Policy
    assignment: Dict[str, str]  # operation name -> mixer name
    mixers: List[DedicatedMixer] = field(default_factory=list)

    def loads(self) -> Dict[str, int]:
        """Operations per mixer."""
        counts: Dict[str, int] = {m.name: 0 for m in self.mixers}
        for mixer_name in self.assignment.values():
            counts[mixer_name] += 1
        return counts

    @property
    def max_ops_per_mixer(self) -> int:
        return max(self.loads().values(), default=0)

    @property
    def max_pump_actuations(self) -> int:
        """``vs_tmax`` of Table 1 — the first-worn-valve actuation count."""
        return self.max_ops_per_mixer * PUMP_ACTUATIONS_PER_OP

    def max_total_actuations(self) -> int:
        """Largest per-valve actuation including control valves.

        On a dedicated mixer the pump valves always dominate (40 vs <= 4
        per operation), so this equals :attr:`max_pump_actuations`; kept
        separate for symmetry with our method's accounting.
        """
        worst = 0
        for mixer in self.mixers:
            worst = max(worst, mixer.max_actuations())
        return worst


def bind_operations(
    graph: SequencingGraph,
    policy: Policy,
    schedule: Schedule | None = None,
) -> OptimalBinding:
    """Distribute mixing operations evenly over the policy's mixers.

    Operations of each size class are ordered by schedule start time
    (graph order when no schedule is given) and dealt round-robin, which
    realizes the balanced loads of :func:`balanced_loads` exactly.
    """
    demand = mixer_demand(graph)
    for size, n_ops in demand.items():
        if n_ops and policy.mixers.get(size, 0) == 0:
            raise BindingError(
                f"policy {policy.name} has no size-{size} mixer but the "
                f"assay needs {n_ops}"
            )

    mixers: List[DedicatedMixer] = []
    bank: Dict[int, List[DedicatedMixer]] = {}
    for size in sorted(policy.mixers):
        bank[size] = [
            DedicatedMixer(size, name=f"mixer{size}.{i}")
            for i in range(policy.mixers[size])
        ]
        mixers.extend(bank[size])

    assignment: Dict[str, str] = {}
    for size in sorted(demand):
        ops = [op for op in graph.mix_operations() if op.volume == size]
        if schedule is not None:
            ops.sort(key=lambda op: (schedule.start(op.name), op.name))
        pool = bank[size]
        for i, op in enumerate(ops):
            mixer = pool[i % len(pool)]
            assignment[op.name] = mixer.name
            mixer.run_operations(1)

    binding = OptimalBinding(policy, assignment, mixers)
    # Sanity: the realized loads must match the balanced prediction.
    realized = sorted(
        (load for load in binding.loads().values()), reverse=True
    )
    predicted = sorted(
        (
            load
            for size, n_ops in demand.items()
            for load in balanced_loads(n_ops, policy.mixers.get(size, 0))
        ),
        reverse=True,
    )
    predicted += [0] * (len(realized) - len(predicted))
    if realized != predicted:  # pragma: no cover - internal consistency
        raise BindingError(
            f"round-robin binding diverged from balanced loads: "
            f"{realized} != {predicted}"
        )
    return binding
