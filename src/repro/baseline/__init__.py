"""Traditional flow-based biochip designs — the paper's comparison base.

A traditional design uses *dedicated* devices: mixers of fixed sizes
(4/6/8/10 volume units), a dedicated storage sized by the peak number of
simultaneously stored products, and detectors.  Operations are bound to
mixers by an **optimal binding** that distributes operations as evenly
as possible (Section 4), and the policy index p1/p2/p3 grows the mixer
bank by adding a mixer to every size class under the heaviest loading.
"""

from repro.baseline.policies import (
    Policy,
    balanced_loads,
    mixer_demand,
    next_policy,
    policy_sequence,
    distribution_string,
)
from repro.baseline.binding import OptimalBinding, bind_operations
from repro.baseline.dedicated import (
    DedicatedMixer,
    DedicatedStorage,
    DedicatedDetector,
    PUMP_ACTUATIONS_PER_OP,
    PUMP_VALVES_PER_DEDICATED_MIXER,
)
from repro.baseline.valve_count import TraditionalDesign, traditional_design

__all__ = [
    "Policy",
    "balanced_loads",
    "mixer_demand",
    "next_policy",
    "policy_sequence",
    "distribution_string",
    "OptimalBinding",
    "bind_operations",
    "DedicatedMixer",
    "DedicatedStorage",
    "DedicatedDetector",
    "PUMP_ACTUATIONS_PER_OP",
    "PUMP_VALVES_PER_DEDICATED_MIXER",
    "TraditionalDesign",
    "traditional_design",
]
