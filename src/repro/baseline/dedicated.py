"""Dedicated devices of traditional flow-based biochips.

The reference mixer is the one of Figure 2: a circular flow channel with
9 valves — 3 pump valves forming the peristaltic pump and 6 control
valves guiding loading and draining.  Figure 2(f) fixes the actuation
profile of one mixing operation:

* each pump valve is actuated 40 times (constant from [9], Section 2.1);
* the two control valves shared between loading and draining phases are
  actuated 4 times per operation, the remaining control valves twice.

Generalization to other sizes keeps 3 pump valves (the peristaltic pump
needs exactly three phases) and gives a volume-``v`` mixer ``v - 2``
control valves, i.e. ``v + 1`` valves total (9 for the volume-8 mixer of
Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ArchitectureError

#: Actuations of one pump valve during one mixing operation (from [9]).
PUMP_ACTUATIONS_PER_OP: int = 40

#: A dedicated peristaltic pump always uses three valves (Figure 2).
PUMP_VALVES_PER_DEDICATED_MIXER: int = 3

#: Control-valve actuations per operation: the two port valves shared by
#: fill and drain phases cycle 4 times, the others twice (Figure 2(f)).
SHARED_CONTROL_ACTUATIONS_PER_OP: int = 4
CONTROL_ACTUATIONS_PER_OP: int = 2
SHARED_CONTROL_VALVES: int = 2


@dataclass
class DedicatedMixer:
    """A fixed-function mixer of one volume class."""

    volume: int
    name: str = ""
    operations_run: int = 0

    def __post_init__(self) -> None:
        if self.volume < 4:
            raise ArchitectureError(
                f"dedicated mixer volume {self.volume} too small for a "
                "circulation channel"
            )
        if not self.name:
            self.name = f"mixer{self.volume}"

    @property
    def pump_valves(self) -> int:
        return PUMP_VALVES_PER_DEDICATED_MIXER

    @property
    def control_valves(self) -> int:
        return self.volume - 2

    @property
    def valve_count(self) -> int:
        """Total valves: ``volume + 1`` (9 for the Figure-2 mixer)."""
        return self.pump_valves + self.control_valves

    def run_operations(self, count: int = 1) -> None:
        """Execute ``count`` mixing operations on this mixer."""
        if count < 0:
            raise ArchitectureError("cannot run a negative operation count")
        self.operations_run += count

    # -- wear profile ------------------------------------------------------

    def pump_actuations(self) -> int:
        """Actuations of each pump valve so far (Figure 2(f): 80 after 2)."""
        return self.operations_run * PUMP_ACTUATIONS_PER_OP

    def control_actuations(self) -> List[int]:
        """Per-control-valve actuations, shared port valves first."""
        shared = min(SHARED_CONTROL_VALVES, self.control_valves)
        return [self.operations_run * SHARED_CONTROL_ACTUATIONS_PER_OP] * shared + [
            self.operations_run * CONTROL_ACTUATIONS_PER_OP
        ] * (self.control_valves - shared)

    def max_actuations(self) -> int:
        """Largest per-valve actuation count on this mixer."""
        if self.operations_run == 0:
            return 0
        return max([self.pump_actuations()] + self.control_actuations())

    def actuation_profile(self) -> Dict[str, List[int]]:
        """Full wear snapshot, for the Figure 2(f) reproduction."""
        return {
            "pump": [self.pump_actuations()] * self.pump_valves,
            "control": self.control_actuations(),
        }


@dataclass
class DedicatedStorage:
    """A dedicated on-chip storage with ``cells`` product slots.

    Section 4: "the number of cells in the storage is determined by the
    largest number of simultaneous accesses to the storage."  Each cell
    needs an isolation valve pair plus an access valve; the storage adds
    a two-valve port to the routing network.
    """

    cells: int

    VALVES_PER_CELL: int = 3
    BASE_VALVES: int = 2

    @property
    def valve_count(self) -> int:
        return self.cells * self.VALVES_PER_CELL + self.BASE_VALVES


@dataclass
class DedicatedDetector:
    """A detection site: a chamber bounded by four control valves."""

    name: str = "detector"

    VALVES: int = 4

    @property
    def valve_count(self) -> int:
        return self.VALVES
