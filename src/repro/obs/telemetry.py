"""Lightweight solver telemetry: counters, timers, spans.

Zero-dependency observability for the synthesis stack.  A single
module-level :data:`TELEMETRY` registry collects named counters and
wall-time accumulators; it is **off by default** and every recording
call is guarded by one attribute check, so instrumented hot paths add
no measurable overhead when disabled.

Instrumentation convention (see DESIGN.md §8): hot loops accumulate
into *local* variables and flush once per solve/search through
:func:`count` / :func:`add_time`, so the per-iteration cost is a plain
integer increment even when telemetry is enabled.

Counter names are dotted paths, one prefix per subsystem:

* ``simplex.*`` — LP iterations, pivot wall time (``repro.ilp.simplex``)
* ``bb.*`` — branch & bound nodes explored / pruned / fallen-back,
  per-node LP wall time, and the warm-start counters
  (``basis_reuse_hits``, ``warm_starts``, ``warm_fallbacks``,
  ``dual_pivots``, ``simplex_iterations``) of the compiled-model
  engine (``repro.ilp.branch_bound``)
* ``mapper.*`` — window solves, greedy fallbacks, refinement
  accept/reject tallies, process-pool refinement activity
  (``parallel_windows``, ``parallel_stale``) (``repro.core.mappers``)
* ``routing.*`` — Dijkstra heap pops, rip-up & re-route events
  (``repro.routing``)
* ``resilience.*`` — one counter per degradation-ladder rung engaged
  (``resilience.window_shrink``, ``resilience.pool_serial``, … — see
  DESIGN.md §9); a clean run records none (``repro.resilience``)
* ``certify.*`` — certification-layer activity (DESIGN.md §10): LP/MILP
  certificates checked and failed (``certify.milp``,
  ``certify.milp_failed``), design audits run, violations found and
  audit wall time (``certify.audits``, ``certify.audit_violations``,
  ``certify.audit``) (``repro.certify``)
* ``supervisor.*`` — supervised-worker activity (DESIGN.md §14):
  ``attempts``, ``retries``, ``kills_crash`` / ``kills_hang`` /
  ``kills_oom`` / ``kills_deadline``, ``serial_fallbacks`` (supervised
  solve exhausted its retries and re-ran in-process), and the
  ``worker_wall`` / ``backoff`` timers
  (``repro.resilience.supervisor``)
* ``checkpoint.*`` — crash-safe journal activity (DESIGN.md §14):
  ``appends``, ``hits``, ``misses``, ``rejected`` (replayed record
  failed re-certification), ``corrupt_records`` and
  ``write_failures`` (``repro.resilience.checkpoint``)
* ``scipy.*`` — HiGHS MILP solves, node counts and ``solve_errors``
  (HiGHS status-4 runs that fell back to branch & bound)
  (``repro.ilp.scipy_backend``)
* ``serve.*`` — synthesis-as-a-service activity (DESIGN.md §15): job
  lifecycle (``submitted``, ``completed``, ``failed``,
  ``worker_retries``, the ``solve`` timer), canonical-cache traffic
  (``cache_hits``, ``cache_misses``, ``cache_stores``,
  ``cache_evicted``, ``cache_write_failures``, ``coalesced``),
  admission control (``shed``, ``rejected``) and the circuit breaker
  (``breaker_trips``, ``breaker_probes``, ``breaker_open``)
  (``repro.serve``)
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Tuple


class Telemetry:
    """A registry of named counters and wall-time accumulators."""

    __slots__ = ("enabled", "_counters", "_timers")

    def __init__(self) -> None:
        self.enabled = False
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, Tuple[float, int]] = {}

    # -- lifecycle -------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded values (the enabled flag is untouched)."""
        self._counters.clear()
        self._timers.clear()

    # -- recording -------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + n

    def add_time(self, name: str, seconds: float, events: int = 1) -> None:
        """Add ``seconds`` (over ``events`` occurrences) to timer ``name``."""
        if not self.enabled:
            return
        total, n = self._timers.get(name, (0.0, 0))
        self._timers[name] = (total + seconds, n + events)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into timer ``name`` (no-op while disabled)."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    # -- reading ---------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    def timers(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"seconds": total, "events": n}
            for name, (total, n) in self._timers.items()
        }

    def snapshot(self) -> Dict[str, Dict]:
        """Everything recorded so far, as one JSON-friendly dict."""
        return {"counters": self.counters(), "timers": self.timers()}


#: The process-wide registry used by all instrumented subsystems.
TELEMETRY = Telemetry()


def enable() -> None:
    TELEMETRY.enable()


def disable() -> None:
    TELEMETRY.disable()


def enabled() -> bool:
    return TELEMETRY.enabled


def reset() -> None:
    TELEMETRY.reset()


def count(name: str, n: int = 1) -> None:
    TELEMETRY.count(name, n)


def add_time(name: str, seconds: float, events: int = 1) -> None:
    TELEMETRY.add_time(name, seconds, events)


def span(name: str):
    return TELEMETRY.span(name)


def snapshot() -> Dict[str, Dict]:
    return TELEMETRY.snapshot()
