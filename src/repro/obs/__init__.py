"""``repro.obs`` — zero-dependency solver telemetry (off by default).

See :mod:`repro.obs.telemetry` for the registry and the naming
convention, and ``python -m repro profile <case>`` for the report that
surfaces the recorded counters.
"""

from repro.obs.telemetry import (
    TELEMETRY,
    Telemetry,
    add_time,
    count,
    disable,
    enable,
    enabled,
    reset,
    snapshot,
    span,
)

__all__ = [
    "TELEMETRY",
    "Telemetry",
    "add_time",
    "count",
    "disable",
    "enable",
    "enabled",
    "reset",
    "snapshot",
    "span",
]
