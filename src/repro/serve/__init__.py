"""Synthesis-as-a-service: the resilient async job engine (DESIGN.md §15).

The package turns the fast, bounded-time, certified, crash-safe solver
stack into a *service* that survives heavy duplicate traffic:

* :mod:`repro.serve.canonical` — the canonical problem IR hash shared
  by the result cache and the checkpoint journal (content addressing);
* :mod:`repro.serve.cache` — the content-addressed, CRC-guarded result
  cache with single-flight deduplication;
* :mod:`repro.serve.admission` — bounded-queue admission control and
  load shedding along the degradation ladder;
* :mod:`repro.serve.breaker` — the per-problem-class circuit breaker
  over the supervised solver tier;
* :mod:`repro.serve.engine` — the asyncio job engine and TCP server
  behind ``python -m repro serve``;
* :mod:`repro.serve.protocol` — job records and the NDJSON wire
  protocol.

Exports are lazy so that importing a light leaf (the checkpoint journal
imports :mod:`repro.serve.canonical`) never drags in the asyncio engine.
"""

from __future__ import annotations

_EXPORTS = {
    "canonical_json": "repro.serve.canonical",
    "spec_key": "repro.serve.canonical",
    "problem_key": "repro.serve.canonical",
    "canonical_ids": "repro.serve.canonical",
    "structure_table": "repro.serve.canonical",
    "ResultCache": "repro.serve.cache",
    "SingleFlight": "repro.serve.cache",
    "AdmissionController": "repro.serve.admission",
    "AdmissionDecision": "repro.serve.admission",
    "CircuitBreaker": "repro.serve.breaker",
    "BreakerOpenError": "repro.serve.breaker",
    "ServeConfig": "repro.serve.engine",
    "ServeEngine": "repro.serve.engine",
    "ServeServer": "repro.serve.engine",
    "Job": "repro.serve.protocol",
    "JobState": "repro.serve.protocol",
    "ProtocolError": "repro.serve.protocol",
    "encode_message": "repro.serve.protocol",
    "decode_message": "repro.serve.protocol",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
