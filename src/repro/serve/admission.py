"""Bounded-queue admission control and load shedding (DESIGN.md §15).

Overload is handled as a two-stage ladder, mirroring the synthesis
pipeline's degradation philosophy — degrade before refusing:

1. **shed** — past a queue-depth threshold, admitted jobs get their
   time budgets multiplied down (the synthesis pipeline already turns
   a short budget into a degraded-but-valid result via its own
   ladder), so the server trades answer quality for throughput;
2. **reject** — at capacity the job is refused *explicitly* with a
   structured reason, never silently dropped and never allowed to grow
   the queue without bound.

The ``serve.queue_overflow`` chaos site forces a rejection regardless
of the actual depth, so the chaos suite can prove the refusal path
(client gets a clean ``rejected`` event, server stays up) without
building real backlog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.obs import TELEMETRY
from repro.resilience.faults import FAULTS

#: (queue-fraction threshold, budget multiplier), checked highest first.
DEFAULT_SHED_LEVELS: Tuple[Tuple[float, float], ...] = (
    (0.75, 0.25),
    (0.5, 0.5),
)


@dataclass(frozen=True)
class AdmissionDecision:
    """What to do with one submission, given the queue's state."""

    action: str  # "admit" | "shed" | "reject"
    budget_multiplier: float = 1.0
    reason: str = ""

    @property
    def admitted(self) -> bool:
        return self.action != "reject"


class AdmissionController:
    """Decides admit / shed / reject from the current queue depth."""

    def __init__(
        self,
        capacity: int,
        *,
        shed_levels: Sequence[Tuple[float, float]] = DEFAULT_SHED_LEVELS,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.shed_levels = tuple(
            sorted(shed_levels, key=lambda level: -level[0])
        )
        self.admitted = 0
        self.shed = 0
        self.rejected = 0

    def decide(self, depth: int) -> AdmissionDecision:
        """The admission decision for a submission at queue ``depth``."""
        if FAULTS.armed and FAULTS.should_fire("serve.queue_overflow"):
            return self._reject("chaos: forced queue overflow")
        if depth >= self.capacity:
            return self._reject(
                f"queue full ({depth}/{self.capacity}); retry later"
            )
        fraction = depth / self.capacity
        for threshold, multiplier in self.shed_levels:
            if fraction >= threshold:
                self.shed += 1
                self.admitted += 1
                if TELEMETRY.enabled:
                    TELEMETRY.count("serve.shed")
                return AdmissionDecision(
                    "shed",
                    budget_multiplier=multiplier,
                    reason=(
                        f"queue at {depth}/{self.capacity}; "
                        f"budget x{multiplier}"
                    ),
                )
        self.admitted += 1
        return AdmissionDecision("admit")

    def _reject(self, reason: str) -> AdmissionDecision:
        self.rejected += 1
        if TELEMETRY.enabled:
            TELEMETRY.count("serve.rejected")
        return AdmissionDecision("reject", budget_multiplier=0.0, reason=reason)

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "admitted": self.admitted,
            "shed": self.shed,
            "rejected": self.rejected,
        }
