"""The resilient asyncio job engine behind ``python -m repro serve``.

DESIGN.md §15.  One :class:`ServeEngine` owns a bounded job queue, a
pool of worker tasks (each solve runs in a thread so the event loop
stays responsive), and the four resilience tiers wired in front of and
around the solver:

1. **canonical cache** — every submission is reduced to its
   :func:`~repro.serve.canonical.problem_key`; a cached certified
   result is *renamed* to the requester's operation labels (verified
   by structure-table equality — a mismatch is a miss, never a
   mislabeled answer) and served without touching the queue;
2. **single-flight** — identical problems submitted while one is
   solving coalesce onto the in-flight solve's future;
3. **admission control** — a filling queue first sheds load (admitted
   jobs get multiplied-down time budgets; the synthesis pipeline's own
   degradation ladder turns a short budget into a degraded-but-valid
   result), then rejects explicitly at capacity;
4. **circuit breaker + retries** — worker losses and budget expiries
   are retried with the seeded :class:`~repro.resilience.BackoffPolicy`;
   a problem that keeps failing trips its breaker and is answered with
   a greedy degraded solve until a half-open probe succeeds.

Every result is produced with ``certify="audit"`` and a failed audit
fails the job — the engine never serves an uncertified design.
"""

from __future__ import annotations

import asyncio
import copy
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.assay.scheduler import ListScheduler, SchedulerConfig
from repro.assay.textio import graph_from_text, schedule_from_text
from repro.core.export import design_dict
from repro.core.mappers import GreedyMapper
from repro.core.synthesis import ReliabilitySynthesizer, SynthesisConfig
from repro.errors import (
    ReproError,
    SynthesisError,
    TimeLimitError,
    WorkerCrashError,
)
from repro.geometry import GridSpec
from repro.obs import TELEMETRY
from repro.resilience import BackoffPolicy, Deadline, DegradationLadder
from repro.resilience.faults import FAULTS
from repro.serve.admission import (
    DEFAULT_SHED_LEVELS,
    AdmissionController,
)
from repro.serve.breaker import CLOSED, OPEN, CircuitBreaker
from repro.serve.cache import ResultCache, SingleFlight
from repro.serve.canonical import canonical_ids, problem_key, structure_table
from repro.serve.protocol import (
    Job,
    JobState,
    decode_message,
    encode_message,
    validate_submit_fields,
)


@dataclass
class ServeConfig:
    """Tunables of one serve engine."""

    #: the chip grid every submitted assay is synthesized onto.
    grid: GridSpec = field(default_factory=lambda: GridSpec(10, 10))
    #: bounded job queue; submissions past capacity are rejected.
    queue_capacity: int = 16
    #: concurrent solver threads.
    workers: int = 2
    #: default per-job wall-clock budget (seconds); clients may ask for
    #: less, admission shedding multiplies it down.
    time_budget: float = 5.0
    #: directory for the CRC-guarded disk cache (None = memory only).
    cache_dir: Optional[str] = None
    #: in-memory result-cache LRU bound (disk entries are unlimited).
    cache_entries: int = 256
    #: per-source latency samples kept for the p50/p99 window.
    latency_window: int = 512
    #: retries after a worker loss / budget expiry before the job fails.
    retry_attempts: int = 2
    #: backoff between those retries (seeded, deterministic).
    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(base=0.01, cap=0.25)
    )
    backoff_seed: int = 0
    #: consecutive failures before a problem's breaker trips.
    breaker_threshold: int = 3
    #: seconds an open breaker waits before letting a probe through.
    breaker_cooldown: float = 5.0
    #: (queue-fraction, budget-multiplier) shedding ladder.
    shed_levels: tuple = DEFAULT_SHED_LEVELS
    #: time budget for breaker-open degraded greedy solves.
    degraded_budget: float = 1.0
    anchor_stride: int = 1
    supervised: bool = False


class ServeEngine:
    """Accepts assay specs, returns certified (or degraded) designs."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else ServeConfig()
        self.cache = ResultCache(
            self.config.cache_dir, max_entries=self.config.cache_entries
        )
        self.flights = SingleFlight()
        self.admission = AdmissionController(
            self.config.queue_capacity, shed_levels=self.config.shed_levels
        )
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
        )
        self._queue: "asyncio.Queue[Job]" = asyncio.Queue()
        self._workers: List["asyncio.Task"] = []
        self._tasks: List["asyncio.Task"] = []
        self._next_id = 0
        self.jobs: Dict[int, Job] = {}
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.degraded_served = 0
        # Ring buffers: a long-running server keeps a bounded window of
        # samples, not every latency it ever saw.
        window = self.config.latency_window
        self._latency: Dict[str, Deque[float]] = {
            "cache": deque(maxlen=window),
            "coalesced": deque(maxlen=window),
            "solve": deque(maxlen=window),
            "degraded": deque(maxlen=window),
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._workers:
            return
        self._workers = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self.config.workers)
        ]

    async def stop(self) -> None:
        for task in self._workers + self._tasks:
            task.cancel()
        for task in self._workers + self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._workers = []
        self._tasks = []

    async def __aenter__(self) -> "ServeEngine":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- submission --------------------------------------------------------

    async def submit(
        self,
        assay_text: str,
        schedule_text: Optional[str] = None,
        *,
        time_budget: Optional[float] = None,
    ) -> Job:
        """Parse, key, and route one submission; returns its :class:`Job`.

        Malformed specs raise :class:`~repro.errors.AssaySpecError`
        (or any other :class:`~repro.errors.AssayError` /
        :class:`~repro.errors.SchedulingError` from validation), and
        ill-typed arguments — non-string specs, a non-numeric or
        non-positive ``time_budget`` — raise
        :class:`~repro.serve.protocol.ProtocolError`; those are
        *client* errors, settled before a job exists.  Every admitted
        (or rejected) submission gets a Job; await :meth:`Job.wait`
        and inspect ``state``.
        """
        validate_submit_fields(assay_text, schedule_text, time_budget)
        graph = graph_from_text(assay_text)
        graph.validate()
        if schedule_text:
            schedule = schedule_from_text(schedule_text, graph)
        else:
            schedule = ListScheduler(SchedulerConfig()).schedule(graph)
        schedule.validate()

        self._next_id += 1
        job = Job(self._next_id, time_budget=time_budget)
        job.graph = graph
        job.schedule = schedule
        if job.time_budget is None:
            job.time_budget = self.config.time_budget
        job.key = problem_key(
            graph,
            schedule,
            self.config.grid,
            anchor_stride=self.config.anchor_stride,
        )
        # The registry only tracks live jobs — settled ones drop out
        # (callers hold their own reference), or a long-running server
        # leaks every job it ever served.
        self.jobs[job.id] = job
        job.future.add_done_callback(
            lambda _future, job_id=job.id: self.jobs.pop(job_id, None)
        )
        self.submitted += 1
        if TELEMETRY.enabled:
            TELEMETRY.count("serve.submitted")

        # Tier 1: the canonical result cache.
        payload = self.cache.lookup(job.key)
        if payload is not None:
            client = self._rename(payload, job)
            if client is not None:
                job.finish(client, "cache")
                self._record_latency(job)
                return job
            # Structure-table mismatch: sound renaming is unprovable,
            # so treat as a miss and solve under this job's own labels.

        # Tier 2: single-flight coalescing.
        leader, flight = self.flights.claim(job.key)
        if not leader:
            job.source = "coalesced"
            self._tasks = [t for t in self._tasks if not t.done()]
            self._tasks.append(
                asyncio.create_task(self._follow(job, flight))
            )
            return job
        job.leader = True
        self._admit(job)
        return job

    def _admit(self, job: Job) -> None:
        """Tier 3: admission control, then the bounded queue."""
        decision = self.admission.decide(self._queue.qsize())
        if not decision.admitted:
            if job.leader:
                self.flights.resolve(
                    job.key, SynthesisError(f"rejected: {decision.reason}")
                )
            job.reject({"error": decision.reason})
            return
        job.shed_multiplier = decision.budget_multiplier
        self._queue.put_nowait(job)

    async def _follow(self, job: Job, flight: "asyncio.Future") -> None:
        """A coalesced job: await the leader, rename, fall back if odd."""
        value = await flight
        if isinstance(value, Exception):
            job.fail({"error": str(value)})
            return
        client = self._rename(value, job)
        if client is not None:
            job.finish(client, "coalesced")
            self._record_latency(job)
            return
        # Pathological: same problem key but the structure tables
        # disagree (a refinement tie broken differently).  Solve this
        # job on its own rather than risk a mislabeled answer.
        job.source = "solve"
        self._admit(job)

    # -- workers -----------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            try:
                await self._run(job)
            finally:
                self._queue.task_done()

    async def _run(self, job: Job) -> None:
        job.state = JobState.RUNNING
        try:
            payload = await asyncio.to_thread(self._solve, job)
            # The payload lives in canonical-id space (cacheable, label
            # free); the producing job gets it renamed back to its own
            # labels like any other requester — the tables trivially
            # match.
            client = self._rename(payload, job)
            assert client is not None, "self-rename cannot mismatch"
            if payload["served"] == "degraded":
                # Breaker-open answers are placeholders: shared with
                # any coalesced followers (they asked while the breaker
                # was open too) but never cached — caching would let
                # the degradation outlive the breaker.
                self.degraded_served += 1
                job.source = "degraded"
            else:
                self.cache.store(job.key, payload)
        except asyncio.CancelledError:
            # Shutdown: the worker task is going away; settle the job
            # (and any followers) so nobody awaits a dead flight.
            if job.leader:
                self.flights.resolve(
                    job.key, SynthesisError("server shutting down")
                )
            job.fail({"error": "server shutting down"})
            raise
        except Exception as error:  # noqa: BLE001 - the worker loop
            # must survive *anything* the solve raises.  An unexpected
            # exception class fails the job (and every coalesced
            # follower, via the flight), never the worker — one poison
            # request per worker would otherwise be a full DoS.
            self.failed += 1
            if TELEMETRY.enabled:
                TELEMETRY.count("serve.failed")
            if job.leader:
                self.flights.resolve(job.key, error)
            if isinstance(error, ReproError):
                job.fail({"error": str(error)})
            else:
                job.fail({"error": f"{type(error).__name__}: {error}"})
            return
        if job.leader:
            self.flights.resolve(job.key, payload)
        job.finish(client, job.source)
        self.completed += 1
        if TELEMETRY.enabled:
            TELEMETRY.count("serve.completed")
        self._record_latency(job)

    # -- the solve itself (runs in a thread) -------------------------------

    def _solve(self, job: Job) -> dict:
        """Breaker gate, retry loop, synthesis, audit check."""
        gate = self.breaker.allow(job.key)
        if gate == OPEN:
            result = self._synthesize(
                job,
                mapper=GreedyMapper(),
                budget=self.config.degraded_budget,
            )
            # The serving invariant holds on the degraded path too: a
            # breaker-open greedy answer that fails its audit fails the
            # job — certify="audit" only attaches the report, so the
            # check must be explicit here.
            self._require_audit_ok(result)
            result.resilience.record(
                "serve",
                DegradationLadder.SERVE_BREAKER,
                f"breaker open for {job.key[:12]}…; served greedy",
            )
            return self._payload(job, result, served="degraded")

        delays = self.config.backoff.delays(
            "serve.worker", self.config.backoff_seed
        )
        error: Optional[ReproError] = None
        result = None
        for attempt in range(self.config.retry_attempts + 1):
            try:
                if FAULTS.armed and FAULTS.should_fire("serve.worker_loss"):
                    raise WorkerCrashError(
                        "chaos: serve worker lost", attempts=attempt + 1
                    )
                result = self._synthesize(job)
                break
            except (WorkerCrashError, TimeLimitError) as exc:
                error = exc
                if attempt >= self.config.retry_attempts:
                    break
                job.retries += 1
                if TELEMETRY.enabled:
                    TELEMETRY.count("serve.worker_retries")
                time.sleep(next(delays))
        if result is None:
            self.breaker.record_failure(job.key)
            assert error is not None
            raise error
        try:
            # A design that fails its own audit is a solver-integrity
            # failure: count it against the breaker and fail the job —
            # an uncertified result is never served.
            self._require_audit_ok(result)
        except SynthesisError:
            self.breaker.record_failure(job.key)
            raise
        self.breaker.record_success(job.key)
        if job.retries:
            result.resilience.record(
                "serve",
                DegradationLadder.WORKER_RETRY,
                f"serve retried {job.retries} time(s) after worker loss",
            )
        if job.shed_multiplier < 1.0:
            result.resilience.record(
                "serve",
                DegradationLadder.SERVE_SHED,
                f"admitted shedding load: budget x{job.shed_multiplier}",
            )
        return self._payload(job, result, served="solve")

    @staticmethod
    def _require_audit_ok(result) -> None:
        """Enforce the serving invariant: a failed audit is a failure."""
        if result.audit is not None and not result.audit.ok:
            raise SynthesisError(
                f"design audit failed: {result.audit.summary()}"
            )

    def _synthesize(self, job: Job, mapper=None, budget=None):
        seconds = (budget or job.time_budget) * job.shed_multiplier
        deadline = Deadline(seconds)
        config = SynthesisConfig(
            grid=self.config.grid,
            mapper=mapper,
            time_budget=seconds,
            anchor_stride=self.config.anchor_stride,
            certify="audit",
            supervised=self.config.supervised,
        )
        with TELEMETRY.span("serve.solve"):
            return ReliabilitySynthesizer(config).synthesize(
                job.graph, job.schedule, deadline=deadline
            )

    # -- payloads and renaming ---------------------------------------------

    def _payload(self, job: Job, result, served: str) -> dict:
        """The cacheable, label-free form of one synthesis result.

        Operation names in the design are replaced by canonical ids;
        the structure table rides along so a future requester with
        different labels can verify a rename before trusting it.
        """
        ids = canonical_ids(job.graph, job.schedule)
        table = structure_table(job.graph, job.schedule, ids)
        design = self._renamed_design(design_dict(result), ids)
        m = result.metrics
        return {
            "served": served,
            "design": design,
            "table": table,
            "metrics": {
                "used_valves": m.used_valves,
                "role_changing_valves": m.role_changing_valves,
                "mapping_objective": m.mapping_objective,
                "mapper": m.mapper,
                "algorithm_iterations": m.algorithm_iterations,
                "wall_time": m.wall_time,
            },
            "resilience": (
                result.resilience.as_dict()
                if result.resilience is not None
                else None
            ),
            "audit": (
                result.audit.as_dict() if result.audit is not None else None
            ),
        }

    @staticmethod
    def _renamed_design(design: dict, mapping: Dict[str, str]) -> dict:
        """``design_dict`` output with operation names mapped through.

        Port names and anything else not in ``mapping`` pass through
        unchanged; the assay label is dropped (it is a label).
        """
        design = copy.deepcopy(design)
        design["assay"] = ""
        for device in design.get("devices", ()):
            device["operation"] = mapping.get(
                device["operation"], device["operation"]
            )
        for route in design.get("routes", ()):
            route["source"] = mapping.get(route["source"], route["source"])
            route["target"] = mapping.get(route["target"], route["target"])
        return design

    def _rename(self, payload: dict, job: Job) -> Optional[dict]:
        """A cached payload re-expressed in ``job``'s labels, or None.

        The requester's structure table must *equal* the stored one —
        that equality is a complete isomorphism proof (the table lists
        every attribute and edge in canonical-id space), so a verified
        rename can never serve a mislabeled design.  Any mismatch is a
        miss.
        """
        ids = canonical_ids(job.graph, job.schedule)
        table = structure_table(job.graph, job.schedule, ids)
        if table != payload.get("table"):
            return None
        reverse = {cid: name for name, cid in ids.items()}
        client = self._client_view(payload, job)
        client["design"] = self._renamed_design(client["design"], reverse)
        client["design"]["assay"] = job.graph.name
        return client

    @staticmethod
    def _client_view(payload: dict, job: Job) -> dict:
        """What one requester receives (the table stays server-side)."""
        client = {k: copy.deepcopy(v) for k, v in payload.items() if k != "table"}
        return client

    # -- introspection -----------------------------------------------------

    def _record_latency(self, job: Job) -> None:
        latency = job.latency
        if latency is not None:
            bucket = self._latency.get(job.source)
            if bucket is None:
                bucket = deque(maxlen=self.config.latency_window)
                self._latency[job.source] = bucket
            bucket.append(latency)

    @staticmethod
    def _percentile(values, q: float) -> Optional[float]:
        if not values:
            return None
        ordered = sorted(values)
        index = min(len(ordered) - 1, max(0, int(round(q * len(ordered))) - 1))
        return ordered[index]

    def status(self) -> dict:
        """Health/readiness snapshot (the ``status`` protocol op)."""
        workers_alive = [t for t in self._workers if not t.done()]
        latency = {
            source: {
                "count": len(values),
                "p50": self._percentile(values, 0.50),
                "p99": self._percentile(values, 0.99),
            }
            for source, values in self._latency.items()
            if values
        }
        return {
            "ready": bool(workers_alive),
            "workers": len(workers_alive),
            "queue": {
                "depth": self._queue.qsize(),
                "capacity": self.config.queue_capacity,
            },
            "jobs": {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "degraded_served": self.degraded_served,
            },
            "cache": {
                **self.cache.stats(),
                "coalesced": float(self.flights.coalesced),
            },
            "admission": self.admission.stats(),
            "breaker": self.breaker.stats(),
            "latency": latency,
        }


class ServeServer:
    """NDJSON-over-TCP front end for one :class:`ServeEngine`."""

    def __init__(
        self,
        engine: ServeEngine,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self._server: Optional["asyncio.AbstractServer"] = None

    async def start(self) -> None:
        await self.engine.start()
        self._server = await asyncio.start_server(
            self._client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.engine.stop()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def _client(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                await self._handle(line, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - teardown race
                pass

    async def _handle(self, line: bytes, writer) -> None:
        def send(message: dict) -> None:
            writer.write(encode_message(message))

        try:
            request = decode_message(line)
            op = request["op"]
            if op == "ping":
                send({"event": "pong"})
            elif op == "status":
                send({"event": "status", "status": self.engine.status()})
            elif op == "submit":
                await self._submit(request, send)
            else:
                send({"event": "error", "error": f"unknown op {op!r}"})
        except (ConnectionError, asyncio.CancelledError):
            raise
        except ReproError as exc:
            send({"event": "error", "error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - protocol promise:
            # a malformed request costs an error event, never the
            # connection (and never the server).
            send(
                {
                    "event": "error",
                    "error": f"internal error: {type(exc).__name__}: {exc}",
                }
            )
        await writer.drain()

    async def _submit(self, request: dict, send) -> None:
        from repro.errors import (
            AssayError,
            AssaySpecError,
            SchedulingError,
        )

        try:
            job = await self.engine.submit(
                request.get("assay", ""),
                request.get("schedule"),
                time_budget=request.get("time_budget"),
            )
        except AssaySpecError as exc:
            send({"event": "invalid", "error": exc.as_dict()})
            return
        except (AssayError, SchedulingError) as exc:
            send({"event": "invalid", "error": {"error": str(exc)}})
            return
        if job.state == JobState.REJECTED:
            send({"event": "rejected", "job": job.as_dict()})
            return
        send({"event": "accepted", "job": job.as_dict()})
        await job.wait()
        if job.state == JobState.DONE:
            send({"event": "done", "job": job.as_dict(), "result": job.payload})
        elif job.state == JobState.REJECTED:
            send({"event": "rejected", "job": job.as_dict()})
        else:
            send({"event": "failed", "job": job.as_dict()})
