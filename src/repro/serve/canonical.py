"""Canonical problem IR: one content hash per synthesis problem.

Two callers share this module (DESIGN.md §15):

* the **checkpoint journal** (:mod:`repro.resilience.checkpoint`) keys
  crash-safe records by :func:`spec_key`, a SHA-256 over a canonicalized
  :class:`~repro.core.mapping_model.MappingSpec`;
* the **serve result cache** (:mod:`repro.serve.cache`) keys whole
  synthesis results by :func:`problem_key`, a SHA-256 over the
  canonicalized *problem IR* — sequencing graph + schedule + chip
  config + the solver-relevant options.

Both hashes deliberately exclude solver choices (backend, time limit,
mapper): a record produced by one solver serves any other, because the
certificate — not the producer — is the authority.

``problem_key`` must be invariant under the three representation
accidents a million clients will produce:

* **operation reordering** — the order operations were added to the
  graph (or appear in an ``assay.textio`` file);
* **node relabeling** — the operation *names*, which are labels chosen
  by the client, not structure;
* **dict-order permutations** — the iteration order of any mapping in
  the chip config (canonical JSON sorts every key).

Relabel invariance is earned with a fixpoint **color refinement** over
the DAG: every operation starts from a hash of its intrinsic attributes
(kind, duration, volume, mix ratio, scheduled start) and repeatedly
absorbs the hashes of its parents (paired positionally with the mix
ratio parts, so ``1:3 of (a, b)`` never collides with ``1:3 of
(b, a)``) and of its children, until the coloring stabilizes.  Names
never enter the hash.

Serving a cached result to a *relabeled* resubmission needs more than
hash equality: the cache must translate the stored operation names to
the requester's names.  :func:`canonical_ids` assigns every operation a
name-free identifier (its refined fingerprint plus a duplicate index),
and :func:`structure_table` re-expresses the whole problem over those
identifiers.  Two problems whose structure tables are *equal* are
isomorphic **by construction of the table itself** — the table lists
every node attribute and every edge in identifier space — so the cache
can verify a rename is sound by comparing tables, and treat any
mismatch (a pathological duplicate-tie-break disagreement) as a miss
instead of serving a mislabeled design.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

__all__ = [
    "canonical_json",
    "health_fields",
    "spec_key",
    "operation_fingerprints",
    "canonical_ids",
    "structure_table",
    "problem_key",
]


def canonical_json(data) -> str:
    """The one true JSON form — key-sorted, no whitespace.

    Byte-identical to the checkpoint journal's historical serializer;
    the journal's CRC and content keys depend on that (regression-pinned
    in ``tests/serve/test_canonical.py``).
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _sha(data) -> str:
    return hashlib.sha256(canonical_json(data).encode()).hexdigest()


# ---------------------------------------------------------------------------
# MappingSpec canonicalization (the checkpoint journal's content key)
# ---------------------------------------------------------------------------


def health_fields(health) -> Optional[dict]:
    """Canonical JSON fields of a :class:`ChipHealth` mask (None = healthy)."""
    if health is None or health.is_healthy:
        return None
    return {
        "dead_cells": sorted([c.x, c.y] for c in health.dead_cells),
        "dead_edges": sorted(
            [e.x, e.y, e.horizontal] for e in health.dead_edges
        ),
    }


def spec_key(spec) -> str:
    """SHA-256 content hash of a :class:`MappingSpec`.

    Covers everything that influences the solve's feasible set or
    objective; deliberately excludes solver choices (backend, time
    limit) so a record written by one backend serves any other — the
    certificate, not the producer, is the authority.
    """
    fixed = sorted(
        (
            name,
            dev.operation,
            dev.placement.device_type.width,
            dev.placement.device_type.height,
            dev.placement.corner.x,
            dev.placement.corner.y,
            dev.start,
            dev.mix_start,
            dev.end,
        )
        for name, dev in spec.fixed.items()
    )
    body = {
        "grid": [spec.grid.width, spec.grid.height],
        "tasks": [
            [
                t.name,
                t.volume,
                t.pump_rate,
                t.start,
                t.mix_start,
                t.end,
                sorted(t.mix_parents),
            ]
            for t in sorted(spec.tasks, key=lambda t: t.name)
        ],
        "fixed": [list(row) for row in fixed],
        "base_load": sorted([c.x, c.y, load] for c, load in spec.base_load.items()),
        "forbidden_overlaps": sorted(list(p) for p in spec.forbidden_overlaps),
        "blocked_cells": sorted([c.x, c.y] for c in spec.blocked_cells),
        "discouraged_cells": sorted([c.x, c.y] for c in spec.discouraged_cells),
        "anchor_stride": spec.anchor_stride,
        "distance_limit": spec.distance_limit,
        "allow_storage_overlap": spec.allow_storage_overlap,
        "routing_convenient": spec.routing_convenient,
        "parent_pairs": sorted(list(p) for p in spec.parent_pairs),
        "health": health_fields(spec.health),
    }
    return hashlib.sha256(canonical_json(body).encode()).hexdigest()


# ---------------------------------------------------------------------------
# Problem IR canonicalization (the serve cache's content key)
# ---------------------------------------------------------------------------


def _attrs(op, schedule) -> list:
    """The intrinsic, name-free attributes of one operation."""
    entry = schedule.entries.get(op.name) if schedule is not None else None
    return [
        op.kind.value,
        op.duration,
        op.volume,
        sorted(op.ratio.parts) if op.ratio is not None else None,
        entry.start if entry is not None else None,
        entry.device if entry is not None else None,
    ]


def _parent_pairs(graph, name) -> List[Tuple[int, str]]:
    """Parent names paired positionally with their mix-ratio parts.

    When the ratio names exactly one part per parent the association is
    structural (``1:3 of (a, b)`` pumps three parts of ``b``); otherwise
    (single-parent multi-part ratios, non-mix operations) the part slot
    is ``-1`` — ratio parts are always positive, so the sentinel is
    unambiguous, and keeping it an int keeps the pairs sortable.
    """
    parents = graph.parents(name)
    op = graph.operation(name)
    parts: Tuple[int, ...]
    if (
        op.ratio is not None
        and len(op.ratio.parts) == len(parents)
        and len(parents) > 1
    ):
        parts = op.ratio.parts
    else:
        parts = (-1,) * len(parents)
    return [(part, parent.name) for part, parent in zip(parts, parents)]


def _refine(graph, colors: Dict[str, str]) -> Dict[str, str]:
    """Run color refinement from ``colors`` to a stable partition.

    Every round rehashes each operation's own color together with the
    parents' colors (ratio-paired, order normalized by sorting the
    pairs) and the children's colors (paired with the ratio part *this*
    operation contributes to each child).  The partition only ever
    refines — a round's color includes the previous one — so at most
    ``len(graph)`` rounds reach a fixpoint.
    """
    ops = graph.operations()
    # part_played[parent][child] = the ratio part parent contributes.
    part_played: Dict[str, Dict[str, Optional[int]]] = {
        op.name: {} for op in ops
    }
    for op in ops:
        for part, parent in _parent_pairs(graph, op.name):
            part_played[parent][op.name] = part
    for _ in range(max(1, len(ops))):
        refined = {
            op.name: _sha(
                [
                    colors[op.name],
                    sorted(
                        [part, colors[parent]]
                        for part, parent in _parent_pairs(graph, op.name)
                    ),
                    sorted(
                        [part_played[op.name][child.name], colors[child.name]]
                        for child in graph.children(op.name)
                    ),
                ]
            )
            for op in ops
        }
        if len(set(refined.values())) == len(set(colors.values())):
            return refined
        colors = refined
    return colors


def operation_fingerprints(graph, schedule=None) -> Dict[str, str]:
    """Name-free fingerprint of every operation, by color refinement.

    Round 0 hashes each operation's intrinsic attributes; every
    subsequent round absorbs the parents' hashes (ratio-paired, order
    normalized by sorting the pairs) and the children's hashes (paired
    with the ratio part *this* operation contributes to each child, so
    "the 1-part parent" and "the 3-part parent" of an asymmetric mix
    separate even when their own attributes are identical).  The
    refinement runs to a stable partition (at most ``len(graph)``
    rounds), so a fingerprint encodes the full ancestor *and*
    descendant structure — renaming operations cannot change it, and
    structurally distinct operations separate as far as color
    refinement can take them.
    """
    ops = graph.operations()
    return _refine(graph, {op.name: _sha(_attrs(op, schedule)) for op in ops})


#: individualization rounds before falling back to name-order ties —
#: each round makes at least one more color unique, so this only binds
#: on degenerate graphs (hundreds of structural twins), where the
#: fallback costs cache hits, never correctness.
_MAX_PIVOTS = 64


def _discrete_colors(graph, fingerprints: Dict[str, str]) -> Dict[str, str]:
    """Individualization-refinement: split structural-duplicate groups.

    While duplicate colors remain, take the smallest duplicated color,
    tentatively *individualize* each member (rehash it with a pivot
    marker), refine, and keep whichever candidate yields the
    lexicographically smallest color multiset — an outcome-based choice,
    so no operation name ever enters the decision.  Automorphic members
    tie exactly (either pivot gives the same multiset and isomorphic
    final colorings), so the result is label-invariant for every graph
    whose refinement-equivalent nodes are genuinely automorphic; the
    exotic remainder (WL-indistinguishable non-automorphic nodes) at
    worst produces a table mismatch, which the serve cache treats as a
    miss, never a mislabeled answer.
    """
    colors = dict(fingerprints)
    for _ in range(_MAX_PIVOTS):
        groups: Dict[str, List[str]] = {}
        for name, color in colors.items():
            groups.setdefault(color, []).append(name)
        duplicated = {c: ns for c, ns in groups.items() if len(ns) > 1}
        if not duplicated:
            break
        best = None
        for name in sorted(duplicated[min(duplicated)]):
            pivoted = dict(colors)
            pivoted[name] = _sha([colors[name], "pivot"])
            refined = _refine(graph, pivoted)
            signature = tuple(sorted(refined.values()))
            if best is None or signature < best[0]:
                best = (signature, refined)
        assert best is not None
        colors = best[1]
    return colors


def canonical_ids(graph, schedule=None) -> Dict[str, str]:
    """A name-free identifier per operation: ``<fingerprint16>.<k>``.

    Operations sharing a fingerprint (structural duplicates color
    refinement cannot split) get duplicate indices ``k`` assigned by the
    canonical order :func:`_discrete_colors` produces — a label-invariant
    tie-break, so two relabelings of one problem index their twins
    consistently and the structure tables match (name order would pair
    twin groups differently across relabelings).  Soundness of a cache
    rename is still established by *structure-table equality*
    (:func:`structure_table`), never by trusting the indices.
    """
    fingerprints = operation_fingerprints(graph, schedule)
    groups: Dict[str, List[str]] = {}
    for name in sorted(fingerprints):
        groups.setdefault(fingerprints[name], []).append(name)
    if any(len(names) > 1 for names in groups.values()):
        final = _discrete_colors(graph, fingerprints)
    else:
        final = fingerprints
    ids: Dict[str, str] = {}
    for fingerprint, names in groups.items():
        ordered = sorted(names, key=lambda name: (final[name], name))
        for k, name in enumerate(ordered):
            ids[name] = f"{fingerprint[:16]}.{k}"
    return ids


def structure_table(graph, schedule=None, ids: Optional[Dict[str, str]] = None) -> dict:
    """The whole problem re-expressed over canonical identifiers.

    Maps every canonical id to its node attributes and its (ratio part,
    parent id) edge list.  Two problems with *equal* tables are
    isomorphic under the composite rename — the table explicitly lists
    every attribute and every edge in identifier space, so equality is a
    complete verification, not a heuristic.
    """
    if ids is None:
        ids = canonical_ids(graph, schedule)
    table = {}
    for op in graph.operations():
        table[ids[op.name]] = {
            "attrs": _attrs(op, schedule),
            "parents": sorted(
                [part, ids[parent]]
                for part, parent in _parent_pairs(graph, op.name)
            ),
        }
    return table


def problem_key(
    graph,
    schedule=None,
    grid=None,
    *,
    anchor_stride: int = 1,
    distance_limit: Optional[int] = None,
    routing_convenient: bool = True,
    allow_storage_overlap: bool = True,
    health=None,
    extra: Optional[dict] = None,
) -> str:
    """SHA-256 content hash of one whole synthesis problem.

    Invariant under operation reordering, node relabeling and dict-order
    permutations of the chip config; sensitive to everything that
    changes the feasible set or the objective: graph structure,
    durations, volumes, mix ratios, scheduled starts, transport delay,
    grid dimensions, the mapping-constraint switches and the hardware
    health mask.  Solver *effort* knobs (time budget, mapper, backend,
    supervision) are deliberately excluded: a certified result answers
    the problem regardless of how hard its producer worked
    (cf. :func:`spec_key`).

    The operation part of the hash is the *multiset* of refined
    fingerprint records — never the duplicate-indexed ids of
    :func:`canonical_ids`, whose within-group index assignment follows
    the (arbitrary) names.  Structural duplicates therefore hash
    identically however they are labeled; the indexed
    :func:`structure_table` only matters at *serve* time, where table
    equality proves a rename sound.

    ``extra`` admits forward-compatible solver-relevant options; it is
    canonical-JSON'd like everything else.
    """
    fingerprints = operation_fingerprints(graph, schedule)
    records = sorted(
        [
            fingerprints[op.name],
            _attrs(op, schedule),
            sorted(
                [part, fingerprints[parent]]
                for part, parent in _parent_pairs(graph, op.name)
            ),
        ]
        for op in graph.operations()
    )
    body = {
        "ir": 1,  # bump to invalidate every cache entry on schema change
        "ops": records,
        "transport_delay": (
            schedule.transport_delay if schedule is not None else None
        ),
        "grid": [grid.width, grid.height] if grid is not None else None,
        "anchor_stride": anchor_stride,
        "distance_limit": distance_limit,
        "routing_convenient": routing_convenient,
        "allow_storage_overlap": allow_storage_overlap,
        "health": health_fields(health),
        "extra": extra,
    }
    return hashlib.sha256(canonical_json(body).encode()).hexdigest()
