"""Content-addressed result cache with single-flight dedup (DESIGN.md §15).

Two layers keep duplicate traffic off the solver:

* :class:`ResultCache` — finished results keyed by
  :func:`repro.serve.canonical.problem_key`, held in memory and
  (optionally) on disk.  Disk entries use the checkpoint journal's
  record discipline: canonical JSON guarded by a CRC32 over the body,
  so a torn write or flipped byte is *detected* — the damaged entry is
  evicted with a :class:`~repro.errors.CorruptCacheWarning` and the
  problem re-solved, never served.  The ``serve.cache_corrupt`` chaos
  site flips one byte of a record as it is written, exercising exactly
  that path.
* :class:`SingleFlight` — identical problems submitted while the first
  one is still solving share that solve's future instead of queueing
  their own.  The first claimant is the *leader*; followers coalesce.
  The shared future always resolves with a value (possibly an
  exception instance) — followers inspect it, so an abandoned flight
  never logs "exception was never retrieved".
"""

from __future__ import annotations

import asyncio
import json
import os
import warnings
import zlib
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.errors import CorruptCacheWarning
from repro.obs import TELEMETRY
from repro.resilience.faults import FAULTS
from repro.serve.canonical import canonical_json


class ResultCache:
    """Certified results by problem key; CRC-guarded on disk.

    With ``directory=None`` the cache is memory-only (one process's
    lifetime).  With a directory, every stored payload is also written
    to ``<directory>/<key>.json`` as a one-record journal
    (``{"key", "payload", "crc"}`` in canonical JSON), and lookups
    fall through to disk on a memory miss — so a restarted server keeps
    its cache.

    The in-memory layer is an LRU bounded at ``max_entries`` — a
    long-running server must not grow without limit.  Trimming the
    memory layer never loses a disk-backed entry (the record stays on
    disk and reloads on the next lookup); counted as ``trimmed``, which
    is bookkeeping, distinct from ``evicted`` (corruption).
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        *,
        max_entries: int = 256,
    ) -> None:
        self.directory = directory
        self.max_entries = max(1, max_entries)
        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stored = 0
        self.evicted = 0
        self.trimmed = 0
        self.write_failures = 0
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"{key}.json")

    def lookup(self, key: str) -> Optional[dict]:
        """The stored payload for ``key``, or None.

        A disk entry that fails its CRC (or does not parse, or carries
        the wrong key) is *evicted* — unlinked with a
        :class:`CorruptCacheWarning` — and reported as a miss; a
        corrupt record is never served.
        """
        payload = self._memory.get(key)
        if payload is not None:
            self._memory.move_to_end(key)
            self._hit()
            return payload
        if self.directory is not None:
            payload = self._load(key)
            if payload is not None:
                self._remember(key, payload)
                self._hit()
                return payload
        self.misses += 1
        if TELEMETRY.enabled:
            TELEMETRY.count("serve.cache_misses")
        return None

    def _hit(self) -> None:
        self.hits += 1
        if TELEMETRY.enabled:
            TELEMETRY.count("serve.cache_hits")

    def _load(self, key: str) -> Optional[dict]:
        path = self._path(key)
        if not os.path.exists(path):
            return None
        reason = None
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                record = json.load(f)
            stored_key = record["key"]
            payload = record["payload"]
            crc = record["crc"]
        except (OSError, ValueError, KeyError, TypeError) as exc:
            reason = f"unparseable ({exc.__class__.__name__})"
        else:
            expected = zlib.crc32(
                canonical_json({"key": stored_key, "payload": payload}).encode()
            )
            if crc != expected:
                reason = f"CRC mismatch (got {crc!r}, want {expected})"
            elif stored_key != key:
                reason = f"key mismatch (record says {stored_key[:12]}…)"
        if reason is not None:
            self.evicted += 1
            if TELEMETRY.enabled:
                TELEMETRY.count("serve.cache_evicted")
            warnings.warn(
                f"serve cache {path}: evicting corrupt entry: {reason}",
                CorruptCacheWarning,
                stacklevel=2,
            )
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - best effort
                pass
            return None
        return payload

    def store(self, key: str, payload: dict) -> None:
        """Remember ``key``'s payload; persist (CRC'd) when disk-backed.

        Disk write failures degrade into telemetry — the server must
        not die because a disk filled; the entry still lives in memory.
        """
        self._remember(key, payload)
        self.stored += 1
        if TELEMETRY.enabled:
            TELEMETRY.count("serve.cache_stores")
        if self.directory is None:
            return
        body = {"key": key, "payload": payload}
        line = canonical_json(
            {"key": key, "payload": payload, "crc": zlib.crc32(canonical_json(body).encode())}
        )
        if FAULTS.armed and FAULTS.should_fire("serve.cache_corrupt"):
            middle = len(line) // 2
            line = line[:middle] + ("#" if line[middle] != "#" else "@") + line[middle + 1:]
            # The in-memory copy must rot too, or the fault never
            # reaches the CRC path in this process.
            del self._memory[key]
        path = self._path(key)
        try:
            with open(path, "w", encoding="utf-8") as f:
                f.write(line)
                f.flush()
                os.fsync(f.fileno())
        except OSError:
            self.write_failures += 1
            if TELEMETRY.enabled:
                TELEMETRY.count("serve.cache_write_failures")

    def _remember(self, key: str, payload: dict) -> None:
        """Insert as most-recently-used; trim the LRU tail past the cap."""
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self.trimmed += 1
            if TELEMETRY.enabled:
                TELEMETRY.count("serve.cache_trimmed")

    def stats(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "entries": float(len(self._memory)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": (self.hits / total) if total else 0.0,
            "stored": float(self.stored),
            "evicted": float(self.evicted),
            "trimmed": float(self.trimmed),
            "write_failures": float(self.write_failures),
        }


class SingleFlight:
    """One shared future per in-flight problem key."""

    def __init__(self) -> None:
        self._flights: Dict[str, "asyncio.Future"] = {}
        self.coalesced = 0

    def depth(self) -> int:
        return sum(1 for f in self._flights.values() if not f.done())

    def claim(self, key: str) -> Tuple[bool, "asyncio.Future"]:
        """``(leader, future)`` — leader solves, followers await.

        A settled (or absent) flight makes the caller the new leader;
        an open one coalesces the caller onto it.
        """
        future = self._flights.get(key)
        if future is not None and not future.done():
            self.coalesced += 1
            if TELEMETRY.enabled:
                TELEMETRY.count("serve.coalesced")
            return False, future
        future = asyncio.get_running_loop().create_future()
        self._flights[key] = future
        return True, future

    def resolve(self, key: str, value) -> None:
        """Settle ``key``'s flight for every follower.

        ``value`` may be an exception *instance* (a failed flight) —
        it is delivered as a plain result so followers decide how to
        react and an unobserved failure never warns.
        """
        future = self._flights.pop(key, None)
        if future is not None and not future.done():
            future.set_result(value)
