"""Per-problem circuit breaker over the solver tier (DESIGN.md §15).

A problem whose solves keep dying (worker crashes, budget expiries)
must not be allowed to burn a worker slot on every resubmission.  The
breaker runs the classic three-state machine *per problem key*:

* **closed** — solves run normally; consecutive failures count up.
* **open** — after ``threshold`` consecutive failures the key trips:
  submissions are answered with a greedy degraded solve (recorded on
  the job's ``ResilienceReport`` as the ``serve_breaker`` rung) instead
  of occupying the full pipeline.
* **half-open** — after ``cooldown`` seconds one submission is let
  through as a *probe*; success closes the breaker (and resets the
  failure count), failure re-opens it for another cooldown.

The clock is injectable (monotonic by default) so tests step time
instead of sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

from repro.errors import ReproError
from repro.obs import TELEMETRY

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class BreakerOpenError(ReproError):
    """Raised by :meth:`CircuitBreaker.check` while a key is open."""


class _Entry:
    __slots__ = ("state", "failures", "opened_at", "probing")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.probing = False


class CircuitBreaker:
    """Consecutive-failure breaker keyed by problem."""

    def __init__(
        self,
        *,
        threshold: int = 3,
        cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._entries: Dict[str, _Entry] = {}
        self.tripped = 0
        self.probes = 0
        self.shorted = 0  # submissions answered degraded while open

    def state(self, key: str) -> str:
        entry = self._entries.get(key)
        return entry.state if entry is not None else CLOSED

    def allow(self, key: str) -> str:
        """Gate one submission: ``"closed"``, ``"probe"`` or ``"open"``.

        ``"open"`` means *do not run the full pipeline* — serve a
        degraded result instead.  ``"probe"`` admits exactly one
        in-flight trial per cooldown window.
        """
        entry = self._entries.get(key)
        if entry is None or entry.state == CLOSED:
            return CLOSED
        if entry.state == OPEN:
            if self._clock() - entry.opened_at >= self.cooldown:
                entry.state = HALF_OPEN
                entry.probing = True
                self.probes += 1
                if TELEMETRY.enabled:
                    TELEMETRY.count("serve.breaker_probes")
                return "probe"
            self._short()
            return OPEN
        # HALF_OPEN: one probe at a time.
        if entry.probing:
            self._short()
            return OPEN
        entry.probing = True
        self.probes += 1
        if TELEMETRY.enabled:
            TELEMETRY.count("serve.breaker_probes")
        return "probe"

    def _short(self) -> None:
        self.shorted += 1
        if TELEMETRY.enabled:
            TELEMETRY.count("serve.breaker_open")

    def check(self, key: str) -> None:
        """Raise :class:`BreakerOpenError` unless a solve may run."""
        if self.allow(key) == OPEN:
            raise BreakerOpenError(
                f"circuit breaker open for problem {key[:12]}…"
            )

    def record_success(self, key: str) -> None:
        """A solve (or probe) for ``key`` succeeded: close and reset."""
        self._entries.pop(key, None)

    def record_failure(self, key: str) -> None:
        """A solve (or probe) for ``key`` failed: count, maybe trip."""
        entry = self._entries.setdefault(key, _Entry())
        entry.failures += 1
        if entry.state == HALF_OPEN or entry.failures >= self.threshold:
            if entry.state != OPEN:
                self.tripped += 1
                if TELEMETRY.enabled:
                    TELEMETRY.count("serve.breaker_trips")
            entry.state = OPEN
            entry.opened_at = self._clock()
            entry.probing = False

    def stats(self) -> dict:
        states = {CLOSED: 0, OPEN: 0, HALF_OPEN: 0}
        for entry in self._entries.values():
            states[entry.state] += 1
        return {
            "tripped": self.tripped,
            "probes": self.probes,
            "shorted": self.shorted,
            "open": states[OPEN],
            "half_open": states[HALF_OPEN],
            "tracked": len(self._entries),
        }
