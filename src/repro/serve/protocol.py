"""Serve job records and the NDJSON wire protocol (DESIGN.md §15).

The wire format is newline-delimited JSON: every request and every
response is one JSON object on one line.  Three request shapes:

.. code-block:: json

    {"op": "submit", "assay": "...", "schedule": "...", "time_budget": 2}
    {"op": "status"}
    {"op": "ping"}

A ``submit`` streams events — ``accepted`` (or ``rejected`` /
``invalid``) immediately, then ``done`` (with the certified result) or
``failed`` when the job settles.  Malformed requests get an ``error``
event and the connection stays up; a protocol error never kills the
server.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from typing import Any, Dict, Optional

from repro.errors import ReproError


class ProtocolError(ReproError):
    """A wire message was not a JSON object with a known shape."""


def validate_submit_fields(
    assay: Any, schedule: Any, time_budget: Any
) -> None:
    """Raise :class:`ProtocolError` unless submit's fields are well-typed.

    Everything here comes straight off the wire, so nothing may be
    trusted: ``assay`` must be a string, ``schedule`` a string or
    absent, ``time_budget`` a positive finite number or absent.  The
    engine calls this too, so embedded (non-TCP) users get the same
    contract.
    """
    if not isinstance(assay, str):
        raise ProtocolError(
            f"'assay' must be a string, got {type(assay).__name__}"
        )
    if schedule is not None and not isinstance(schedule, str):
        raise ProtocolError(
            f"'schedule' must be a string, got {type(schedule).__name__}"
        )
    if time_budget is not None:
        if (
            isinstance(time_budget, bool)
            or not isinstance(time_budget, (int, float))
            or not math.isfinite(time_budget)
            or time_budget <= 0
        ):
            raise ProtocolError(
                "'time_budget' must be a positive finite number, "
                f"got {time_budget!r}"
            )


def encode_message(message: Dict[str, Any]) -> bytes:
    """One NDJSON line, ready for ``writer.write``."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode_message(line: "bytes | str") -> Dict[str, Any]:
    """Parse one NDJSON line into a request dict.

    Raises :class:`ProtocolError` on anything that is not a JSON
    object carrying a string ``op``.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty message")
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"message is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    op = message.get("op")
    if not isinstance(op, str):
        raise ProtocolError("message needs a string 'op' field")
    if op == "submit":
        validate_submit_fields(
            message.get("assay", ""),
            message.get("schedule"),
            message.get("time_budget"),
        )
    return message


class JobState:
    """Lifecycle states of one submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    REJECTED = "rejected"


class Job:
    """One submitted synthesis problem and its settlement future.

    ``source`` says how the answer was (or will be) produced:
    ``"solve"`` (this job ran the pipeline), ``"cache"`` (served from
    the content-addressed result cache), ``"coalesced"`` (attached to
    an identical in-flight solve), ``"degraded"`` (the circuit breaker
    was open and a greedy degraded result was served).
    """

    __slots__ = (
        "id",
        "key",
        "graph",
        "schedule",
        "state",
        "source",
        "shed_multiplier",
        "time_budget",
        "leader",
        "retries",
        "payload",
        "error",
        "future",
        "submitted_at",
        "finished_at",
    )

    def __init__(
        self,
        job_id: int,
        *,
        time_budget: Optional[float] = None,
    ) -> None:
        self.id = job_id
        self.key: Optional[str] = None
        self.graph = None
        self.schedule = None
        self.state = JobState.QUEUED
        self.source = "solve"
        self.shed_multiplier = 1.0
        self.time_budget = time_budget
        self.leader = False
        self.retries = 0
        self.payload: Optional[dict] = None
        self.error: Optional[dict] = None
        self.future: "asyncio.Future[Job]" = (
            asyncio.get_running_loop().create_future()
        )
        self.submitted_at = time.perf_counter()
        self.finished_at: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        """Submit-to-settlement wall time in seconds, once settled."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def settle(self, state: str) -> None:
        self.state = state
        self.finished_at = time.perf_counter()
        if not self.future.done():
            self.future.set_result(self)

    def finish(self, payload: dict, source: str) -> None:
        self.payload = payload
        self.source = source
        self.settle(JobState.DONE)

    def fail(self, error: dict) -> None:
        self.error = error
        self.settle(JobState.FAILED)

    def reject(self, error: dict) -> None:
        self.error = error
        self.settle(JobState.REJECTED)

    async def wait(self) -> "Job":
        """Await settlement; never raises — inspect :attr:`state`."""
        return await self.future

    def as_dict(self) -> dict:
        """JSON-friendly job summary (without the result payload)."""
        return {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "source": self.source,
            "shed_multiplier": self.shed_multiplier,
            "retries": self.retries,
            "latency": self.latency,
            "error": self.error,
        }
