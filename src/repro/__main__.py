"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1 [case ...]`` — regenerate Table 1 (all cases by default);
* ``figures [figN ...]`` — regenerate the paper's figures;
* ``cases`` — list the benchmark assays;
* ``synth ASSAY [--grid N] [--schedule SCHEDULE_FILE]
  [--time-budget S] [--supervised] [--checkpoint DIR]`` — synthesize a
  user assay written in the text format (see
  :mod:`repro.assay.textio`) or a benchmark case from the registry,
  printing metrics and placements; ``--supervised`` runs the exact
  solves in watched subprocesses and ``--checkpoint DIR`` journals
  certified window solutions so a crashed run resumes where it died
  (DESIGN.md §14);
* ``profile CASE [--policy N] [--mapper M] [--json FILE]
  [--time-budget S] [--certify LEVEL]`` — run one benchmark case with
  solver telemetry enabled and report the hot-path counters (see
  :mod:`repro.experiments.profile`);
* ``audit CASE [--policy N] [--certify audit|strict] [--json FILE]
  [--time-budget S]`` — synthesize one benchmark case and run the
  independent design audit (DESIGN.md §10); exits nonzero in strict
  mode when any violation survives;
* ``lifetime CASE [--wear-budget N] [--fail-prob P] [--faults SITE...]
  [--mode compare|adaptive|static] [--json FILE]`` — run the
  fault-adaptive lifetime engine (DESIGN.md §12): repeat the assay
  under a stochastic + wear-driven failure model, remapping around
  dead hardware, and report repetitions-to-failure adaptive vs.
  static;
* ``serve [--host H] [--port P] [--grid N] [--workers N]
  [--queue-capacity N] [--time-budget S] [--cache-dir DIR]`` — run the
  resilient synthesis-as-a-service engine (DESIGN.md §15): an NDJSON
  TCP server with a canonical result cache, single-flight dedup,
  admission control/load shedding and a per-problem circuit breaker.

``--time-budget S`` bounds the whole synthesis to ``S`` seconds of
wall clock; when the budget runs short the run degrades along the
ladder of DESIGN.md §9 and the report says which rungs engaged.

Exit codes (consistent across every command, tested by
``tests/test_cli.py``):

* ``0`` — success;
* ``1`` — the operation itself failed (infeasible synthesis, strict
  audit violations, a solver fault): a one-line ``error:`` message on
  stderr, never a raw traceback;
* ``2`` — the *user's input* was invalid (malformed assay/schedule
  file, unknown case name, bad arguments — argparse's own convention):
  the structured parse error on stderr, never a raw traceback.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.assay.scheduler import ListScheduler, SchedulerConfig
from repro.assay.textio import graph_from_text, schedule_from_text
from repro.core.synthesis import ReliabilitySynthesizer, SynthesisConfig
from repro.errors import (
    AssayError,
    GeometryError,
    ReproError,
    SchedulingError,
)
from repro.geometry import GridSpec
from repro.viz import actuation_summary, render_gantt, render_heatmap


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import main as table1_main

    table1_main(args.cases or None)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.figures import main as figures_main

    figures_main(args.figures or None)
    return 0


def _cmd_cases(_: argparse.Namespace) -> int:
    from repro.assays import list_cases

    for case in list_cases():
        print(
            f"{case.name:<24} {case.title:<24} "
            f"{case.total_operations:>3} ops "
            f"({case.mix_operations} mixing), grid "
            f"{case.grid.width}x{case.grid.height}"
        )
    return 0


def _cmd_speedup(args: argparse.Namespace) -> int:
    from repro.experiments.acceleration import main as speedup_main

    speedup_main(args.cases or None)
    return 0


def _load_synth_input(args: argparse.Namespace):
    """Resolve ``synth``'s ASSAY argument to ``(graph, schedule, grid)``.

    The argument is either a text-format assay file (see
    :mod:`repro.assay.textio`) or the name of a benchmark case from the
    registry (see ``python -m repro cases``) — files win when both
    exist.  Registry cases default to their own grid; ``--grid`` always
    overrides.
    """
    path = Path(args.assay)
    if path.exists():
        graph = graph_from_text(path.read_text())
        graph.validate()
        grid = GridSpec(args.grid or 10, args.grid or 10)
        if args.schedule:
            schedule = schedule_from_text(
                Path(args.schedule).read_text(), graph
            )
            schedule.validate()
        else:
            schedule = ListScheduler(SchedulerConfig()).schedule(graph)
        return graph, schedule, grid

    from repro.assays import get_case, list_cases, schedule_for

    try:
        case = get_case(args.assay)
    except ReproError:
        names = ", ".join(c.name for c in list_cases())
        # An unknown name is the user's typo, not an operation failure:
        # AssayError so main() maps it to exit code 2.
        raise AssayError(
            f"{args.assay!r} is neither an assay file nor a benchmark "
            f"case (known cases: {names})"
        ) from None
    graph = case.graph()
    policy = case.policies(1)[0]
    schedule = schedule_for(case, policy)
    grid = (
        GridSpec(args.grid, args.grid) if args.grid else case.grid
    )
    return graph, schedule, grid


def _cmd_synth(args: argparse.Namespace) -> int:
    graph, schedule, grid = _load_synth_input(args)

    print(render_gantt(schedule))
    result = ReliabilitySynthesizer(
        SynthesisConfig(
            grid=grid,
            time_budget=args.time_budget,
            supervised=args.supervised,
            checkpoint=args.checkpoint,
        )
    ).synthesize(graph, schedule)
    m = result.metrics
    print(f"\nvs 1max = {m.setting1}   vs 2max = {m.setting2}")
    print(f"#v = {m.used_valves}   role-changing valves = "
          f"{m.role_changing_valves}   mapper = {m.mapper}")
    if result.resilience is not None and result.resilience.degraded:
        print(f"degraded: {result.resilience.summary()}")
    print("\nplacements:")
    for name, device in sorted(result.devices.items()):
        print(f"  {name:>12} -> {device.placement} "
              f"[{device.start},{device.end})")
    print("\n" + render_heatmap(result.grid_setting1))
    print(actuation_summary(result.grid_setting1))
    if args.simulate:
        from repro.core.simulation import simulate

        report = simulate(result)
        print(
            f"\nsimulation: OK — {report.transports_executed} transports, "
            f"{report.products_delivered} product(s) delivered, peak "
            f"occupancy {report.peak_occupied_cells} cells"
        )
    if args.export:
        from repro.core.export import design_json

        Path(args.export).write_text(design_json(result))
        print(f"design written to {args.export}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.experiments.profile import main as profile_main

    profile_main(
        args.case,
        policy_index=args.policy,
        mapper=args.mapper,
        json_path=args.json,
        probe=not args.no_probe,
        time_budget=args.time_budget,
        certify=args.certify,
        race=args.race,
        supervised=args.supervised,
        checkpoint=args.checkpoint,
    )
    return 0


def _cmd_lifetime(args: argparse.Namespace) -> int:
    from repro.experiments.lifetime import main as lifetime_main

    return lifetime_main(
        args.case,
        policy_index=args.policy,
        mapper=args.mapper,
        grid=args.grid,
        wear_budget=args.wear_budget,
        valve_fail_prob=args.fail_prob,
        edge_fail_prob=args.edge_fail_prob,
        wear_acceleration=args.wear_acceleration,
        seed=args.seed,
        max_runs=args.max_runs,
        mode=args.mode,
        remap_budget=args.remap_budget,
        max_attempts=args.max_attempts,
        preventive_horizon=args.preventive_horizon,
        warm_start=not args.no_warm_start,
        faults=args.faults,
        faults_seed=args.faults_seed,
        json_path=args.json,
        show_events=args.events,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.engine import ServeConfig, ServeEngine, ServeServer

    config = ServeConfig(
        grid=GridSpec(args.grid, args.grid),
        queue_capacity=args.queue_capacity,
        workers=args.workers,
        time_budget=args.time_budget,
        cache_dir=args.cache_dir,
        supervised=args.supervised,
    )

    async def run() -> None:
        server = ServeServer(ServeEngine(config), args.host, args.port)
        await server.start()
        print(
            f"serving on {args.host}:{server.port} "
            f"(grid {args.grid}x{args.grid}, {args.workers} worker(s), "
            f"queue {args.queue_capacity})"
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("serve: shut down")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.certify.runner import run_audit

    return run_audit(
        args.case,
        policy_index=args.policy,
        certify=args.certify,
        json_path=args.json,
        time_budget=args.time_budget,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reliability-aware synthesis for flow-based "
        "microfluidic biochips (DAC 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table1", help="regenerate Table 1")
    p_table.add_argument("cases", nargs="*", help="benchmark case names")
    p_table.set_defaults(func=_cmd_table1)

    p_fig = sub.add_parser("figures", help="regenerate the figures")
    p_fig.add_argument(
        "figures", nargs="*",
        help="fig2 fig3 fig5 fig7 fig9 fig10 (default: all)",
    )
    p_fig.set_defaults(func=_cmd_figures)

    p_cases = sub.add_parser("cases", help="list benchmark assays")
    p_cases.set_defaults(func=_cmd_cases)

    p_speed = sub.add_parser(
        "speedup", help="future-work study: dynamic-architecture speedup"
    )
    p_speed.add_argument("cases", nargs="*", help="benchmark case names")
    p_speed.set_defaults(func=_cmd_speedup)

    p_synth = sub.add_parser(
        "synth",
        help="synthesize a text-format assay or a benchmark case",
    )
    p_synth.add_argument(
        "assay",
        help="assay description file, or a benchmark case name "
        "(see 'cases')",
    )
    p_synth.add_argument(
        "--schedule", help="schedule file (default: list-schedule it)"
    )
    p_synth.add_argument(
        "--grid", type=int, default=None, metavar="N",
        help="grid side length (default 10 for assay files, the case "
        "grid for benchmark cases)",
    )
    p_synth.add_argument(
        "--simulate", action="store_true",
        help="replay the result on the chip simulator",
    )
    p_synth.add_argument(
        "--export", metavar="FILE",
        help="write the manufactured design as JSON",
    )
    p_synth.add_argument(
        "--time-budget", type=float, default=None, metavar="S",
        help="wall-clock budget in seconds for the whole synthesis "
        "(degrades instead of overrunning)",
    )
    p_synth.add_argument(
        "--supervised", action="store_true",
        help="run exact solves in supervised subprocesses with a "
        "heartbeat watchdog and retry-with-backoff (DESIGN.md §14)",
    )
    p_synth.add_argument(
        "--checkpoint", metavar="DIR",
        help="append certified window solutions to DIR/journal.jsonl "
        "and resume from it after a crash (DESIGN.md §14)",
    )
    p_synth.set_defaults(func=_cmd_synth)

    p_prof = sub.add_parser(
        "profile", help="run one case with solver telemetry enabled"
    )
    p_prof.add_argument("case", help="benchmark case name (see 'cases')")
    p_prof.add_argument(
        "--policy", type=int, default=1, help="policy index (default 1)"
    )
    p_prof.add_argument(
        "--mapper", default="auto",
        choices=["auto", "greedy", "ilp", "windowed_ilp", "parallel",
                 "anytime"],
        help="mapping engine (default: automatic selection; 'parallel' "
        "is the windowed mapper with process-pool refinement; 'anytime' "
        "races LNS against the exact ILP, see DESIGN.md §13)",
    )
    p_prof.add_argument(
        "--race", action="store_true",
        help="force the anytime mapper and append a race-anatomy "
        "section (first feasible, certified incumbents, gap timeline, "
        "winning lane); uses --time-budget, default 1 s",
    )
    p_prof.add_argument(
        "--json", metavar="FILE", help="also write the report as JSON"
    )
    p_prof.add_argument(
        "--no-probe", action="store_true",
        help="skip the branch-&-bound/simplex solver probe",
    )
    p_prof.add_argument(
        "--time-budget", type=float, default=None, metavar="S",
        help="wall-clock budget in seconds for the whole synthesis "
        "(degrades instead of overrunning)",
    )
    p_prof.add_argument(
        "--certify", default="off", choices=["off", "audit", "strict"],
        help="run the certification layer during the profiled synthesis "
        "(default off; see DESIGN.md §10)",
    )
    p_prof.add_argument(
        "--supervised", action="store_true",
        help="run exact solves in supervised subprocesses and report "
        "the supervisor.* counters (DESIGN.md §14)",
    )
    p_prof.add_argument(
        "--checkpoint", metavar="DIR",
        help="journal certified window solutions to DIR and report "
        "the checkpoint.* counters (DESIGN.md §14)",
    )
    p_prof.set_defaults(func=_cmd_profile)

    p_audit = sub.add_parser(
        "audit", help="synthesize one case and audit the result"
    )
    p_audit.add_argument("case", help="benchmark case name (see 'cases')")
    p_audit.add_argument(
        "--policy", type=int, default=1, help="policy index (default 1)"
    )
    p_audit.add_argument(
        "--certify", default="strict", choices=["audit", "strict"],
        help="strict (default) exits nonzero on violations; audit only "
        "reports them",
    )
    p_audit.add_argument(
        "--json", metavar="FILE", help="also write the audit report as JSON"
    )
    p_audit.add_argument(
        "--time-budget", type=float, default=None, metavar="S",
        help="wall-clock budget in seconds for the whole synthesis "
        "(degrades instead of overrunning)",
    )
    p_audit.set_defaults(func=_cmd_audit)

    p_life = sub.add_parser(
        "lifetime",
        help="fault-adaptive lifetime: repetitions-to-failure with "
        "remapping around dead hardware (DESIGN.md §12)",
    )
    p_life.add_argument("case", help="benchmark case name (see 'cases')")
    p_life.add_argument(
        "--policy", type=int, default=1, help="policy index (default 1)"
    )
    p_life.add_argument(
        "--mapper", default="auto",
        choices=["auto", "greedy", "ilp", "windowed_ilp", "parallel",
                 "anytime"],
        help="mapping engine used for every (re)synthesis",
    )
    p_life.add_argument(
        "--grid", type=int, default=None, metavar="N",
        help="grid side length (default: the case grid + 2 per side — "
        "remapping needs spare area)",
    )
    p_life.add_argument(
        "--wear-budget", type=int, default=None, metavar="N",
        help="reliable actuations per valve/edge (default 4000)",
    )
    p_life.add_argument(
        "--fail-prob", type=float, default=0.0, metavar="P",
        help="per-run random death probability of each used valve cell",
    )
    p_life.add_argument(
        "--edge-fail-prob", type=float, default=0.0, metavar="P",
        help="per-run random death probability of each used channel edge",
    )
    p_life.add_argument(
        "--wear-acceleration", type=float, default=0.0, metavar="A",
        help="extra death hazard per unit wear fraction (worn valves "
        "fail more often)",
    )
    p_life.add_argument(
        "--seed", type=int, default=0, help="failure-model RNG seed"
    )
    p_life.add_argument(
        "--max-runs", type=int, default=200,
        help="stop after this many successful repetitions (default 200)",
    )
    p_life.add_argument(
        "--mode", default="compare",
        choices=["compare", "adaptive", "static"],
        help="compare (default) runs both the adaptive and the static "
        "engine on identical seeded failures",
    )
    p_life.add_argument(
        "--remap-budget", type=float, default=None, metavar="S",
        help="wall-clock budget per remap attempt in seconds (attempts "
        "back off geometrically; default unbounded)",
    )
    p_life.add_argument(
        "--max-attempts", type=int, default=3,
        help="remap attempts per failure before the chip is scrap",
    )
    p_life.add_argument(
        "--preventive-horizon", type=int, default=1, metavar="N",
        help="remap preventively when the design has <= N runs left "
        "(wear leveling; negative disables)",
    )
    p_life.add_argument(
        "--no-warm-start", action="store_true",
        help="disable the incremental warm-start remap attempt",
    )
    p_life.add_argument(
        "--faults", action="append", metavar="SITE[:SPEC][@AFTER]",
        help="arm a chaos site for the run, e.g. chip.valve_dead:2@3 "
        "(fire twice, skipping 3 checks) or chip.edge_dead:p0.05 "
        "(5%% per check); repeatable",
    )
    p_life.add_argument(
        "--faults-seed", type=int, default=0,
        help="seed for probabilistic chaos plans",
    )
    p_life.add_argument(
        "--events", action="store_true",
        help="print the per-failure event log",
    )
    p_life.add_argument(
        "--json", metavar="FILE", help="also write the report as JSON"
    )
    p_life.set_defaults(func=_cmd_lifetime)

    p_serve = sub.add_parser(
        "serve",
        help="run the resilient synthesis service (DESIGN.md §15)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7415,
        help="TCP port (0 picks a free one; default 7415)",
    )
    p_serve.add_argument(
        "--grid", type=int, default=10, metavar="N",
        help="grid side length every assay is synthesized onto",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, help="concurrent solver threads"
    )
    p_serve.add_argument(
        "--queue-capacity", type=int, default=16,
        help="bounded job queue; submissions past capacity are rejected",
    )
    p_serve.add_argument(
        "--time-budget", type=float, default=5.0, metavar="S",
        help="default per-job synthesis budget in seconds",
    )
    p_serve.add_argument(
        "--cache-dir", metavar="DIR",
        help="CRC-guarded on-disk result cache (default: memory only)",
    )
    p_serve.add_argument(
        "--supervised", action="store_true",
        help="run exact solves in supervised subprocesses (DESIGN.md §14)",
    )
    p_serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (AssayError, SchedulingError, GeometryError) as exc:
        # The user's input was invalid — same exit code argparse uses
        # for bad arguments, and never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        # The operation failed (infeasible, solver fault, bad journal).
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
