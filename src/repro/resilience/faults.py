"""Deterministic, site-keyed fault injection for chaos testing.

The chaos test suite (``tests/resilience/test_chaos.py``) must prove
that every rung of the degradation ladder actually engages when its
failure mode occurs.  Real timeouts and worker crashes are slow and
flaky to provoke, so the hot paths carry *injection sites*: named
points where the process-wide :data:`FAULTS` injector may force the
site's native failure (a solver limit, a ``BrokenProcessPool``, a
``RoutingError``).  The sites:

==================  ====================================================
site                effect when fired
==================  ====================================================
``bb.time_limit``   the branch & bound search stops as if its time
                    limit had just expired (keeps any incumbent →
                    FEASIBLE, else NO_SOLUTION)
``scipy.milp``      the HiGHS backend raises :class:`SolverError`
                    before calling scipy
``mapper.pool``     gathering a speculative window future raises
                    :class:`BrokenProcessPool`
``routing.route``   routing one transport event raises
                    :class:`RoutingError`
``certify.audit``   the design auditor receives a tampered copy of the
                    result (shifted placement + understated objective);
                    chaos tests assert the tampering is *caught*
``chip.valve_dead`` the lifetime engine's most-worn used valve cell
                    dies after the current assay run (fault-adaptive
                    remapping, DESIGN.md §12)
``chip.edge_dead``  likewise for the most-worn used channel edge
``worker.crash``    the supervisor SIGKILLs a freshly started watched
                    worker — the real crash-recovery path, not a
                    simulation (DESIGN.md §14)
``worker.hang``     the supervisor's watchdog treats the worker's
                    heartbeat as stale and kills it
``worker.oom``      the watchdog treats the worker's RSS as over its
                    soft budget and kills it
``checkpoint.corrupt``  the journal flips one byte of the record being
                    appended, exercising the load-time CRC skip path
``serve.worker_loss``  a serve-tier solve dies with
                    :class:`WorkerCrashError` before producing a
                    result — retried with backoff, then counted
                    against the per-problem circuit breaker
                    (DESIGN.md §15)
``serve.cache_corrupt``  the serve cache flips one byte of the record
                    being stored, exercising the lookup-time CRC
                    evict-and-re-solve path
``serve.queue_overflow``  admission control treats the serve queue as
                    full and rejects the submission explicitly
==================  ====================================================

Design constraints (mirrored by ``tests/resilience/test_faults.py``):

* **zero overhead when disarmed** — every site is guarded by
  ``if FAULTS.armed and FAULTS.should_fire(...)``, one attribute read
  on the production path;
* **deterministic** — probabilistic plans draw from a per-site RNG
  seeded with ``crc32(site) ^ seed`` (stable across processes and
  ``PYTHONHASHSEED``), and count-based plans fire on exact call
  indices;
* **scoped** — :meth:`FaultInjector.inject` is a context manager that
  arms on entry and disarms on exit, even on error, so an exploding
  test cannot leak faults into the next one.

Worker processes get their own (disarmed) module singleton, so faults
never fire inside the process pool — ``mapper.pool`` fires in the
parent while gathering results, which is where the ladder lives.
"""

from __future__ import annotations

import random
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Union


@dataclass(frozen=True)
class FaultSpec:
    """How often one site fires.

    ``after`` calls are skipped first, then up to ``times`` calls fire
    (``times=None`` = every call); with ``prob`` set, each eligible
    call fires with that probability instead of always.
    """

    times: Optional[int] = 1
    after: int = 0
    prob: Optional[float] = None


PlanValue = Union[int, FaultSpec, Mapping[str, object]]


def _normalize(value: PlanValue) -> FaultSpec:
    if isinstance(value, FaultSpec):
        return value
    if isinstance(value, int):
        return FaultSpec(times=value)
    if isinstance(value, Mapping):
        return FaultSpec(**value)  # type: ignore[arg-type]
    raise TypeError(f"bad fault spec {value!r}")


class FaultInjector:
    """Process-wide fault switchboard; disarmed (and free) by default."""

    __slots__ = ("armed", "_plan", "_calls", "_fired", "_rngs", "_seed")

    def __init__(self) -> None:
        self.armed = False
        self._plan: Dict[str, FaultSpec] = {}
        self._calls: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        self._rngs: Dict[str, random.Random] = {}
        self._seed = 0

    @contextmanager
    def inject(
        self, plan: Mapping[str, PlanValue], seed: int = 0
    ) -> Iterator["FaultInjector"]:
        """Arm the given plan for the duration of the ``with`` block."""
        if self.armed:
            raise RuntimeError("fault injector is already armed")
        self._plan = {site: _normalize(spec) for site, spec in plan.items()}
        self._calls = {}
        self._fired = {}
        self._rngs = {}
        self._seed = seed
        self.armed = True
        try:
            yield self
        finally:
            self.armed = False
            self._plan = {}
            # _fired is kept so tests can assert what happened.

    def should_fire(self, site: str) -> bool:
        """Does the armed plan fire at this call of ``site``?

        Only called behind an ``self.armed`` check; unplanned sites
        return False without recording anything.
        """
        spec = self._plan.get(site)
        if spec is None:
            return False
        calls = self._calls.get(site, 0) + 1
        self._calls[site] = calls
        if calls <= spec.after:
            return False
        if spec.times is not None and self._fired.get(site, 0) >= spec.times:
            return False
        if spec.prob is not None:
            rng = self._rngs.get(site)
            if rng is None:
                rng = self._rngs[site] = random.Random(
                    zlib.crc32(site.encode()) ^ self._seed
                )
            if rng.random() >= spec.prob:
                return False
        self._fired[site] = self._fired.get(site, 0) + 1
        return True

    def fired(self, site: Optional[str] = None):
        """Fire counts of the last armed plan (all sites, or one)."""
        if site is None:
            return dict(self._fired)
        return self._fired.get(site, 0)


#: The injector every instrumented site checks.  Disarmed in production;
#: chaos tests arm it through ``FAULTS.inject({...})``.
FAULTS = FaultInjector()
