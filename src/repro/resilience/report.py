"""The degradation ladder and its structured run report.

Failure handling in the synthesis pipeline is a *ladder*, not a cliff:
each stage that can fail has an ordered sequence of bounded
relaxations, and every step taken is recorded as a
:class:`ResilienceEvent` so a degraded run explains itself instead of
silently returning a worse answer.  The rungs, in the order a run can
descend them (see DESIGN.md §9):

========================  ============================================
rung                      meaning
========================  ============================================
``window_shrink``         a window's ILP solve failed (timeout /
                          infeasible / solver fault); the window was
                          split in half and each half solved exactly
``window_greedy``         the shrunken halves failed too; that window
                          alone fell back to the greedy balancer
``pool_serial``           the refinement process pool broke (worker
                          crash, per-future timeout); the windows whose
                          futures failed were re-solved serially, the
                          completed ones were kept
``worker_retry``          a supervised worker was lost (crash, missed
                          heartbeat, RSS kill) or the broken process
                          pool was recreated; the work was retried
                          after a seeded exponential backoff
``worker_serial``         supervised retries were exhausted; the solve
                          re-ran in-process (unsupervised) instead
``checkpoint_resume``     certified window solutions were replayed from
                          the crash-safe checkpoint journal instead of
                          being re-solved (DESIGN.md §14)
``whole_greedy``          a window dead-ended even for greedy; the
                          whole mapping restarted on the greedy
                          balancer (the pre-ladder last resort)
``mapping_greedy``        the configured mapper failed outright
                          (solver fault / budget expiry on the
                          monolithic ILP); the synthesizer re-mapped
                          with the greedy balancer
``deadline_greedy``       the mapping-stage deadline expired mid-roll;
                          the remaining tasks were placed greedily and
                          refinement was skipped
``anytime_heuristic``     the anytime race (DESIGN.md §13) ended with
                          the heuristic lane ahead: the adopted mapping
                          is certified feasible with a known objective
                          but not proven optimal
``routing_relaxed``       routing failed after the rip-up budget and
                          every reserved-corridor attempt; the run was
                          re-synthesized with the routing-convenient
                          distance constraints relaxed
``routing_overrun``       the time budget was exhausted before routing
                          could finish; routing (which cannot return a
                          partial result) was re-run unbounded and the
                          overrun recorded
``serve_shed``            the serve engine admitted this job under
                          load-shedding: its time budget was multiplied
                          down because the queue was filling
                          (DESIGN.md §15)
``serve_breaker``         the per-problem circuit breaker was open; the
                          serve engine answered with a greedy degraded
                          solve instead of the full pipeline
========================  ============================================

Every :meth:`DegradationLadder.engage` call mirrors into a
``resilience.<rung>`` telemetry counter (:mod:`repro.obs`), shows up in
the ``python -m repro profile`` report, and ends in the
:class:`ResilienceReport` attached to ``SynthesisResult.resilience``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs import TELEMETRY
from repro.resilience.deadline import Deadline


@dataclass(frozen=True)
class ResilienceEvent:
    """One ladder rung engagement during a synthesis run."""

    stage: str  # "mapping" | "pool" | "routing"
    rung: str
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f": {self.detail}" if self.detail else ""
        return f"[{self.stage}] {self.rung}{suffix}"


@dataclass
class ResilienceReport:
    """Structured record of every degradation a run went through."""

    #: the whole-run time budget, when one was set.
    budget: Optional[float] = None
    events: List[ResilienceEvent] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """Did any ladder rung engage?"""
        return bool(self.events)

    def record(self, stage: str, rung: str, detail: str = "") -> None:
        self.events.append(ResilienceEvent(stage, rung, detail))
        if TELEMETRY.enabled:
            TELEMETRY.count(f"resilience.{rung}")

    def count(self, rung: str) -> int:
        return sum(1 for e in self.events if e.rung == rung)

    def rung_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.rung] = counts.get(event.rung, 0) + 1
        return counts

    def as_dict(self) -> dict:
        """JSON-friendly form (profile reports, experiment artifacts)."""
        return {
            "budget": self.budget,
            "degraded": self.degraded,
            "rungs": self.rung_counts(),
            "events": [
                {"stage": e.stage, "rung": e.rung, "detail": e.detail}
                for e in self.events
            ],
        }

    def summary(self) -> str:
        if not self.events:
            return "no degradation"
        return ", ".join(
            f"{rung} x{n}" for rung, n in sorted(self.rung_counts().items())
        )


class DegradationLadder:
    """Bounded retry-with-relaxation policy shared across the pipeline.

    The ladder owns the run's :class:`ResilienceReport` and (optional)
    :class:`Deadline`; stages call :meth:`engage` when they step down a
    rung.  The rung *mechanics* live where the state lives (the mapper
    shrinks its own windows, the synthesizer re-maps without the
    distance constraints) — the ladder is the shared record and the
    shared vocabulary, so tests and reports can assert exactly which
    relaxations a run used.
    """

    WINDOW_SHRINK = "window_shrink"
    WINDOW_GREEDY = "window_greedy"
    POOL_SERIAL = "pool_serial"
    WORKER_RETRY = "worker_retry"
    WORKER_SERIAL = "worker_serial"
    CHECKPOINT_RESUME = "checkpoint_resume"
    WHOLE_GREEDY = "whole_greedy"
    MAPPING_GREEDY = "mapping_greedy"
    DEADLINE_GREEDY = "deadline_greedy"
    ANYTIME_HEURISTIC = "anytime_heuristic"
    ROUTING_RELAXED = "routing_relaxed"
    ROUTING_OVERRUN = "routing_overrun"
    SERVE_SHED = "serve_shed"
    SERVE_BREAKER = "serve_breaker"

    #: every rung, in descent order (documentation + test parametrization).
    RUNGS = (
        WINDOW_SHRINK,
        WINDOW_GREEDY,
        POOL_SERIAL,
        WORKER_RETRY,
        WORKER_SERIAL,
        CHECKPOINT_RESUME,
        WHOLE_GREEDY,
        MAPPING_GREEDY,
        DEADLINE_GREEDY,
        ANYTIME_HEURISTIC,
        ROUTING_RELAXED,
        ROUTING_OVERRUN,
        SERVE_SHED,
        SERVE_BREAKER,
    )

    def __init__(
        self,
        report: Optional[ResilienceReport] = None,
        deadline: Optional[Deadline] = None,
    ) -> None:
        self.report = report if report is not None else ResilienceReport()
        self.deadline = deadline

    def engage(self, stage: str, rung: str, detail: str = "") -> None:
        """Record that ``stage`` stepped down to ``rung``."""
        self.report.record(stage, rung, detail)

    def fired(self, rung: str) -> int:
        return self.report.count(rung)
