"""Capped exponential backoff with deterministic, site-keyed jitter.

Retry schedules in this repository must be *reproducible*: the chaos
suite asserts exact recovery sequences, and a flaky sleep between
attempts would make every such test timing-dependent.  So the jitter is
not :func:`random.random` off the global RNG — each backoff schedule
draws from a private :class:`random.Random` seeded with
``crc32(site) ^ seed``, the same site-keyed scheme
:class:`repro.resilience.faults.FaultInjector` uses for probabilistic
fault plans.  Two supervisors created with the same site and seed sleep
the same schedule, in any process, under any ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Iterator, List


@dataclass(frozen=True)
class BackoffPolicy:
    """``delay(n) = min(cap, base * factor**n)``, jittered.

    ``jitter`` is the randomized *fraction* of each delay: with
    ``jitter=0.5`` an attempt sleeps between 50% and 100% of its
    nominal delay (never longer — backoff bounds recovery latency, so
    jitter may only shave it).  ``jitter=0`` is fully deterministic.
    """

    base: float = 0.05
    factor: float = 2.0
    cap: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base < 0 or self.factor < 1.0 or self.cap < 0:
            raise ValueError(
                f"invalid backoff policy (base={self.base}, "
                f"factor={self.factor}, cap={self.cap})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def rng(self, site: str, seed: int = 0) -> random.Random:
        """The schedule's private RNG — ``crc32(site) ^ seed`` keyed."""
        return random.Random(zlib.crc32(site.encode()) ^ seed)

    def delay(self, attempt: int, rng: random.Random) -> float:
        """The sleep before retry ``attempt`` (0-based), jittered."""
        nominal = min(self.cap, self.base * self.factor ** attempt)
        if self.jitter:
            nominal *= (1.0 - self.jitter) + self.jitter * rng.random()
        return nominal

    def schedule(
        self, attempts: int, site: str, seed: int = 0
    ) -> List[float]:
        """The full (deterministic) schedule for ``attempts`` retries."""
        rng = self.rng(site, seed)
        return [self.delay(i, rng) for i in range(attempts)]

    def delays(self, site: str, seed: int = 0) -> Iterator[float]:
        """An endless delay iterator (the supervisor's retry loop)."""
        rng = self.rng(site, seed)
        attempt = 0
        while True:
            yield self.delay(attempt, rng)
            attempt += 1
