"""Monotonic wall-clock budgets for bounded-latency synthesis.

A :class:`Deadline` is created once per ``synthesize()`` call from
``SynthesisConfig.time_budget`` and threaded through every stage that
can stall: ILP window solves receive ``deadline.limit(...)`` as their
solver ``time_limit``, the rolling/refinement loops poll
:attr:`Deadline.expired` between windows, and the router checks the
deadline inside its rip-up loop.  The clock is :func:`time.monotonic`
(injectable for tests), so the budget is immune to wall-clock jumps.

Deadlines are *stage-splittable*: :meth:`Deadline.sub` carves a child
deadline out of the remaining budget (e.g. mapping gets 85% of what is
left, routing keeps the parent), so a slow early stage automatically
shrinks the allowance of the later ones instead of overdrawing the
whole run.

Deadline objects are deliberately **not** sent to worker processes:
monotonic clocks are not comparable across processes, so the process
pool receives plain ``remaining()``-derived float limits instead.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import TimeLimitError


class Deadline:
    """A fixed point on the monotonic clock by which work must finish."""

    __slots__ = ("_budget", "_clock", "_end")

    def __init__(
        self,
        budget: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._budget = float(budget)
        self._clock = clock
        self._end = clock() + self._budget

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Deadline(budget={self._budget:.3f}, "
            f"remaining={self.remaining():.3f})"
        )

    @property
    def budget(self) -> float:
        """The total budget this deadline was created with (seconds)."""
        return self._budget

    @property
    def expired(self) -> bool:
        return self._clock() >= self._end

    def remaining(self) -> float:
        """Seconds left before expiry, clamped at 0."""
        return max(0.0, self._end - self._clock())

    def check(self, stage: str) -> None:
        """Raise :class:`TimeLimitError` if the deadline has passed."""
        if self.expired:
            raise TimeLimitError(
                f"time budget of {self._budget:.3f} s exhausted "
                f"during {stage}"
            )

    def limit(self, cap: Optional[float] = None) -> float:
        """The remaining budget as a solver ``time_limit``.

        ``cap`` (e.g. a configured per-window limit) wins when it is
        tighter than what is left.  The result is always a float — an
        expired deadline yields ``0.0``, which every solver in this
        repository treats as "give up immediately, keep any incumbent".
        """
        remaining = self.remaining()
        if cap is not None:
            remaining = min(remaining, float(cap))
        return remaining

    def sub(self, fraction: float) -> "Deadline":
        """A child deadline over ``fraction`` of the *remaining* budget.

        The child shares the parent's clock; the parent is unaffected,
        so a stage given ``deadline.sub(0.85)`` leaves the final 15%
        of the budget to whatever runs against the parent afterwards.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        return Deadline(self.remaining() * fraction, clock=self._clock)
