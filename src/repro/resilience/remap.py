"""The fault-adaptive lifetime engine (DESIGN.md §12).

The paper's premise — valves wear out, and "the whole chip function can
be affected even when only a few valves wear out" — is only half
answered by wear-minimizing synthesis: once the first valve actually
dies, a *static* design is scrap.  This module closes the loop.  It
repeats an assay on one physical chip under a stochastic + wear-driven
failure model, detects failures, masks the dead hardware in a
:class:`~repro.architecture.health.ChipHealth`, and re-synthesizes the
remaining lifetime around it:

* **wear-out** — cumulative per-valve actuation counts (and per
  channel-segment counts via :func:`repro.core.edge_wear.edge_wear`)
  are carried across remaps; before each run, any used resource whose
  cumulative wear would exceed the budget dies *first* (predictive: a
  static design therefore survives exactly
  ``wear_budget // wear_per_run`` runs, matching
  :func:`repro.core.lifetime.synthesis_lifetime`);
* **random faults** — after each successful run, every used valve cell
  and channel edge may die with probability
  ``valve_fail_prob + wear_acceleration * wear_fraction`` (seeded,
  deterministic), and the chaos sites ``chip.valve_dead`` /
  ``chip.edge_dead`` can force a deterministic death through
  :data:`~repro.resilience.faults.FAULTS`;
* **remapping** — attempt 0 warm-starts from the previous result
  (unaffected devices stay fixed, only affected tasks are re-solved),
  later attempts fall back to a full re-synthesis with the health mask
  under a per-remap :class:`~repro.resilience.deadline.Deadline` whose
  budget backs off geometrically; the existing degradation ladder runs
  inside each attempt;
* **the oracle** — every remapped generation must pass
  :func:`repro.core.simulation.simulate` and the independent
  :func:`repro.certify.audit` (which rejects any design touching dead
  hardware) before the engine trusts it.

The headline metric is **assay repetitions to failure**; see
:func:`compare_lifetimes` for the adaptive-vs-static comparison and
``python -m repro lifetime`` for the CLI.
"""

from __future__ import annotations

import random
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    DegradedResultWarning,
    RoutingError,
    SolverError,
    SynthesisError,
    TimeLimitError,
)
from repro.geometry import Point
from repro.architecture.channel_edges import ChannelEdge
from repro.architecture.health import ChipHealth
from repro.resilience.deadline import Deadline
from repro.resilience.faults import FAULTS

#: mirrors :data:`repro.core.lifetime.DEFAULT_WEAR_BUDGET` ("a few
#: thousand" reliable actuations); imported lazily to keep this module
#: import-light (see the package ``__getattr__``).
DEFAULT_WEAR_BUDGET = 4000


# ---------------------------------------------------------------------------
# failure model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FailureModel:
    """How hardware dies while an assay repeats.

    ``wear_budget`` bounds cumulative actuations per valve cell and per
    channel edge (the deterministic wear-out part).  The probabilistic
    part is a per-run, per-used-resource Bernoulli draw with rate
    ``valve_fail_prob``/``edge_fail_prob`` plus a wear-proportional
    hazard ``wear_acceleration * (cumulative_wear / wear_budget)`` —
    worn valves fail more often, fresh ones rarely.  ``seed`` makes the
    whole process reproducible.
    """

    wear_budget: int = DEFAULT_WEAR_BUDGET
    valve_fail_prob: float = 0.0
    edge_fail_prob: float = 0.0
    wear_acceleration: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.wear_budget <= 0:
            raise SynthesisError("wear budget must be positive")
        for name in ("valve_fail_prob", "edge_fail_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise SynthesisError(f"{name}={p} is not a probability")
        if self.wear_acceleration < 0:
            raise SynthesisError("wear_acceleration must be >= 0")


class FailureProcess:
    """Stateful realization of a :class:`FailureModel` on one chip.

    Tracks cumulative wear per physical valve cell and channel edge
    across remaps (the chip is the same piece of hardware no matter how
    it is currently mapped) and draws the stochastic deaths from one
    seeded RNG, so a (model, assay) pair replays identically.
    """

    def __init__(self, model: FailureModel) -> None:
        self.model = model
        self.rng = random.Random(model.seed)
        self.cell_wear: Dict[Point, int] = {}
        self.edge_wear: Dict[ChannelEdge, int] = {}

    # -- wear bookkeeping --------------------------------------------------

    @staticmethod
    def run_wear(result) -> Tuple[Dict[Point, int], Dict[ChannelEdge, int]]:
        """Per-resource wear one execution of ``result`` adds."""
        from repro.core.edge_wear import edge_wear as edge_report

        cells = {
            valve.position: valve.total_actuations
            for valve in result.grid_setting1.valves()
            if valve.total_actuations > 0
        }
        report = edge_report(result, setting=1)
        edges = {
            edge: report.total(edge)
            for edge in set(report.pump) | set(report.control)
        }
        return cells, edges

    def exhausted_by_next_run(
        self,
        cells: Dict[Point, int],
        edges: Dict[ChannelEdge, int],
    ) -> Tuple[List[Point], List[ChannelEdge]]:
        """Resources that would blow their budget if the run executed."""
        budget = self.model.wear_budget
        dead_cells = sorted(
            p for p, w in cells.items() if self.cell_wear.get(p, 0) + w > budget
        )
        dead_edges = sorted(
            e for e, w in edges.items() if self.edge_wear.get(e, 0) + w > budget
        )
        return dead_cells, dead_edges

    def commit_run(
        self,
        cells: Dict[Point, int],
        edges: Dict[ChannelEdge, int],
    ) -> None:
        for p, w in cells.items():
            self.cell_wear[p] = self.cell_wear.get(p, 0) + w
        for e, w in edges.items():
            self.edge_wear[e] = self.edge_wear.get(e, 0) + w

    # -- stochastic + injected deaths --------------------------------------

    def sample_failures(
        self,
        cells: Dict[Point, int],
        edges: Dict[ChannelEdge, int],
    ) -> Tuple[List[Point], List[ChannelEdge]]:
        """Random deaths among the resources the current design uses."""
        model = self.model
        budget = model.wear_budget
        dead_cells: List[Point] = []
        if model.valve_fail_prob or model.wear_acceleration:
            for p in sorted(cells):
                hazard = model.valve_fail_prob + model.wear_acceleration * (
                    self.cell_wear.get(p, 0) / budget
                )
                if hazard > 0 and self.rng.random() < hazard:
                    dead_cells.append(p)
        dead_edges: List[ChannelEdge] = []
        if model.edge_fail_prob or model.wear_acceleration:
            for e in sorted(edges):
                hazard = model.edge_fail_prob + model.wear_acceleration * (
                    self.edge_wear.get(e, 0) / budget
                )
                if hazard > 0 and self.rng.random() < hazard:
                    dead_edges.append(e)
        return dead_cells, dead_edges

    def injected_failures(
        self,
        cells: Dict[Point, int],
        edges: Dict[ChannelEdge, int],
    ) -> Tuple[List[Point], List[ChannelEdge]]:
        """Deaths forced by the chaos sites, if armed.

        ``chip.valve_dead`` kills the most-worn used valve cell,
        ``chip.edge_dead`` the most-worn used channel edge — both
        deterministic so chaos tests can assert the exact casualty.
        Guarded by ``FAULTS.armed`` first: zero overhead in production.
        """
        dead_cells: List[Point] = []
        dead_edges: List[ChannelEdge] = []
        if FAULTS.armed and FAULTS.should_fire("chip.valve_dead") and cells:
            dead_cells.append(
                max(sorted(cells), key=lambda p: self.cell_wear.get(p, 0) + cells[p])
            )
        if FAULTS.armed and FAULTS.should_fire("chip.edge_dead") and edges:
            dead_edges.append(
                max(sorted(edges), key=lambda e: self.edge_wear.get(e, 0) + edges[e])
            )
        return dead_cells, dead_edges


# ---------------------------------------------------------------------------
# lifetime report
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LifetimeEvent:
    """One entry of the per-failure event log."""

    run: int  # completed runs when the event happened
    kind: str  # valve-dead | edge-dead | remap | remap-failed | terminal
    detail: str


@dataclass
class LifetimeReport:
    """What happened to one chip over its whole service life."""

    assay: str
    adaptive: bool
    wear_budget: int
    runs: int = 0
    remaps: int = 0
    events: List[LifetimeEvent] = field(default_factory=list)
    terminal_cause: Optional[str] = None
    final_health: ChipHealth = field(default_factory=ChipHealth.healthy)
    wall_time: float = 0.0

    def record(self, run: int, kind: str, detail: str) -> None:
        self.events.append(LifetimeEvent(run=run, kind=kind, detail=detail))

    @property
    def failures(self) -> int:
        return sum(
            1 for e in self.events if e.kind in ("valve-dead", "edge-dead")
        )

    def as_dict(self) -> dict:
        return {
            "assay": self.assay,
            "adaptive": self.adaptive,
            "wear_budget": self.wear_budget,
            "runs": self.runs,
            "remaps": self.remaps,
            "failures": self.failures,
            "terminal_cause": self.terminal_cause,
            "final_health": self.final_health.as_dict(),
            "events": [
                {"run": e.run, "kind": e.kind, "detail": e.detail}
                for e in self.events
            ],
            "wall_time": round(self.wall_time, 3),
        }

    def summary(self) -> str:
        mode = "adaptive" if self.adaptive else "static"
        cause = self.terminal_cause or "run limit"
        return (
            f"{self.assay} [{mode}]: {self.runs} runs, "
            f"{self.failures} failures, {self.remaps} remaps — {cause}"
        )


@dataclass(frozen=True)
class LifetimeComparison:
    """Adaptive vs. static repetitions-to-failure on the same failures."""

    adaptive: LifetimeReport
    static: LifetimeReport

    @property
    def gain(self) -> float:
        return self.adaptive.runs / max(self.static.runs, 1)

    def as_dict(self) -> dict:
        return {
            "adaptive": self.adaptive.as_dict(),
            "static": self.static.as_dict(),
            "gain": round(self.gain, 3),
        }


# ---------------------------------------------------------------------------
# remap policy + engine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RemapPolicy:
    """How hard the engine tries to map around dead hardware.

    Attempt 0 is the incremental warm start (when enabled and
    applicable); every later attempt is a full re-synthesis.  Each
    attempt runs under its own deadline of
    ``remap_budget * backoff ** attempt`` seconds (unbounded when
    ``remap_budget`` is None) — the degradation ladder inside the
    synthesizer spends that budget before the attempt counts as failed.
    """

    max_attempts: int = 3
    remap_budget: Optional[float] = None
    backoff: float = 2.0
    warm_start: bool = True
    validate: bool = True
    #: preventive wear-leveling rung: when the current design can
    #: survive at most this many more runs before some used resource
    #: exhausts its budget, the engine remaps early (full re-synthesis
    #: with accumulated wear as base load) so fresh cells take over
    #: *before* anything dies.  This is what turns "remap around
    #: corpses" into the paper's service-life extension — by the time
    #: uniform wear kills cells, it kills them in batches too large to
    #: map around.  None disables the rung.
    preventive_horizon: Optional[int] = 1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SynthesisError("remap policy needs at least one attempt")
        if self.backoff < 1.0:
            raise SynthesisError("backoff factor must be >= 1")
        if self.preventive_horizon is not None and self.preventive_horizon < 0:
            raise SynthesisError("preventive_horizon must be >= 0 or None")


class AdaptiveLifetimeEngine:
    """Repeats an assay on one chip, remapping around failures.

    ``config`` is the same :class:`~repro.core.synthesis.SynthesisConfig`
    a one-shot synthesis would use; its ``health`` field is managed by
    the engine (pre-existing dead hardware is honored as the starting
    mask).
    """

    def __init__(
        self,
        graph,
        schedule,
        config,
        model: Optional[FailureModel] = None,
        policy: Optional[RemapPolicy] = None,
    ) -> None:
        self.graph = graph
        self.schedule = schedule
        self.config = config
        self.model = model if model is not None else FailureModel()
        self.policy = policy if policy is not None else RemapPolicy()

    # -- public API --------------------------------------------------------

    def run(self, max_runs: int = 1000, adaptive: bool = True) -> LifetimeReport:
        """Drive the chip until it dies or ``max_runs`` is reached."""
        started = time.monotonic()
        process = FailureProcess(self.model)
        health = (
            self.config.health
            if self.config.health is not None
            else ChipHealth.healthy()
        )
        report = LifetimeReport(
            assay=self.graph.name,
            adaptive=adaptive,
            wear_budget=self.model.wear_budget,
        )
        result = self._initial(health, report)
        if result is None:
            report.wall_time = time.monotonic() - started
            report.final_health = health
            return report
        cells, edges = process.run_wear(result)
        preventive_tried = False

        while report.runs < max_runs:
            dead_c, dead_e = process.exhausted_by_next_run(cells, edges)
            if dead_c or dead_e:
                health = self._kill(
                    report, process, health, dead_c, dead_e, worn=True
                )
                if not adaptive:
                    report.terminal_cause = (
                        "wear budget exhausted; static design cannot remap"
                    )
                    report.record(report.runs, "terminal", report.terminal_cause)
                    break
                result = self._remap(result, health, report, process)
                if result is None:
                    break
                cells, edges = process.run_wear(result)
                continue  # re-check the new design before running it

            if adaptive and not preventive_tried:
                preventive_tried = True  # one attempt per run, success or not
                better = self._preventive(
                    process, health, cells, edges, report
                )
                if better is not None:
                    result = better
                    cells, edges = process.run_wear(result)
                    continue  # re-check the fresh design before running it

            process.commit_run(cells, edges)
            report.runs += 1
            preventive_tried = False

            sc, se = process.sample_failures(cells, edges)
            ic, ie = process.injected_failures(cells, edges)
            new_c = sorted(set(sc) | set(ic))
            new_e = sorted(set(se) | set(ie))
            if not new_c and not new_e:
                continue
            health = self._kill(
                report, process, health, new_c, new_e, worn=False
            )
            if not adaptive:
                report.terminal_cause = (
                    "hardware fault; static design cannot remap"
                )
                report.record(report.runs, "terminal", report.terminal_cause)
                break
            result = self._remap(result, health, report, process)
            if result is None:
                break
            cells, edges = process.run_wear(result)

        if report.terminal_cause is None and report.runs >= max_runs:
            report.terminal_cause = f"run limit {max_runs} reached"
        report.final_health = health
        report.wall_time = time.monotonic() - started
        return report

    # -- failure bookkeeping ----------------------------------------------

    def _kill(
        self,
        report: LifetimeReport,
        process: FailureProcess,
        health: ChipHealth,
        cells: List[Point],
        edges: List[ChannelEdge],
        worn: bool,
    ) -> ChipHealth:
        why = "wear budget exhausted" if worn else "random fault"
        for p in cells:
            report.record(
                report.runs, "valve-dead",
                f"valve {p} died ({why}; cumulative wear "
                f"{process.cell_wear.get(p, 0)}/{self.model.wear_budget})",
            )
        for e in edges:
            report.record(
                report.runs, "edge-dead",
                f"channel edge {e} died ({why}; cumulative wear "
                f"{process.edge_wear.get(e, 0)}/{self.model.wear_budget})",
            )
        return health.kill_cells(cells).kill_edges(edges)

    # -- synthesis / remapping --------------------------------------------

    def _initial(self, health: ChipHealth, report: LifetimeReport):
        try:
            result = self._full_synthesis(health, budget=None)
        except (SynthesisError, SolverError, RoutingError, TimeLimitError) as e:
            report.terminal_cause = f"initial synthesis failed: {e}"
            report.record(0, "terminal", report.terminal_cause)
            return None
        problem = self._validate(result)
        if problem is not None:
            report.terminal_cause = f"initial synthesis invalid: {problem}"
            report.record(0, "terminal", report.terminal_cause)
            return None
        return result

    def _remaining_runs(
        self,
        process: FailureProcess,
        cells: Dict[Point, int],
        edges: Dict[ChannelEdge, int],
    ) -> int:
        """Runs this design survives before some used resource dies."""
        budget = self.model.wear_budget
        remaining = budget  # a design wears every used resource >= 1/run
        for p, w in cells.items():
            remaining = min(
                remaining, (budget - process.cell_wear.get(p, 0)) // w
            )
        for e, w in edges.items():
            remaining = min(
                remaining, (budget - process.edge_wear.get(e, 0)) // w
            )
        return max(remaining, 0)

    def _preventive(
        self,
        process: FailureProcess,
        health: ChipHealth,
        cells: Dict[Point, int],
        edges: Dict[ChannelEdge, int],
        report: LifetimeReport,
    ):
        """Wear-leveling remap before anything dies; None = keep current.

        A preventive remap is best-effort: a failed attempt is logged
        and the current (still valid) design keeps running until the
        reactive path takes over.  A candidate is adopted only when it
        strictly outlives the current design, so the loop cannot churn
        on equivalent layouts.
        """
        horizon = self.policy.preventive_horizon
        if horizon is None:
            return None
        current = self._remaining_runs(process, cells, edges)
        if current > horizon:
            return None
        try:
            candidate = self._full_synthesis(
                health, self.policy.remap_budget, wear=process.cell_wear
            )
        except (SynthesisError, SolverError, RoutingError, TimeLimitError) as e:
            report.record(
                report.runs, "remap-failed",
                f"preventive wear-leveling remap failed: {e}",
            )
            return None
        problem = self._validate(candidate)
        if problem is not None:
            report.record(
                report.runs, "remap-failed",
                f"preventive remap produced an invalid design: {problem}",
            )
            return None
        c_cells, c_edges = process.run_wear(candidate)
        improved = self._remaining_runs(process, c_cells, c_edges)
        if improved <= current:
            # the chip has no fresher region to offer; keep running the
            # current design until the reactive path takes over
            return None
        report.remaps += 1
        report.record(
            report.runs, "remap",
            f"preventive wear-leveling remap (remaining runs "
            f"{current} -> {improved}, mapper={candidate.metrics.mapper})",
        )
        return candidate

    def _remap(
        self,
        previous,
        health: ChipHealth,
        report: LifetimeReport,
        process: FailureProcess,
    ):
        """Re-synthesize around ``health``; None (terminal) on failure."""
        policy = self.policy
        for attempt in range(policy.max_attempts):
            budget = (
                policy.remap_budget * policy.backoff ** attempt
                if policy.remap_budget is not None
                else None
            )
            warm = attempt == 0 and policy.warm_start
            try:
                if warm:
                    candidate = self._warm_remap(
                        previous, health, budget, wear=process.cell_wear
                    )
                else:
                    candidate = self._full_synthesis(
                        health, budget, wear=process.cell_wear
                    )
            except (
                SynthesisError, SolverError, RoutingError, TimeLimitError
            ) as error:
                report.record(
                    report.runs, "remap-failed",
                    f"attempt {attempt} ({'warm' if warm else 'full'}): "
                    f"{error}",
                )
                continue
            problem = self._validate(candidate)
            if problem is not None:
                report.record(
                    report.runs, "remap-failed",
                    f"attempt {attempt} ({'warm' if warm else 'full'}) "
                    f"produced an invalid design: {problem}",
                )
                continue
            report.remaps += 1
            rungs = (
                candidate.resilience.rung_counts()
                if candidate.resilience is not None
                and candidate.resilience.degraded
                else {}
            )
            degraded = f", degraded {rungs}" if rungs else ""
            report.record(
                report.runs, "remap",
                f"attempt {attempt} ({'warm' if warm else 'full'}) succeeded "
                f"around {health.dead_count} dead resources "
                f"(mapper={candidate.metrics.mapper}{degraded})",
            )
            return candidate
        report.terminal_cause = (
            f"remap infeasible after {policy.max_attempts} attempts "
            f"({health.dead_count} dead resources)"
        )
        report.record(report.runs, "terminal", report.terminal_cause)
        return None

    def _full_synthesis(
        self,
        health: ChipHealth,
        budget: Optional[float],
        wear: Optional[Dict[Point, int]] = None,
    ):
        from repro.core.synthesis import ReliabilitySynthesizer

        config = replace(
            self.config,
            health=None if health.is_healthy else health,
            base_load=dict(wear) if wear else self.config.base_load,
            time_budget=budget if budget is not None else self.config.time_budget,
        )
        with warnings.catch_warnings():
            # degradation is recorded in the result's resilience report
            # (and echoed into the lifetime event log); the warning would
            # only spam the repetition loop.
            warnings.simplefilter("ignore", DegradedResultWarning)
            return ReliabilitySynthesizer(config).synthesize(
                self.graph, self.schedule
            )

    def _warm_remap(
        self,
        previous,
        health: ChipHealth,
        budget: Optional[float],
        wear: Optional[Dict[Point, int]] = None,
    ):
        """Incremental remap: keep unaffected devices, re-solve the rest.

        Only placements whose footprint the new mask blocks are
        re-mapped; everything else stays exactly where it was (fixed
        devices with their pump load as ``base_load``).  Routing and
        actuation accounting always rerun in full — routes are global.
        Raises :class:`SynthesisError` when the warm start is degenerate
        (nothing or everything affected) or the storage plan rejects the
        combined placements; the caller then falls back to a full
        re-synthesis.
        """
        from repro.architecture.chip import Chip
        from repro.architecture.device import DynamicDevice
        from repro.core.actuation import AccountingPolicy, ActuationAccountant
        from repro.core.events import build_transport_events
        from repro.core.mappers import GreedyMapper, ILPMapper
        from repro.core.mapping_model import MappingSpec
        from repro.core.result import (
            SettingMetrics,
            SynthesisMetrics,
            SynthesisResult,
        )
        from repro.core.storage import StoragePlan
        from repro.core.tasks import build_tasks
        from repro.routing.router import Router, RoutingContext

        started = time.monotonic()
        config = self.config
        tasks = build_tasks(self.graph, self.schedule)
        affected = [
            t for t in tasks
            if health.blocks_rect(previous.devices[t.name].rect)
        ]
        if not affected:
            raise SynthesisError(
                "warm start has no affected devices (route-only damage); "
                "falling back to full re-synthesis"
            )
        if len(affected) == len(tasks):
            raise SynthesisError("every device is affected; warm start moot")

        affected_names = {t.name for t in affected}
        fixed: Dict[str, DynamicDevice] = {}
        base_load: Dict[Point, int] = dict(wear) if wear else {}
        for task in tasks:
            if task.name in affected_names:
                continue
            device = previous.devices[task.name]
            fixed[task.name] = device
            if task.pump_rate:
                for cell in device.placement.pump_cells():
                    base_load[cell] = base_load.get(cell, 0) + task.pump_rate

        chip = Chip(config.grid, config.ports, health)
        port_cells = frozenset(p.position for p in chip.ports.values())
        spec = MappingSpec(
            grid=config.grid,
            tasks=affected,
            fixed=fixed,
            base_load=base_load,
            blocked_cells=port_cells,
            anchor_stride=config.anchor_stride,
            distance_limit=config.distance_limit,
            routing_convenient=config.routing_convenient,
            allow_storage_overlap=config.allow_storage_overlap,
            parent_pairs={
                (parent, task.name)
                for task in tasks
                for parent in task.mix_parents
            },
            health=health,
        )
        deadline = Deadline(budget) if budget is not None else None
        mapper = (
            ILPMapper(backend=config.ilp_backend)
            if len(affected) <= config.ilp_task_limit
            else GreedyMapper()
        )
        mapping = mapper.map_tasks(spec, deadline=deadline)

        placements = {name: dev.placement for name, dev in fixed.items()}
        for name in affected_names:
            placements[name] = mapping.placements[name]
        storage_plan = StoragePlan(self.graph, self.schedule)
        violations = storage_plan.overlap_violations(placements)
        if violations:
            raise SynthesisError(
                f"warm start breaks {len(violations)} storage overlap "
                "permissions; falling back to full re-synthesis"
            )

        devices: Dict[str, DynamicDevice] = {}
        for task in tasks:
            devices[task.name] = DynamicDevice(
                operation=task.name,
                placement=placements[task.name],
                start=task.start,
                end=task.end,
                mix_start=task.mix_start,
            )
        events = build_transport_events(self.graph, self.schedule, chip)
        router = Router(
            RoutingContext(
                chip=chip, devices=devices, free_space=storage_plan.free_space
            ),
            deadline=deadline,
        )
        routes = router.route_all(events)

        grid1 = ActuationAccountant(
            config.grid, AccountingPolicy(setting=1)
        ).run(devices.values(), routes)
        grid2 = ActuationAccountant(
            config.grid, AccountingPolicy(setting=2)
        ).run(devices.values(), routes)
        metrics = SynthesisMetrics(
            setting1=SettingMetrics(
                1, grid1.max_total_actuations, grid1.max_peristaltic_actuations
            ),
            setting2=SettingMetrics(
                2, grid2.max_total_actuations, grid2.max_peristaltic_actuations
            ),
            used_valves=grid1.used_valve_count,
            role_changing_valves=len(grid1.role_changing_valves()),
            # the realized peak is the honest bound here: the warm solve
            # optimized only the affected window, not the whole assay
            mapping_objective=grid1.max_peristaltic_actuations,
            mapper=f"warm+{mapping.mapper}",
            algorithm_iterations=1,
            wall_time=time.monotonic() - started,
        )
        return SynthesisResult(
            graph=self.graph,
            schedule=self.schedule,
            chip=chip,
            devices=devices,
            routes=routes,
            storage_plan=storage_plan,
            grid_setting1=grid1,
            grid_setting2=grid2,
            metrics=metrics,
        )

    # -- the oracle --------------------------------------------------------

    def _validate(self, result) -> Optional[str]:
        """Simulator + audit verdict; None when the design is clean."""
        if not self.policy.validate:
            return None
        from repro.certify import audit
        from repro.core.simulation import SimulationError, simulate

        try:
            simulate(result)
        except SimulationError as error:
            return f"simulator rejected the design: {error}"
        verdict = audit(result)
        if not verdict.ok:
            return f"audit rejected the design: {verdict.summary()}"
        result.audit = verdict
        return None


def compare_lifetimes(
    graph,
    schedule,
    config,
    model: Optional[FailureModel] = None,
    policy: Optional[RemapPolicy] = None,
    max_runs: int = 1000,
) -> LifetimeComparison:
    """Adaptive vs. static repetitions-to-failure, same seeded failures.

    Both runs use an independent :class:`FailureProcess` constructed
    from the same model, so the chips see identical wear-out times and
    identical random draws for identical designs — the comparison
    isolates exactly the paper's question: what does the ability to
    re-synthesize buy?
    """
    engine = AdaptiveLifetimeEngine(
        graph, schedule, config, model=model, policy=policy
    )
    adaptive = engine.run(max_runs=max_runs, adaptive=True)
    static = engine.run(max_runs=max_runs, adaptive=False)
    return LifetimeComparison(adaptive=adaptive, static=static)
