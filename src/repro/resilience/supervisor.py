"""Supervised worker execution: heartbeats, watchdog kills, retries.

DESIGN.md §14.  The in-process deadline machinery (PR 4/8) bounds every
*cooperative* solver loop — the simplex pivot poll, the rip-up loop —
but it cannot reach a worker that stops cooperating: a runaway native
``scipy.milp`` call that never returns to Python, a worker OOM-killed
by the kernel, a segfault in a BLAS kernel.  Those failure modes need
*process-level* supervision, and that is what this module provides:

* the work runs in a **watched subprocess** whose only contract is a
  heartbeat: a worker-side thread ticks a shared monotonic timestamp
  every ``heartbeat_interval`` seconds while the real work runs;
* a parent-side **watchdog thread** hard-kills (SIGKILL) any worker
  that misses heartbeats for ``heartbeat_timeout`` seconds, exceeds a
  soft ``rss_limit_mb`` resident-set budget, or overruns the attempt's
  :class:`~repro.resilience.Deadline` past a small grace;
* lost attempts are **retried** with capped exponential backoff whose
  jitter is deterministic (:class:`~repro.resilience.backoff.BackoffPolicy`,
  seeded by ``crc32(site) ^ seed`` exactly like the fault injector), up
  to ``max_attempts``; each retry engages the ``worker_retry`` ladder
  rung, and exhaustion raises a structured
  :class:`~repro.errors.WorkerCrashError` carrying the full forensic
  record (attempt outcomes, last signal/exit code, backoff history);
* a worker that *answers* with an exception (a deterministic
  :class:`SynthesisError`, say) is **not** retried — the exception
  re-raises in the parent, because re-running deterministic failures
  only burns budget.

Chaos sites (parent-side, like every other site — the worker's own
injector is disarmed): ``worker.crash`` SIGKILLs the freshly started
worker, ``worker.hang`` makes the watchdog treat the heartbeat as
stale, ``worker.oom`` makes it treat the RSS as over budget.  All
three drive the *real* kill/retry/backoff machinery, so the chaos
suite proves the genuine recovery path.

Telemetry (``supervisor.*``): attempts, retries, kills by reason,
backoff seconds, worker wall time — surfaced by
``python -m repro profile`` next to the resilience section.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import WorkerCrashError
from repro.obs import TELEMETRY
from repro.resilience.backoff import BackoffPolicy
from repro.resilience.deadline import Deadline
from repro.resilience.faults import FAULTS
from repro.resilience.report import DegradationLadder

#: Seconds past an expired deadline before the watchdog kills a worker.
#: The worker's own solver limit (baked into its payload) normally ends
#: the attempt first; the grace only covers scheduling jitter.
_DEADLINE_GRACE = 0.5

#: How often the watchdog samples heartbeat/RSS/deadline.
_POLL_INTERVAL = 0.02


def _read_rss_mb(pid: int) -> Optional[float]:
    """Resident set size of ``pid`` in MiB via /proc (None off Linux)."""
    try:
        with open(f"/proc/{pid}/statm", "rb") as handle:
            pages = int(handle.read().split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return pages * os.sysconf("SC_PAGE_SIZE") / (1024.0 * 1024.0)


def _supervised_entry(conn, beat, interval: float, fn, payload) -> None:
    """Worker-process entry point: heartbeat thread + the real work.

    Must stay a picklable top-level function (spawn compatibility).
    The heartbeat uses :func:`time.monotonic`, which is system-wide on
    every platform we run on, so the parent can age it directly.
    """
    stop = threading.Event()

    def tick() -> None:
        while not stop.is_set():
            beat.value = time.monotonic()
            stop.wait(interval)

    ticker = threading.Thread(
        target=tick, name="supervisor-heartbeat", daemon=True
    )
    ticker.start()
    try:
        result = fn(payload)
        message: Tuple[str, object] = ("ok", result)
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        try:
            import pickle

            pickle.dumps(exc)
            message = ("err", exc)
        except Exception:
            message = ("err", RuntimeError(f"worker failed: {exc!r}"))
    finally:
        stop.set()
    try:
        conn.send(message)
    finally:
        conn.close()


@dataclass(frozen=True)
class AttemptRecord:
    """Forensics of one supervised attempt."""

    attempt: int
    outcome: str  # ok | error | crash | hang | oom | deadline
    wall: float
    exit_code: Optional[int] = None
    signal: Optional[int] = None
    backoff: float = 0.0  # seconds slept *after* this attempt


class _Watchdog(threading.Thread):
    """Kills one worker on stale heartbeat, RSS overrun or deadline.

    The kill reason lands in :attr:`reason`; the main thread (blocked
    on the result pipe) reads it after noticing the death.  Forced
    flags (``force_hang`` / ``force_oom``) implement the chaos sites
    without weakening the production checks.
    """

    def __init__(
        self,
        process,
        beat,
        *,
        heartbeat_timeout: float,
        rss_limit_mb: Optional[float],
        deadline: Optional[Deadline],
        force_hang: bool = False,
        force_oom: bool = False,
    ) -> None:
        super().__init__(name="supervisor-watchdog", daemon=True)
        self._process = process
        self._beat = beat
        self._heartbeat_timeout = heartbeat_timeout
        self._rss_limit_mb = rss_limit_mb
        self._deadline = deadline
        self._force_hang = force_hang
        self._force_oom = force_oom
        self._halt = threading.Event()
        self._expired_since: Optional[float] = None
        self.reason: Optional[str] = None
        self.rss_peak_mb: float = 0.0

    def stop(self) -> None:
        self._halt.set()

    def _kill(self, reason: str) -> None:
        self.reason = reason
        try:
            self._process.kill()
        except (OSError, AttributeError):  # already gone
            pass

    def run(self) -> None:
        while not self._halt.wait(_POLL_INTERVAL):
            if not self._process.is_alive():
                return
            now = time.monotonic()
            if self._force_hang or (
                now - self._beat.value > self._heartbeat_timeout
            ):
                self._kill("hang")
                return
            if self._rss_limit_mb is not None or self._force_oom:
                rss = _read_rss_mb(self._process.pid)
                if rss is not None:
                    self.rss_peak_mb = max(self.rss_peak_mb, rss)
                over = (
                    rss is not None
                    and self._rss_limit_mb is not None
                    and rss > self._rss_limit_mb
                )
                if self._force_oom or over:
                    self._kill("oom")
                    return
            if self._deadline is not None and self._deadline.expired:
                # Give the worker's own solver limit a grace window to
                # return a degraded-but-valid answer before the hammer.
                if self._expired_since is None:
                    self._expired_since = now
                elif now - self._expired_since > _DEADLINE_GRACE:
                    self._kill("deadline")
                    return


@dataclass
class WorkerSupervisor:
    """Run picklable jobs in watched subprocesses with bounded retries.

    One supervisor instance is shared by a whole synthesis run (the
    mappers hold a reference); it is stateless between :meth:`run`
    calls except for the telemetry and ladder it reports into.
    ``site`` keys both the backoff jitter stream and the ladder detail
    strings, so two runs with the same seed sleep identical schedules.
    """

    max_attempts: int = 3
    heartbeat_interval: float = 0.05
    #: a worker silent for this long is declared hung and killed.  The
    #: default is deliberately generous: its job is catching *infinite*
    #: native hangs, not racing slow solves (deadlines do that).
    heartbeat_timeout: float = 30.0
    rss_limit_mb: Optional[float] = None
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    seed: int = 0
    site: str = "supervisor"
    ladder: Optional[DegradationLadder] = None
    start_method: Optional[str] = None  # None = fork where available

    def _context(self):
        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix fallback
            return multiprocessing.get_context()

    # -- one attempt ------------------------------------------------------

    def _attempt(
        self,
        fn: Callable,
        payload,
        deadline: Optional[Deadline],
        chaos_crash: bool,
        chaos_hang: bool,
        chaos_oom: bool,
    ) -> Tuple[str, object, Optional[int], Optional[int]]:
        """Returns ``(outcome, result_or_exc, exit_code, signal)``."""
        ctx = self._context()
        recv, send = ctx.Pipe(duplex=False)
        beat = ctx.Value("d", time.monotonic())
        process = ctx.Process(
            target=_supervised_entry,
            args=(send, beat, self.heartbeat_interval, fn, payload),
            name="repro-supervised-worker",
            daemon=True,
        )
        process.start()
        send.close()
        if chaos_crash:
            # A real SIGKILL mid-flight — the genuine crash-recovery
            # path, not a simulation of it.
            process.kill()
        watchdog = _Watchdog(
            process,
            beat,
            heartbeat_timeout=self.heartbeat_timeout,
            rss_limit_mb=self.rss_limit_mb,
            deadline=deadline,
            force_hang=chaos_hang,
            force_oom=chaos_oom,
        )
        watchdog.start()
        try:
            message = None
            while True:
                if recv.poll(_POLL_INTERVAL):
                    try:
                        message = recv.recv()
                    except (EOFError, OSError):
                        message = None  # died mid-send: treat as crash
                    break
                if not process.is_alive():
                    # Dead without a message *unless* one raced in
                    # between the poll and the death check.
                    if recv.poll(0):
                        try:
                            message = recv.recv()
                        except (EOFError, OSError):
                            message = None
                    break
        finally:
            watchdog.stop()
            process.join(timeout=5.0)
            watchdog.join(timeout=5.0)
            recv.close()
        exit_code = process.exitcode
        signal = -exit_code if exit_code is not None and exit_code < 0 else None
        if message is not None:
            kind, value = message
            return ("ok" if kind == "ok" else "error"), value, exit_code, signal
        reason = watchdog.reason or "crash"
        return reason, None, exit_code, signal

    # -- the retry loop ---------------------------------------------------

    def run(
        self,
        fn: Callable,
        payload,
        *,
        deadline: Optional[Deadline] = None,
        label: str = "worker",
    ):
        """Execute ``fn(payload)`` in a watched subprocess, retrying.

        Returns the worker's result.  Raises the worker's own exception
        unchanged when the worker *answered* with one (deterministic
        failures are not retried), :class:`WorkerCrashError` when every
        attempt was lost to a crash/hang/oom/deadline kill.
        """
        rng = self.backoff.rng(self.site, self.seed)
        records: List[AttemptRecord] = []
        backoff_history: List[float] = []
        last_exit: Optional[int] = None
        last_signal: Optional[int] = None
        for attempt in range(self.max_attempts):
            chaos_crash = FAULTS.armed and FAULTS.should_fire("worker.crash")
            chaos_hang = FAULTS.armed and FAULTS.should_fire("worker.hang")
            chaos_oom = FAULTS.armed and FAULTS.should_fire("worker.oom")
            started = time.monotonic()
            outcome, value, exit_code, signal = self._attempt(
                fn, payload, deadline, chaos_crash, chaos_hang, chaos_oom
            )
            wall = time.monotonic() - started
            if TELEMETRY.enabled:
                TELEMETRY.count("supervisor.attempts")
                TELEMETRY.add_time("supervisor.worker_wall", wall)
                if outcome not in ("ok", "error"):
                    TELEMETRY.count(f"supervisor.kills_{outcome}")
            if outcome == "ok":
                records.append(AttemptRecord(attempt, "ok", wall))
                return value
            if outcome == "error":
                # The worker answered with an exception: deterministic,
                # so retrying would only repeat it.  Re-raise as-is.
                raise value
            last_exit, last_signal = exit_code, signal
            delay = 0.0
            retriable = (
                attempt + 1 < self.max_attempts
                and outcome != "deadline"
                and (deadline is None or not deadline.expired)
            )
            if retriable:
                delay = self.backoff.delay(attempt, rng)
                if deadline is not None:
                    delay = min(delay, deadline.remaining())
                backoff_history.append(delay)
                if self.ladder is not None:
                    self.ladder.engage(
                        "worker",
                        DegradationLadder.WORKER_RETRY,
                        f"{label}: attempt {attempt + 1} lost to "
                        f"{outcome} (exit={exit_code}, signal={signal}); "
                        f"retrying after {delay:.3f}s",
                    )
                if TELEMETRY.enabled:
                    TELEMETRY.count("supervisor.retries")
                    TELEMETRY.add_time("supervisor.backoff", delay)
                if delay > 0:
                    time.sleep(delay)
            records.append(
                AttemptRecord(attempt, outcome, wall, exit_code, signal, delay)
            )
            if not retriable:
                break
        outcomes = tuple(r.outcome for r in records)
        raise WorkerCrashError(
            f"supervised {label} lost after {len(records)} attempt(s)",
            attempts=len(records),
            exit_code=last_exit,
            signal=last_signal,
            outcomes=outcomes,
            backoff_history=tuple(backoff_history),
        )


def run_supervised(
    fn: Callable,
    payload,
    *,
    deadline: Optional[Deadline] = None,
    label: str = "worker",
    **kwargs,
):
    """One-shot convenience wrapper around :class:`WorkerSupervisor`."""
    return WorkerSupervisor(**kwargs).run(
        fn, payload, deadline=deadline, label=label
    )
