"""Crash-safe checkpoint journal for certified mapping solutions.

DESIGN.md §14.  A large windowed synthesis is a sequence of expensive,
independent-given-their-spec window solves; when the process dies (power
loss, OOM kill, a ``kill -9`` from an impatient operator) every one of
those solves is lost.  The journal makes them durable:

* **append-only JSONL** — one record per line, written with a single
  ``write()`` + ``flush()`` + ``fsync()``, so a crash can only damage
  the *last* line (a torn write), never rewrite history;
* **per-record CRC** — every line carries a CRC32 over the canonical
  JSON of its body; a damaged record (truncated tail, flipped bytes,
  garbage) fails the CRC, is skipped with a
  :class:`~repro.errors.CorruptJournalWarning`, and costs exactly one
  re-solve — loading never raises;
* **content-hash keys** — records are keyed by a SHA-256 over the
  *canonicalized* :class:`~repro.core.mapping_model.MappingSpec` (grid,
  tasks, committed devices, base load, every constraint switch, and the
  :class:`~repro.architecture.health.ChipHealth` mask), so a resumed
  run replays a record only for the byte-identical subproblem — a
  different seed window, a remap after new faults, or an edited assay
  simply misses;
* **certify-on-replay** — a record is never trusted.  Replay rebuilds
  the window's ILP, lifts the stored placements to a full variable
  vector (:func:`~repro.core.mapping_model.complete_solution`), checks
  every model row, and runs the exact-arithmetic MILP replay of
  :func:`repro.certify.certify_assignment`; anything that does not
  certify — including a journal tampered with CRC recomputed — is
  rejected and re-solved.  Certification happens here, at replay, so
  the write path stays one hashed JSON line per solve.

Each successful replay engages the ``checkpoint_resume`` ladder rung;
hits/misses/rejections land in ``checkpoint.*`` telemetry and the
``python -m repro profile`` report.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from typing import Dict, Optional

from repro.architecture.device import Placement
from repro.architecture.device_types import device_type
from repro.errors import ArchitectureError, CheckpointError, CorruptJournalWarning
from repro.geometry import Point
from repro.obs import TELEMETRY
from repro.resilience.faults import FAULTS
from repro.resilience.report import DegradationLadder

# Canonicalization is shared with the serve result cache (DESIGN.md §15):
# both key content by the same canonical JSON + SHA-256 scheme, and the
# regression test in tests/serve/test_canonical.py pins spec_key
# byte-identical so existing journals keep resuming.
from repro.serve.canonical import canonical_json as _canonical
from repro.serve.canonical import spec_key

_JOURNAL_NAME = "journal.jsonl"


def _serialize_result(result) -> dict:
    return {
        "placements": {
            name: [
                p.device_type.width,
                p.device_type.height,
                p.corner.x,
                p.corner.y,
            ]
            for name, p in result.placements.items()
        },
        "objective": result.objective,
        "mapper": result.mapper,
        "used_overlaps": [list(p) for p in result.used_overlaps],
        "optimal": bool(result.optimal),
    }


def _deserialize_placements(payload: dict) -> Dict[str, Placement]:
    placements: Dict[str, Placement] = {}
    for name, (width, height, x, y) in payload["placements"].items():
        placements[name] = Placement(device_type(width, height), Point(x, y))
    return placements


class CheckpointJournal:
    """Append-only, CRC-guarded journal of certified window solutions.

    One instance serves a whole synthesis run (and any number of
    resumed runs pointed at the same directory).  Thread-compatible in
    the way the mappers need: lookups/appends happen only from the
    parent process's mapping loop, never from pool workers.
    """

    def __init__(
        self,
        directory: str,
        *,
        ladder: Optional[DegradationLadder] = None,
    ) -> None:
        self.directory = directory
        self.ladder = ladder
        self.hits = 0
        self.misses = 0
        self.rejected = 0
        self.appended = 0
        self.corrupt = 0
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint directory {directory!r}: {exc}"
            ) from exc
        self.path = os.path.join(directory, _JOURNAL_NAME)
        self._records: Dict[str, dict] = {}
        self._load()
        try:
            self._file = open(self.path, "a", encoding="utf-8")
        except OSError as exc:
            raise CheckpointError(
                f"cannot open checkpoint journal {self.path!r}: {exc}"
            ) from exc

    # -- loading ----------------------------------------------------------

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        try:
            with open(self.path, "r", encoding="utf-8", errors="replace") as f:
                lines = f.readlines()
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint journal {self.path!r}: {exc}"
            ) from exc
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            reason = None
            try:
                record = json.loads(line)
                key = record["key"]
                payload = record["payload"]
                crc = record["crc"]
            except (ValueError, KeyError, TypeError) as exc:
                reason = f"unparseable ({exc.__class__.__name__})"
            else:
                expected = zlib.crc32(
                    _canonical({"key": key, "payload": payload}).encode()
                )
                if crc != expected:
                    reason = f"CRC mismatch (got {crc!r}, want {expected})"
            if reason is not None:
                self.corrupt += 1
                if TELEMETRY.enabled:
                    TELEMETRY.count("checkpoint.corrupt_records")
                warnings.warn(
                    f"checkpoint journal {self.path}: skipping record "
                    f"{index + 1}: {reason}",
                    CorruptJournalWarning,
                    stacklevel=2,
                )
                continue
            # Last write wins: a re-solved window supersedes its
            # earlier record.
            self._records[key] = payload

    def __len__(self) -> int:
        return len(self._records)

    # -- replay -----------------------------------------------------------

    def replay(self, spec):
        """A certified :class:`MappingResult` for ``spec``, or None.

        Returns None on a journal miss *and* on any record that fails
        certification — the caller solves normally in both cases, so a
        damaged or tampered journal can cost time but never correctness.
        """
        key = spec_key(spec)
        payload = self._records.get(key)
        if payload is None:
            self.misses += 1
            if TELEMETRY.enabled:
                TELEMETRY.count("checkpoint.misses")
            return None
        result = self._certify(spec, payload)
        if result is None:
            self.rejected += 1
            if TELEMETRY.enabled:
                TELEMETRY.count("checkpoint.rejected")
            warnings.warn(
                f"checkpoint journal {self.path}: record {key[:12]}… "
                "failed certification; re-solving",
                CorruptJournalWarning,
                stacklevel=2,
            )
            return None
        self.hits += 1
        if TELEMETRY.enabled:
            TELEMETRY.count("checkpoint.hits")
        if self.ladder is not None:
            self.ladder.engage(
                "mapping",
                DegradationLadder.CHECKPOINT_RESUME,
                f"replayed {len(result.placements)} placement(s) "
                f"from {key[:12]}…",
            )
        return result

    def _certify(self, spec, payload):
        """Rebuild the model and certify the stored placements."""
        # Deferred imports: mapping_model/certify import repro.core back.
        from repro.certify import certify_assignment
        from repro.core.mapping_model import (
            MappingModelBuilder,
            complete_solution,
        )
        from repro.core.mappers import MappingResult

        try:
            placements = _deserialize_placements(payload)
            objective = int(payload["objective"])
            used_overlaps = [
                (a, b) for a, b in payload.get("used_overlaps", [])
            ]
            optimal = bool(payload.get("optimal", False))
        except (ArchitectureError, KeyError, TypeError, ValueError):
            return None
        built = MappingModelBuilder(spec).build()
        values = complete_solution(built, placements)
        if values is None:
            return None
        if built.model.check_solution(values):
            return None
        cert = certify_assignment(built.model, values)
        if cert.status != "certified":
            return None
        replayed = int(round(values[built.w]))
        if replayed != objective:
            return None  # payload lies about its own objective
        return MappingResult(
            placements=placements,
            objective=objective,
            mapper=payload.get("mapper", "checkpoint"),
            used_overlaps=used_overlaps,
            wall_time=0.0,
            # Optimality is the original solver's claim; feasibility and
            # the objective were just re-proven, and the content hash
            # pins the claim to this exact subproblem.
            optimal=optimal,
            stats={"checkpoint_replayed": 1.0},
        )

    # -- recording --------------------------------------------------------

    def record(self, spec, result) -> None:
        """Append one solved window; fsync before returning.

        Failures to *write* degrade silently into telemetry (the run
        must not die because a disk filled); the chaos site
        ``checkpoint.corrupt`` flips a byte of the serialized line to
        exercise the load-time CRC path.
        """
        key = spec_key(spec)
        payload = _serialize_result(result)
        body = {"key": key, "payload": payload}
        line = _canonical(
            {"key": key, "payload": payload, "crc": zlib.crc32(_canonical(body).encode())}
        )
        if FAULTS.armed and FAULTS.should_fire("checkpoint.corrupt"):
            middle = len(line) // 2
            line = line[:middle] + ("#" if line[middle] != "#" else "@") + line[middle + 1:]
        try:
            self._file.write(line + "\n")
            self._file.flush()
            os.fsync(self._file.fileno())
        except (OSError, ValueError):
            if TELEMETRY.enabled:
                TELEMETRY.count("checkpoint.write_failures")
            return
        self._records[key] = payload
        self.appended += 1
        if TELEMETRY.enabled:
            TELEMETRY.count("checkpoint.appends")

    # -- lifecycle --------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Counters for profile reports / ``SynthesisResult`` stats."""
        return {
            "records": float(len(self._records)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "rejected": float(self.rejected),
            "appended": float(self.appended),
            "corrupt": float(self.corrupt),
        }

    def close(self) -> None:
        try:
            self._file.close()
        except (OSError, ValueError):  # pragma: no cover - best effort
            pass

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
