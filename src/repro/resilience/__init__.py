"""Resilience: deadline budgets, degradation ladder, fault injection.

This package makes failure handling a first-class, tested subsystem
(DESIGN.md §9).  Three pieces:

* :class:`Deadline` — a monotonic whole-run time budget, split across
  stages and propagated into every solver ``time_limit`` and loop that
  can stall;
* :class:`DegradationLadder` / :class:`ResilienceReport` — bounded
  retry-with-relaxation rungs replacing the old all-or-nothing
  fallbacks, with every step recorded and surfaced through
  ``resilience.*`` telemetry, ``SynthesisResult.resilience`` and the
  ``python -m repro profile`` report;
* :class:`FaultInjector` (singleton :data:`FAULTS`) — seeded,
  site-keyed failure injection powering the chaos test suite.
"""

from repro.resilience.deadline import Deadline
from repro.resilience.faults import FAULTS, FaultInjector, FaultSpec
from repro.resilience.report import (
    DegradationLadder,
    ResilienceEvent,
    ResilienceReport,
)

__all__ = [
    "Deadline",
    "DegradationLadder",
    "FAULTS",
    "FaultInjector",
    "FaultSpec",
    "ResilienceEvent",
    "ResilienceReport",
]
