"""Resilience: deadline budgets, degradation ladder, fault injection.

This package makes failure handling a first-class, tested subsystem
(DESIGN.md §9).  Three pieces:

* :class:`Deadline` — a monotonic whole-run time budget, split across
  stages and propagated into every solver ``time_limit`` and loop that
  can stall;
* :class:`DegradationLadder` / :class:`ResilienceReport` — bounded
  retry-with-relaxation rungs replacing the old all-or-nothing
  fallbacks, with every step recorded and surfaced through
  ``resilience.*`` telemetry, ``SynthesisResult.resilience`` and the
  ``python -m repro profile`` report;
* :class:`FaultInjector` (singleton :data:`FAULTS`) — seeded,
  site-keyed failure injection powering the chaos test suite;
* :class:`WorkerSupervisor` / :class:`BackoffPolicy` — supervised
  subprocess execution (heartbeat watchdog, hard kills, seeded
  exponential-backoff retries) for crash-safe solves (DESIGN.md §14);
* :class:`CheckpointJournal` — the append-only, CRC-guarded journal of
  certified window solutions behind ``synth --checkpoint`` resume;
* :mod:`repro.resilience.remap` — the fault-adaptive lifetime engine
  (DESIGN.md §12): repeats an assay under a stochastic + wear-driven
  failure model and re-synthesizes around dead hardware.  Its names are
  re-exported lazily (module ``__getattr__``) because the engine
  imports the synthesis pipeline, which itself imports this package.
"""

from repro.resilience.backoff import BackoffPolicy
from repro.resilience.checkpoint import CheckpointJournal, spec_key
from repro.resilience.deadline import Deadline
from repro.resilience.faults import FAULTS, FaultInjector, FaultSpec
from repro.resilience.report import (
    DegradationLadder,
    ResilienceEvent,
    ResilienceReport,
)
from repro.resilience.supervisor import WorkerSupervisor, run_supervised

_REMAP_EXPORTS = (
    "AdaptiveLifetimeEngine",
    "FailureModel",
    "FailureProcess",
    "LifetimeComparison",
    "LifetimeEvent",
    "LifetimeReport",
    "RemapPolicy",
    "compare_lifetimes",
)

__all__ = [
    "BackoffPolicy",
    "CheckpointJournal",
    "Deadline",
    "DegradationLadder",
    "FAULTS",
    "FaultInjector",
    "FaultSpec",
    "ResilienceEvent",
    "ResilienceReport",
    "WorkerSupervisor",
    "run_supervised",
    "spec_key",
    *_REMAP_EXPORTS,
]


def __getattr__(name: str):
    if name in _REMAP_EXPORTS:
        from repro.resilience import remap

        return getattr(remap, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
