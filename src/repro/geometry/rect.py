"""Axis-aligned rectangles of grid cells.

A :class:`Rect` models a block of valves — a device footprint in the
valve-centered architecture.  Its half-open boundary coordinates play the
role of the paper's ``b_le, b_ri, b_up, b_do`` variables (Figure 6a): two
rectangles overlap exactly when none of the four disjunction terms of
eq. (3) holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import GeometryError
from repro.geometry.point import Point


@dataclass(frozen=True, order=True)
class Rect:
    """A ``width`` x ``height`` block of grid cells anchored at ``(x, y)``.

    ``(x, y)`` is the left-bottom corner, following the selection-variable
    convention of Section 3.2.  Cells covered are
    ``{x .. x+width-1} x {y .. y+height-1}``; the *exclusive* boundaries
    ``right = x + width`` and ``top = y + height`` are the paper's
    ``b_ri`` / ``b_up``.
    """

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise GeometryError(
                f"rectangle dimensions must be positive, got "
                f"{self.width}x{self.height}"
            )

    # -- boundary coordinates (paper's b variables) --------------------

    @property
    def left(self) -> int:
        """``b_le`` — inclusive left boundary."""
        return self.x

    @property
    def right(self) -> int:
        """``b_ri`` — exclusive right boundary."""
        return self.x + self.width

    @property
    def bottom(self) -> int:
        """``b_do`` — inclusive bottom boundary."""
        return self.y

    @property
    def top(self) -> int:
        """``b_up`` — exclusive top boundary."""
        return self.y + self.height

    @property
    def area(self) -> int:
        """Number of grid cells covered."""
        return self.width * self.height

    @property
    def corner(self) -> Point:
        """The left-bottom anchor as a :class:`Point`."""
        return Point(self.x, self.y)

    # -- predicates -----------------------------------------------------

    def contains(self, p: Point) -> bool:
        """Whether grid cell ``p`` lies inside this rectangle."""
        return self.x <= p.x < self.right and self.y <= p.y < self.top

    def overlaps(self, other: "Rect") -> bool:
        """Whether the two rectangles share at least one grid cell.

        This is the negation of the paper's non-overlap disjunction
        (eq. 3): overlap iff NOT (ri1 <= le2 or le1 >= ri2 or
        up1 <= do2 or do1 >= up2).
        """
        return not (
            self.right <= other.left
            or self.left >= other.right
            or self.top <= other.bottom
            or self.bottom >= other.top
        )

    def overlap_area(self, other: "Rect") -> int:
        """Number of grid cells shared by the two rectangles."""
        dx = min(self.right, other.right) - max(self.left, other.left)
        dy = min(self.top, other.top) - max(self.bottom, other.bottom)
        if dx <= 0 or dy <= 0:
            return 0
        return dx * dy

    def intersection(self, other: "Rect") -> "Rect | None":
        """The shared rectangle, or ``None`` when disjoint."""
        left = max(self.left, other.left)
        right = min(self.right, other.right)
        bottom = max(self.bottom, other.bottom)
        top = min(self.top, other.top)
        if right <= left or top <= bottom:
            return None
        return Rect(left, bottom, right - left, top - bottom)

    def gap_distance(self, other: "Rect") -> int:
        """Chebyshev-style gap between two rectangles.

        0 when they touch or overlap; otherwise the largest of the
        horizontal and vertical separations.  This is the quantity the
        routing-convenient constraints (eqs. 13–16) bound by ``d``: the
        constraints hold exactly when ``gap_distance < d`` on both axes.
        """
        dx = max(other.left - self.right, self.left - other.right, 0)
        dy = max(other.bottom - self.top, self.bottom - other.top, 0)
        return max(dx, dy)

    def within_distance(self, other: "Rect", d: int) -> bool:
        """The paper's routing-convenient predicate (eqs. 13–16).

        ``b_i1,ri > b_i2,le - d`` and the three symmetric conditions,
        i.e. the boundary gap on each axis is strictly below ``d``.
        """
        return (
            self.right > other.left - d
            and self.left < other.right + d
            and self.top > other.bottom - d
            and self.bottom < other.top + d
        )

    # -- iteration ------------------------------------------------------

    def cells(self) -> Iterator[Point]:
        """Yield every grid cell covered, row-major from the bottom."""
        for yy in range(self.y, self.top):
            for xx in range(self.x, self.right):
                yield Point(xx, yy)

    def perimeter_cells(self) -> List[Point]:
        """The ring of boundary cells, counter-clockwise from the anchor.

        For a dynamic mixer this ring is the circulation-flow channel, so
        its cells are exactly the *pump valves* of the device
        (Section 3.1; a 2x4 mixer has 8 pump valves, a 3x3 has 8).
        The counter-clockwise order is the peristaltic actuation order.
        """
        if self.width == 1:
            return [Point(self.x, yy) for yy in range(self.y, self.top)]
        if self.height == 1:
            return [Point(xx, self.y) for xx in range(self.x, self.right)]
        ring: List[Point] = []
        # bottom edge, left -> right
        for xx in range(self.x, self.right):
            ring.append(Point(xx, self.y))
        # right edge, upward (excluding corners already visited)
        for yy in range(self.y + 1, self.top):
            ring.append(Point(self.right - 1, yy))
        # top edge, right -> left
        for xx in range(self.right - 2, self.x - 1, -1):
            ring.append(Point(xx, self.top - 1))
        # left edge, downward
        for yy in range(self.top - 2, self.y, -1):
            ring.append(Point(self.x, yy))
        return ring

    def interior_cells(self) -> Iterator[Point]:
        """Yield the cells strictly inside the perimeter ring."""
        for yy in range(self.y + 1, self.top - 1):
            for xx in range(self.x + 1, self.right - 1):
                yield Point(xx, yy)

    def wall_cells(self) -> List[Point]:
        """The ring of cells one step *outside* this rectangle.

        These are the positions of the *wall valves* that form the
        device boundary (Section 2.2, Figure 4).  Cells may lie off-grid;
        callers clip against the :class:`~repro.geometry.grid.GridSpec`
        (the physical chip edge acts as a wall for free).
        """
        return self.expanded(1).perimeter_cells()

    def expanded(self, margin: int) -> "Rect":
        """This rectangle grown by ``margin`` cells on every side."""
        return Rect(
            self.x - margin,
            self.y - margin,
            self.width + 2 * margin,
            self.height + 2 * margin,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Rect({self.x},{self.y} {self.width}x{self.height})"
