"""Bounds and iteration helpers for the virtual valve grid."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class GridSpec:
    """Dimensions of a ``width`` x ``height`` virtual valve grid.

    A ``GridSpec`` is pure geometry — it knows which coordinates exist,
    not what occupies them (that is
    :class:`repro.architecture.valve_grid.VirtualValveGrid`).
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise GeometryError(
                f"grid dimensions must be positive, got "
                f"{self.width}x{self.height}"
            )

    @property
    def bounds(self) -> Rect:
        """The full grid as a rectangle anchored at the origin."""
        return Rect(0, 0, self.width, self.height)

    @property
    def cell_count(self) -> int:
        """Total number of virtual valve positions."""
        return self.width * self.height

    def in_bounds(self, p: Point) -> bool:
        """Whether ``p`` is a valid valve coordinate."""
        return 0 <= p.x < self.width and 0 <= p.y < self.height

    def contains_rect(self, r: Rect) -> bool:
        """Whether the rectangle lies entirely on the grid."""
        return r.x >= 0 and r.y >= 0 and r.right <= self.width and r.top <= self.height

    def clip(self, points: Iterator[Point] | List[Point]) -> List[Point]:
        """Keep only the points that lie on the grid.

        Used for wall valves: a device placed against the chip edge needs
        no wall valves there, the chip boundary is a physical wall.
        """
        return [p for p in points if self.in_bounds(p)]

    def cells(self) -> Iterator[Point]:
        """Yield every valve coordinate, row-major from the bottom-left."""
        for y in range(self.height):
            for x in range(self.width):
                yield Point(x, y)

    def neighbors4(self, p: Point) -> List[Point]:
        """In-bounds axis-aligned neighbors of ``p``."""
        return [q for q in p.neighbors4() if self.in_bounds(q)]

    def placements(self, width: int, height: int) -> Iterator[Rect]:
        """Yield every on-grid placement of a ``width`` x ``height`` block.

        This enumerates the candidate locations behind the selection
        variables ``s[x,y,k,i]`` of Section 3.2 for one device type.
        """
        for y in range(self.height - height + 1):
            for x in range(self.width - width + 1):
                yield Rect(x, y, width, height)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"GridSpec({self.width}x{self.height})"
