"""Integer-grid geometry substrate.

The valve-centered architecture of the paper (Section 3.1) arranges
virtual valves on a regular integer grid.  This package provides the
small geometric vocabulary everything else is written in:

* :class:`~repro.geometry.point.Point` — an integer grid coordinate;
* :class:`~repro.geometry.rect.Rect` — an axis-aligned rectangle of grid
  cells, used for device footprints and the paper's boundary variables
  ``b_le, b_ri, b_up, b_do`` (eq. 3);
* :class:`~repro.geometry.grid.GridSpec` — the bounds of the virtual
  valve grid plus neighborhood iteration.
"""

from repro.geometry.point import Point, manhattan_distance, chebyshev_distance
from repro.geometry.rect import Rect
from repro.geometry.grid import GridSpec

__all__ = [
    "Point",
    "Rect",
    "GridSpec",
    "manhattan_distance",
    "chebyshev_distance",
]
