"""Integer grid points and distances."""

from __future__ import annotations

from typing import Iterator, NamedTuple


class Point(NamedTuple):
    """An integer coordinate on the virtual valve grid.

    ``x`` grows to the right, ``y`` grows upward, matching the coordinate
    system of Figure 5(a) in the paper.  Being a :class:`NamedTuple`,
    points are hashable, comparable and unpack as ``(x, y)``.
    """

    x: int
    y: int

    def translated(self, dx: int, dy: int) -> "Point":
        """Return this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def neighbors4(self) -> Iterator["Point"]:
        """Yield the four axis-aligned neighbors (may be off-grid).

        Flow channels on a flow-based biochip run horizontally and
        vertically, so routing uses 4-connectivity.
        """
        yield Point(self.x + 1, self.y)
        yield Point(self.x - 1, self.y)
        yield Point(self.x, self.y + 1)
        yield Point(self.x, self.y - 1)

    def neighbors8(self) -> Iterator["Point"]:
        """Yield the eight surrounding points (may be off-grid)."""
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                if dx == 0 and dy == 0:
                    continue
                yield Point(self.x + dx, self.y + dy)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x},{self.y})"


def manhattan_distance(a: Point, b: Point) -> int:
    """L1 distance between two grid points."""
    return abs(a.x - b.x) + abs(a.y - b.y)


def chebyshev_distance(a: Point, b: Point) -> int:
    """L-infinity distance between two grid points."""
    return max(abs(a.x - b.x), abs(a.y - b.y))
