"""Independent LP/MILP certificates in exact rational arithmetic.

The checkers here never reuse solver internals: they take a claimed
answer plus the *original* problem data and re-verify the claim with
:class:`fractions.Fraction` arithmetic (``Fraction(float)`` is exact,
so the checker itself introduces zero rounding error — every tolerance
below exists only to absorb the *solver's* float error, never the
checker's).

Certificate math (DESIGN.md §10):

* **OPTIMAL** — primal feasibility is replayed row by row; dual
  feasibility and weak duality are checked from the returned row
  multipliers ``y``: with reduced costs ``d = c - y A`` the dual
  objective is ``g = y b + sum_j d_j * (lb_j if d_j > 0 else ub_j)``,
  and ``g <= c x`` always (weak duality), so ``|c x - g|`` small proves
  optimality.  Near-zero reduced costs are dropped into an explicit
  allowance instead of being multiplied by a bound.
* **INFEASIBLE** — a Farkas ray ``y`` (``y <= 0`` on the ``<=`` rows)
  aggregates the rows into ``q = y A``; if ``y b`` exceeds the maximum
  of ``q x`` over the variable box, no feasible point can exist.
* **MILP** — the incumbent is replayed against every original
  :class:`~repro.ilp.constraint.Constraint` (not the matrix export, so
  a ``to_arrays`` bug cannot blind both the solver and the checker),
  and the reported objective / best bound / gap are cross-checked.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.certify.report import Violation
from repro.ilp.solution import SolveStatus
from repro.ilp.tolerances import CERT_EPS, GAP_EPS, MILP_GAP_RTOL

_ZERO = Fraction(0)


@dataclass
class Certificate:
    """Outcome of one independent certificate verification.

    ``status`` is ``"certified"`` (every runnable check passed),
    ``"failed"`` (at least one violation), or ``"skipped"`` (nothing
    could be verified — e.g. an INFEASIBLE verdict with no ray
    attached).  ``checks`` lists what actually ran.
    """

    kind: str
    status: str = "certified"
    checks: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status != "failed"

    def ran(self, check: str) -> None:
        if check not in self.checks:
            self.checks.append(check)

    def fail(
        self,
        kind: str,
        subject: str,
        detail: str,
        measured: Optional[float] = None,
        expected: Optional[float] = None,
    ) -> None:
        self.status = "failed"
        self.violations.append(Violation(kind, subject, detail, measured, expected))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "status": self.status,
            "checks": list(self.checks),
            "violations": [v.as_dict() for v in self.violations],
            "details": dict(self.details),
        }


def _frac(value: float) -> Fraction:
    """Exact rational of a finite float (callers gate infinities)."""
    return Fraction(float(value))


def _finite(value: float) -> bool:
    return math.isfinite(value)


# ---------------------------------------------------------------------------
# LP certificates
# ---------------------------------------------------------------------------


def certify_lp(
    result,
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    bounds: Sequence[Tuple[float, float]],
    eps: Fraction = CERT_EPS,
) -> Certificate:
    """Verify an :class:`~repro.ilp.simplex.LpResult` against the data
    that produced it.

    OPTIMAL verdicts get a primal-feasibility replay plus (when the
    solve attached duals) a dual-feasibility / weak-duality proof;
    INFEASIBLE verdicts get a Farkas-ray check.  Other statuses are
    unverifiable here and return a ``skipped`` certificate.
    """
    n = len(c)
    a_ub = np.asarray(a_ub, dtype=float).reshape(-1, n) if np.size(a_ub) else np.zeros((0, n))
    a_eq = np.asarray(a_eq, dtype=float).reshape(-1, n) if np.size(a_eq) else np.zeros((0, n))
    b_ub = np.asarray(b_ub, dtype=float).ravel()
    b_eq = np.asarray(b_eq, dtype=float).ravel()
    if result.status is SolveStatus.OPTIMAL:
        return _certify_optimal(result, c, a_ub, b_ub, a_eq, b_eq, bounds, eps)
    if result.status is SolveStatus.INFEASIBLE:
        return _certify_infeasible(result, c, a_ub, b_ub, a_eq, b_eq, bounds, eps)
    cert = Certificate(kind="lp-other", status="skipped")
    cert.details["reason"] = f"status {result.status.value} carries no certificate"
    return cert


def _certify_optimal(
    result,
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    bounds: Sequence[Tuple[float, float]],
    eps: Fraction,
) -> Certificate:
    cert = Certificate(kind="lp-optimal")
    x = [_frac(v) for v in result.x]
    cF = [_frac(v) for v in c]

    # Primal feasibility, exact row replay with a relative slack that
    # scales with the row's own magnitude (cancellation-aware).
    cert.ran("primal-feasibility")
    for label, mat, rhs, is_eq in (
        ("ub", a_ub, b_ub, False),
        ("eq", a_eq, b_eq, True),
    ):
        for i in range(mat.shape[0]):
            lhs = _ZERO
            mass = Fraction(1)
            for j in range(len(x)):
                if mat[i, j] != 0.0:
                    term = _frac(mat[i, j]) * x[j]
                    lhs += term
                    mass += abs(term)
            b_i = _frac(rhs[i])
            tol = eps * (mass + abs(b_i))
            resid = abs(lhs - b_i) if is_eq else lhs - b_i
            if resid > tol:
                cert.fail(
                    "lp-primal-infeasible",
                    f"{label}-row {i}",
                    "replayed row violates its right-hand side",
                    measured=float(lhs),
                    expected=float(b_i),
                )

    cert.ran("bounds")
    for j, (lo, hi) in enumerate(bounds):
        scale = eps * (1 + abs(x[j]))
        if _finite(lo) and x[j] < _frac(lo) - scale:
            cert.fail(
                "lp-bound-violated", f"x[{j}]",
                "value below its lower bound",
                measured=float(x[j]), expected=lo,
            )
        if _finite(hi) and x[j] > _frac(hi) + scale:
            cert.fail(
                "lp-bound-violated", f"x[{j}]",
                "value above its upper bound",
                measured=float(x[j]), expected=hi,
            )

    cert.ran("objective-report")
    cx = sum((cF[j] * x[j] for j in range(len(x))), _ZERO)
    reported = _frac(result.objective)
    if abs(cx - reported) > eps * (1 + abs(cx)):
        cert.fail(
            "lp-objective-mismatch", "objective",
            "reported optimum differs from the replayed c @ x",
            measured=float(reported), expected=float(cx),
        )

    if result.duals is None:
        cert.details["dual"] = "no multipliers attached; primal-only certificate"
        return cert

    y = [_frac(v) for v in result.duals]
    m_ub = a_ub.shape[0]

    # Dual sign: inequality-row multipliers must price <= rows, i.e.
    # y_i <= 0 in this minimize convention (tiny positives are noise).
    cert.ran("dual-sign")
    for i in range(m_ub):
        if y[i] > eps:
            cert.fail(
                "lp-dual-sign", f"ub-row {i}",
                "inequality multiplier has the wrong sign",
                measured=float(y[i]), expected=0.0,
            )
        elif y[i] > _ZERO:
            y[i] = _ZERO

    # Reduced costs d = c - y A, then the weak-duality bound
    # g = y b + sum_j d_j * (lb if d_j > 0 else ub) <= c x.  A near-zero
    # reduced cost contributes an explicit allowance (|d_j| times the
    # variable's reach) instead of poisoning g through a huge bound.
    cert.ran("dual-feasibility")
    cert.ran("weak-duality-gap")
    g = _ZERO
    for i in range(m_ub):
        g += y[i] * _frac(b_ub[i])
    for k in range(a_eq.shape[0]):
        g += y[m_ub + k] * _frac(b_eq[k])
    allowance = _ZERO
    for j in range(len(x)):
        d = cF[j]
        for i in range(m_ub):
            if a_ub[i, j] != 0.0:
                d -= y[i] * _frac(a_ub[i, j])
        for k in range(a_eq.shape[0]):
            if a_eq[k, j] != 0.0:
                d -= y[m_ub + k] * _frac(a_eq[k, j])
        lo, hi = bounds[j]
        reach = max(
            abs(_frac(lo)) if _finite(lo) else _ZERO,
            abs(_frac(hi)) if _finite(hi) else _ZERO,
            abs(x[j]),
            Fraction(1),
        )
        if abs(d) <= eps:
            allowance += abs(d) * reach
        elif d > _ZERO:
            if not _finite(lo):
                cert.fail(
                    "lp-dual-infeasible", f"x[{j}]",
                    "positive reduced cost on a variable with no lower bound",
                    measured=float(d),
                )
                return cert
            g += d * _frac(lo)
        else:
            if not _finite(hi):
                cert.fail(
                    "lp-dual-infeasible", f"x[{j}]",
                    "negative reduced cost on a variable with no upper bound",
                    measured=float(d),
                )
                return cert
            g += d * _frac(hi)
    gap = abs(cx - g)
    cert.details["duality_gap"] = float(gap)
    if gap > eps * (1 + abs(cx)) + allowance:
        cert.fail(
            "lp-duality-gap", "objective",
            "primal and dual objectives disagree beyond tolerance",
            measured=float(g), expected=float(cx),
        )
    return cert


def _certify_infeasible(
    result,
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    bounds: Sequence[Tuple[float, float]],
    eps: Fraction,
) -> Certificate:
    cert = Certificate(kind="lp-infeasible")

    # An empty box needs no ray.
    cert.ran("trivial-bounds")
    for j, (lo, hi) in enumerate(bounds):
        if lo > hi:
            cert.details["reason"] = f"empty bound box on x[{j}]"
            return cert

    if result.farkas is None:
        cert.status = "skipped"
        cert.details["reason"] = "no Farkas ray attached to the INFEASIBLE verdict"
        return cert

    y = [_frac(v) for v in result.farkas]
    m_ub = a_ub.shape[0]

    cert.ran("farkas-sign")
    for i in range(m_ub):
        if y[i] > eps:
            cert.fail(
                "lp-farkas-sign", f"ub-row {i}",
                "Farkas multiplier on a <= row must be nonpositive",
                measured=float(y[i]), expected=0.0,
            )
            return cert
        if y[i] > _ZERO:
            y[i] = _ZERO
    bound_ray: List[Tuple[int, Fraction]] = []
    for j, mu_f in result.farkas_bounds or []:
        mu = _frac(mu_f)
        if mu > eps:
            cert.fail(
                "lp-farkas-sign", f"bound-row x[{j}]",
                "Farkas multiplier on an upper-bound row must be nonpositive",
                measured=float(mu), expected=0.0,
            )
            return cert
        bound_ray.append((j, min(mu, _ZERO)))

    # Aggregate: with y <= 0 on <= rows, any feasible x satisfies
    # q x >= y b where q = y A.  If max_{box} q x < y b, no x exists.
    cert.ran("farkas-margin")
    yb = _ZERO
    for i in range(m_ub):
        yb += y[i] * _frac(b_ub[i])
    for k in range(a_eq.shape[0]):
        yb += y[m_ub + k] * _frac(b_eq[k])
    q = [_ZERO] * len(bounds)
    for j in range(len(bounds)):
        acc = _ZERO
        for i in range(m_ub):
            if a_ub[i, j] != 0.0:
                acc += y[i] * _frac(a_ub[i, j])
        for k in range(a_eq.shape[0]):
            if a_eq[k, j] != 0.0:
                acc += y[m_ub + k] * _frac(a_eq[k, j])
        q[j] = acc
    for j, mu in bound_ray:
        q[j] += mu
        yb += mu * _frac(bounds[j][1])

    upper = _ZERO
    allowance = _ZERO
    for j, (lo, hi) in enumerate(bounds):
        reach = max(
            abs(_frac(lo)) if _finite(lo) else _ZERO,
            abs(_frac(hi)) if _finite(hi) else _ZERO,
            Fraction(1),
        )
        if abs(q[j]) <= eps:
            allowance += abs(q[j]) * reach
            continue
        if q[j] > _ZERO:
            if not _finite(hi):
                cert.fail(
                    "lp-farkas-unbounded", f"x[{j}]",
                    "ray needs an upper bound the variable does not have",
                    measured=float(q[j]),
                )
                return cert
            upper += q[j] * _frac(hi)
        else:
            if not _finite(lo):
                cert.fail(
                    "lp-farkas-unbounded", f"x[{j}]",
                    "ray needs a lower bound the variable does not have",
                    measured=float(q[j]),
                )
                return cert
            upper += q[j] * _frac(lo)
    margin = yb - upper
    cert.details["farkas_margin"] = float(margin)
    if margin <= allowance:
        cert.fail(
            "lp-farkas-weak", "ray",
            "Farkas ray does not separate the right-hand side from the box",
            measured=float(margin), expected=float(allowance),
        )
    return cert


# ---------------------------------------------------------------------------
# MILP certificates
# ---------------------------------------------------------------------------


def certify_solution(model, solution, eps: Fraction = CERT_EPS) -> Certificate:
    """Replay a MILP :class:`~repro.ilp.solution.Solution` against the
    original :class:`~repro.ilp.model.Model`, exactly.

    Works at the :class:`Constraint` level (never through
    ``Model.to_arrays``), so a matrix-export bug cannot blind both the
    solver and this check.  Also audits the reported objective and —
    when the backend published one — the claimed best bound / gap.
    """
    from repro.ilp.model import ObjectiveSense

    cert = Certificate(kind="milp")
    if not solution.status.has_solution:
        cert.status = "skipped"
        cert.details["reason"] = f"status {solution.status.value} has no incumbent"
        return cert

    values = {var: _frac(solution.values.get(var, 0.0)) for var in model.variables}

    cert.ran("milp-bounds")
    cert.ran("milp-integrality")
    for var in model.variables:
        val = values[var]
        scale = eps * (1 + abs(val))
        if _finite(var.lb) and val < _frac(var.lb) - scale:
            cert.fail(
                "milp-bound", var.name, "value below its lower bound",
                measured=float(val), expected=var.lb,
            )
        if _finite(var.ub) and val > _frac(var.ub) + scale:
            cert.fail(
                "milp-bound", var.name, "value above its upper bound",
                measured=float(val), expected=var.ub,
            )
        if var.vtype.is_integral:
            nearest = Fraction(round(val))
            if abs(val - nearest) > eps:
                cert.fail(
                    "milp-integrality", var.name,
                    "integer variable carries a fractional value",
                    measured=float(val), expected=float(nearest),
                )

    cert.ran("milp-constraints")
    from repro.ilp.constraint import Sense

    for idx, con in enumerate(model.constraints):
        lhs = _ZERO
        mass = Fraction(1)
        for var, coef in con.expr.terms.items():
            term = _frac(coef) * values[var]
            lhs += term
            mass += abs(term)
        rhs = _frac(con.rhs)
        tol = eps * (mass + abs(rhs))
        if con.sense is Sense.LE:
            bad = lhs - rhs > tol
        elif con.sense is Sense.GE:
            bad = rhs - lhs > tol
        else:
            bad = abs(lhs - rhs) > tol
        if bad:
            cert.fail(
                "milp-constraint", con.name or f"constraint {idx}",
                "replayed incumbent violates this row",
                measured=float(lhs), expected=float(rhs),
            )

    cert.ran("milp-objective")
    obj = _frac(model.objective.constant)
    for var, coef in model.objective.terms.items():
        obj += _frac(coef) * values[var]
    reported = _frac(solution.objective)
    if abs(obj - reported) > eps * (1 + abs(obj)):
        cert.fail(
            "milp-objective", "objective",
            "reported objective differs from the replayed incumbent value",
            measured=float(reported), expected=float(obj),
        )

    # Gap audit: the claimed best bound must not beat the (replayed)
    # incumbent, and an OPTIMAL verdict must actually close the gap.
    obj_min = obj if model.objective_sense is ObjectiveSense.MINIMIZE else -obj
    best_bound = solution.stats.get(
        "best_bound", solution.stats.get("mip_dual_bound")
    )
    if best_bound is not None and _finite(best_bound):
        cert.ran("milp-gap")
        slack = MILP_GAP_RTOL * (1.0 + abs(float(obj_min)))
        if float(best_bound) > float(obj_min) + slack:
            cert.fail(
                "milp-bound-invalid", "best_bound",
                "claimed lower bound exceeds the replayed incumbent",
                measured=float(best_bound), expected=float(obj_min),
            )
        if solution.status is SolveStatus.OPTIMAL:
            gap_cap = solution.stats.get(
                "absolute_gap", solution.stats.get("mip_gap", GAP_EPS)
            )
            if float(obj_min) - float(best_bound) > float(gap_cap) + slack:
                cert.fail(
                    "milp-gap-open", "best_bound",
                    "OPTIMAL claimed but the bound leaves a gap",
                    measured=float(obj_min) - float(best_bound),
                    expected=float(gap_cap),
                )
    return cert


def certify_assignment(model, values, eps: Fraction = CERT_EPS) -> "Certificate":
    """Replay a bare variable assignment as a FEASIBLE incumbent.

    The heuristic lanes of the anytime mapper produce assignments
    (``{Var: value}``), not :class:`~repro.ilp.solution.Solution`
    objects; this wraps one — objective evaluated from the model itself,
    never trusted from the producer — and runs the exact MILP replay of
    :func:`certify_solution` on it.  Used to certify every heuristic
    incumbent before it is offered to the branch & bound search
    (DESIGN.md §13).
    """
    from repro.ilp.solution import Solution

    shadow = Solution(
        SolveStatus.FEASIBLE,
        objective=model.objective.evaluate(values),
        values=dict(values),
        backend="assignment-replay",
    )
    return certify_solution(model, shadow, eps=eps)
