"""Independent certification layer (DESIGN.md §10).

Everything in this package re-derives claims from original inputs and
never reuses solver or pipeline internals:

* :func:`certify_lp` — exact-arithmetic LP optimality / infeasibility
  certificates (duality gap, Farkas rays);
* :func:`certify_solution` — MILP incumbent replay against the
  original :class:`~repro.ilp.model.Model`;
* :func:`certify_assignment` — the same replay for a bare variable
  assignment (heuristic incumbents of the anytime race);
* :func:`certify_cut` — Chvátal–Gomory / cover-cut validity replay for
  the root cutting planes of :mod:`repro.ilp.branch_bound`;
* :func:`audit` — whole-design audits of a
  :class:`~repro.core.result.SynthesisResult`.
"""

from repro.certify.audit import audit
from repro.certify.cuts import certify_cut
from repro.certify.lp import (
    Certificate,
    certify_assignment,
    certify_lp,
    certify_solution,
)
from repro.certify.report import AuditReport, Violation

__all__ = [
    "AuditReport",
    "Certificate",
    "Violation",
    "audit",
    "certify_assignment",
    "certify_cut",
    "certify_lp",
    "certify_solution",
]
