"""CLI entry point for certified runs: ``python -m repro audit <case>``.

Synthesizes one benchmark case with the certification layer enabled,
prints the design-audit report, optionally writes it as JSON (the CI
``certify`` job uploads these as artifacts), and returns a process exit
code: 0 when the audit is clean, 1 when any violation survived.

The synthesis itself always runs with ``certify="audit"`` so that a
failing design still produces a full structured report; strictness is
applied *here*, at the process boundary, instead of by raising halfway
through.
"""

from __future__ import annotations

import json
import time
from typing import Optional

from repro.errors import SolverError


def run_audit(
    case_name: str,
    policy_index: int = 1,
    certify: str = "strict",
    json_path: Optional[str] = None,
    time_budget: Optional[float] = None,
) -> int:
    """Synthesize ``case_name`` and audit the result.

    ``certify`` is ``"audit"`` (report only, always exit 0 unless the
    pipeline itself crashes) or ``"strict"`` (exit 1 on violations).
    """
    from repro.assays import get_case, schedule_for
    from repro.core.synthesis import ReliabilitySynthesizer, SynthesisConfig

    if certify not in ("audit", "strict"):
        raise SolverError(
            f"unknown certify level {certify!r}; expected audit/strict"
        )
    case = get_case(case_name)
    graph = case.graph()
    policy = case.policies(policy_index)[policy_index - 1]
    schedule = schedule_for(case, policy)

    start = time.perf_counter()
    result = ReliabilitySynthesizer(
        SynthesisConfig(
            grid=case.grid,
            certify="audit",
            time_budget=time_budget,
        )
    ).synthesize(graph, schedule)
    wall = time.perf_counter() - start

    report = result.audit
    assert report is not None  # certify="audit" always attaches one
    print(report)
    print(f"synthesized + audited {case.name} in {wall:.2f} s")
    if json_path:
        payload = report.as_dict()
        payload["case"] = case.name
        payload["policy"] = policy_index
        payload["wall_seconds"] = wall
        payload["mode"] = certify
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
        print(f"audit report written to {json_path}")
    if certify == "strict" and not report.ok:
        return 1
    return 0
