"""Independent design audits of a :class:`SynthesisResult`.

The auditor re-derives every physical claim of a finished synthesis
from first principles — the schedule, the sequencing graph and the raw
placements — and compares against what the pipeline recorded.  It never
reuses pipeline intermediates: device intervals come from
:func:`repro.core.tasks.build_tasks`, wear numbers from a fresh
:class:`~repro.core.actuation.ActuationAccountant` replay, pump loads
from both an incremental :class:`~repro.core.mappers.LoadLedger` and a
naive dict recompute.  Every failed invariant becomes a structured
:class:`~repro.certify.report.Violation` (see DESIGN.md §10 for the
invariant list).

The ``certify.audit`` fault-injection site tampers with a *copy* of the
result before checking — the chaos suite uses it to prove the auditor
actually catches corrupted designs (mutation-testing the checker).
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.certify.report import AuditReport
from repro.geometry import Point
from repro.geometry.point import manhattan_distance
from repro.architecture.device import DeviceKind, DynamicDevice
from repro.core.actuation import AccountingPolicy, ActuationAccountant
from repro.core.lifetime import DEFAULT_WEAR_BUDGET
from repro.core.mappers import LoadLedger
from repro.core.result import SynthesisResult
from repro.core.tasks import build_tasks
from repro.obs import TELEMETRY
from repro.resilience.faults import FAULTS


def audit(result: SynthesisResult) -> AuditReport:
    """Audit a synthesis result; returns a structured report.

    Checks: device placement legality (bounds, intervals, volumes,
    pairwise non-overlap outside the parent/child-storage permission),
    storage containment, routing-path validity and contamination,
    actuation-ledger consistency (stored grids == a fresh replay),
    incremental-vs-recomputed load-ledger agreement, and the lifetime
    claim.  Never raises on a bad design — every finding is a
    :class:`Violation` in the report.
    """
    if FAULTS.armed and FAULTS.should_fire("certify.audit"):
        # Chaos site: hand the checker a corrupted copy and let the
        # tests assert that it objects with structured violations.
        result = _tamper(result)
    report = AuditReport(subject=result.graph.name)
    started = time.perf_counter()
    _check_devices(result, report)
    _check_storage(result, report)
    _check_routes(result, report)
    _check_actuation(result, report)
    _check_ledger(result, report)
    _check_lifetime(result, report)
    _check_health(result, report)
    if TELEMETRY.enabled:
        TELEMETRY.count("certify.audits")
        if report.violations:
            TELEMETRY.count("certify.audit_violations", len(report.violations))
        TELEMETRY.add_time("certify.audit", time.perf_counter() - started)
    return report


def _tamper(result: SynthesisResult) -> SynthesisResult:
    """Corrupt a copy of the result (fault-injection payload).

    Shifts the first device one cell right and understates the mapping
    objective — two independent lies for the auditor to catch.
    """
    devices = dict(result.devices)
    name = sorted(devices)[0]
    dev = devices[name]
    corner = dev.placement.corner
    # Shift toward whichever side has room so the lie stays on-grid and
    # corrupts the actuation ledgers rather than just the bounds check.
    dx = 1 if dev.rect.right < result.chip.spec.width else -1
    placement = replace(dev.placement, corner=Point(corner.x + dx, corner.y))
    devices[name] = replace(dev, placement=placement)
    metrics = replace(result.metrics, mapping_objective=1)
    return replace(result, devices=devices, metrics=metrics)


# ---------------------------------------------------------------------------
# devices
# ---------------------------------------------------------------------------


def _check_devices(result: SynthesisResult, report: AuditReport) -> None:
    report.ran("devices")
    grid = result.chip.spec
    graph = result.graph
    tasks = {t.name: t for t in build_tasks(graph, result.schedule)}

    for name, task in tasks.items():
        device = result.devices.get(name)
        if device is None:
            report.add(
                "device-missing", name,
                "scheduled mixing operation has no mapped device",
            )
            continue
        rect = device.rect
        if (
            rect.left < 0
            or rect.bottom < 0
            or rect.right > grid.width
            or rect.top > grid.height
        ):
            report.add(
                "device-out-of-bounds", name,
                f"placement {device.placement} leaves the "
                f"{grid.width}x{grid.height} grid",
            )
        if (device.start, device.mix_start, device.end) != (
            task.start, task.mix_start, task.end,
        ):
            report.add(
                "interval-mismatch", name,
                "device lifetime disagrees with the schedule "
                f"(device=({device.start},{device.mix_start},{device.end}) "
                f"schedule=({task.start},{task.mix_start},{task.end}))",
            )
        if device.volume != task.volume:
            report.add(
                "device-volume-mismatch", name,
                "mapped device type does not realize the operation volume",
                measured=device.volume, expected=task.volume,
            )

    devices: List[DynamicDevice] = sorted(
        result.devices.values(), key=lambda d: d.operation
    )
    parents: Dict[str, Set[str]] = {
        name: {p.name for p in graph.mix_parents(name)} for name in tasks
    }
    for i, d1 in enumerate(devices):
        for d2 in devices[i + 1:]:
            if not d1.overlaps_in_time(d2):
                continue
            overlap = d1.rect.overlap_area(d2.rect)
            if overlap == 0:
                continue
            # Legal only as the Section-3.3 permission: a child storage
            # under its still-active parent device, i.e. the parent must
            # dissolve before the child starts mixing.
            legal = (
                d2.operation in parents.get(d1.operation, set())
                and d2.end <= d1.mix_start
            ) or (
                d1.operation in parents.get(d2.operation, set())
                and d1.end <= d2.mix_start
            )
            if not legal:
                report.add(
                    "device-overlap",
                    f"{d1.operation}+{d2.operation}",
                    f"devices overlap on {overlap} cells while both alive, "
                    "outside the parent/child-storage permission",
                    measured=overlap, expected=0,
                )


# ---------------------------------------------------------------------------
# storage
# ---------------------------------------------------------------------------


def _check_storage(result: SynthesisResult, report: AuditReport) -> None:
    report.ran("storage")
    placements = {
        name: dev.placement for name, dev in result.devices.items()
    }
    for parent, child in sorted(
        result.storage_plan.overlap_violations(placements)
    ):
        report.add(
            "storage-capacity", f"{parent}->{child}",
            "parent device overlaps cells the child storage needs for "
            "products",
        )
    for info in result.storage_plan.storages():
        for at, _, _ in info.arrivals:
            if info.stored_volume(at) > info.capacity:
                report.add(
                    "storage-overflow", info.operation,
                    f"stored products exceed capacity at t={at}",
                    measured=info.stored_volume(at), expected=info.capacity,
                )
                break


# ---------------------------------------------------------------------------
# routes
# ---------------------------------------------------------------------------


def _endpoint_cells(result: SynthesisResult, name: str, is_port: bool):
    if is_port:
        return [result.chip.port(name).position]
    device = result.devices.get(name)
    if device is None:
        return None
    return list(device.placement.port_cells())


def _check_routes(result: SynthesisResult, report: AuditReport) -> None:
    report.ran("routes")
    grid = result.chip.spec
    for route in result.routes:
        label = route.event.label
        cells = route.cells
        if not cells:
            report.add("route-invalid", label, "path has no cells")
            continue
        off = [c for c in cells if not grid.in_bounds(c)]
        if off:
            report.add(
                "route-invalid", label,
                f"path leaves the grid at {off[0]}",
            )
            continue
        broken = next(
            (
                (a, b)
                for a, b in zip(cells, cells[1:])
                if manhattan_distance(a, b) != 1
            ),
            None,
        )
        if broken is not None:
            report.add(
                "route-invalid", label,
                f"path is not 4-connected between {broken[0]} and {broken[1]}",
            )
            continue
        try:
            sources = _endpoint_cells(result, route.event.source,
                                      route.event.source_is_port)
            targets = _endpoint_cells(result, route.event.target,
                                      route.event.target_is_port)
        except KeyError:
            sources = targets = None
        if sources is None or targets is None:
            report.add(
                "route-invalid", label,
                "endpoint names no known port or mapped device",
            )
            continue
        if cells[0] not in set(sources):
            report.add(
                "route-invalid", label,
                f"path starts at {cells[0]}, not at a source endpoint cell",
            )
        if cells[-1] not in set(targets):
            report.add(
                "route-invalid", label,
                f"path ends at {cells[-1]}, not at a target endpoint cell",
            )
        _check_route_containment(
            result, report, route, set(sources) | set(targets)
        )


def _check_route_containment(
    result: SynthesisResult,
    report: AuditReport,
    route,
    endpoint_ok: Set[Point],
) -> None:
    """Contamination rules: a path may cross an alive device only as an
    endpoint cell or through a storage, and per-storage pass-through
    cells must fit the free space (mirrors the router's own
    ``_overfull_storage``, independently re-derived)."""
    t = route.time
    event = route.event
    usage: Dict[str, int] = {}
    for device in result.devices.values():
        if not device.alive_at(t):
            continue
        if device.operation in (event.source, event.target):
            continue
        kind = device.kind_at(t)
        inside = [
            c for c in route.cells
            if device.rect.contains(c) and c not in endpoint_ok
        ]
        if not inside:
            continue
        if kind is not DeviceKind.STORAGE:
            report.add(
                "route-through-device", event.label,
                f"path crosses alive device {device.operation!r} at "
                f"{inside[0]} (t={t})",
            )
        else:
            usage[device.operation] = len(inside)
    for name, used in sorted(usage.items()):
        free = result.storage_plan.free_space(name, t)
        if used > free:
            report.add(
                "route-storage-overflow", event.label,
                f"path uses {used} cells of storage {name!r} with only "
                f"{free} free",
                measured=used, expected=free,
            )


# ---------------------------------------------------------------------------
# actuation + metrics
# ---------------------------------------------------------------------------


def _check_actuation(result: SynthesisResult, report: AuditReport) -> None:
    report.ran("actuation")
    replays = {}
    for setting in (1, 2):
        try:
            replays[setting] = ActuationAccountant(
                result.chip.spec, AccountingPolicy(setting=setting)
            ).run(result.devices.values(), result.routes)
        except Exception as error:  # noqa: BLE001 - audits must not raise
            report.add(
                "ledger-mismatch", f"setting{setting}",
                f"independent actuation replay is impossible: {error}",
            )
            return
        stored = result.grid_for(setting)
        for label, matrix_of in (
            ("total", lambda g: g.total_actuation_matrix()),
            ("peristaltic", lambda g: g.peristaltic_matrix()),
        ):
            got = matrix_of(stored)
            want = matrix_of(replays[setting])
            if not np.array_equal(got, want):
                diff = int(np.count_nonzero(got != want))
                report.add(
                    "ledger-mismatch", f"setting{setting}/{label}",
                    f"stored actuation grid disagrees with an independent "
                    f"replay on {diff} cells",
                    measured=diff, expected=0,
                )

    m = result.metrics
    for setting, claimed in ((1, m.setting1), (2, m.setting2)):
        replay = replays[setting]
        for field_name, got, want in (
            ("max_total", claimed.max_total, replay.max_total_actuations),
            (
                "max_peristaltic",
                claimed.max_peristaltic,
                replay.max_peristaltic_actuations,
            ),
        ):
            if got != want:
                report.add(
                    "metrics-mismatch", f"setting{setting}.{field_name}",
                    "reported wear metric disagrees with the replay",
                    measured=got, expected=want,
                )
    if m.used_valves != replays[1].used_valve_count:
        report.add(
            "metrics-mismatch", "used_valves",
            "reported valve count disagrees with the replay",
            measured=m.used_valves, expected=replays[1].used_valve_count,
        )
    if m.role_changing_valves != len(replays[1].role_changing_valves()):
        report.add(
            "metrics-mismatch", "role_changing_valves",
            "reported role-changing valve count disagrees with the replay",
            measured=m.role_changing_valves,
            expected=len(replays[1].role_changing_valves()),
        )
    # The ILP objective w bounds the realized setting-1 pump load from
    # above (FEASIBLE solves may leave slack, so only > is a lie).
    realized = replays[1].max_peristaltic_actuations
    if realized > m.mapping_objective:
        report.add(
            "objective-mismatch", "mapping_objective",
            "realized pump load exceeds the claimed mapping objective",
            measured=realized, expected=m.mapping_objective,
        )


# ---------------------------------------------------------------------------
# load ledger
# ---------------------------------------------------------------------------


def _check_ledger(result: SynthesisResult, report: AuditReport) -> None:
    report.ran("ledger")
    tasks = build_tasks(result.graph, result.schedule)
    pairs: List[Tuple] = [
        (t, result.devices[t.name].placement)
        for t in tasks
        if t.name in result.devices
    ]

    def reference() -> Dict[Point, int]:
        loads: Dict[Point, int] = {}
        for task, placement in pairs:
            if task.pump_rate == 0:
                continue
            for cell in placement.pump_cells():
                loads[cell] = loads.get(cell, 0) + task.pump_rate
        return loads

    ledger = LoadLedger({})
    for task, placement in pairs:
        ledger.add(task, placement)
    want = reference()
    if ledger.loads() != want:
        report.add(
            "ledger-drift", "build",
            "incrementally built load map differs from a full recompute",
        )
    peak = max(want.values(), default=0)
    if ledger.peak() != peak:
        report.add(
            "ledger-drift", "peak",
            "incremental peak differs from the recomputed maximum",
            measured=ledger.peak(), expected=peak,
        )
    # Adversarial churn: remove and re-add every placement; any
    # bookkeeping drift (stale zero entries, wrong buckets) surfaces as
    # a mismatch against the same reference.
    for task, placement in pairs:
        ledger.remove(task, placement)
        ledger.add(task, placement)
    if ledger.loads() != want or ledger.peak() != peak:
        report.add(
            "ledger-drift", "churn",
            "load map drifted after a remove/re-add cycle",
        )


# ---------------------------------------------------------------------------
# lifetime
# ---------------------------------------------------------------------------


def _check_lifetime(result: SynthesisResult, report: AuditReport) -> None:
    report.ran("lifetime")
    from repro.core.lifetime import synthesis_lifetime

    wear = result.metrics.setting1.max_total
    if wear <= 0:
        report.add(
            "lifetime-claim", "setting1",
            "claimed max wear is not positive; no lifetime can be derived",
            measured=wear,
        )
        return
    estimate = synthesis_lifetime(result, allow_dead=True)
    if estimate.is_dead_on_arrival:
        report.add(
            "lifetime-claim", "setting1",
            "design is dead on arrival: one run exceeds the wear budget",
            measured=wear, expected=DEFAULT_WEAR_BUDGET,
        )
        return
    expected_runs = DEFAULT_WEAR_BUDGET // wear
    if estimate.runs != expected_runs or estimate.wear_per_run != wear:
        report.add(
            "lifetime-claim", "setting1",
            "lifetime estimate is inconsistent with the claimed wear",
            measured=estimate.runs, expected=expected_runs,
        )


# ---------------------------------------------------------------------------
# health (dead hardware)
# ---------------------------------------------------------------------------


def _check_health(result: SynthesisResult, report: AuditReport) -> None:
    """No device footprint and no routed path may touch dead hardware.

    This is the oracle half of the fault-adaptive remapping contract
    (DESIGN.md §12): the chip carries its :class:`ChipHealth` mask, and
    a remapped design that still drives a dead valve or pumps fluid
    across a dead channel segment is invalid — a mapper or router bug,
    not a judgment call.
    """
    report.ran("health")
    health = result.chip.health
    if health.is_healthy:
        return
    for name, device in sorted(result.devices.items()):
        if health.blocks_rect(device.rect):
            dead = sorted(
                c for c in device.rect.cells() if health.is_cell_dead(c)
            )
            where = f"dead cell {dead[0]}" if dead else "a dead channel edge"
            report.add(
                "dead-valve-use", name,
                f"device footprint {device.rect} covers {where}",
                measured=len(dead) if dead else 1, expected=0,
            )
    for route in result.routes:
        if health.blocks_path(route.cells):
            report.add(
                "dead-route-use", route.event.label,
                "routed path enters a dead cell or crosses a dead channel "
                "edge",
            )
