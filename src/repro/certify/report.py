"""Structured audit results: violations, checks, and the report.

Every problem the certification layer finds is a :class:`Violation`
with a machine-readable ``kind`` — chaos tests assert on kinds, CI
uploads the JSON form, and the CLI prints the human form.  A generic
exception is never the audit outcome: the auditor's contract is that a
tampered design produces a *specific* violation record (see
``tests/certify/test_chaos_certify.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class Violation:
    """One independently verified problem with a solution or design.

    ``kind`` is a stable machine-readable slug (e.g. ``device-overlap``,
    ``ledger-mismatch``); ``subject`` names the offending object;
    ``detail`` is the human explanation.  ``measured``/``expected`` carry
    the two sides of a failed comparison when one exists.
    """

    kind: str
    subject: str
    detail: str
    measured: Optional[float] = None
    expected: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "subject": self.subject,
            "detail": self.detail,
        }
        if self.measured is not None:
            out["measured"] = self.measured
        if self.expected is not None:
            out["expected"] = self.expected
        return out

    def __str__(self) -> str:
        extra = ""
        if self.measured is not None or self.expected is not None:
            extra = f" (measured={self.measured}, expected={self.expected})"
        return f"[{self.kind}] {self.subject}: {self.detail}{extra}"


@dataclass
class AuditReport:
    """Outcome of one full design audit.

    ``checks`` lists every invariant class the auditor ran (so an empty
    ``violations`` list is distinguishable from "nothing was checked");
    ``violations`` holds the structured failures.  A report with no
    violations is *ok*.
    """

    subject: str
    checks: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def ran(self, check: str) -> None:
        if check not in self.checks:
            self.checks.append(check)

    def add(
        self,
        kind: str,
        subject: str,
        detail: str,
        measured: Optional[float] = None,
        expected: Optional[float] = None,
    ) -> None:
        self.violations.append(
            Violation(kind, subject, detail, measured, expected)
        )

    def kinds(self) -> List[str]:
        """Distinct violation kinds, in first-seen order."""
        seen: List[str] = []
        for v in self.violations:
            if v.kind not in seen:
                seen.append(v.kind)
        return seen

    def summary(self) -> str:
        if self.ok:
            return f"{len(self.checks)} checks, 0 violations"
        return (
            f"{len(self.checks)} checks, {len(self.violations)} violations "
            f"({', '.join(self.kinds())})"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "checks": list(self.checks),
            "violations": [v.as_dict() for v in self.violations],
        }

    def __str__(self) -> str:
        lines = [f"audit of {self.subject}: {self.summary()}"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)
