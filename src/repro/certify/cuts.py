"""Independent certification of cutting planes (DESIGN.md §11).

A cut appended by :mod:`repro.ilp.cuts` claims to be a *valid
inequality*: every mixed-integer point of the original arrays satisfies
it.  This module re-proves that claim in exact rational arithmetic from
the cut's derivation payload and the original data only — it never
imports the generator's internals, so a bug in the derivation cannot
certify itself.

* A **Gomory** cut ships its row multipliers ``λ`` and per-variable
  shift pattern.  The verifier re-runs the Chvátal–Gomory argument
  exactly: re-aggregate ``λ [A|I] x = λ b``, re-check every
  side-condition (sign of continuous multipliers, integrality of
  complement bounds, nonnegativity of dropped continuous terms),
  re-floor, substitute back, and finally check that the *stored float
  row* is dominated by the exact cut over the bound box —
  ``rhs_float >= g0 + Σ_j |row_float_j − g_j| · reach_j`` in exact
  arithmetic.
* A **cover** cut ships its source row and cover set.  The verifier
  recomputes the complemented knapsack and checks the cover property
  ``Σ_C a'_j > b'`` exactly, then that the stored row is exactly the
  mapped inequality ``Σ_C z_j <= |C| − 1``.

Under ``certify=strict`` the branch & bound drops any cut whose
certificate fails or is skipped, so the search never tightens the
relaxation on unproven grounds.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.certify.lp import Certificate
from repro.ilp.tolerances import CERT_EPS

_ZERO = Fraction(0)


def _frac(v: float) -> Fraction:
    return Fraction(float(v))


def certify_cut(
    cut,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    bounds: Sequence[Tuple[float, float]],
    integrality: np.ndarray,
) -> Certificate:
    """Verify that ``cut.row @ x <= cut.rhs`` holds for every
    mixed-integer point of the given arrays."""
    if cut.kind == "gomory":
        return _certify_gomory(cut, a_ub, b_ub, a_eq, b_eq, bounds, integrality)
    if cut.kind == "cover":
        return _certify_cover(cut, a_ub, b_ub, bounds, integrality)
    cert = Certificate(kind="cut", status="skipped")
    cert.details["reason"] = f"unknown cut kind {cut.kind!r}"
    return cert


def _certify_gomory(
    cut,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    a_eq: np.ndarray,
    b_eq: np.ndarray,
    bounds: Sequence[Tuple[float, float]],
    integrality: np.ndarray,
) -> Certificate:
    cert = Certificate(kind="cut-gomory")
    if cut.lam is None or cut.shifts is None:
        cert.status = "skipped"
        cert.details["reason"] = "no derivation payload attached"
        return cert
    n = len(bounds)
    m_ub = a_ub.shape[0]
    # Payload multipliers are exact rationals; Fraction(Fraction) is the
    # identity, so this accepts floats too without silent re-rounding.
    lam = [Fraction(v) for v in cut.lam]
    if len(lam) != m_ub + a_eq.shape[0]:
        cert.fail(
            "cut-shape", "lam", "multiplier vector does not match row count",
            measured=float(len(lam)), expected=float(m_ub + a_eq.shape[0]),
        )
        return cert

    # Side-condition: a <= row whose slack is not provably integral may
    # only enter the aggregate with a nonnegative multiplier (its
    # continuous slack term is dropped from the floored sum).
    cert.ran("gomory-slack-conditions")
    slack_integral = {}
    for i in range(m_ub):
        if lam[i] == _ZERO:
            continue
        cols = np.flatnonzero(a_ub[i])
        integral = (
            float(b_ub[i]).is_integer()
            and all(float(a_ub[i, j]).is_integer() for j in cols)
            and all(bool(integrality[j]) for j in cols)
        )
        slack_integral[i] = integral
        if not integral and lam[i] < _ZERO:
            cert.fail(
                "cut-slack-sign", f"ub-row {i}",
                "continuous slack aggregated with a negative multiplier",
                measured=float(lam[i]), expected=0.0,
            )
            return cert

    # Re-aggregate λ [A] x = λ b exactly.
    r: Dict[int, Fraction] = {}
    r0 = _ZERO
    for i in range(m_ub):
        if lam[i] == _ZERO:
            continue
        r0 += lam[i] * _frac(b_ub[i])
        for j in np.flatnonzero(a_ub[i]):
            r[int(j)] = r.get(int(j), _ZERO) + lam[i] * _frac(a_ub[i, j])
    for k in range(a_eq.shape[0]):
        li = lam[m_ub + k]
        if li == _ZERO:
            continue
        r0 += li * _frac(b_eq[k])
        for j in np.flatnonzero(a_eq[k]):
            r[int(j)] = r.get(int(j), _ZERO) + li * _frac(a_eq[k, j])

    # Shift according to the recorded pattern, checking each shift is
    # legitimate (finite bound; integer bound for integer variables).
    cert.ran("gomory-shift-conditions")
    q: Dict[int, Fraction] = {}
    q0 = r0
    for j, rj in r.items():
        if rj == _ZERO:
            continue
        s = int(cut.shifts[j])
        lo, hi = bounds[j]
        if s == 1:
            if not math.isfinite(hi):
                cert.fail(
                    "cut-shift", f"x[{j}]",
                    "complement shift without a finite upper bound",
                )
                return cert
            q[j] = -rj
            q0 -= rj * _frac(hi)
            if integrality[j] and _frac(hi).denominator != 1:
                cert.fail(
                    "cut-shift", f"x[{j}]",
                    "integer variable complemented on a fractional bound",
                    measured=float(hi),
                )
                return cert
        elif s == -1:
            if not math.isfinite(lo):
                cert.fail(
                    "cut-shift", f"x[{j}]",
                    "lower shift without a finite lower bound",
                )
                return cert
            q[j] = rj
            q0 -= rj * _frac(lo)
            if integrality[j] and _frac(lo).denominator != 1:
                cert.fail(
                    "cut-shift", f"x[{j}]",
                    "integer variable shifted on a fractional bound",
                    measured=float(lo),
                )
                return cert
        else:
            cert.fail(
                "cut-shift", f"x[{j}]",
                "aggregated variable carries no shift direction",
            )
            return cert
        if not integrality[j] and q[j] < _ZERO:
            cert.fail(
                "cut-drop", f"x[{j}]",
                "continuous term with negative shifted coefficient "
                "cannot be dropped from the floored sum",
                measured=float(q[j]), expected=0.0,
            )
            return cert

    # Floor and substitute back — the exact valid cut g·x <= g0.
    cert.ran("gomory-floor-replay")
    g: Dict[int, Fraction] = {}
    g0 = Fraction(math.floor(q0))
    for j, qj in q.items():
        if not integrality[j]:
            continue
        fj = Fraction(math.floor(qj))
        if int(cut.shifts[j]) == -1:
            g[j] = g.get(j, _ZERO) + fj
            g0 += fj * _frac(bounds[j][0])
        else:
            g[j] = g.get(j, _ZERO) - fj
            g0 -= fj * _frac(bounds[j][1])
    for i in range(m_ub):
        if lam[i] == _ZERO or not slack_integral.get(i, False):
            continue
        fi = Fraction(math.floor(lam[i]))
        if fi == _ZERO:
            continue
        g0 -= fi * _frac(b_ub[i])
        for j in np.flatnonzero(a_ub[i]):
            g[int(j)] = g.get(int(j), _ZERO) - fi * _frac(a_ub[i, j])

    # Domination: the stored float row must be implied by the exact cut
    # over the bound box.
    cert.ran("gomory-float-domination")
    slack = _ZERO
    touched = set(g) | set(np.flatnonzero(cut.row))
    for j in touched:
        diff = abs(_frac(cut.row[j]) - g.get(int(j), _ZERO))
        if diff == _ZERO:
            continue
        lo, hi = bounds[j]
        reach = max(abs(lo), abs(hi))
        if not math.isfinite(reach):
            cert.fail(
                "cut-domination", f"x[{j}]",
                "rounding error on an unbounded variable",
            )
            return cert
        slack += diff * _frac(reach)
    margin = _frac(cut.rhs) - (g0 + slack)
    cert.details["domination_margin"] = float(margin)
    if margin < -CERT_EPS:
        cert.fail(
            "cut-domination", "rhs",
            "stored right-hand side is tighter than the proven cut",
            measured=float(cut.rhs), expected=float(g0 + slack),
        )
    return cert


def _certify_cover(
    cut,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    bounds: Sequence[Tuple[float, float]],
    integrality: np.ndarray,
) -> Certificate:
    cert = Certificate(kind="cut-cover")
    if cut.source_row is None or cut.cover is None:
        cert.status = "skipped"
        cert.details["reason"] = "no derivation payload attached"
        return cert
    i = int(cut.source_row)
    if not (0 <= i < a_ub.shape[0]):
        cert.fail("cut-shape", "source_row", "source row out of range")
        return cert
    comp = set(cut.complemented or ())

    cert.ran("cover-binary-support")
    support = set(int(j) for j in np.flatnonzero(a_ub[i]))
    for j in cut.cover:
        if j not in support:
            cert.fail(
                "cut-cover", f"x[{j}]", "cover variable outside row support"
            )
            return cert
        lo, hi = bounds[j]
        if not integrality[j] or lo < 0.0 or hi > 1.0:
            cert.fail(
                "cut-cover", f"x[{j}]", "cover variable is not binary"
            )
            return cert

    # The cover property, exactly: complemented knapsack must overflow.
    cert.ran("cover-overflow")
    b_p = _frac(b_ub[i])
    for j in support:
        if _frac(a_ub[i, j]) < _ZERO:
            b_p -= _frac(a_ub[i, j])
    acc = _ZERO
    for j in cut.cover:
        aij = _frac(a_ub[i, j])
        if (j in comp) != (aij < _ZERO):
            cert.fail(
                "cut-cover", f"x[{j}]",
                "complement flag does not match the coefficient sign",
            )
            return cert
        acc += abs(aij)
    if acc <= b_p:
        cert.fail(
            "cut-cover", f"ub-row {i}",
            "claimed cover does not overflow the knapsack",
            measured=float(acc), expected=float(b_p),
        )
        return cert

    # The stored row must be exactly the mapped cover inequality.
    cert.ran("cover-row-replay")
    expect = np.zeros(len(bounds))
    for j in cut.cover:
        expect[j] = -1.0 if j in comp else 1.0
    rhs_expect = float(len(cut.cover) - 1 - len(comp))
    if not np.array_equal(expect, cut.row) or cut.rhs != rhs_expect:
        cert.fail(
            "cut-cover", "row",
            "stored row is not the cover inequality of the payload",
            measured=float(cut.rhs), expected=rhs_expect,
        )
    return cert
