"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so downstream users can catch one type.  Subsystems
define their own subclasses here (rather than in their own packages) to
avoid import cycles between substrate packages.

Failure-handling contract (see DESIGN.md §9 for the full ladder):

* A *recoverable* stage failure — a window ILP that times out or turns
  infeasible, a broken refinement process pool, a routing attempt that
  exhausts its rip-up budget — is **not** allowed to escape as an
  exception from ``ReliabilitySynthesizer.synthesize``.  The stage
  steps down its degradation ladder (shrink the window, go greedy,
  re-solve serially, relax routing-convenient), records the step in
  the run's ``ResilienceReport``, and continues.  A run that degraded
  emits :class:`DegradedResultWarning` exactly once.
* An *unrecoverable* failure — the assay cannot be placed on the grid
  even greedily, routing fails even with relaxed constraints and
  reserved corridors — raises :class:`SynthesisError` (or a subclass)
  once the ladder is exhausted.
* A *budget* failure raises :class:`TimeLimitError`: the configured
  ``time_budget`` ran out at a point where no degraded-but-valid
  result can be produced.  Callers treating latency as a hard bound
  should catch this one type; it deliberately does **not** derive from
  :class:`SynthesisError` so ladder code never confuses "out of time"
  with "infeasible".
* Library code may only swallow :class:`ReproError` (never a blanket
  ``Exception``), and must record what it swallowed — in telemetry, a
  report structure, or the experiment output.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every deliberate error raised by this library."""


class GeometryError(ReproError):
    """Invalid geometric construction (e.g. an empty rectangle)."""


class ModelError(ReproError):
    """Invalid MILP model construction (bad bounds, unknown variable...)."""


class SolverError(ReproError):
    """An MILP/LP solve failed in an unexpected way."""


class InfeasibleError(SolverError):
    """The model was proven infeasible."""

    def __init__(self, message: str = "model is infeasible") -> None:
        super().__init__(message)


class UnboundedError(SolverError):
    """The model was proven unbounded."""

    def __init__(self, message: str = "model is unbounded") -> None:
        super().__init__(message)


class AssayError(ReproError):
    """Invalid bioassay description (cycles, bad volumes, bad ratios...)."""


class SchedulingError(ReproError):
    """The scheduler could not produce a feasible schedule."""


class AssaySpecError(AssayError):
    """A text-format assay spec failed to parse or validate.

    Structured so a *server* can return it as a clean client error
    (DESIGN.md §15) instead of a stack trace: ``line`` and ``column``
    are 1-based positions when known, ``context`` is the offending
    source line.  Derives from :class:`AssayError` so every existing
    ``except AssayError`` keeps working.
    """

    def __init__(
        self,
        message: str,
        *,
        line: "int | None" = None,
        column: "int | None" = None,
        context: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.line = line
        self.column = column
        self.context = context

    def __str__(self) -> str:
        where = ""
        if self.line is not None:
            where = f"line {self.line}"
            if self.column is not None:
                where += f", column {self.column}"
            where += ": "
        text = f"{where}{self.message}"
        if self.context is not None:
            text += f"\n  >> {self.context}"
        return text

    def as_dict(self) -> dict:
        """JSON-friendly form for protocol error responses."""
        return {
            "error": self.message,
            "line": self.line,
            "column": self.column,
            "context": self.context,
        }


class ScheduleSpecError(AssaySpecError, SchedulingError):
    """A text-format schedule spec failed to parse or validate.

    Both an :class:`AssaySpecError` (the server returns one structured
    client-error shape for either input file) and a
    :class:`SchedulingError` (existing schedule-parsing callers keep
    their catch clauses).
    """


class ArchitectureError(ReproError):
    """Invalid chip architecture construction or valve operation."""


class PlacementError(ReproError):
    """A device placement is illegal (out of grid, overlap...)."""


class SynthesisError(ReproError):
    """Dynamic-device mapping / synthesis failed."""


class RoutingError(ReproError):
    """No routing path could be found for a required connection."""


class BindingError(ReproError):
    """Traditional-design binding failed (no mixer of a required size...)."""


class WorkerCrashError(SynthesisError):
    """A supervised or pooled worker process died instead of answering.

    Raised by :class:`repro.resilience.supervisor.WorkerSupervisor` when
    every watched attempt was lost to a crash, a missed heartbeat, an
    RSS-budget kill or a deadline kill, and recorded by the process-pool
    recovery path in :mod:`repro.core.mappers`.  Unlike the bare
    ``RuntimeError``/``OSError`` it replaces, it carries the forensic
    record the ladder and the tests need: how many attempts were made,
    how each one ended, and the backoff schedule walked between them.

    Derives from :class:`SynthesisError` on purpose: every existing
    ladder handler that catches a failed mapping solve also catches a
    crashed worker, so supervision composes with the degradation
    ladder instead of adding a new failure channel.
    """

    def __init__(
        self,
        message: str,
        *,
        attempts: int = 0,
        exit_code: "int | None" = None,
        signal: "int | None" = None,
        outcomes: "tuple[str, ...]" = (),
        backoff_history: "tuple[float, ...]" = (),
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.exit_code = exit_code
        self.signal = signal
        self.outcomes = tuple(outcomes)
        self.backoff_history = tuple(backoff_history)

    def __str__(self) -> str:
        base = super().__str__()
        how = (
            f"signal {self.signal}"
            if self.signal is not None
            else f"exit code {self.exit_code}"
            if self.exit_code is not None
            else "no exit status"
        )
        backoff = ", ".join(f"{d:.3f}s" for d in self.backoff_history)
        return (
            f"{base} [attempts={self.attempts}, last={how}, "
            f"outcomes={'/'.join(self.outcomes) or 'none'}, "
            f"backoff=[{backoff}]]"
        )


class CheckpointError(ReproError):
    """The checkpoint journal itself is unusable (unwritable directory,
    unreadable file).  Individual corrupt *records* never raise — they
    are skipped with a :class:`CorruptJournalWarning` so a damaged
    journal costs only the damaged entries, never the run."""


class TimeLimitError(ReproError):
    """A whole-run time budget (``Deadline``) expired.

    Raised only where running on would break the latency bound *and* no
    degraded result is possible; stages that can degrade catch their
    own failures and step down the ladder instead of raising this.
    """


class CertificationError(ReproError):
    """An independent certificate or audit check failed.

    Raised only in *strict* certification mode
    (``SynthesisConfig.certify == "strict"`` or
    ``solve(..., certify="strict")``): the solver/synthesizer produced
    an answer, but :mod:`repro.certify` could not verify it against the
    original model or design rules.  In ``"audit"`` mode the same
    failures are recorded on the result (``Solution.stats`` /
    ``SynthesisResult.audit``) without raising.
    """


class AdmissionError(ReproError):
    """The serve engine refused to queue a job (DESIGN.md §15).

    Raised (or recorded on the rejected job) when the bounded queue is
    at capacity, or the ``serve.queue_overflow`` chaos site forces an
    overflow.  Explicit rejection is the last rung of admission
    control — load shedding (shrunken budgets) comes first.
    """


class CorruptCacheWarning(UserWarning):
    """A serve result-cache entry failed its CRC or failed to parse.

    The damaged entry is evicted (never served) and the problem is
    simply re-solved; a warning rather than an error because the cache,
    like the checkpoint journal, is an optimization.
    """


class CorruptJournalWarning(UserWarning):
    """A checkpoint-journal record failed its CRC or failed to parse.

    Emitted once per damaged record (truncated tail line, flipped
    bytes, garbage) with the record index and the reason; the journal
    keeps loading the remaining records.  A warning rather than an
    error because the journal is an *optimization* — a lost record only
    means the corresponding window is re-solved.
    """


class DegradedResultWarning(UserWarning):
    """A synthesis run finished, but only by degrading.

    Emitted once per ``synthesize()`` call whose ``ResilienceReport``
    recorded at least one ladder rung; the warning message carries the
    rung summary.  A warning (not an error) because the result is still
    simulator-valid — it is just not the quality a fully converged run
    would have produced.
    """
