"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so downstream users can catch one type.  Subsystems
define their own subclasses here (rather than in their own packages) to
avoid import cycles between substrate packages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every deliberate error raised by this library."""


class GeometryError(ReproError):
    """Invalid geometric construction (e.g. an empty rectangle)."""


class ModelError(ReproError):
    """Invalid MILP model construction (bad bounds, unknown variable...)."""


class SolverError(ReproError):
    """An MILP/LP solve failed in an unexpected way."""


class InfeasibleError(SolverError):
    """The model was proven infeasible."""

    def __init__(self, message: str = "model is infeasible") -> None:
        super().__init__(message)


class UnboundedError(SolverError):
    """The model was proven unbounded."""

    def __init__(self, message: str = "model is unbounded") -> None:
        super().__init__(message)


class AssayError(ReproError):
    """Invalid bioassay description (cycles, bad volumes, bad ratios...)."""


class SchedulingError(ReproError):
    """The scheduler could not produce a feasible schedule."""


class ArchitectureError(ReproError):
    """Invalid chip architecture construction or valve operation."""


class PlacementError(ReproError):
    """A device placement is illegal (out of grid, overlap...)."""


class SynthesisError(ReproError):
    """Dynamic-device mapping / synthesis failed."""


class RoutingError(ReproError):
    """No routing path could be found for a required connection."""


class BindingError(ReproError):
    """Traditional-design binding failed (no mixer of a required size...)."""
