"""repro — reliability-aware synthesis for flow-based microfluidic biochips.

A from-scratch reproduction of Tseng, Li, Ho & Schlichtmann,
*"Reliability-aware Synthesis for Flow-based Microfluidic Biochips by
Dynamic-device Mapping"* (DAC 2015).

Quickstart::

    from repro import (
        SequencingGraph, ListScheduler, SchedulerConfig,
        ReliabilitySynthesizer, SynthesisConfig, GridSpec,
    )

    graph = SequencingGraph("demo")
    graph.add_input("sample")
    graph.add_input("reagent")
    graph.add_mix("mix1", ["sample", "reagent"], duration=8, volume=8)

    schedule = ListScheduler(SchedulerConfig()).schedule(graph)
    result = ReliabilitySynthesizer(
        SynthesisConfig(grid=GridSpec(8, 8))
    ).synthesize(graph, schedule)
    print(result.metrics.setting1)   # largest actuation count, e.g. 41(40)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.ilp` — from-scratch MILP stack (simplex + branch & bound);
* :mod:`repro.assay` — sequencing graphs, schedules, list scheduler;
* :mod:`repro.architecture` — the valve-centered architecture;
* :mod:`repro.core` — dynamic-device mapping & Algorithm 1 (the paper);
* :mod:`repro.routing` — Dijkstra transport routing;
* :mod:`repro.baseline` — traditional dedicated-device designs;
* :mod:`repro.assays` — the four benchmark assays of Table 1;
* :mod:`repro.experiments` — Table 1 / figure reproduction harness;
* :mod:`repro.viz` — text Gantt charts, chip snapshots, heat maps.
"""

from repro.errors import ReproError
from repro.geometry import GridSpec, Point, Rect
from repro.assay import (
    ListScheduler,
    MixRatio,
    Operation,
    OperationKind,
    Schedule,
    SchedulerConfig,
    SequencingGraph,
)
from repro.architecture import (
    Chip,
    ChipPort,
    DeviceType,
    DynamicDevice,
    Placement,
    PortKind,
    Valve,
    ValveRole,
    VirtualValveGrid,
)
from repro.core import (
    GreedyMapper,
    ILPMapper,
    ReliabilitySynthesizer,
    RoleRotatingMixer,
    SynthesisConfig,
    SynthesisResult,
    WindowedILPMapper,
)
from repro.baseline import Policy, bind_operations, traditional_design
from repro.assays import CASES, get_case, list_cases, schedule_for

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "GridSpec",
    "Point",
    "Rect",
    "ListScheduler",
    "MixRatio",
    "Operation",
    "OperationKind",
    "Schedule",
    "SchedulerConfig",
    "SequencingGraph",
    "Chip",
    "ChipPort",
    "DeviceType",
    "DynamicDevice",
    "Placement",
    "PortKind",
    "Valve",
    "ValveRole",
    "VirtualValveGrid",
    "GreedyMapper",
    "ILPMapper",
    "ReliabilitySynthesizer",
    "RoleRotatingMixer",
    "SynthesisConfig",
    "SynthesisResult",
    "WindowedILPMapper",
    "Policy",
    "bind_operations",
    "traditional_design",
    "CASES",
    "get_case",
    "list_cases",
    "schedule_for",
    "__version__",
]
