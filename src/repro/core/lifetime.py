"""Chip-lifetime estimation from wear numbers.

The paper motivates everything with valve lifetime: "valves can only be
actuated reliably for a few thousand times [4], and the whole chip
function can be affected even when only a few valves wear out"
(Section 1), and concludes that halving the largest actuation count
"nearly doubles" a mixer's service life.  This module turns the wear
metrics into that service-life estimate: how many times can an assay
repeat before the most-worn valve exhausts its actuation budget?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SynthesisError
from repro.baseline.valve_count import TraditionalDesign
from repro.core.result import SynthesisResult

#: Reliable actuations before a valve wears out — the order of
#: magnitude of the paper's citation [4] ("a few thousand times").
DEFAULT_WEAR_BUDGET: int = 4000


@dataclass(frozen=True)
class LifetimeEstimate:
    """Assay repetitions a chip survives under a wear budget."""

    wear_budget: int
    wear_per_run: int  # largest per-valve actuation count of one run
    runs: int  # full assay executions before the first valve dies

    @property
    def is_single_use(self) -> bool:
        return self.runs <= 1

    @property
    def is_dead_on_arrival(self) -> bool:
        """One run already exceeds the budget: the chip cannot complete
        even a single assay.  Distinct from :attr:`is_single_use` (which
        also covers the legitimate one-run chip) — a dead-on-arrival
        estimate means the synthesis parameters and the wear budget are
        irreconcilable, and callers should treat the design as unusable
        rather than short-lived."""
        return self.runs == 0


def _estimate(
    wear_budget: int, wear_per_run: int, allow_dead: bool = False
) -> LifetimeEstimate:
    if wear_budget <= 0:
        raise SynthesisError("wear budget must be positive")
    if wear_per_run <= 0:
        raise SynthesisError("one run must actuate at least one valve")
    estimate = LifetimeEstimate(
        wear_budget=wear_budget,
        wear_per_run=wear_per_run,
        runs=wear_budget // wear_per_run,
    )
    if estimate.is_dead_on_arrival and not allow_dead:
        raise SynthesisError(
            f"design is dead on arrival: one run wears the hottest valve "
            f"{wear_per_run} times but the budget is only {wear_budget}"
        )
    return estimate


def synthesis_lifetime(
    result: SynthesisResult,
    wear_budget: int = DEFAULT_WEAR_BUDGET,
    setting: int = 1,
    allow_dead: bool = False,
) -> LifetimeEstimate:
    """Lifetime of a dynamic-device chip repeating the same assay.

    Repetition reuses the same synthesis result, so every run adds the
    same per-valve wear; the most-worn valve dies first.  A design whose
    single run already exceeds the budget raises :class:`SynthesisError`
    ("dead on arrival") unless ``allow_dead`` is set, in which case the
    estimate comes back with ``runs=0`` and
    :attr:`LifetimeEstimate.is_dead_on_arrival` set.
    """
    metrics = (
        result.metrics.setting1 if setting == 1 else result.metrics.setting2
    )
    return _estimate(wear_budget, metrics.max_total, allow_dead=allow_dead)


def traditional_lifetime(
    design: TraditionalDesign,
    wear_budget: int = DEFAULT_WEAR_BUDGET,
    allow_dead: bool = False,
) -> LifetimeEstimate:
    """Lifetime of the traditional design repeating the same assay."""
    return _estimate(
        wear_budget, design.max_pump_actuations, allow_dead=allow_dead
    )


def lifetime_gain(
    result: SynthesisResult,
    design: TraditionalDesign,
    wear_budget: int = DEFAULT_WEAR_BUDGET,
    setting: int = 1,
) -> float:
    """How many times longer the dynamic chip lives than the dedicated
    one (> 1 means the reliability-aware synthesis wins)."""
    ours = synthesis_lifetime(result, wear_budget, setting)
    theirs = traditional_lifetime(design, wear_budget)
    if theirs.runs == 0:
        return float("inf") if ours.runs else 1.0
    return ours.runs / theirs.runs
