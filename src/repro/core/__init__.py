"""The paper's core contribution: reliability-aware dynamic-device mapping.

Pipeline (Algorithm 1):

1. read the sequencing graph and scheduling result
   (:mod:`repro.core.tasks` turns them into mapping tasks);
2. dynamic-device mapping — the ILP of Section 3.2/3.3/3.4 built by
   :mod:`repro.core.mapping_model` and solved by one of the mappers in
   :mod:`repro.core.mappers`, inside the storage-feasibility repeat loop
   (:mod:`repro.core.storage`);
3. routing between devices and chip ports (:mod:`repro.routing`);
4. actuation accounting for both evaluation settings
   (:mod:`repro.core.actuation`) and non-actuated valve removal.

:class:`~repro.core.synthesis.ReliabilitySynthesizer` runs the whole
pipeline and returns a :class:`~repro.core.result.SynthesisResult`.
"""

from repro.core.rates import (
    DEDICATED_MIXER_TOTAL_ACTUATIONS,
    pump_rate_setting1,
    pump_rate_setting2,
)
from repro.core.tasks import MappingTask, build_tasks
from repro.core.mapping_model import MappingModelBuilder, MappingSpec
from repro.core.mappers import (
    GreedyMapper,
    ILPMapper,
    LoadLedger,
    MappingResult,
    WindowedILPMapper,
)
from repro.core.lns import LargeNeighborhoodSearch
from repro.core.anytime import AnytimeMapper
from repro.core.storage import StoragePlan, product_volume
from repro.core.actuation import ActuationAccountant, AccountingPolicy
from repro.core.role_rotation import RoleRotatingMixer
from repro.core.result import SynthesisMetrics, SynthesisResult
from repro.core.synthesis import ReliabilitySynthesizer, SynthesisConfig
from repro.core.lifetime import (
    DEFAULT_WEAR_BUDGET,
    LifetimeEstimate,
    lifetime_gain,
    synthesis_lifetime,
    traditional_lifetime,
)
from repro.core.edge_wear import EdgeWearReport, edge_wear
from repro.core.export import design_dict, design_json, design_listing
from repro.core.repetition import (
    RepetitionPlan,
    leveled_lifetime,
    plan_repetitions,
)
from repro.core.simulation import (
    ChipSimulator,
    SimulationError,
    SimulationReport,
    simulate,
)

__all__ = [
    "DEDICATED_MIXER_TOTAL_ACTUATIONS",
    "pump_rate_setting1",
    "pump_rate_setting2",
    "MappingTask",
    "build_tasks",
    "MappingModelBuilder",
    "MappingSpec",
    "AnytimeMapper",
    "GreedyMapper",
    "ILPMapper",
    "LargeNeighborhoodSearch",
    "LoadLedger",
    "MappingResult",
    "WindowedILPMapper",
    "StoragePlan",
    "product_volume",
    "ActuationAccountant",
    "AccountingPolicy",
    "RoleRotatingMixer",
    "SynthesisMetrics",
    "SynthesisResult",
    "ReliabilitySynthesizer",
    "SynthesisConfig",
    "DEFAULT_WEAR_BUDGET",
    "LifetimeEstimate",
    "lifetime_gain",
    "synthesis_lifetime",
    "traditional_lifetime",
    "EdgeWearReport",
    "edge_wear",
    "design_dict",
    "design_json",
    "design_listing",
    "RepetitionPlan",
    "leveled_lifetime",
    "plan_repetitions",
    "ChipSimulator",
    "SimulationError",
    "SimulationReport",
    "simulate",
]
