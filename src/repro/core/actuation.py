"""Actuation accounting: from a synthesis result to per-valve wear.

Pump actuations follow eq. (2): every ring valve of a mixing device is
actuated ``p_i`` times per operation — 40 under setting 1, scaled to
keep the mixer total at 120 under setting 2 (see
:mod:`repro.core.rates`).

Non-peristaltic actuations model the reconfiguration events visible in
Figure 10's counters (ring valves at 41–43, routing cells at 1–3).  The
virtual valve grid is **default-closed**: a valve only actuates when it
must change state, so

* forming a device *opens* its circulation ring and interior
  (+1 CONTROL each) — the ring cells of Figure 10 read 40 + small;
* **wall valves never actuate**: the boundary of a device is closed by
  default and stays closed.  A wall position that serves no other
  purpose is exactly Figure 10's "functionless wall" — removed from the
  manufactured design by Algorithm 1 L20 (it becomes plain PDMS);
* every transport opens-and-closes the valves along its path
  (+1 CONTROL per path cell).

The totals stay an order of magnitude below pump wear, which reproduces
the paper's observation that ``vs 1max`` is "close to the numbers of
actuations for peristalsis thereof" and validates modeling only
peristaltic actuations in the ILP (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import SynthesisError
from repro.geometry import GridSpec
from repro.architecture.device import DynamicDevice
from repro.architecture.valve import ValveRole
from repro.architecture.valve_grid import VirtualValveGrid
from repro.routing.path import RoutedPath
from repro.core.rates import pump_rate_setting1, pump_rate_setting2


@dataclass(frozen=True)
class AccountingPolicy:
    """Knobs of the wear model.

    ``setting`` selects the pump rate (1 = conservative 40 per valve,
    2 = constant mixer total of 120).  The event weights default to one
    actuation cycle per state change, matching Figure 10; ``wall_events``
    defaults to 0 because default-closed wall valves never toggle (set
    it positive to study a default-open architecture instead).
    """

    setting: int = 1
    device_formation: int = 1
    wall_events: int = 0
    path_use: int = 1

    def pump_rate(self, ring_size: int) -> int:
        if self.setting == 1:
            return pump_rate_setting1(ring_size)
        if self.setting == 2:
            return pump_rate_setting2(ring_size)
        raise SynthesisError(f"unknown accounting setting {self.setting}")


class ActuationAccountant:
    """Replays a synthesis result onto a fresh valve grid."""

    def __init__(self, spec: GridSpec, policy: AccountingPolicy) -> None:
        self.policy = policy
        self.grid = VirtualValveGrid(spec)

    def account_devices(self, devices: Iterable[DynamicDevice]) -> None:
        """Pump + formation wear of every dynamic device."""
        for device in devices:
            ring = device.placement.pump_cells()
            rate = self.policy.pump_rate(device.volume)
            self.grid.actuate(ring, ValveRole.PUMP, rate)
            if self.policy.device_formation:
                self.grid.actuate(
                    ring, ValveRole.CONTROL, self.policy.device_formation
                )
                self.grid.actuate(
                    device.rect.interior_cells(),
                    ValveRole.CONTROL,
                    self.policy.device_formation,
                )
            if self.policy.wall_events:
                self.grid.actuate(
                    device.placement.wall_cells(self.grid.spec),
                    ValveRole.WALL,
                    self.policy.wall_events,
                )

    def account_routes(self, routes: Iterable[RoutedPath]) -> None:
        """Control wear of every transport path."""
        if not self.policy.path_use:
            return
        for route in routes:
            self.grid.actuate(
                route.cells, ValveRole.CONTROL, self.policy.path_use
            )

    def run(
        self,
        devices: Iterable[DynamicDevice],
        routes: Iterable[RoutedPath],
    ) -> VirtualValveGrid:
        """Full accounting; returns the populated grid."""
        self.account_devices(devices)
        self.account_routes(routes)
        return self.grid
