"""Synthesis results and their metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.assay.schedule import Schedule
from repro.assay.sequencing_graph import SequencingGraph
from repro.architecture.chip import Chip
from repro.architecture.device import DynamicDevice
from repro.architecture.valve import ValveRole
from repro.architecture.valve_grid import VirtualValveGrid
from repro.core.actuation import AccountingPolicy
from repro.core.storage import StoragePlan
from repro.resilience import ResilienceReport
from repro.routing.path import RoutedPath

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.certify.report import AuditReport


@dataclass(frozen=True)
class SettingMetrics:
    """Wear numbers of one evaluation setting.

    ``max_total`` / ``max_peristaltic`` are Table 1's
    ``vs max (peristaltic)`` pair, e.g. "45(40)".
    """

    setting: int
    max_total: int
    max_peristaltic: int

    def __str__(self) -> str:
        return f"{self.max_total}({self.max_peristaltic})"


@dataclass(frozen=True)
class SynthesisMetrics:
    """Everything Table 1 reports about one synthesis run."""

    setting1: SettingMetrics
    setting2: SettingMetrics
    used_valves: int  # #v: valves kept after non-actuated removal
    role_changing_valves: int
    mapping_objective: int  # the ILP's w (setting-1 pump load)
    mapper: str
    algorithm_iterations: int  # Algorithm 1 repeat count (L4-L9)
    wall_time: float


@dataclass
class SynthesisResult:
    """Output of the reliability-aware synthesis (Section 2.3).

    "The bioassay synthesis result, which specifies the device
    locations, shapes and orientations" — :attr:`devices` — plus the
    routing paths, the populated valve grids of both evaluation
    settings, and the aggregate metrics.
    """

    graph: SequencingGraph
    schedule: Schedule
    chip: Chip
    devices: Dict[str, DynamicDevice]
    routes: List[RoutedPath]
    storage_plan: StoragePlan
    grid_setting1: VirtualValveGrid
    grid_setting2: VirtualValveGrid
    metrics: SynthesisMetrics
    #: degradation-ladder record of the run (DESIGN.md §9); None only
    #: for results assembled outside ``ReliabilitySynthesizer``.
    resilience: Optional[ResilienceReport] = None
    #: design-audit report when the run was certified
    #: (``SynthesisConfig.certify`` of ``audit``/``strict``), else None.
    audit: Optional["AuditReport"] = None

    def device_of(self, operation: str) -> DynamicDevice:
        return self.devices[operation]

    def grid_for(self, setting: int) -> VirtualValveGrid:
        return self.grid_setting1 if setting == 1 else self.grid_setting2

    # -- snapshots (Figure 10) ---------------------------------------------

    def snapshot(self, t: int, setting: int = 1) -> np.ndarray:
        """Cumulative actuation counts up to (and including) time ``t``.

        Replays the synthesis chronologically: pump wear lands when an
        operation's mixing starts, wall wear at device formation and
        dissolution, control wear when a transport runs.  Row 0 of the
        returned array is the top of the chip, like Figure 10.
        """
        policy = AccountingPolicy(setting=setting)
        grid = VirtualValveGrid(self.chip.spec)
        for device in self.devices.values():
            if t >= device.mix_start:
                grid.actuate(
                    device.placement.pump_cells(),
                    ValveRole.PUMP,
                    policy.pump_rate(device.volume),
                )
            if t >= device.start and policy.device_formation:
                grid.actuate(
                    device.placement.pump_cells(),
                    ValveRole.CONTROL,
                    policy.device_formation,
                )
                grid.actuate(
                    device.rect.interior_cells(),
                    ValveRole.CONTROL,
                    policy.device_formation,
                )
        for route in self.routes:
            if route.time <= t:
                grid.actuate(route.cells, ValveRole.CONTROL, policy.path_use)
        return grid.total_actuation_matrix()

    def active_devices(self, t: int) -> List[DynamicDevice]:
        return [d for d in self.devices.values() if d.alive_at(t)]

    def final_valve_positions(self):
        """Positions of the valves kept in the manufactured design."""
        return [v.position for v in self.grid_setting1.actuated_valves()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        m = self.metrics
        return (
            f"SynthesisResult({self.graph.name}: vs1={m.setting1} "
            f"vs2={m.setting2} #v={m.used_valves} via {m.mapper})"
        )
