"""Design export: from a synthesis result to a manufacturable spec.

Algorithm 1 ends by "removing the virtual valves that are never
actuated and implementing the remaining valves".  This module emits
that final design as structured data (JSON-compatible) and as a human
readable listing:

* every kept valve with its position, the roles it plays and its total
  wear over one assay execution;
* the dynamic devices with location/shape/orientation and lifetime —
  "the bioassay synthesis result, which specifies the device locations,
  shapes and orientations" (Section 2.3);
* the routing paths with their time steps;
* chip-level summary metrics.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.core.result import SynthesisResult


def design_dict(result: SynthesisResult, setting: int = 1) -> Dict[str, Any]:
    """The manufactured design as plain data (JSON-compatible)."""
    grid = result.grid_for(setting)
    valves: List[Dict[str, Any]] = []
    for valve in grid.actuated_valves():
        valves.append(
            {
                "x": valve.position.x,
                "y": valve.position.y,
                "roles": sorted(role.value for role in valve.roles_played),
                "pump_actuations": valve.peristaltic_actuations,
                "control_actuations": valve.transport_actuations,
                "total_actuations": valve.total_actuations,
            }
        )

    devices: List[Dict[str, Any]] = []
    for name, device in sorted(result.devices.items()):
        devices.append(
            {
                "operation": name,
                "x": device.rect.x,
                "y": device.rect.y,
                "width": device.rect.width,
                "height": device.rect.height,
                "type": device.device_type.name,
                "volume": device.volume,
                "storage_from": device.start,
                "mixing_from": device.mix_start,
                "dissolves_at": device.end,
            }
        )

    routes: List[Dict[str, Any]] = []
    for route in result.routes:
        routes.append(
            {
                "time": route.time,
                "source": route.event.source,
                "target": route.event.target,
                "cells": [[c.x, c.y] for c in route.cells],
            }
        )

    metrics = result.metrics
    return {
        "paper": "Tseng et al., DAC 2015 (10.1145/2744769.2744899)",
        "assay": result.graph.name,
        "grid": {
            "width": result.chip.spec.width,
            "height": result.chip.spec.height,
        },
        "ports": [
            {
                "name": p.name,
                "x": p.position.x,
                "y": p.position.y,
                "kind": p.kind.value,
            }
            for p in result.chip.ports.values()
        ],
        "setting": setting,
        "valves": valves,
        "devices": devices,
        "routes": routes,
        "summary": {
            "valve_count": metrics.used_valves,
            "max_total_actuations": grid.max_total_actuations,
            "max_peristaltic_actuations": grid.max_peristaltic_actuations,
            "role_changing_valves": metrics.role_changing_valves,
        },
    }


def design_json(result: SynthesisResult, setting: int = 1, indent: int = 2) -> str:
    """The design as a JSON document."""
    return json.dumps(design_dict(result, setting), indent=indent)


def design_listing(result: SynthesisResult, setting: int = 1) -> str:
    """Human-readable design listing (one valve per line)."""
    data = design_dict(result, setting)
    lines = [
        f"# design for assay {data['assay']!r} on "
        f"{data['grid']['width']}x{data['grid']['height']} grid "
        f"(setting {setting})",
        f"# {data['summary']['valve_count']} valves, max wear "
        f"{data['summary']['max_total_actuations']} "
        f"({data['summary']['max_peristaltic_actuations']} peristaltic)",
    ]
    for entry in data["valves"]:
        roles = ",".join(entry["roles"])
        lines.append(
            f"valve ({entry['x']:>2},{entry['y']:>2})  roles={roles:<18} "
            f"pump={entry['pump_actuations']:>4} "
            f"control={entry['control_actuations']:>3}"
        )
    for entry in data["devices"]:
        lines.append(
            f"device {entry['operation']:<12} {entry['type']:>3} at "
            f"({entry['x']},{entry['y']}) storage@{entry['storage_from']} "
            f"mix@{entry['mixing_from']} end@{entry['dissolves_at']}"
        )
    return "\n".join(lines) + "\n"
