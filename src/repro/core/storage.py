"""In-situ on-chip storage planning (Section 3.3).

The storage of operation *i* occupies the same region as *i*'s future
device: it appears when the first parent product arrives and "is turned
to d_i" when the operation starts.  While a parent device is still
active, the child storage may overlap it (the c5 permission, eq. 12) —
but only as long as the overlapped cells are not needed to hold
products.  Algorithm 1 (L6–L8) checks this after each mapping and
forbids the violating (storage, device) pairs before re-solving; the
same free-space bookkeeping also powers routing pass-through
(Figure 8(b)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import AssayError
from repro.assay.schedule import Schedule
from repro.assay.sequencing_graph import SequencingGraph
from repro.architecture.device import Placement
from repro.core.mapping_model import Pair


def product_volume(graph: SequencingGraph, child: str, parent: str) -> int:
    """Volume units parent's product contributes to child's mix.

    When the child's ratio names as many parts as the child has parents,
    the parts are aligned with the graph's parent order (a 1:3 mix of
    (a, b) takes 1 part of a); otherwise the volume splits evenly.
    """
    child_op = graph.operation(child)
    parents = graph.parents(child)
    names = [p.name for p in parents]
    if parent not in names:
        raise AssayError(f"{parent!r} is not a parent of {child!r}")
    ratio = child_op.ratio
    if ratio is not None and len(ratio.parts) == len(parents):
        try:
            return ratio.volumes(child_op.volume)[names.index(parent)]
        except AssayError:
            pass  # indivisible ratio: fall through to the even split
    return max(child_op.volume // max(len(parents), 1), 1)


@dataclass(frozen=True)
class StorageInfo:
    """Derived storage data for one mixing operation."""

    operation: str
    capacity: int  # volume units == ring cells of the future device
    start: int  # first product arrival
    mix_start: int  # storage becomes the mixer here
    arrivals: Tuple[Tuple[int, str, int], ...]  # (time, parent, volume)

    def stored_volume(self, t: int) -> int:
        """Units held at time ``t`` (0 outside the storage phase)."""
        if not self.start <= t < self.mix_start:
            return 0
        return sum(vol for at, _, vol in self.arrivals if at <= t)

    def free_space(self, t: int) -> int:
        """Free units at time ``t`` (0 outside the storage phase)."""
        if not self.start <= t < self.mix_start:
            return 0
        return max(self.capacity - self.stored_volume(t), 0)


class StoragePlan:
    """All in-situ storages of one scheduled assay."""

    def __init__(self, graph: SequencingGraph, schedule: Schedule) -> None:
        self.graph = graph
        self.schedule = schedule
        self._storages: Dict[str, StorageInfo] = {}
        for so in schedule.scheduled_mixes():
            name = so.name
            interval = schedule.storage_interval(name)
            if interval is None:
                continue
            arrivals = tuple(
                sorted(
                    (
                        schedule.end(p.name),
                        p.name,
                        product_volume(graph, name, p.name),
                    )
                    for p in graph.parents(name)
                    if not p.is_input
                )
            )
            self._storages[name] = StorageInfo(
                operation=name,
                capacity=so.operation.volume,
                start=interval[0],
                mix_start=interval[1],
                arrivals=arrivals,
            )

    def storage(self, name: str) -> Optional[StorageInfo]:
        return self._storages.get(name)

    def storages(self) -> List[StorageInfo]:
        return [self._storages[k] for k in sorted(self._storages)]

    def free_space(self, name: str, t: int) -> int:
        """Routing-facing free space of operation ``name``'s region."""
        info = self._storages.get(name)
        if info is None:
            return 0
        return info.free_space(t)

    # -- Algorithm 1 L6-L8 ---------------------------------------------------

    def overlap_violations(
        self, placements: Dict[str, Placement]
    ) -> Set[Pair]:
        """(parent, child) pairs whose overlap exceeds free storage space.

        For each child storage overlapping a parent device in space and
        time, the overlapped cells are unavailable for products; the
        pair violates when, at the last instant of coexistence, stored
        products plus overlapped cells exceed the storage capacity.
        """
        violations: Set[Pair] = set()
        for name, info in self._storages.items():
            child_rect = placements.get(name)
            if child_rect is None:
                continue
            for parent in self.graph.mix_parents(name):
                parent_placement = placements.get(parent.name)
                if parent_placement is None:
                    continue
                parent_end = self.schedule.end(parent.name)
                coexist_end = min(parent_end, info.mix_start)
                if coexist_end <= info.start:
                    continue  # no temporal overlap with the storage phase
                overlap = child_rect.rect.overlap_area(parent_placement.rect)
                if overlap == 0:
                    continue
                stored = info.stored_volume(coexist_end - 1)
                if overlap > info.capacity - stored:
                    violations.add((parent.name, name))
        return violations
