"""The anytime mapper tier: a heuristic lane racing the exact ILP.

DESIGN.md §13.  Under a finite time budget the synthesizer no longer
bets the whole mapping stage on the ILP finishing in time — it runs two
lanes against the same deadline:

* the **heuristic lane** (this thread): the greedy balancer produces a
  feasible mapping in milliseconds, then
  :class:`~repro.core.lns.LargeNeighborhoodSearch` keeps improving it
  round by round;
* the **exact lane** (a daemon thread): the monolithic branch & bound
  on the very same :class:`~repro.core.mapping_model.BuiltMapping`
  (the rolling-horizon mapper beyond ``ilp_task_limit`` tasks).

The lanes meet at an :class:`~repro.ilp.incumbent.IncumbentPool`.
Every heuristic incumbent is *completed* into a full variable
assignment (:func:`~repro.core.mapping_model.complete_solution`),
replay-checked against the model, **certified** by
:func:`repro.certify.certify_assignment`, and only then offered to the
pool — the branch & bound adopts it as an upper bound (pruning, and
stopping instantly when the offer matches the proven root bound), never
trusting it blindly.  When the budget expires the orchestrator adopts
whichever lane holds the best certified objective; ties go to the exact
lane, whose solution also carries an optimality status.  A heuristic
win engages the ``anytime_heuristic`` resilience rung: the answer is
certified feasible with a known objective, just not proven optimal.

Injection requires the pure-python ``branch_bound`` backend (the HiGHS
wrapper exposes no incumbent callback); with ``backend="auto"`` the
monolithic lane therefore picks ``branch_bound`` and the windowed lane
keeps the HiGHS default.  ``heuristic=False`` degenerates to the exact
lane alone, run synchronously — byte-identical to :class:`ILPMapper` —
which the equivalence tests pin.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.architecture.device import Placement
from repro.errors import SynthesisError
from repro.ilp.incumbent import IncumbentPool
from repro.ilp.solution import SolveStatus
from repro.obs import TELEMETRY
from repro.resilience import Deadline, DegradationLadder
from repro.core.lns import LargeNeighborhoodSearch
from repro.core.mapping_model import (
    MappingModelBuilder,
    MappingSpec,
    Pair,
    complete_solution,
)
from repro.core.mappers import (
    BaseMapper,
    GreedyMapper,
    ILPMapper,
    MappingResult,
    WindowedILPMapper,
)
from repro.core.tasks import MappingTask

#: Seconds granted to the exact thread after the race ends to notice
#: its own time limit and return (it is abandoned past this).  The
#: solvers poll their deadline inside the LP pivot loops, so the lane
#: lands within milliseconds of its limit — the grace only covers
#: scheduling jitter.
_JOIN_GRACE = 0.25

#: LNS round cap when neither a deadline nor ``time_limit`` bounds the
#: race (the exact lane then runs to optimality anyway).
_UNBOUNDED_LNS_ROUNDS = 64


def _used_overlaps(
    spec: MappingSpec,
    ordered: List[MappingTask],
    placements: Dict[str, Placement],
) -> List[Pair]:
    """The (parent, child) storage overlaps a placement map uses."""
    overlaps = set()
    for i, a in enumerate(ordered):
        pa = placements.get(a.name)
        if pa is None:
            continue
        for b in ordered[i + 1:]:
            pb = placements.get(b.name)
            if pb is None:
                continue
            if not (a.start < b.end and b.start < a.end):
                continue
            if not pa.rect.overlaps(pb.rect):
                continue
            pair = spec.storage_pair(a.name, b.name)
            if pair is not None:
                overlaps.add(pair)
    return sorted(overlaps)


class AnytimeMapper(BaseMapper):
    """Race a heuristic improvement loop against the exact ILP.

    Parameters mirror the mappers it orchestrates: ``backend`` picks
    the exact lane's solver (``"auto"`` = ``branch_bound`` for the
    monolithic model so incumbents can be injected, the HiGHS default
    for windowed), ``ilp_task_limit``/``window_size`` are the same
    monolithic-vs-windowed switch :class:`SynthesisConfig` uses, and
    ``seed`` drives the LNS destroy sets.  ``heuristic=False`` disables
    the heuristic lane entirely (exact-only, synchronous).
    """

    name = "anytime"

    def __init__(
        self,
        backend: str = "auto",
        *,
        heuristic: bool = True,
        seed: int = 0,
        ilp_task_limit: int = 8,
        window_size: int = 5,
        time_limit: Optional[float] = None,
        lns_max_rounds: Optional[int] = None,
        lns_stall_limit: Optional[int] = 400,
        **solver_kwargs,
    ) -> None:
        self.backend = backend
        self.heuristic = heuristic
        self.seed = seed
        self.ilp_task_limit = ilp_task_limit
        self.window_size = window_size
        self.time_limit = time_limit
        self.lns_max_rounds = lns_max_rounds
        # Without a stall cap the heuristic lane spins non-improving
        # rounds against the exact thread for the GIL; stalling out
        # instead hands the exact lane the whole interpreter.
        self.lns_stall_limit = lns_stall_limit
        self.solver_kwargs = solver_kwargs

    # -- entry -----------------------------------------------------------

    def map_tasks(
        self,
        spec: MappingSpec,
        *,
        deadline: Optional[Deadline] = None,
        ladder: Optional[DegradationLadder] = None,
    ) -> MappingResult:
        monolithic = len(spec.tasks) <= self.ilp_task_limit
        if monolithic:
            return self._race_monolithic(spec, deadline, ladder)
        return self._race_windowed(spec, deadline, ladder)

    def _exact_backend(self, monolithic: bool) -> str:
        if self.backend != "auto":
            return self.backend
        return "branch_bound" if monolithic else "scipy"

    # -- the monolithic race ---------------------------------------------

    def _race_monolithic(
        self,
        spec: MappingSpec,
        deadline: Optional[Deadline],
        ladder: Optional[DegradationLadder],
    ) -> MappingResult:
        start = time.monotonic()
        backend = self._exact_backend(monolithic=True)
        limit = self.time_limit
        if deadline is not None:
            limit = deadline.limit(limit)
        ordered = sorted(spec.tasks, key=lambda t: (t.start, t.name))
        supervised = self.supervisor is not None

        if not self.heuristic:
            if supervised or self.journal is not None:
                # Crash-safe exact-only: delegate to the (supervised,
                # journaled) exact mapper — same model, same answer.
                result = self._exact_mapper(limit).map_tasks(
                    spec, deadline=deadline, ladder=ladder
                )
                result.mapper = self.name
                result.stats.setdefault("race_winner_heuristic", 0.0)
                result.wall_time = time.monotonic() - start
                return result
            # Exact-only mode: synchronous, no pool — byte-identical to
            # ILPMapper on the same spec (the equivalence tests pin it).
            built = MappingModelBuilder(spec).build()
            return self._exact_only(spec, built, backend, limit, start)

        # 1. First feasible mapping before anything else — the packer
        #    answers in milliseconds; even the model build is slower.
        try:
            greedy = GreedyMapper().map_tasks(spec, deadline=deadline)
        except SynthesisError:
            # No heuristic start at all — the exact lane alone decides.
            built = MappingModelBuilder(spec).build()
            return self._exact_only(spec, built, backend, limit, start)
        first_feasible = time.monotonic() - start

        built = MappingModelBuilder(spec).build()
        model = built.model
        pool = IncumbentPool()
        # Incumbent injection needs an in-process branch & bound; a
        # supervised exact lane solves in a subprocess, so the pool
        # degrades to a scoreboard (offers are noted, not injected).
        injectable = backend == "branch_bound" and not supervised
        stats: Dict[str, float] = {
            "offers_made": 0.0,
            "offers_incomplete": 0.0,
            "offers_invalid": 0.0,
            "offers_uncertified": 0.0,
            "offers_certified": 0.0,
            "injectable": float(injectable),
        }
        best_certified: Dict[str, object] = {}

        # Deferred import: repro.certify pulls in the audit machinery,
        # which imports repro.core back.
        from repro.certify import certify_assignment

        def offer(placements: Dict[str, Placement], source: str) -> None:
            """Complete → check → certify → inject one incumbent."""
            stats["offers_made"] += 1
            values = complete_solution(built, placements)
            if values is None:
                stats["offers_incomplete"] += 1
                return
            if model.check_solution(values):
                stats["offers_invalid"] += 1
                return
            cert = certify_assignment(model, values)
            if cert.status != "certified":
                stats["offers_uncertified"] += 1
                return
            stats["offers_certified"] += 1
            objective = model.objective.evaluate(values)
            peak = int(round(values[built.w]))
            if injectable:
                x = np.zeros(model.num_vars)
                for var, value in values.items():
                    x[var.index] = value
                pool.offer(x, objective, source=source)
            else:
                pool.note("offer", source, objective)
            if not best_certified or peak < best_certified["peak"]:
                best_certified.update(
                    placements=dict(placements),
                    peak=peak,
                    objective=objective,
                    seconds=time.monotonic() - start,
                )

        # The packer's incumbent goes in before the exact lane even
        # starts: the branch & bound sees it at the root.
        stats["first_feasible_seconds"] = first_feasible
        placements = dict(greedy.placements)
        offer(placements, "packer")

        # 2. Exact lane in a worker thread, polling the pool per node.
        slot: Dict[str, object] = {}
        done = threading.Event()
        solver_kwargs = dict(self.solver_kwargs)
        if injectable:
            solver_kwargs["incumbent"] = pool

        # The lane's limit is re-taken *now*: the packer, the model
        # build and the first certificate already spent part of the
        # budget, and a limit measured from the race start would let
        # the solver run past the mapping deadline by that much.
        lane_start = time.monotonic()
        lane_limit = limit
        if deadline is not None:
            lane_limit = deadline.limit(self.time_limit)
        elif limit is not None:
            lane_limit = max(0.0, limit - (lane_start - start))

        def exact_lane() -> None:
            try:
                if supervised:
                    # The watched-subprocess path (DESIGN.md §14): the
                    # thread only dispatches and waits; kills/retries
                    # happen in the supervisor.
                    slot["result"] = self._exact_mapper(
                        lane_limit
                    ).map_tasks(spec, deadline=deadline)
                else:
                    slot["solution"] = model.solve(
                        backend=backend, time_limit=lane_limit,
                        **solver_kwargs
                    )
            except Exception as exc:  # noqa: BLE001 - reported via slot
                slot["error"] = exc
            finally:
                done.set()

        # Non-daemon on purpose: the lane is deadline-bounded, and a
        # daemon thread still inside a solver at interpreter shutdown
        # can abort the whole process.
        thread = threading.Thread(target=exact_lane, name="anytime-exact")
        thread.start()

        # 3. LNS rounds until the budget runs out or the exact lane is
        #    done (its answer dominates every further heuristic round).
        max_rounds = self.lns_max_rounds
        if max_rounds is None and deadline is None and limit is None:
            max_rounds = _UNBOUNDED_LNS_ROUNDS
        lns = LargeNeighborhoodSearch(spec, seed=self.seed)
        lns_stats = lns.run(
            placements,
            deadline=deadline,
            max_rounds=max_rounds,
            stall_limit=self.lns_stall_limit,
            should_stop=done.is_set,
            on_improve=lambda snapshot, peak: offer(snapshot, "lns"),
        )
        stats.update(lns_stats)

        # 4. Collect the exact lane.
        timeout = None
        if deadline is not None:
            timeout = deadline.remaining() + _JOIN_GRACE
        elif lane_limit is not None:
            timeout = (
                max(0.0, lane_limit - (time.monotonic() - lane_start))
                + _JOIN_GRACE
            )
        thread.join(timeout)
        stats["exact_abandoned"] = float(thread.is_alive())
        if supervised:
            stats["supervised"] = 1.0
            exact_result = (
                slot.get("result") if not thread.is_alive() else None
            )
            return self._pick_winner_result(
                spec, ordered, stats, pool, best_certified,
                exact_result, ladder, start,
            )
        solution = slot.get("solution")
        exact_ok = (
            solution is not None
            and not thread.is_alive()
            and solution.status.has_solution
        )
        return self._pick_winner(
            spec, built, ordered, stats, pool, best_certified,
            solution if exact_ok else None, ladder, start,
        )

    def _exact_mapper(self, limit: Optional[float]) -> ILPMapper:
        """The monolithic exact lane as a crash-safe :class:`ILPMapper`."""
        mapper = ILPMapper(
            backend=self._exact_backend(monolithic=True),
            time_limit=limit,
            **self.solver_kwargs,
        )
        mapper.journal = self.journal
        mapper.supervisor = self.supervisor
        return mapper

    def _pick_winner_result(
        self,
        spec: MappingSpec,
        ordered: List[MappingTask],
        stats: Dict[str, float],
        pool: IncumbentPool,
        best_certified: Dict[str, object],
        exact: Optional[MappingResult],
        ladder: Optional[DegradationLadder],
        start: float,
    ) -> MappingResult:
        """The supervised-lane twin of :meth:`_pick_winner`.

        The exact lane returned a :class:`MappingResult` (solved in a
        watched subprocess) instead of a raw solver solution; the
        decision rule is identical — best certified objective wins,
        ties to the exact lane.
        """
        exact_peak = exact.objective if exact is not None else None
        if exact is not None:
            stats["exact_objective"] = float(exact_peak)
        if best_certified:
            stats["heuristic_objective"] = float(best_certified["peak"])
            stats["seconds_to_best_certified"] = float(
                best_certified["seconds"]
            )
        stats["race_timeline"] = pool.timeline_snapshot()
        heuristic_wins = best_certified and (
            exact_peak is None or best_certified["peak"] < exact_peak
        )
        if exact_peak is None and not best_certified:
            raise SynthesisError(
                "anytime race produced no solution: the supervised exact "
                "lane returned nothing inside the budget and no "
                "heuristic incumbent certified"
            )
        stats["race_winner_heuristic"] = float(bool(heuristic_wins))
        wall = time.monotonic() - start
        if TELEMETRY.enabled:
            TELEMETRY.count("anytime.races")
            TELEMETRY.count(
                "anytime.lns_rounds", int(stats.get("lns_rounds", 0))
            )
            TELEMETRY.count(
                "anytime.race_winner_heuristic"
                if heuristic_wins
                else "anytime.race_winner_exact"
            )
        if heuristic_wins:
            if ladder is not None:
                ladder.engage(
                    "mapping",
                    DegradationLadder.ANYTIME_HEURISTIC,
                    f"certified heuristic peak {best_certified['peak']}"
                    + (
                        f" beat exact {exact_peak}"
                        if exact_peak is not None
                        else " with no exact answer in budget"
                    ),
                )
            placements = dict(best_certified["placements"])
            return MappingResult(
                placements=placements,
                objective=int(best_certified["peak"]),
                mapper=self.name,
                used_overlaps=_used_overlaps(spec, ordered, placements),
                wall_time=wall,
                optimal=False,
                stats=stats,
            )
        merged = dict(exact.stats)
        merged.update(stats)
        return MappingResult(
            placements=exact.placements,
            objective=exact.objective,
            mapper=self.name,
            used_overlaps=exact.used_overlaps,
            wall_time=wall,
            optimal=exact.optimal,
            stats=merged,
        )

    def _exact_only(self, spec, built, backend, limit, start) -> MappingResult:
        solution = built.model.solve(
            backend=backend, time_limit=limit, **self.solver_kwargs
        )
        if not solution.status.has_solution:
            raise SynthesisError(
                f"dynamic-device mapping ILP is {solution.status.value} "
                f"({built.model!r})"
            )
        wall = time.monotonic() - start
        stats: Dict[str, float] = {
            "solve_seconds": wall,
            "solver_nodes": float(solution.nodes_explored),
            "race_winner_heuristic": 0.0,
        }
        for key, value in solution.stats.items():
            stats[f"solver_{key}"] = float(value)
        if TELEMETRY.enabled:
            TELEMETRY.count("anytime.races")
        return MappingResult(
            placements=built.extract_placements(solution),
            objective=int(round(solution.value(built.w))),
            mapper=self.name,
            used_overlaps=built.extract_overlaps(solution),
            wall_time=wall,
            optimal=solution.status is SolveStatus.OPTIMAL,
            stats=stats,
        )

    def _pick_winner(
        self,
        spec: MappingSpec,
        built,
        ordered: List[MappingTask],
        stats: Dict[str, float],
        pool: IncumbentPool,
        best_certified: Dict[str, object],
        solution,
        ladder: Optional[DegradationLadder],
        start: float,
    ) -> MappingResult:
        """Adopt the best certified objective; ties go to the exact lane."""
        exact_peak = None
        if solution is not None:
            exact_peak = int(round(solution.value(built.w)))
            stats["exact_objective"] = float(exact_peak)
            stats["solver_nodes"] = float(solution.nodes_explored)
            for key, value in solution.stats.items():
                stats[f"solver_{key}"] = float(value)
        if best_certified:
            stats["heuristic_objective"] = float(best_certified["peak"])
            stats["seconds_to_best_certified"] = float(
                best_certified["seconds"]
            )
        stats["race_timeline"] = pool.timeline_snapshot()

        heuristic_wins = best_certified and (
            exact_peak is None or best_certified["peak"] < exact_peak
        )
        if exact_peak is None and not best_certified:
            raise SynthesisError(
                "anytime race produced no solution: the exact lane "
                "returned nothing inside the budget and no heuristic "
                "incumbent certified"
            )
        stats["race_winner_heuristic"] = float(bool(heuristic_wins))
        wall = time.monotonic() - start
        if TELEMETRY.enabled:
            TELEMETRY.count("anytime.races")
            TELEMETRY.count(
                "anytime.lns_rounds", int(stats.get("lns_rounds", 0))
            )
            if heuristic_wins:
                TELEMETRY.count("anytime.race_winner_heuristic")
            else:
                TELEMETRY.count("anytime.race_winner_exact")
        if heuristic_wins:
            if ladder is not None:
                ladder.engage(
                    "mapping",
                    DegradationLadder.ANYTIME_HEURISTIC,
                    f"certified heuristic peak {best_certified['peak']}"
                    + (
                        f" beat exact {exact_peak}"
                        if exact_peak is not None
                        else " with no exact answer in budget"
                    ),
                )
            placements = dict(best_certified["placements"])
            return MappingResult(
                placements=placements,
                objective=int(best_certified["peak"]),
                mapper=self.name,
                used_overlaps=_used_overlaps(spec, ordered, placements),
                wall_time=wall,
                optimal=False,
                stats=stats,
            )
        return MappingResult(
            placements=built.extract_placements(solution),
            objective=int(exact_peak),
            mapper=self.name,
            used_overlaps=built.extract_overlaps(solution),
            wall_time=wall,
            optimal=solution.status is SolveStatus.OPTIMAL,
            stats=stats,
        )

    # -- the windowed race -----------------------------------------------

    def _race_windowed(
        self,
        spec: MappingSpec,
        deadline: Optional[Deadline],
        ladder: Optional[DegradationLadder],
    ) -> MappingResult:
        """Beyond ``ilp_task_limit``: race the rolling-horizon mapper.

        The monolithic model is out of reach here, so there is no
        completion/injection — the heuristic lane tracks its incumbents
        by ledger peak and the race is decided on raw objectives.  The
        windowed result keeps its own internal degradations; a
        heuristic win engages ``anytime_heuristic`` exactly like the
        monolithic race.
        """
        start = time.monotonic()
        backend = self._exact_backend(monolithic=False)
        ordered = sorted(spec.tasks, key=lambda t: (t.start, t.name))
        exact_mapper = WindowedILPMapper(
            window_size=self.window_size, backend=backend
        )
        # Crash-safety wiring rides along into every window solve.
        exact_mapper.journal = self.journal
        exact_mapper.supervisor = self.supervisor
        if not self.heuristic:
            return self._result_from_windowed(
                exact_mapper.map_tasks(spec, deadline=deadline, ladder=ladder),
                start,
            )

        stats: Dict[str, float] = {"injectable": 0.0}
        slot: Dict[str, object] = {}
        done = threading.Event()
        # The lane gets a private ladder so an abandoned thread cannot
        # keep appending events to the run's report after we returned;
        # its rungs merge into the real ladder once it finishes.
        lane_ladder = DegradationLadder(deadline=deadline)

        def exact_lane() -> None:
            try:
                slot["result"] = exact_mapper.map_tasks(
                    spec, deadline=deadline, ladder=lane_ladder
                )
            except Exception as exc:  # noqa: BLE001 - reported via slot
                slot["error"] = exc
            finally:
                done.set()

        # Non-daemon on purpose: the lane is deadline-bounded, and a
        # daemon thread still inside a solver at interpreter shutdown
        # can abort the whole process.
        thread = threading.Thread(target=exact_lane, name="anytime-exact")
        thread.start()

        best: Dict[str, object] = {}

        def track(placements: Dict[str, Placement], peak: int) -> None:
            if not best or peak < best["peak"]:
                best.update(
                    placements=dict(placements),
                    peak=peak,
                    seconds=time.monotonic() - start,
                )

        try:
            greedy = GreedyMapper().map_tasks(spec, deadline=deadline)
            stats["first_feasible_seconds"] = time.monotonic() - start
            placements = dict(greedy.placements)
            track(placements, greedy.objective)
            max_rounds = self.lns_max_rounds
            if max_rounds is None and deadline is None:
                max_rounds = _UNBOUNDED_LNS_ROUNDS
            lns = LargeNeighborhoodSearch(spec, seed=self.seed)
            stats.update(lns.run(
                placements,
                deadline=deadline,
                max_rounds=max_rounds,
                stall_limit=self.lns_stall_limit,
                should_stop=done.is_set,
                on_improve=track,
            ))
        except SynthesisError:
            pass  # heuristic lane dead: the exact lane alone decides

        timeout = None
        if deadline is not None:
            timeout = deadline.remaining() + _JOIN_GRACE
        thread.join(timeout)
        stats["exact_abandoned"] = float(thread.is_alive())
        exact = slot.get("result") if not thread.is_alive() else None
        if not thread.is_alive() and ladder is not None:
            # Telemetry already counted when the lane engaged its rungs.
            ladder.report.events.extend(lane_ladder.report.events)

        wall = time.monotonic() - start
        if TELEMETRY.enabled:
            TELEMETRY.count("anytime.races")
            TELEMETRY.count(
                "anytime.lns_rounds", int(stats.get("lns_rounds", 0))
            )
        if exact is not None and (not best or exact.objective <= best["peak"]):
            if TELEMETRY.enabled:
                TELEMETRY.count("anytime.race_winner_exact")
            stats["race_winner_heuristic"] = 0.0
            merged = dict(exact.stats)
            merged.update(stats)
            return MappingResult(
                placements=exact.placements,
                objective=exact.objective,
                mapper=self.name,
                used_overlaps=exact.used_overlaps,
                wall_time=wall,
                optimal=exact.optimal,
                stats=merged,
            )
        if not best:
            error = slot.get("error")
            if isinstance(error, Exception):
                raise error
            raise SynthesisError(
                "anytime race produced no solution inside the budget"
            )
        if TELEMETRY.enabled:
            TELEMETRY.count("anytime.race_winner_heuristic")
        if ladder is not None:
            ladder.engage(
                "mapping",
                DegradationLadder.ANYTIME_HEURISTIC,
                f"heuristic peak {best['peak']}"
                + (
                    f" beat windowed {exact.objective}"
                    if exact is not None
                    else " with no exact answer in budget"
                ),
            )
        stats["race_winner_heuristic"] = 1.0
        stats["heuristic_objective"] = float(best["peak"])
        stats["seconds_to_best_certified"] = float(best["seconds"])
        placements = dict(best["placements"])
        return MappingResult(
            placements=placements,
            objective=int(best["peak"]),
            mapper=self.name,
            used_overlaps=_used_overlaps(spec, ordered, placements),
            wall_time=wall,
            optimal=False,
            stats=stats,
        )

    @staticmethod
    def _result_from_windowed(result: MappingResult, start: float) -> MappingResult:
        result.stats["race_winner_heuristic"] = 0.0
        result.wall_time = time.monotonic() - start
        return result
