"""Mappers: solve the dynamic-device mapping problem.

Three interchangeable engines (see DESIGN.md §3.2):

* :class:`ILPMapper` — the paper's monolithic ILP, solved exactly.
  Used for small cases (PCR-scale) and as the ground truth in tests.
* :class:`WindowedILPMapper` — rolling horizon: operations are
  processed in start-time order in windows; each window solves the
  *same* ILP with earlier placements committed as constants.  This is
  the default for the larger benchmark assays, where the monolithic
  model is out of reach for an open-source MIP stack.
* :class:`GreedyMapper` — a fast deterministic balancer: each operation
  takes the feasible placement minimizing the resulting maximum valve
  load.  Serves as a lower baseline and as the fallback when a window
  turns out infeasible.

Refinement bookkeeping is incremental: a :class:`LoadLedger` keeps the
per-valve load map, the peak and the peak-cell set in sync with the
current placements in O(ring) per change, instead of rebuilding the
whole map from every placement on every probe.  The naive rebuild
helpers are kept as reference implementations; tests and the benchmark
suite assert the ledger matches them exactly.

Every mapper fills :attr:`MappingResult.stats` with solve telemetry
(window solve time, greedy fallbacks, refinement accept/reject tallies)
and mirrors it into :mod:`repro.obs` when telemetry is enabled.

Failure handling follows the degradation ladder (DESIGN.md §9): a
window whose ILP solve fails is split in half and re-solved exactly
(``window_shrink``), then falls back to the greedy balancer for that
window only (``window_greedy``); a broken refinement process pool
re-solves only the failed windows serially (``pool_serial``); an
expired mapping deadline finishes the remaining tasks greedily and
skips refinement (``deadline_greedy``).  Every mapper accepts an
optional :class:`repro.resilience.Deadline` (propagated into solver
time limits) and :class:`repro.resilience.DegradationLadder` (which
records the rungs taken).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SolverError, SynthesisError, WorkerCrashError
from repro.geometry import Point
from repro.architecture.device import Placement
from repro.ilp.solution import SolveStatus
from repro.obs import TELEMETRY
from repro.resilience import Deadline, DegradationLadder
from repro.resilience.faults import FAULTS
from repro.core.mapping_model import MappingModelBuilder, MappingSpec, Pair
from repro.core.tasks import MappingTask

#: Per-future wait cap in the parallel refinement path when no window
#: time limit bounds the worker (a hung worker must never block forever).
_DEFAULT_FUTURE_TIMEOUT = 300.0

#: Sentinel marking a speculative window whose future failed (pool
#: crash / timeout): the apply loop re-solves exactly these serially.
_SERIAL_RETRY = object()


def _solve_spec_job(payload):
    """Supervised-worker entry point: one exact solve of a full spec.

    Top-level and picklable, like :func:`_solve_window_job`.  The
    worker's mapper gets no journal and no supervisor (no recursive
    supervision, no journal writes from children — the parent records
    the result it receives); deterministic failures propagate back as
    exceptions through the supervisor's result channel.
    """
    spec, backend, limit, solver_kwargs = payload
    return ILPMapper(
        backend=backend, time_limit=limit, **solver_kwargs
    ).map_tasks(spec)


def _solve_window_job(payload):
    """Process-pool entry point: solve one refinement window.

    Runs in a worker process, so it must be a picklable top-level
    function.  Returns the window's :class:`MappingResult`, or ``None``
    when the window is infeasible even for the greedy fallback (the
    caller keeps the old placement — refinement is opportunistic).
    Deadlines are not shipped across the process boundary (monotonic
    clocks differ); the parent bakes its remaining budget into
    ``limit`` instead.
    """
    spec, window, ordered, placements, discouraged, backend, limit = payload
    mapper = WindowedILPMapper(backend=backend, time_limit_per_window=limit)
    try:
        return mapper._solve_window(
            spec, window, ordered, placements, discouraged=discouraged
        )
    except SynthesisError:
        return None


@dataclass
class MappingResult:
    """Placements for every task plus solve diagnostics."""

    placements: Dict[str, Placement]
    objective: int  # max pump load achieved (setting-1 rates)
    mapper: str
    used_overlaps: List[Pair] = field(default_factory=list)
    wall_time: float = 0.0
    optimal: bool = False
    #: solve telemetry: window solve seconds, greedy fallback count,
    #: refinement accept/reject tallies, ... (mapper-specific keys).
    stats: Dict[str, float] = field(default_factory=dict)

    def rect_of(self, name: str):
        return self.placements[name].rect


class LoadLedger:
    """Incremental per-valve pump-load bookkeeping.

    Maintains exactly the map that
    :meth:`WindowedILPMapper._cell_loads` rebuilds from scratch — the
    spec's base load plus every placed task's pump rate on its ring —
    but updated in O(ring) on :meth:`add`/:meth:`remove`.  Cells are
    bucketed by load level, so ``peak()`` costs O(distinct levels) and
    ``peak_cells()`` O(|cells at the peak|) instead of a full-map scan.
    """

    __slots__ = ("_base", "_load", "_levels")

    def __init__(self, base_load: Dict[Point, int]) -> None:
        self._base = frozenset(base_load)
        self._load: Dict[Point, int] = dict(base_load)
        self._levels: Dict[int, set] = {}
        for cell, level in self._load.items():
            self._levels.setdefault(level, set()).add(cell)

    @classmethod
    def from_placements(
        cls,
        spec: MappingSpec,
        ordered: List[MappingTask],
        placements: Dict[str, Placement],
    ) -> "LoadLedger":
        ledger = cls(spec.base_load)
        for task in ordered:
            placement = placements.get(task.name)
            if placement is not None:
                ledger.add(task, placement)
        return ledger

    # -- updates ---------------------------------------------------------

    def add(self, task: MappingTask, placement: Placement) -> None:
        self._shift(placement.pump_cells(), task.pump_rate)

    def remove(self, task: MappingTask, placement: Placement) -> None:
        self._shift(placement.pump_cells(), -task.pump_rate)

    def _shift(self, cells: Iterable[Point], delta: int) -> None:
        if delta == 0:
            # A zero-rate contribution must leave no trace, exactly like
            # the from-scratch rebuild (which also skips it) — otherwise
            # add/remove churn and the rebuild disagree on which cells
            # exist at load 0 (see tests/core/test_ledger_consistency.py).
            return
        load, levels = self._load, self._levels
        for cell in cells:
            old = load.get(cell)
            if old is not None:
                bucket = levels[old]
                bucket.discard(cell)
                if not bucket:
                    del levels[old]
            new = (old or 0) + delta
            if new == 0 and cell not in self._base:
                # Drop the entry so the map stays identical to a from-
                # scratch rebuild (absent, not present-at-zero).
                if old is not None:
                    del load[cell]
            else:
                load[cell] = new
                levels.setdefault(new, set()).add(cell)

    # -- queries ---------------------------------------------------------

    def peak(self) -> int:
        """The maximum load over all tracked valves (0 when empty)."""
        return max(self._levels) if self._levels else 0

    def measure(self) -> Tuple[int, int]:
        """(max load, #valves at the max) — lexicographic progress."""
        if not self._levels:
            return (0, 0)
        peak = max(self._levels)
        return (peak, len(self._levels[peak]))

    def peak_cells(self) -> frozenset:
        """Every valve currently at the maximum load."""
        if not self._levels:
            return frozenset()
        return frozenset(self._levels[max(self._levels)])

    def loads(self) -> Dict[Point, int]:
        """A copy of the full load map (for tests and reports)."""
        return dict(self._load)


def window_subspec(
    spec: MappingSpec,
    window: List[MappingTask],
    ordered: List[MappingTask],
    placements: Dict[str, Placement],
    discouraged: frozenset = frozenset(),
) -> MappingSpec:
    """A sub-problem over ``window``: every other placed task fixed.

    Placed tasks outside the window become :class:`DynamicDevice`
    constants and their pump rates fold into ``base_load``, so the
    sub-problem's objective is the true whole-chip peak.  Shared by the
    rolling-horizon mapper's windows and by the LNS repair step
    (:mod:`repro.core.lns`), which re-places a destroyed task set
    against everything it kept.
    """
    from repro.architecture.device import DynamicDevice

    fixed: Dict[str, DynamicDevice] = dict(spec.fixed)
    base_load: Dict[Point, int] = dict(spec.base_load)
    window_names = {t.name for t in window}
    for task in ordered:
        placement = placements.get(task.name)
        if placement is None or task.name in window_names:
            continue
        fixed[task.name] = DynamicDevice(
            operation=task.name,
            placement=placement,
            start=task.start,
            end=task.end,
            mix_start=task.mix_start,
        )
        for cell in placement.pump_cells():
            base_load[cell] = base_load.get(cell, 0) + task.pump_rate
    return MappingSpec(
        grid=spec.grid,
        tasks=window,
        fixed=fixed,
        base_load=base_load,
        forbidden_overlaps=set(spec.forbidden_overlaps),
        blocked_cells=spec.blocked_cells,
        anchor_stride=spec.anchor_stride,
        distance_limit=spec.distance_limit,
        allow_storage_overlap=spec.allow_storage_overlap,
        routing_convenient=spec.routing_convenient,
        parent_pairs=set(spec.parent_pairs),
        discouraged_cells=discouraged,
        health=spec.health,
    )


class BaseMapper:
    """Common interface: :meth:`map_tasks` on a :class:`MappingSpec`.

    ``deadline`` bounds the solve (propagated into solver time limits
    and loop checks); ``ladder`` records any degradation rungs taken.
    Both default to None — unbudgeted, unrecorded — so existing callers
    are unaffected.

    ``journal`` / ``supervisor`` opt the mapper into the crash-safety
    machinery of DESIGN.md §14: a
    :class:`repro.resilience.CheckpointJournal` replays certified
    solutions for byte-identical subproblems (and records new ones),
    a :class:`repro.resilience.WorkerSupervisor` moves exact solves
    into watched subprocesses.  Both default to None — no journal, no
    supervision — and are plain attributes so the synthesizer can wire
    them onto whatever mapper the configuration resolved.
    """

    name = "base"
    journal = None
    supervisor = None

    def map_tasks(
        self,
        spec: MappingSpec,
        *,
        deadline: Optional[Deadline] = None,
        ladder: Optional[DegradationLadder] = None,
    ) -> MappingResult:
        raise NotImplementedError


class ILPMapper(BaseMapper):
    """The monolithic ILP of Section 3.2, solved to optimality."""

    name = "ilp"

    def __init__(
        self,
        backend: str = "auto",
        time_limit: Optional[float] = None,
        **solver_kwargs,
    ) -> None:
        self.backend = backend
        self.time_limit = time_limit
        self.solver_kwargs = solver_kwargs

    def map_tasks(
        self,
        spec: MappingSpec,
        *,
        deadline: Optional[Deadline] = None,
        ladder: Optional[DegradationLadder] = None,
    ) -> MappingResult:
        if self.journal is not None:
            replayed = self.journal.replay(spec)
            if replayed is not None:
                return replayed
        limit = self.time_limit
        if deadline is not None:
            limit = deadline.limit(limit)
        if self.supervisor is not None:
            result = self._map_supervised(spec, limit, deadline, ladder)
        else:
            result = self._map_inline(spec, limit)
        if self.journal is not None:
            self.journal.record(spec, result)
        return result

    def _map_supervised(
        self,
        spec: MappingSpec,
        limit: Optional[float],
        deadline: Optional[Deadline],
        ladder: Optional[DegradationLadder],
    ) -> MappingResult:
        """One supervised solve, falling back in-process on exhaustion.

        The worker re-raises deterministic failures (an infeasible
        window raises :class:`SynthesisError` here exactly as the
        inline path would); only lost workers — crash, hang, RSS kill —
        exhaust the supervisor's retries, engage ``worker_serial`` and
        re-run the solve unsupervised.
        """
        payload = (spec, self.backend, limit, self.solver_kwargs)
        try:
            result = self.supervisor.run(
                _solve_spec_job, payload, deadline=deadline, label=self.name
            )
        except WorkerCrashError as crash:
            if ladder is not None:
                ladder.engage(
                    "mapping",
                    DegradationLadder.WORKER_SERIAL,
                    f"supervised solve lost ({crash}); re-solving in-process",
                )
            if TELEMETRY.enabled:
                TELEMETRY.count("supervisor.serial_fallbacks")
            result = self._map_inline(spec, limit)
            result.stats["worker_serial"] = 1.0
            return result
        result.stats["supervised"] = 1.0
        return result

    def _map_inline(
        self, spec: MappingSpec, limit: Optional[float]
    ) -> MappingResult:
        start = time.monotonic()
        built = MappingModelBuilder(spec).build()
        solution = built.model.solve(
            backend=self.backend,
            time_limit=limit,
            **self.solver_kwargs,
        )
        if not solution.status.has_solution:
            raise SynthesisError(
                f"dynamic-device mapping ILP is {solution.status.value} "
                f"({built.model!r})"
            )
        placements = built.extract_placements(solution)
        wall = time.monotonic() - start
        if TELEMETRY.enabled:
            TELEMETRY.count("mapper.ilp_solves")
            TELEMETRY.add_time("mapper.ilp_solve", wall)
        stats: Dict[str, float] = {
            "solve_seconds": wall,
            "solver_nodes": float(solution.nodes_explored),
        }
        for key, value in solution.stats.items():
            stats[f"solver_{key}"] = float(value)
        return MappingResult(
            placements=placements,
            objective=int(round(solution.value(built.w))),
            mapper=self.name,
            used_overlaps=built.extract_overlaps(solution),
            wall_time=wall,
            optimal=solution.status is SolveStatus.OPTIMAL,
            stats=stats,
        )


class WindowedILPMapper(BaseMapper):
    """Rolling-horizon ILP: exact model, committed prefix.

    Tasks sorted by (start, name) are solved ``window_size`` at a time;
    placements of earlier windows enter later windows as fixed devices
    with their accumulated pump load.  On an infeasible window (the
    committed prefix can paint the ILP into a corner) the window falls
    back to the greedy balancer, which ignores no constraint but
    searches placement-by-placement.

    With ``parallel=True`` the refinement passes solve their windows
    speculatively in a process pool: every window of a pass is solved
    against the pass-start placement snapshot, then the results are
    applied one by one in the usual deterministic window order, each
    candidate re-validated against the *live* placements (a candidate
    that now overlaps a device an earlier window moved is discarded as
    stale, keeping the old placement).  The rolling pass and the
    targeted rounds stay serial — each step there feeds the next.  Any
    pool failure falls back to the serial path; results remain
    deterministic for a given configuration, though ``parallel=True``
    may accept different (equally valid) refinements than serial mode
    because speculative solves see the snapshot, not the evolving state.
    """

    name = "windowed_ilp"

    def __init__(
        self,
        window_size: int = 5,
        backend: str = "scipy",
        time_limit_per_window: Optional[float] = 20.0,
        refine_passes: int = 2,
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> None:
        if window_size < 1:
            raise SynthesisError("window size must be at least 1")
        self.window_size = window_size
        self.backend = backend
        self.time_limit_per_window = time_limit_per_window
        self.refine_passes = refine_passes
        self.parallel = parallel
        self.max_workers = max_workers

    def map_tasks(
        self,
        spec: MappingSpec,
        *,
        deadline: Optional[Deadline] = None,
        ladder: Optional[DegradationLadder] = None,
    ) -> MappingResult:
        start_time = time.monotonic()
        stats: Dict[str, float] = {
            "windows_solved": 0,
            "window_seconds": 0.0,
            "greedy_windows": 0,
            "window_shrinks": 0,
            "whole_problem_fallback": 0,
            "deadline_greedy": 0,
            "refine_probes": 0,
            "refine_accepted": 0,
            "refine_rejected": 0,
            "refine_infeasible": 0,
            "targeted_rounds": 0,
            "targeted_accepted": 0,
            "parallel_windows": 0,
            "parallel_stale": 0,
            "parallel_fallback": 0,
            "pool_serial_windows": 0,
            "pool_recreated": 0,
            "pool_failures": 0,
        }
        executor = None
        if self.parallel:
            try:
                from concurrent.futures import ProcessPoolExecutor

                executor = ProcessPoolExecutor(max_workers=self.max_workers)
            except (ImportError, OSError, ValueError):
                stats["parallel_fallback"] = 1
        try:
            result = self._rolling_and_refine(
                spec, stats, executor, deadline=deadline, ladder=ladder
            )
        except SynthesisError as error:
            # A window dead-ended (the committed prefix saturated the
            # grid for some window split).  The one-task-at-a-time
            # greedy search is strictly more flexible about splits, so
            # use it for the whole problem rather than fail.
            stats["whole_problem_fallback"] = 1
            if ladder is not None:
                ladder.engage(
                    "mapping", DegradationLadder.WHOLE_GREEDY, str(error)
                )
            result = GreedyMapper().map_tasks(spec)
        finally:
            if executor is not None:
                # cancel_futures: a hung or crashed worker must not
                # block shutdown forever.
                executor.shutdown(cancel_futures=True)
        result.wall_time = time.monotonic() - start_time
        result.stats.update(stats)
        if TELEMETRY.enabled:
            TELEMETRY.count("mapper.windows", int(stats["windows_solved"]))
            TELEMETRY.count(
                "mapper.greedy_fallbacks",
                int(stats["greedy_windows"] + stats["whole_problem_fallback"]),
            )
            TELEMETRY.count(
                "mapper.refine_accepted", int(stats["refine_accepted"])
            )
            TELEMETRY.count(
                "mapper.refine_rejected", int(stats["refine_rejected"])
            )
            TELEMETRY.count(
                "mapper.targeted_rounds", int(stats["targeted_rounds"])
            )
            TELEMETRY.count(
                "mapper.parallel_windows", int(stats["parallel_windows"])
            )
            TELEMETRY.count(
                "mapper.parallel_stale", int(stats["parallel_stale"])
            )
            TELEMETRY.count(
                "mapper.window_shrinks", int(stats["window_shrinks"])
            )
            TELEMETRY.count(
                "mapper.pool_serial_windows",
                int(stats["pool_serial_windows"]),
            )
            TELEMETRY.add_time(
                "mapper.window_solve",
                stats["window_seconds"],
                int(stats["windows_solved"]),
            )
        return result

    def _rolling_and_refine(
        self,
        spec: MappingSpec,
        stats: Dict[str, float],
        executor=None,
        deadline: Optional[Deadline] = None,
        ladder: Optional[DegradationLadder] = None,
    ) -> MappingResult:
        ordered = sorted(spec.tasks, key=lambda t: (t.start, t.name))
        placements: Dict[str, Placement] = {}
        overlaps: List[Pair] = []
        all_optimal = True

        def merge_overlaps(result: MappingResult) -> None:
            nonlocal overlaps
            overlaps = [
                p
                for p in overlaps
                if p[1] not in result.placements
                and p[0] not in result.placements
            ] + result.used_overlaps

        # Rolling-horizon pass: windows in start order, earlier windows
        # committed as constants.  When the deadline expires mid-roll,
        # the remaining tasks are placed in one greedy sweep — degraded
        # but bounded (ladder rung ``deadline_greedy``).
        for lo in range(0, len(ordered), self.window_size):
            if deadline is not None and deadline.expired:
                rest = ordered[lo:]
                stats["deadline_greedy"] = 1
                if ladder is not None:
                    ladder.engage(
                        "mapping",
                        DegradationLadder.DEADLINE_GREEDY,
                        f"{len(rest)} tasks placed greedily after budget "
                        "expiry",
                    )
                result = GreedyMapper().map_tasks(
                    self._window_spec(spec, rest, ordered, placements)
                )
                all_optimal = False
                merge_overlaps(result)
                for task in rest:
                    placements[task.name] = result.placements[task.name]
                break
            window = ordered[lo : lo + self.window_size]
            result = self._solve_window(
                spec, window, ordered, placements, stats=stats,
                deadline=deadline, ladder=ladder,
            )
            if result.mapper == GreedyMapper.name or not result.optimal:
                all_optimal = False
            merge_overlaps(result)
            for task in window:
                placements[task.name] = result.placements[task.name]

        # From here on every probe keeps the ledger in sync with
        # ``placements`` — no full load-map rebuilds.
        ledger = LoadLedger.from_placements(spec, ordered, placements)

        def pop_window(window: List[MappingTask]) -> Dict[str, Placement]:
            saved = {}
            for task in window:
                placement = placements.pop(task.name)
                saved[task.name] = placement
                ledger.remove(task, placement)
            return saved

        def restore(saved: Dict[str, Placement], window) -> None:
            placements.update(saved)
            for task in window:
                ledger.add(task, saved[task.name])

        def commit(result: MappingResult, window) -> Dict[str, Placement]:
            new = {t.name: result.placements[t.name] for t in window}
            placements.update(new)
            for task in window:
                ledger.add(task, new[task.name])
            return new

        def roll_back(new, saved, window) -> None:
            for task in window:
                ledger.remove(task, new[task.name])
            restore(saved, window)

        # Pool-failure recovery state: one recreate per map_tasks call,
        # then serial for good.  The recreated pool is owned here (the
        # caller's ``finally`` only knows the original), hence the
        # ``try``/``finally`` around the refinement loops.
        pool_failures = 0
        pool_recreates_left = 1
        recreated_pool = None

        try:
            # Refinement: coordinate descent over windows, now with *all*
            # other placements fixed.  Each window re-solve can only keep or
            # lower the maximum load (its previous assignment stays
            # feasible); a window whose re-solve fails keeps its old
            # placement (refinement is opportunistic).  Passes alternate the
            # window offset so wear stacked across an unlucky rolling-pass
            # window boundary is also re-optimized jointly.
            for pass_index in range(self.refine_passes):
                if deadline is not None and deadline.expired:
                    break  # refinement is optional polish; the roll stands
                offset = (self.window_size // 2) if pass_index % 2 == 0 else 0
                windows = self._refine_windows(ordered, offset)
                speculative: Optional[List] = None
                if executor is not None and len(windows) > 1:
                    speculative, pool_exc = self._speculate(
                        executor, spec, windows, ordered, placements,
                        ledger, stats, deadline=deadline,
                    )
                    if pool_exc is not None:
                        # Pool died (worker crash, hung future, pickling
                        # trouble): the windows whose futures completed keep
                        # their speculative results and only the failed ones
                        # re-solve serially.  The pool itself is recreated
                        # once (a single crashed worker should not cost the
                        # rest of the run its parallelism); a second failure
                        # degrades the remaining passes to serial for good.
                        pool_failures += 1
                        stats["pool_failures"] = pool_failures
                        crash = WorkerCrashError(
                            f"refinement pool failed on pass {pass_index}: "
                            f"{pool_exc}",
                            attempts=pool_failures,
                            outcomes=("pool",) * pool_failures,
                        )
                        executor.shutdown(cancel_futures=True)
                        executor = None
                        if pool_recreates_left > 0:
                            pool_recreates_left -= 1
                            try:
                                from concurrent.futures import (
                                    ProcessPoolExecutor,
                                )

                                executor = recreated_pool = ProcessPoolExecutor(
                                    max_workers=self.max_workers
                                )
                            except (ImportError, OSError, ValueError):
                                executor = None
                        if executor is not None:
                            stats["pool_recreated"] = 1
                            if TELEMETRY.enabled:
                                TELEMETRY.count("mapper.pool_recreated")
                            if ladder is not None:
                                ladder.engage(
                                    "pool",
                                    DegradationLadder.WORKER_RETRY,
                                    f"{crash}; pool recreated",
                                )
                        else:
                            stats["parallel_fallback"] = 1
                            if ladder is not None:
                                ladder.engage(
                                    "pool",
                                    DegradationLadder.POOL_SERIAL,
                                    f"{crash}; re-solving failed windows "
                                    "serially",
                                )
                for index, window in enumerate(windows):
                    if deadline is not None and deadline.expired:
                        break
                    stats["refine_probes"] += 1
                    discouraged = ledger.peak_cells()
                    previous_peak = ledger.peak()
                    saved = pop_window(window)
                    saved_overlaps = list(overlaps)
                    serial_retry = (
                        speculative is None
                        or speculative[index] is _SERIAL_RETRY
                    )
                    if serial_retry and speculative is not None:
                        stats["pool_serial_windows"] += 1
                    if not serial_retry:
                        result = speculative[index]
                        if result is None:
                            stats["refine_infeasible"] += 1
                            restore(saved, window)
                            continue
                        if not self._applies_cleanly(
                            spec, window, ordered, placements, result
                        ):
                            # An earlier window of this pass moved a device
                            # the speculative solve assumed fixed.
                            stats["parallel_stale"] += 1
                            restore(saved, window)
                            continue
                    else:
                        try:
                            result = self._solve_window(
                                spec, window, ordered, placements,
                                discouraged=discouraged, stats=stats,
                                deadline=deadline, ladder=ladder,
                            )
                        except SynthesisError:
                            stats["refine_infeasible"] += 1
                            restore(saved, window)
                            continue
                    merge_overlaps(result)
                    new = commit(result, window)
                    if ledger.peak() > previous_peak:
                        stats["refine_rejected"] += 1
                        roll_back(new, saved, window)  # keep the better one
                        overlaps = saved_overlaps
                    else:
                        stats["refine_accepted"] += 1

            # Targeted refinement: repeatedly re-solve the tasks that pump
            # the worst-loaded valve *together*.  Wear stacking is a
            # same-cell phenomenon, so this attacks exactly the group the
            # fixed window partitions may have split.  Progress is measured
            # lexicographically — (max load, number of valves at the max) —
            # so plateau moves that thin out the set of critical valves
            # still count as improvements.
            for _ in range(2 * len(ordered)):
                if deadline is not None and deadline.expired:
                    break
                measure = ledger.measure()
                discouraged = ledger.peak_cells()
                worst_cell = min(discouraged, default=None)
                culprits = [
                    task
                    for task in ordered
                    if worst_cell is not None
                    and worst_cell in placements[task.name].pump_cells()
                ]
                if len(culprits) < 2:
                    break
                stats["targeted_rounds"] += 1
                window = culprits[: self.window_size]
                saved = pop_window(window)
                saved_overlaps = list(overlaps)
                try:
                    result = self._solve_window(
                        spec, window, ordered, placements,
                        discouraged=discouraged, stats=stats,
                        deadline=deadline, ladder=ladder,
                    )
                except SynthesisError:
                    restore(saved, window)
                    break
                merge_overlaps(result)
                new = commit(result, window)
                if ledger.measure() >= measure:
                    roll_back(new, saved, window)  # no improvement: stop
                    overlaps = saved_overlaps
                    break
                stats["targeted_accepted"] += 1

            return MappingResult(
                placements=placements,
                objective=ledger.peak(),
                mapper=self.name,
                used_overlaps=sorted(set(overlaps)),
                optimal=all_optimal and len(ordered) <= self.window_size,
            )
        finally:
            if recreated_pool is not None:
                recreated_pool.shutdown(cancel_futures=True)

    # -- reference implementations ---------------------------------------
    #
    # The naive rebuild-from-scratch helpers below define the semantics
    # the incremental LoadLedger must reproduce; tests and the benchmark
    # suite diff the two.  The refinement loops above no longer call
    # them.

    @staticmethod
    def _cell_loads(
        spec: MappingSpec,
        ordered: List[MappingTask],
        placements: Dict[str, Placement],
    ) -> Dict[Point, int]:
        load: Dict[Point, int] = dict(spec.base_load)
        for task in ordered:
            placement = placements.get(task.name)
            if placement is None or task.pump_rate == 0:
                continue
            for cell in placement.pump_cells():
                load[cell] = load.get(cell, 0) + task.pump_rate
        return load

    @classmethod
    def _load_measure(
        cls,
        spec: MappingSpec,
        ordered: List[MappingTask],
        placements: Dict[str, Placement],
    ) -> Tuple[int, int]:
        """(max load, #valves at the max) — lexicographic progress."""
        load = cls._cell_loads(spec, ordered, placements)
        if not load:
            return (0, 0)
        peak = max(load.values())
        return (peak, sum(1 for v in load.values() if v == peak))

    @classmethod
    def _max_load_cells(
        cls,
        spec: MappingSpec,
        ordered: List[MappingTask],
        placements: Dict[str, Placement],
    ) -> frozenset:
        load = cls._cell_loads(spec, ordered, placements)
        if not load:
            return frozenset()
        peak = max(load.values())
        return frozenset(c for c, v in load.items() if v == peak)

    @staticmethod
    def _tasks_on_worst_valve(
        spec: MappingSpec,
        ordered: List[MappingTask],
        placements: Dict[str, Placement],
    ) -> List[MappingTask]:
        """Tasks whose pump rings cover the most-loaded valve."""
        load: Dict[Point, int] = dict(spec.base_load)
        for task in ordered:
            for cell in placements[task.name].pump_cells():
                load[cell] = load.get(cell, 0) + task.pump_rate
        if not load:
            return []
        worst_cell = max(sorted(load), key=lambda c: load[c])
        return [
            task
            for task in ordered
            if worst_cell in placements[task.name].pump_cells()
        ]

    # -- parallel refinement ----------------------------------------------

    def _refine_windows(
        self, ordered: List[MappingTask], offset: int
    ) -> List[List[MappingTask]]:
        """The (disjoint) windows of one refinement pass, in apply order."""
        starts = list(range(offset, len(ordered), self.window_size))
        if offset:
            starts = [0] + starts
        windows: List[List[MappingTask]] = []
        for lo in starts:
            hi = min(lo + self.window_size, len(ordered))
            if lo == 0 and offset:
                hi = offset
            window = ordered[lo:hi]
            if window:
                windows.append(window)
        return windows

    def _speculate(
        self,
        executor,
        spec: MappingSpec,
        windows: List[List[MappingTask]],
        ordered: List[MappingTask],
        placements: Dict[str, Placement],
        ledger: LoadLedger,
        stats: Dict[str, float],
        deadline: Optional[Deadline] = None,
    ) -> Tuple[List, bool]:
        """Solve every window of a pass in the pool, against a snapshot.

        All solves see the same pass-start placements and discouraged
        cells; ``_solve_window`` already excludes each window's own
        tasks from the fixed set, so the snapshot can be passed whole.

        Returns ``(results, pool_exc)`` — ``pool_exc`` is None while the
        pool is healthy, else the first failure (``BrokenProcessPool``,
        a timed-out future, a submit error).  Recovery is
        window-granular: each future is waited on with its own timeout,
        and the first pool failure marks that window — and any still
        pending after it — as :data:`_SERIAL_RETRY` while the windows
        already gathered keep their results.  The caller re-solves only
        the marked windows serially.
        """
        from concurrent.futures import TimeoutError as FutureTimeout
        from concurrent.futures.process import BrokenProcessPool

        start = time.perf_counter()
        snapshot = dict(placements)
        discouraged = ledger.peak_cells()
        limit = self.time_limit_per_window
        if deadline is not None:
            limit = deadline.limit(limit)
        # A worker may legitimately need longer than the ILP limit (the
        # greedy fallback runs after it), but a hung worker must not
        # stall the pass: wait a bounded multiple of the solve limit.
        wait = (
            _DEFAULT_FUTURE_TIMEOUT
            if limit is None
            else max(2.0 * limit + 10.0, 15.0)
        )
        results: List = []
        pool_exc: Optional[BaseException] = None
        futures = []
        try:
            futures = [
                executor.submit(
                    _solve_window_job,
                    (
                        spec, window, ordered, snapshot, discouraged,
                        self.backend, limit,
                    ),
                )
                for window in windows
            ]
        except (BrokenProcessPool, OSError, RuntimeError) as exc:
            pool_exc = exc
        for future in futures:
            if pool_exc is not None:
                future.cancel()
                results.append(_SERIAL_RETRY)
                continue
            try:
                if FAULTS.armed and FAULTS.should_fire("mapper.pool"):
                    raise BrokenProcessPool(
                        "injected process-pool failure (chaos test)"
                    )
                results.append(future.result(timeout=wait))
            except (BrokenProcessPool, FutureTimeout, OSError,
                    RuntimeError) as exc:
                pool_exc = exc
                results.append(_SERIAL_RETRY)
        while len(results) < len(windows):
            results.append(_SERIAL_RETRY)
        solved = [r for r in results if r is not _SERIAL_RETRY]
        stats["windows_solved"] += len(solved)
        stats["parallel_windows"] += len(solved)
        stats["greedy_windows"] += sum(
            1
            for r in solved
            if r is not None and r.mapper == GreedyMapper.name
        )
        stats["window_seconds"] += time.perf_counter() - start
        return results, pool_exc

    @staticmethod
    def _applies_cleanly(
        spec: MappingSpec,
        window: List[MappingTask],
        ordered: List[MappingTask],
        placements: Dict[str, Placement],
        result: MappingResult,
    ) -> bool:
        """Is a speculative window result still valid against ``placements``?

        Re-checks the hard non-overlap constraint against the *live*
        placements of every task outside the window (window-internal and
        fixed-device relations were solved jointly and cannot go stale).
        Parent-proximity is soft here, as in the greedy mapper: a parent
        moved by an earlier window only lengthens a route.
        """
        window_names = {t.name for t in window}
        others = [
            t
            for t in ordered
            if t.name not in window_names and t.name in placements
        ]
        for task in window:
            rect = result.placements[task.name].rect
            for other in others:
                if not (task.start < other.end and other.start < task.end):
                    continue
                if not rect.overlaps(placements[other.name].rect):
                    continue
                pair = spec.storage_pair(task.name, other.name)
                if (
                    pair is not None
                    and spec.allow_storage_overlap
                    and pair not in spec.forbidden_overlaps
                ):
                    continue
                return False
        return True

    def _window_spec(
        self,
        spec: MappingSpec,
        window: List[MappingTask],
        ordered: List[MappingTask],
        placements: Dict[str, Placement],
        discouraged: frozenset = frozenset(),
    ) -> MappingSpec:
        """The window's sub-problem: every placed task fixed as a constant."""
        return window_subspec(spec, window, ordered, placements, discouraged)

    def _ilp(self, limit: Optional[float]) -> ILPMapper:
        """An inner exact mapper carrying this mapper's crash-safety wiring.

        The journal and supervisor ride along so every serial window
        solve is checkpointed/supervised; pool workers build their own
        ``WindowedILPMapper`` (see :func:`_solve_window_job`) and get
        neither.
        """
        mapper = ILPMapper(backend=self.backend, time_limit=limit)
        mapper.journal = self.journal
        mapper.supervisor = self.supervisor
        return mapper

    def _solve_window(
        self,
        spec: MappingSpec,
        window: List[MappingTask],
        ordered: List[MappingTask],
        placements: Dict[str, Placement],
        discouraged: frozenset = frozenset(),
        stats: Optional[Dict[str, float]] = None,
        deadline: Optional[Deadline] = None,
        ladder: Optional[DegradationLadder] = None,
    ) -> MappingResult:
        """Solve one window, descending the ladder on failure.

        1. the window's exact ILP (time-limited by the deadline);
        2. ``window_shrink`` — split the window in half, solve each
           half exactly (the first half commits before the second);
        3. ``window_greedy`` — the greedy balancer for this window
           only (raises :class:`SynthesisError` when even that is
           infeasible; the caller owns the next rung).
        """
        window_start = time.perf_counter()
        limit = self.time_limit_per_window
        if deadline is not None:
            limit = deadline.limit(limit)
        window_spec = self._window_spec(
            spec, window, ordered, placements, discouraged
        )
        result: Optional[MappingResult] = None
        try:
            result = self._ilp(limit).map_tasks(
                window_spec, deadline=deadline, ladder=ladder
            )
        except (SynthesisError, SolverError) as error:
            if len(window) > 1 and (deadline is None or not deadline.expired):
                if stats is not None:
                    stats["window_shrinks"] += 1
                if ladder is not None:
                    ladder.engage(
                        "mapping",
                        DegradationLadder.WINDOW_SHRINK,
                        f"window of {len(window)} split after: {error}",
                    )
                result = self._solve_shrunk(
                    spec, window, ordered, placements, discouraged, deadline
                )
        if result is None:
            if ladder is not None:
                ladder.engage(
                    "mapping",
                    DegradationLadder.WINDOW_GREEDY,
                    f"greedy fallback for window of {len(window)}",
                )
            result = GreedyMapper().map_tasks(window_spec)
        if stats is not None:
            stats["windows_solved"] += 1
            stats["window_seconds"] += time.perf_counter() - window_start
            if result.mapper == GreedyMapper.name:
                stats["greedy_windows"] += 1
        return result

    def _solve_shrunk(
        self,
        spec: MappingSpec,
        window: List[MappingTask],
        ordered: List[MappingTask],
        placements: Dict[str, Placement],
        discouraged: frozenset,
        deadline: Optional[Deadline],
    ) -> Optional[MappingResult]:
        """The ``window_shrink`` rung: two exact half-window solves.

        A timed-out or infeasible full window often splits into two
        tractable halves (half the binaries, half the disjunctions).
        Returns None when either half fails — the caller then takes the
        greedy rung.
        """
        mid = len(window) // 2
        staged = dict(placements)
        merged: Dict[str, Placement] = {}
        overlaps: List[Pair] = []
        objective = 0
        for half in (window[:mid], window[mid:]):
            limit = self.time_limit_per_window
            if deadline is not None:
                limit = deadline.limit(limit)
            half_spec = self._window_spec(
                spec, half, ordered, staged, discouraged
            )
            try:
                result = self._ilp(limit).map_tasks(
                    half_spec, deadline=deadline
                )
            except (SynthesisError, SolverError):
                return None
            for task in half:
                placement = result.placements[task.name]
                staged[task.name] = placement
                merged[task.name] = placement
            overlaps.extend(result.used_overlaps)
            objective = max(objective, result.objective)
        return MappingResult(
            placements=merged,
            objective=objective,
            mapper=ILPMapper.name,
            used_overlaps=overlaps,
            optimal=False,  # solved as halves, not jointly
        )

    @staticmethod
    def _total_objective(
        spec: MappingSpec,
        ordered: List[MappingTask],
        placements: Dict[str, Placement],
    ) -> int:
        load: Dict[Point, int] = dict(spec.base_load)
        for task in ordered:
            for cell in placements[task.name].pump_cells():
                load[cell] = load.get(cell, 0) + task.pump_rate
        return max(load.values(), default=0)


class GreedyMapper(BaseMapper):
    """Deterministic greedy balancer.

    Tasks in (start, name) order take the placement minimizing, in
    lexicographic order: the resulting maximum pump load on the ring,
    the total pre-existing load under the ring (prefer fresh valves),
    the gap to committed parent devices, then corner coordinates and
    type index (determinism).  Non-overlap with temporally intersecting
    committed devices is a hard filter; the (parent, child)
    storage-overlap permission mirrors the ILP's c5.

    The routing-convenient distance limit is *two-tier*: placements
    within distance ``d`` of every committed parent are strictly
    preferred, but when none exists (greedy commitment of the parents
    can make the limit unsatisfiable, unlike in the joint ILP) the limit
    is dropped for that operation — the Dijkstra router still connects
    the devices, only over a longer path.
    """

    name = "greedy"

    def map_tasks(
        self,
        spec: MappingSpec,
        *,
        deadline: Optional[Deadline] = None,
        ladder: Optional[DegradationLadder] = None,
    ) -> MappingResult:
        # The greedy balancer is itself the bottom of the ladder: it
        # never degrades further, and one placement sweep is far below
        # any sane budget, so the deadline is accepted but not polled.
        from repro.architecture.device import DynamicDevice

        start_time = time.monotonic()
        ordered = sorted(spec.tasks, key=lambda t: (t.start, t.name))
        committed: Dict[str, DynamicDevice] = dict(spec.fixed)
        base_load: Dict[Point, int] = dict(spec.base_load)
        placements: Dict[str, Placement] = {}
        overlaps: List[Pair] = []
        d = spec.resolved_distance_limit()
        candidates_scanned = 0

        for task in ordered:
            # Two candidate tiers: within the distance limit / anywhere.
            best_key: Dict[bool, Optional[tuple]] = {True: None, False: None}
            best: Dict[bool, Optional[Placement]] = {True: None, False: None}
            best_overlaps: Dict[bool, List[Pair]] = {True: [], False: []}
            for placement in spec.candidate_placements(task):
                candidates_scanned += 1
                rect = placement.rect
                pair_overlaps: List[Pair] = []
                feasible = True
                for other_name, device in committed.items():
                    if not (task.start < device.end and device.start < task.end):
                        continue
                    if not rect.overlaps(device.rect):
                        continue
                    pair = spec.storage_pair(task.name, other_name)
                    if (
                        pair is not None
                        and spec.allow_storage_overlap
                        and pair not in spec.forbidden_overlaps
                    ):
                        pair_overlaps.append(pair)
                        continue
                    feasible = False
                    break
                if not feasible:
                    continue
                near = d is None or self._near_parents(task, rect, committed, d)
                ring = placement.pump_cells()
                peak = max(base_load.get(c, 0) + task.pump_rate for c in ring)
                reuse = sum(base_load.get(c, 0) for c in ring)
                gap = self._parent_gap(task, rect, committed)
                contact = self._foreign_contact(task, rect, committed)
                key = (
                    peak,
                    reuse,
                    len(pair_overlaps),
                    gap,
                    contact,
                    rect.x,
                    rect.y,
                    placement.device_type.index,
                )
                if best_key[near] is None or key < best_key[near]:
                    best_key[near] = key
                    best[near] = placement
                    best_overlaps[near] = pair_overlaps
            tier = True if best[True] is not None else False
            if best[tier] is None:
                raise SynthesisError(
                    f"greedy mapper found no feasible placement for "
                    f"{task.name} on the {spec.grid.width}x"
                    f"{spec.grid.height} grid"
                )
            chosen, chosen_overlaps = best[tier], best_overlaps[tier]
            placements[task.name] = chosen
            overlaps.extend(chosen_overlaps)
            committed[task.name] = DynamicDevice(
                operation=task.name,
                placement=chosen,
                start=task.start,
                end=task.end,
                mix_start=task.mix_start,
            )
            for cell in chosen.pump_cells():
                base_load[cell] = base_load.get(cell, 0) + task.pump_rate

        wall = time.monotonic() - start_time
        if TELEMETRY.enabled:
            TELEMETRY.count("mapper.greedy_solves")
            TELEMETRY.count("mapper.greedy_candidates", candidates_scanned)
            TELEMETRY.add_time("mapper.greedy_solve", wall)
        return MappingResult(
            placements=placements,
            objective=max(base_load.values(), default=0),
            mapper=self.name,
            used_overlaps=overlaps,
            wall_time=wall,
            optimal=False,
            stats={"candidates_scanned": float(candidates_scanned)},
        )

    @staticmethod
    def _near_parents(task, rect, committed, d: int) -> bool:
        for parent in task.mix_parents:
            device = committed.get(parent)
            if device is not None and not rect.within_distance(device.rect, d):
                return False
        return True

    @staticmethod
    def _parent_gap(task, rect, committed) -> int:
        """Total boundary gap to committed parents (soft proximity)."""
        return sum(
            rect.gap_distance(committed[parent].rect)
            for parent in task.mix_parents
            if parent in committed
        )

    @staticmethod
    def _foreign_contact(task, rect, committed) -> int:
        """Area shared between this device's margin and non-parent devices.

        Flush placement against unrelated concurrent devices builds
        solid walls that can disconnect the routing grid; penalizing the
        contact keeps one-cell corridors open (the ILP avoids this
        implicitly through its joint placement freedom).
        """
        margin = rect.expanded(1)
        contact = 0
        for name, device in committed.items():
            if name in task.mix_parents:
                continue
            if task.start < device.end and device.start < task.end:
                contact += margin.overlap_area(device.rect)
        return contact
