"""Mappers: solve the dynamic-device mapping problem.

Three interchangeable engines (see DESIGN.md §3.2):

* :class:`ILPMapper` — the paper's monolithic ILP, solved exactly.
  Used for small cases (PCR-scale) and as the ground truth in tests.
* :class:`WindowedILPMapper` — rolling horizon: operations are
  processed in start-time order in windows; each window solves the
  *same* ILP with earlier placements committed as constants.  This is
  the default for the larger benchmark assays, where the monolithic
  model is out of reach for an open-source MIP stack.
* :class:`GreedyMapper` — a fast deterministic balancer: each operation
  takes the feasible placement minimizing the resulting maximum valve
  load.  Serves as a lower baseline and as the fallback when a window
  turns out infeasible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SynthesisError
from repro.geometry import Point
from repro.architecture.device import Placement
from repro.ilp.solution import SolveStatus
from repro.core.mapping_model import MappingModelBuilder, MappingSpec, Pair
from repro.core.tasks import MappingTask


@dataclass
class MappingResult:
    """Placements for every task plus solve diagnostics."""

    placements: Dict[str, Placement]
    objective: int  # max pump load achieved (setting-1 rates)
    mapper: str
    used_overlaps: List[Pair] = field(default_factory=list)
    wall_time: float = 0.0
    optimal: bool = False

    def rect_of(self, name: str):
        return self.placements[name].rect


class BaseMapper:
    """Common interface: :meth:`map_tasks` on a :class:`MappingSpec`."""

    name = "base"

    def map_tasks(self, spec: MappingSpec) -> MappingResult:
        raise NotImplementedError


class ILPMapper(BaseMapper):
    """The monolithic ILP of Section 3.2, solved to optimality."""

    name = "ilp"

    def __init__(
        self,
        backend: str = "auto",
        time_limit: Optional[float] = None,
        **solver_kwargs,
    ) -> None:
        self.backend = backend
        self.time_limit = time_limit
        self.solver_kwargs = solver_kwargs

    def map_tasks(self, spec: MappingSpec) -> MappingResult:
        start = time.monotonic()
        built = MappingModelBuilder(spec).build()
        solution = built.model.solve(
            backend=self.backend,
            time_limit=self.time_limit,
            **self.solver_kwargs,
        )
        if not solution.status.has_solution:
            raise SynthesisError(
                f"dynamic-device mapping ILP is {solution.status.value} "
                f"({built.model!r})"
            )
        placements = built.extract_placements(solution)
        return MappingResult(
            placements=placements,
            objective=int(round(solution.value(built.w))),
            mapper=self.name,
            used_overlaps=built.extract_overlaps(solution),
            wall_time=time.monotonic() - start,
            optimal=solution.status is SolveStatus.OPTIMAL,
        )


class WindowedILPMapper(BaseMapper):
    """Rolling-horizon ILP: exact model, committed prefix.

    Tasks sorted by (start, name) are solved ``window_size`` at a time;
    placements of earlier windows enter later windows as fixed devices
    with their accumulated pump load.  On an infeasible window (the
    committed prefix can paint the ILP into a corner) the window falls
    back to the greedy balancer, which ignores no constraint but
    searches placement-by-placement.
    """

    name = "windowed_ilp"

    def __init__(
        self,
        window_size: int = 5,
        backend: str = "scipy",
        time_limit_per_window: Optional[float] = 20.0,
        refine_passes: int = 2,
    ) -> None:
        if window_size < 1:
            raise SynthesisError("window size must be at least 1")
        self.window_size = window_size
        self.backend = backend
        self.time_limit_per_window = time_limit_per_window
        self.refine_passes = refine_passes

    def map_tasks(self, spec: MappingSpec) -> MappingResult:
        start_time = time.monotonic()
        try:
            result = self._rolling_and_refine(spec)
        except SynthesisError:
            # A window dead-ended (the committed prefix saturated the
            # grid for some window split).  The one-task-at-a-time
            # greedy search is strictly more flexible about splits, so
            # use it for the whole problem rather than fail.
            result = GreedyMapper().map_tasks(spec)
        result.wall_time = time.monotonic() - start_time
        return result

    def _rolling_and_refine(self, spec: MappingSpec) -> MappingResult:
        ordered = sorted(spec.tasks, key=lambda t: (t.start, t.name))
        placements: Dict[str, Placement] = {}
        overlaps: List[Pair] = []
        all_optimal = True

        def merge_overlaps(result: MappingResult) -> None:
            nonlocal overlaps
            overlaps = [
                p
                for p in overlaps
                if p[1] not in result.placements
                and p[0] not in result.placements
            ] + result.used_overlaps

        # Rolling-horizon pass: windows in start order, earlier windows
        # committed as constants.
        for lo in range(0, len(ordered), self.window_size):
            window = ordered[lo : lo + self.window_size]
            result = self._solve_window(spec, window, ordered, placements)
            if result.mapper == GreedyMapper.name or not result.optimal:
                all_optimal = False
            merge_overlaps(result)
            for task in window:
                placements[task.name] = result.placements[task.name]

        # Refinement: coordinate descent over windows, now with *all*
        # other placements fixed.  Each window re-solve can only keep or
        # lower the maximum load (its previous assignment stays
        # feasible); a window whose re-solve fails keeps its old
        # placement (refinement is opportunistic).  Passes alternate the
        # window offset so wear stacked across an unlucky rolling-pass
        # window boundary is also re-optimized jointly.
        for pass_index in range(self.refine_passes):
            offset = (self.window_size // 2) if pass_index % 2 == 0 else 0
            starts = list(range(offset, len(ordered), self.window_size))
            if offset:
                starts = [0] + starts
            for lo in starts:
                hi = min(lo + self.window_size, len(ordered))
                if lo == 0 and offset:
                    hi = offset
                window = ordered[lo:hi]
                if not window:
                    continue
                discouraged = self._max_load_cells(spec, ordered, placements)
                saved = {t.name: placements.pop(t.name) for t in window}
                saved_overlaps = list(overlaps)
                try:
                    result = self._solve_window(
                        spec, window, ordered, placements,
                        discouraged=discouraged,
                    )
                except SynthesisError:
                    placements.update(saved)
                    continue
                merge_overlaps(result)
                new = {t.name: result.placements[t.name] for t in window}
                placements.update(new)
                if self._total_objective(
                    spec, ordered, placements
                ) > self._total_objective(
                    spec, ordered, {**placements, **saved}
                ):
                    placements.update(saved)  # keep the better assignment
                    overlaps = saved_overlaps

        # Targeted refinement: repeatedly re-solve the tasks that pump
        # the worst-loaded valve *together*.  Wear stacking is a
        # same-cell phenomenon, so this attacks exactly the group the
        # fixed window partitions may have split.  Progress is measured
        # lexicographically — (max load, number of valves at the max) —
        # so plateau moves that thin out the set of critical valves
        # still count as improvements.
        for _ in range(2 * len(ordered)):
            measure = self._load_measure(spec, ordered, placements)
            culprits = self._tasks_on_worst_valve(spec, ordered, placements)
            if len(culprits) < 2:
                break
            window = culprits[: self.window_size]
            discouraged = self._max_load_cells(spec, ordered, placements)
            saved = {t.name: placements.pop(t.name) for t in window}
            saved_overlaps = list(overlaps)
            try:
                result = self._solve_window(
                    spec, window, ordered, placements,
                    discouraged=discouraged,
                )
            except SynthesisError:
                placements.update(saved)
                break
            merge_overlaps(result)
            placements.update(
                {t.name: result.placements[t.name] for t in window}
            )
            if self._load_measure(spec, ordered, placements) >= measure:
                placements.update(saved)  # no improvement: stop
                overlaps = saved_overlaps
                break

        objective = self._total_objective(spec, ordered, placements)
        return MappingResult(
            placements=placements,
            objective=objective,
            mapper=self.name,
            used_overlaps=sorted(set(overlaps)),
            optimal=all_optimal and len(ordered) <= self.window_size,
        )

    @staticmethod
    def _cell_loads(
        spec: MappingSpec,
        ordered: List[MappingTask],
        placements: Dict[str, Placement],
    ) -> Dict[Point, int]:
        load: Dict[Point, int] = dict(spec.base_load)
        for task in ordered:
            placement = placements.get(task.name)
            if placement is None:
                continue
            for cell in placement.pump_cells():
                load[cell] = load.get(cell, 0) + task.pump_rate
        return load

    @classmethod
    def _load_measure(
        cls,
        spec: MappingSpec,
        ordered: List[MappingTask],
        placements: Dict[str, Placement],
    ) -> Tuple[int, int]:
        """(max load, #valves at the max) — lexicographic progress."""
        load = cls._cell_loads(spec, ordered, placements)
        if not load:
            return (0, 0)
        peak = max(load.values())
        return (peak, sum(1 for v in load.values() if v == peak))

    @classmethod
    def _max_load_cells(
        cls,
        spec: MappingSpec,
        ordered: List[MappingTask],
        placements: Dict[str, Placement],
    ) -> frozenset:
        load = cls._cell_loads(spec, ordered, placements)
        if not load:
            return frozenset()
        peak = max(load.values())
        return frozenset(c for c, v in load.items() if v == peak)

    @staticmethod
    def _tasks_on_worst_valve(
        spec: MappingSpec,
        ordered: List[MappingTask],
        placements: Dict[str, Placement],
    ) -> List[MappingTask]:
        """Tasks whose pump rings cover the most-loaded valve."""
        load: Dict[Point, int] = dict(spec.base_load)
        for task in ordered:
            for cell in placements[task.name].pump_cells():
                load[cell] = load.get(cell, 0) + task.pump_rate
        if not load:
            return []
        worst_cell = max(sorted(load), key=lambda c: load[c])
        return [
            task
            for task in ordered
            if worst_cell in placements[task.name].pump_cells()
        ]

    def _solve_window(
        self,
        spec: MappingSpec,
        window: List[MappingTask],
        ordered: List[MappingTask],
        placements: Dict[str, Placement],
        discouraged: frozenset = frozenset(),
    ) -> MappingResult:
        """Solve one window with every placed task fixed as a constant."""
        from repro.architecture.device import DynamicDevice

        fixed: Dict[str, DynamicDevice] = dict(spec.fixed)
        base_load: Dict[Point, int] = dict(spec.base_load)
        window_names = {t.name for t in window}
        for task in ordered:
            placement = placements.get(task.name)
            if placement is None or task.name in window_names:
                continue
            fixed[task.name] = DynamicDevice(
                operation=task.name,
                placement=placement,
                start=task.start,
                end=task.end,
                mix_start=task.mix_start,
            )
            for cell in placement.pump_cells():
                base_load[cell] = base_load.get(cell, 0) + task.pump_rate
        window_spec = MappingSpec(
            grid=spec.grid,
            tasks=window,
            fixed=fixed,
            base_load=base_load,
            forbidden_overlaps=set(spec.forbidden_overlaps),
            blocked_cells=spec.blocked_cells,
            anchor_stride=spec.anchor_stride,
            distance_limit=spec.distance_limit,
            allow_storage_overlap=spec.allow_storage_overlap,
            routing_convenient=spec.routing_convenient,
            parent_pairs=set(spec.parent_pairs),
            discouraged_cells=discouraged,
        )
        try:
            return ILPMapper(
                backend=self.backend,
                time_limit=self.time_limit_per_window,
            ).map_tasks(window_spec)
        except SynthesisError:
            return GreedyMapper().map_tasks(window_spec)

    @staticmethod
    def _total_objective(
        spec: MappingSpec,
        ordered: List[MappingTask],
        placements: Dict[str, Placement],
    ) -> int:
        load: Dict[Point, int] = dict(spec.base_load)
        for task in ordered:
            for cell in placements[task.name].pump_cells():
                load[cell] = load.get(cell, 0) + task.pump_rate
        return max(load.values(), default=0)


class GreedyMapper(BaseMapper):
    """Deterministic greedy balancer.

    Tasks in (start, name) order take the placement minimizing, in
    lexicographic order: the resulting maximum pump load on the ring,
    the total pre-existing load under the ring (prefer fresh valves),
    the gap to committed parent devices, then corner coordinates and
    type index (determinism).  Non-overlap with temporally intersecting
    committed devices is a hard filter; the (parent, child)
    storage-overlap permission mirrors the ILP's c5.

    The routing-convenient distance limit is *two-tier*: placements
    within distance ``d`` of every committed parent are strictly
    preferred, but when none exists (greedy commitment of the parents
    can make the limit unsatisfiable, unlike in the joint ILP) the limit
    is dropped for that operation — the Dijkstra router still connects
    the devices, only over a longer path.
    """

    name = "greedy"

    def map_tasks(self, spec: MappingSpec) -> MappingResult:
        from repro.architecture.device import DynamicDevice

        start_time = time.monotonic()
        ordered = sorted(spec.tasks, key=lambda t: (t.start, t.name))
        committed: Dict[str, DynamicDevice] = dict(spec.fixed)
        base_load: Dict[Point, int] = dict(spec.base_load)
        placements: Dict[str, Placement] = {}
        overlaps: List[Pair] = []
        d = spec.resolved_distance_limit()

        for task in ordered:
            # Two candidate tiers: within the distance limit / anywhere.
            best_key: Dict[bool, Optional[tuple]] = {True: None, False: None}
            best: Dict[bool, Optional[Placement]] = {True: None, False: None}
            best_overlaps: Dict[bool, List[Pair]] = {True: [], False: []}
            for placement in spec.candidate_placements(task):
                rect = placement.rect
                pair_overlaps: List[Pair] = []
                feasible = True
                for other_name, device in committed.items():
                    if not (task.start < device.end and device.start < task.end):
                        continue
                    if not rect.overlaps(device.rect):
                        continue
                    pair = spec.storage_pair(task.name, other_name)
                    if (
                        pair is not None
                        and spec.allow_storage_overlap
                        and pair not in spec.forbidden_overlaps
                    ):
                        pair_overlaps.append(pair)
                        continue
                    feasible = False
                    break
                if not feasible:
                    continue
                near = d is None or self._near_parents(task, rect, committed, d)
                ring = placement.pump_cells()
                peak = max(base_load.get(c, 0) + task.pump_rate for c in ring)
                reuse = sum(base_load.get(c, 0) for c in ring)
                gap = self._parent_gap(task, rect, committed)
                contact = self._foreign_contact(task, rect, committed)
                key = (
                    peak,
                    reuse,
                    len(pair_overlaps),
                    gap,
                    contact,
                    rect.x,
                    rect.y,
                    placement.device_type.index,
                )
                if best_key[near] is None or key < best_key[near]:
                    best_key[near] = key
                    best[near] = placement
                    best_overlaps[near] = pair_overlaps
            tier = True if best[True] is not None else False
            if best[tier] is None:
                raise SynthesisError(
                    f"greedy mapper found no feasible placement for "
                    f"{task.name} on the {spec.grid.width}x"
                    f"{spec.grid.height} grid"
                )
            chosen, chosen_overlaps = best[tier], best_overlaps[tier]
            placements[task.name] = chosen
            overlaps.extend(chosen_overlaps)
            committed[task.name] = DynamicDevice(
                operation=task.name,
                placement=chosen,
                start=task.start,
                end=task.end,
                mix_start=task.mix_start,
            )
            for cell in chosen.pump_cells():
                base_load[cell] = base_load.get(cell, 0) + task.pump_rate

        return MappingResult(
            placements=placements,
            objective=max(base_load.values(), default=0),
            mapper=self.name,
            used_overlaps=overlaps,
            wall_time=time.monotonic() - start_time,
            optimal=False,
        )

    @staticmethod
    def _near_parents(task, rect, committed, d: int) -> bool:
        for parent in task.mix_parents:
            device = committed.get(parent)
            if device is not None and not rect.within_distance(device.rect, d):
                return False
        return True

    @staticmethod
    def _parent_gap(task, rect, committed) -> int:
        """Total boundary gap to committed parents (soft proximity)."""
        return sum(
            rect.gap_distance(committed[parent].rect)
            for parent in task.mix_parents
            if parent in committed
        )

    @staticmethod
    def _foreign_contact(task, rect, committed) -> int:
        """Area shared between this device's margin and non-parent devices.

        Flush placement against unrelated concurrent devices builds
        solid walls that can disconnect the routing grid; penalizing the
        contact keeps one-cell corridors open (the ILP avoids this
        implicitly through its joint placement freedom).
        """
        margin = rect.expanded(1)
        contact = 0
        for name, device in committed.items():
            if name in task.mix_parents:
                continue
            if task.start < device.end and device.start < task.end:
                contact += margin.overlap_area(device.rect)
        return contact
