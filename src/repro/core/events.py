"""Transport-event extraction (what the router must realize).

From the sequencing graph and schedule, every fluid movement on the
chip becomes a :class:`~repro.routing.path.TransportEvent`:

* **product transfer** — when a mix parent finishes, its product moves
  to the child's region (which is exactly then serving as the child's
  in-situ storage, or the child device itself);
* **input loading** — INPUT parents are pumped in from a chip input
  port when the mixing operation starts (input ports alternate
  round-robin, mirroring the two sample/reagent ports of the paper's
  PCR example);
* **product removal** — a mixing operation whose product is not
  consumed by another on-grid mixing operation sends it to an output
  port: at the consumer's start time for DETECT/OUTPUT children
  (detection happens off-grid at the port-side detector), at its own
  end otherwise.
"""

from __future__ import annotations

from typing import List

from repro.errors import SynthesisError
from repro.assay.schedule import Schedule
from repro.assay.sequencing_graph import SequencingGraph
from repro.architecture.chip import Chip
from repro.routing.path import TransportEvent
from repro.core.storage import product_volume


def build_transport_events(
    graph: SequencingGraph, schedule: Schedule, chip: Chip
) -> List[TransportEvent]:
    """All transports of the assay, in deterministic order."""
    inputs = chip.input_ports()
    outputs = chip.output_ports()
    if not inputs or not outputs:
        raise SynthesisError("the chip needs at least one input and one "
                             "output port for transport routing")

    events: List[TransportEvent] = []
    input_rr = 0
    for so in schedule.scheduled_mixes():
        name = so.name
        for parent in graph.parents(name):
            if parent.is_input:
                port = inputs[input_rr % len(inputs)]
                input_rr += 1
                events.append(
                    TransportEvent(
                        time=so.start,
                        source=port.name,
                        target=name,
                        source_is_port=True,
                        volume=product_volume(graph, name, parent.name),
                    )
                )
            elif parent.is_mix:
                events.append(
                    TransportEvent(
                        time=schedule.end(parent.name),
                        source=parent.name,
                        target=name,
                        volume=product_volume(graph, name, parent.name),
                    )
                )
        # Where does the product go?
        mix_children = [c for c in graph.children(name) if c.is_mix]
        if mix_children:
            continue  # consumed by later mixing operations (handled above)
        other_children = [c for c in graph.children(name) if not c.is_mix]
        if other_children:
            leave_at = min(schedule.start(c.name) for c in other_children)
        else:
            leave_at = so.end
        port = outputs[0]
        events.append(
            TransportEvent(
                time=leave_at,
                source=name,
                target=port.name,
                target_is_port=True,
                volume=so.operation.volume,
            )
        )
    events.sort(key=lambda e: (e.time, e.source, e.target))
    return events
