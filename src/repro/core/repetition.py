"""Wear leveling across repeated assay executions (extension).

The paper synthesizes one assay execution.  A chip that repeats the
same assay with the *same* placements concentrates wear on the same
valves every run; because the architecture is programmable, consecutive
runs can instead use *different* placements — the valve-role-changing
idea lifted to the run level.

:func:`plan_repetitions` synthesizes each run with the accumulated pump
load of all previous runs as the mapping model's base load, so the
optimizer steers new rings toward fresh valves.  The result is a longer
chip life than repeating one layout (quantified by
:func:`leveled_lifetime`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import SynthesisError
from repro.geometry import Point
from repro.assay.schedule import Schedule
from repro.assay.sequencing_graph import SequencingGraph
from repro.core.lifetime import DEFAULT_WEAR_BUDGET
from repro.core.mappers import GreedyMapper
from repro.core.mapping_model import MappingSpec
from repro.core.storage import StoragePlan
from repro.core.synthesis import SynthesisConfig
from repro.core.tasks import build_tasks


@dataclass
class RepetitionPlan:
    """Placements for every planned run plus the accumulated wear."""

    runs: List[Dict[str, object]]  # one placements dict per run
    load: Dict[Point, int]  # accumulated pump load per valve

    @property
    def run_count(self) -> int:
        return len(self.runs)

    @property
    def max_load(self) -> int:
        return max(self.load.values(), default=0)

    def wear_after(self, runs: int) -> int:
        """Max pump load after the first ``runs`` executions."""
        if not 0 <= runs <= len(self.runs):
            raise SynthesisError(f"plan has {len(self.runs)} runs, not {runs}")
        load: Dict[Point, int] = {}
        for placements in self.runs[:runs]:
            for name, placement in placements.items():
                rate = self._rates[name]
                for cell in placement.pump_cells():
                    load[cell] = load.get(cell, 0) + rate
        return max(load.values(), default=0)

    # filled by plan_repetitions
    _rates: Dict[str, int] = None  # type: ignore[assignment]


def plan_repetitions(
    graph: SequencingGraph,
    schedule: Schedule,
    config: SynthesisConfig,
    runs: int,
) -> RepetitionPlan:
    """Plan ``runs`` executions with run-to-run wear leveling.

    Each run maps the same tasks, but with all previous runs' pump wear
    as base load; the greedy balancer (fast, deterministic) then prefers
    fresh valves, rotating the layout around the grid.
    """
    if runs < 1:
        raise SynthesisError("need at least one run")
    tasks = build_tasks(graph, schedule)
    storage_plan = StoragePlan(graph, schedule)
    mapper = GreedyMapper()

    load: Dict[Point, int] = {}
    all_runs: List[Dict[str, object]] = []
    for _ in range(runs):
        spec = MappingSpec(
            grid=config.grid,
            tasks=tasks,
            base_load=dict(load),
            anchor_stride=config.anchor_stride,
            distance_limit=config.distance_limit,
            routing_convenient=config.routing_convenient,
            allow_storage_overlap=config.allow_storage_overlap,
        )
        result = mapper.map_tasks(spec)
        violations = storage_plan.overlap_violations(result.placements)
        if violations:
            spec.forbidden_overlaps |= violations
            result = mapper.map_tasks(spec)
        all_runs.append(result.placements)
        for task in tasks:
            for cell in result.placements[task.name].pump_cells():
                load[cell] = load.get(cell, 0) + task.pump_rate

    plan = RepetitionPlan(runs=all_runs, load=load)
    plan._rates = {t.name: t.pump_rate for t in tasks}
    return plan


def leveled_lifetime(
    graph: SequencingGraph,
    schedule: Schedule,
    config: SynthesisConfig,
    wear_budget: int = DEFAULT_WEAR_BUDGET,
    max_runs: int = 512,
) -> int:
    """Executions before the first valve exceeds the budget, with
    run-to-run leveling.  Compare against
    :func:`repro.core.lifetime.synthesis_lifetime` (fixed layout)."""
    tasks = build_tasks(graph, schedule)
    storage_plan = StoragePlan(graph, schedule)
    mapper = GreedyMapper()
    load: Dict[Point, int] = {}
    completed = 0
    while completed < max_runs:
        spec = MappingSpec(
            grid=config.grid,
            tasks=tasks,
            base_load=dict(load),
            anchor_stride=config.anchor_stride,
            distance_limit=config.distance_limit,
            routing_convenient=config.routing_convenient,
            allow_storage_overlap=config.allow_storage_overlap,
        )
        result = mapper.map_tasks(spec)
        violations = storage_plan.overlap_violations(result.placements)
        if violations:
            spec.forbidden_overlaps |= violations
            result = mapper.map_tasks(spec)
        new_load = dict(load)
        for task in tasks:
            for cell in result.placements[task.name].pump_cells():
                new_load[cell] = new_load.get(cell, 0) + task.pump_rate
        if max(new_load.values(), default=0) > wear_budget:
            break
        load = new_load
        completed += 1
    return completed
