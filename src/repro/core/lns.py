"""Large-neighborhood search over dynamic-device mappings.

The improvement lane of the anytime race (DESIGN.md §13).  Starting
from any feasible placement map, each round *destroys* a small task set
— the tasks pumping on a current peak valve, plus a few random extras
for diversification — and *repairs* it with the greedy balancer on the
same sub-problem construction the rolling-horizon mapper uses
(:func:`repro.core.mappers.window_subspec`), so the repair sees every
kept placement as a fixed device and the true whole-chip base load.

Acceptance is lexicographic on :meth:`LoadLedger.measure` — first the
peak pump load (the paper's objective), then the number of valves
sitting at that peak — mirroring the windowed mapper's refinement
rule.  Rejected repairs are reverted incrementally (O(ring) per task),
never by rebuilding the ledger.

The search is deterministic for a given ``seed``: destroy sets are
drawn from a private :class:`random.Random`, the repair is the
deterministic greedy balancer, and rounds stop on the deadline, the
round budget, or an optional external stop signal (the race sets one
when the exact lane finishes).
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional

from repro.architecture.device import Placement
from repro.errors import SynthesisError
from repro.resilience import Deadline
from repro.core.mapping_model import MappingSpec
from repro.core.mappers import GreedyMapper, LoadLedger, window_subspec
from repro.core.tasks import MappingTask

#: Most tasks destroyed per round.  Repair cost is roughly linear in
#: the destroy-set size while the chance a greedy repair beats the
#: incumbent drops sharply past a handful of freed tasks.
_DESTROY_CAP = 6

#: Random extra tasks destroyed alongside the peak culprits — the
#: diversification knob that keeps a deterministic repair from cycling.
_EXTRA_DESTROY = 2


class LargeNeighborhoodSearch:
    """Destroy/repair improvement over a feasible mapping.

    ``on_improve(placements, peak)`` fires after every accepted round
    with a *copy* of the improved placement map; the anytime race uses
    it to push incumbents at the exact lane without waiting for the
    search to finish.
    """

    def __init__(
        self,
        spec: MappingSpec,
        *,
        seed: int = 0,
        destroy_cap: int = _DESTROY_CAP,
        extra_destroy: int = _EXTRA_DESTROY,
    ) -> None:
        self.spec = spec
        self.ordered: List[MappingTask] = sorted(
            spec.tasks, key=lambda t: (t.start, t.name)
        )
        self.rng = random.Random(seed)
        self.destroy_cap = max(1, destroy_cap)
        self.extra_destroy = max(0, extra_destroy)

    # -- destroy ---------------------------------------------------------

    def _destroy_set(
        self,
        placements: Dict[str, Placement],
        ledger: LoadLedger,
    ) -> List[MappingTask]:
        """Tasks pumping on one random peak valve, plus random extras."""
        peak_cells = ledger.peak_cells()
        if not peak_cells:
            return []
        target = self.rng.choice(sorted(peak_cells))
        culprits = [
            task
            for task in self.ordered
            if task.pump_rate > 0
            and task.name in placements
            and target in placements[task.name].pump_cells()
        ]
        self.rng.shuffle(culprits)
        chosen = culprits[: self.destroy_cap]
        chosen_names = {t.name for t in chosen}
        extras = [
            task
            for task in self.ordered
            if task.name in placements and task.name not in chosen_names
        ]
        if extras and self.extra_destroy:
            chosen.extend(
                self.rng.sample(
                    extras, min(self.extra_destroy, len(extras))
                )
            )
        # Window order matters to the greedy repair: keep start order.
        chosen.sort(key=lambda t: (t.start, t.name))
        return chosen

    # -- the loop --------------------------------------------------------

    def run(
        self,
        placements: Dict[str, Placement],
        *,
        deadline: Optional[Deadline] = None,
        max_rounds: Optional[int] = None,
        stall_limit: Optional[int] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        on_improve: Optional[Callable[[Dict[str, Placement], int], None]] = None,
    ) -> Dict[str, float]:
        """Improve ``placements`` in place; return round statistics.

        Stops when the deadline expires, ``max_rounds`` is reached,
        ``stall_limit`` consecutive rounds fail to improve, or
        ``should_stop()`` turns true (checked once per round).  The
        input map always holds the best placements found — rejected
        rounds are fully reverted before the next one starts.
        """
        start = time.monotonic()
        ledger = LoadLedger.from_placements(self.spec, self.ordered, placements)
        best = ledger.measure()
        stall = 0
        stats = {
            "lns_rounds": 0.0,
            "lns_accepted": 0.0,
            "lns_repair_failures": 0.0,
            "lns_seconds": 0.0,
        }
        while True:
            if max_rounds is not None and stats["lns_rounds"] >= max_rounds:
                break
            if stall_limit is not None and stall >= stall_limit:
                break
            if deadline is not None and deadline.expired:
                break
            if should_stop is not None and should_stop():
                break
            window = self._destroy_set(placements, ledger)
            if not window:
                break
            stats["lns_rounds"] += 1
            saved = {t.name: placements.pop(t.name) for t in window}
            for task in window:
                ledger.remove(task, saved[task.name])
            sub = window_subspec(
                self.spec, window, self.ordered, placements,
                discouraged=ledger.peak_cells(),
            )
            try:
                repaired = GreedyMapper().map_tasks(sub, deadline=deadline)
            except SynthesisError:
                repaired = None
            if repaired is not None:
                for task in window:
                    placement = repaired.placements[task.name]
                    placements[task.name] = placement
                    ledger.add(task, placement)
                measure = ledger.measure()
                if measure < best:
                    best = measure
                    stall = 0
                    stats["lns_accepted"] += 1
                    if on_improve is not None:
                        on_improve(dict(placements), best[0])
                    continue
                # Not an improvement: revert incrementally.
                for task in window:
                    ledger.remove(task, placements.pop(task.name))
            else:
                stats["lns_repair_failures"] += 1
            stall += 1
            for name, placement in saved.items():
                placements[name] = placement
            for task in window:
                ledger.add(task, saved[task.name])
        stats["lns_seconds"] = time.monotonic() - start
        stats["lns_peak"] = float(best[0])
        return stats
