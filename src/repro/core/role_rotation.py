"""The valve-role-changing concept on a single mixer (Figures 2 & 3).

Section 2.2 introduces the idea on one rectangular mixer before the
full grid architecture: the mixer's ring valves take turns serving as
the three-valve peristaltic pump, so no valve accumulates the pump wear
of every operation.  This module reproduces that concept study:

* a dedicated mixer binds all pump wear to the same 3 valves
  (Figure 2(f): 80 per pump valve after two operations);
* a role-rotating mixer with 8 ring valves spreads it (Figure 3(b):
  largest count 48 after the same two operations — "the service life of
  this mixer is nearly doubled ... with 8 valves instead of 9").

Two pump-selection strategies are provided: the paper's Figure-3
assignment (:meth:`RoleRotatingMixer.run_fig3`), and a greedy rotation
(:meth:`RoleRotatingMixer.run_operation`) that picks the pump run
minimizing the projected maximum — the same objective the full ILP
optimizes, applied to one device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import ArchitectureError
from repro.baseline.dedicated import (
    CONTROL_ACTUATIONS_PER_OP,
    PUMP_ACTUATIONS_PER_OP,
    SHARED_CONTROL_ACTUATIONS_PER_OP,
)

#: A peristaltic pump needs three valves actuated in sequence.
PUMP_RUN_LENGTH = 3


@dataclass
class RoleRotatingMixer:
    """A fixed rectangular mixer whose ring valves rotate roles.

    ``ring_size`` valves form the circulation ring; ``ports`` are the
    ring indices of the fluid inlet/outlet (these work every operation:
    4 actuations, like the shared control valves of Figure 2(f); other
    non-pumping valves get 2).  Any valve, ports included, may serve in
    the pump run of an operation — that is the role change.
    """

    ring_size: int = 8
    ports: Tuple[int, int] = (1, 5)
    counts: List[int] = field(default_factory=list)
    pump_counts: List[int] = field(default_factory=list)
    operations_run: int = 0

    def __post_init__(self) -> None:
        if self.ring_size < PUMP_RUN_LENGTH + 1:
            raise ArchitectureError(
                f"ring of {self.ring_size} valves cannot host a "
                f"{PUMP_RUN_LENGTH}-valve pump and a flow path"
            )
        if any(not 0 <= p < self.ring_size for p in self.ports):
            raise ArchitectureError(f"ports {self.ports} outside the ring")
        if not self.counts:
            self.counts = [0] * self.ring_size
            self.pump_counts = [0] * self.ring_size

    # -- wear application ----------------------------------------------------

    def _apply(self, pump_run: Sequence[int]) -> None:
        run = set(pump_run)
        for i in range(self.ring_size):
            if i in run:
                self.counts[i] += PUMP_ACTUATIONS_PER_OP
                self.pump_counts[i] += PUMP_ACTUATIONS_PER_OP
            if i in self.ports:
                self.counts[i] += SHARED_CONTROL_ACTUATIONS_PER_OP
            elif i not in run:
                self.counts[i] += CONTROL_ACTUATIONS_PER_OP
        self.operations_run += 1

    def _run_at(self, start: int) -> List[int]:
        return [(start + k) % self.ring_size for k in range(PUMP_RUN_LENGTH)]

    # -- strategies ----------------------------------------------------------

    def run_operation(self) -> List[int]:
        """Greedy rotation: pump run minimizing the projected maximum.

        Ties break on smaller start index, so the rotation is
        deterministic.  Returns the chosen run.
        """
        best_start, best_key = 0, None
        for start in range(self.ring_size):
            run = set(self._run_at(start))
            projected = []
            for i in range(self.ring_size):
                value = self.counts[i]
                if i in run:
                    value += PUMP_ACTUATIONS_PER_OP
                if i in self.ports:
                    value += SHARED_CONTROL_ACTUATIONS_PER_OP
                elif i not in run:
                    value += CONTROL_ACTUATIONS_PER_OP
                projected.append(value)
            key = (max(projected), sum(self.counts[i] for i in run))
            if best_key is None or key < best_key:
                best_key, best_start = key, start
        run = self._run_at(best_start)
        self._apply(run)
        return run

    def run_fig3(self) -> None:
        """The two-operation assignment of Figure 3.

        Operation 1 pumps the run starting at the first port, operation
        2 the run starting at the second port; each port valve pumps in
        exactly one operation and serves as port in both, reaching
        40 + 4 + 4 = 48 actuations — the figure's largest count.
        """
        self._apply(self._run_at(self.ports[0]))
        self._apply(self._run_at(self.ports[1]))

    # -- metrics ---------------------------------------------------------------

    @property
    def max_actuations(self) -> int:
        return max(self.counts)

    @property
    def max_peristaltic(self) -> int:
        return max(self.pump_counts)

    @property
    def valve_count(self) -> int:
        return self.ring_size

    def role_changing_valves(self) -> int:
        """Valves that both pumped and served as control/port."""
        return sum(
            1
            for i in range(self.ring_size)
            if self.pump_counts[i] and self.counts[i] > self.pump_counts[i]
        )
