"""Mapping tasks: one per mixing operation.

A task bundles what the mapping model needs to know about an operation:
its volume class (which device types may realize it), its **device
interval** — from in-situ storage formation until operation end, the
lifetime during which its region occupies chip area (Section 3.3) — and
its mix parents (for storage-overlap permissions and the
routing-convenient constraints of Section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import SynthesisError
from repro.assay.schedule import Schedule
from repro.assay.sequencing_graph import SequencingGraph
from repro.core.rates import pump_rate_setting1


@dataclass(frozen=True)
class MappingTask:
    """One mixing operation, ready for dynamic-device mapping."""

    name: str
    volume: int
    pump_rate: int  # p_i of eq. (2), setting-1 value during synthesis
    start: int  # device-interval start (storage formation)
    mix_start: int  # operation start (STORAGE becomes MIXER here)
    end: int  # operation end (device dissolves)
    mix_parents: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.start <= self.mix_start < self.end:
            raise SynthesisError(
                f"{self.name}: inconsistent interval "
                f"({self.start}, {self.mix_start}, {self.end})"
            )

    @property
    def interval(self) -> Tuple[int, int]:
        """Half-open device lifetime ``[start, end)``."""
        return (self.start, self.end)

    @property
    def has_storage_phase(self) -> bool:
        return self.start < self.mix_start

    def overlaps_in_time(self, other: "MappingTask") -> bool:
        """Whether the two device lifetimes intersect (eq. 3 applies)."""
        return self.start < other.end and other.start < self.end


def build_tasks(graph: SequencingGraph, schedule: Schedule) -> List[MappingTask]:
    """Create mapping tasks for every mixing operation, by start time.

    The device interval is taken from
    :meth:`repro.assay.schedule.Schedule.device_interval`; the pump rate
    is the setting-1 value (the paper synthesizes under setting 1 and
    re-evaluates the same result under setting 2).
    """
    schedule.validate()
    tasks: List[MappingTask] = []
    for so in schedule.scheduled_mixes():
        op = so.operation
        begin, end = schedule.device_interval(op.name)
        parents = tuple(p.name for p in graph.mix_parents(op.name))
        tasks.append(
            MappingTask(
                name=op.name,
                volume=op.volume,
                pump_rate=pump_rate_setting1(op.volume),
                start=begin,
                mix_start=so.start,
                end=end,
                mix_parents=parents,
            )
        )
    return tasks
