"""Algorithm 1: the full reliability-aware synthesis pipeline."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.errors import RoutingError, SynthesisError
from repro.geometry import GridSpec
from repro.assay.schedule import Schedule
from repro.assay.sequencing_graph import SequencingGraph
from repro.architecture.chip import Chip
from repro.architecture.device import DynamicDevice
from repro.architecture.port import ChipPort
from repro.core.actuation import AccountingPolicy, ActuationAccountant
from repro.core.events import build_transport_events
from repro.core.mappers import (
    BaseMapper,
    ILPMapper,
    WindowedILPMapper,
)
from repro.core.mapping_model import MappingSpec, Pair
from repro.core.result import SettingMetrics, SynthesisMetrics, SynthesisResult
from repro.core.storage import StoragePlan
from repro.core.tasks import MappingTask, build_tasks
from repro.routing.router import Router, RoutingContext


@dataclass
class SynthesisConfig:
    """Tunable parameters of the synthesis.

    ``mapper=None`` selects automatically: the monolithic ILP up to
    ``ilp_task_limit`` mixing operations, the rolling-horizon windowed
    ILP beyond (see DESIGN.md §3.2).
    """

    grid: GridSpec
    mapper: Optional[BaseMapper] = None
    ports: Optional[List[ChipPort]] = None
    anchor_stride: int = 1
    distance_limit: Optional[int] = None
    routing_convenient: bool = True
    allow_storage_overlap: bool = True
    ilp_task_limit: int = 8
    ilp_backend: str = "scipy"
    window_size: int = 5
    max_algorithm_iterations: int = 25

    def resolve_mapper(self, n_tasks: int) -> BaseMapper:
        if self.mapper is not None:
            return self.mapper
        if n_tasks <= self.ilp_task_limit:
            return ILPMapper(backend=self.ilp_backend)
        return WindowedILPMapper(
            window_size=self.window_size, backend=self.ilp_backend
        )


class ReliabilitySynthesizer:
    """Maps a scheduled bioassay onto the valve-centered architecture.

    Implements Algorithm 1: repeated dynamic-device mapping until every
    in-situ storage overlap fits the available free space (L4–L9),
    transport routing with storage pass-through and rip-up (L10–L19),
    and removal of non-actuated virtual valves (L20) via the actuation
    accounting.
    """

    def __init__(self, config: SynthesisConfig) -> None:
        self.config = config

    def _map_with_storage_repair(
        self,
        tasks: List[MappingTask],
        storage_plan: StoragePlan,
        mapper: BaseMapper,
        blocked: frozenset,
    ):
        """Algorithm 1 L3-L9: map, check storage overlaps, repair."""
        config = self.config
        forbidden: Set[Pair] = set()
        iterations = 0
        while iterations < config.max_algorithm_iterations:
            iterations += 1
            spec = MappingSpec(
                grid=config.grid,
                tasks=tasks,
                forbidden_overlaps=set(forbidden),
                blocked_cells=blocked,
                anchor_stride=config.anchor_stride,
                distance_limit=config.distance_limit,
                routing_convenient=config.routing_convenient,
                allow_storage_overlap=config.allow_storage_overlap,
            )
            mapping = mapper.map_tasks(spec)
            violations = storage_plan.overlap_violations(mapping.placements)
            fresh = violations - forbidden
            if not fresh:
                return mapping, iterations
            forbidden |= fresh
        raise SynthesisError(
            "storage-overlap repair did not converge within "
            f"{config.max_algorithm_iterations} iterations"
        )

    def synthesize(
        self, graph: SequencingGraph, schedule: Schedule
    ) -> SynthesisResult:
        start_time = time.monotonic()
        config = self.config
        # L1-L2: read inputs, build the virtual valve architecture.
        graph.validate()
        schedule.validate()
        chip = Chip(config.grid, config.ports)
        tasks = build_tasks(graph, schedule)
        if not tasks:
            raise SynthesisError("the assay has no mixing operations to map")
        storage_plan = StoragePlan(graph, schedule)
        mapper = config.resolve_mapper(len(tasks))

        # Escalating placement reservations: 1) only the port cells;
        # 2) the full port neighborhoods (an enclosed port gets a
        # corridor); 3) the whole chip boundary ring (a guaranteed
        # ring corridor connecting every region and port).  Most runs
        # succeed on the first attempt with the best wear numbers; the
        # later attempts trade placement freedom for routability when a
        # mapper builds solid walls.
        port_cells = frozenset(p.position for p in chip.ports.values())
        port_areas = frozenset(
            cell
            for p in chip.ports.values()
            for cell in [p.position, *p.position.neighbors8()]
            if config.grid.in_bounds(cell)
        )
        boundary = frozenset(
            cell
            for cell in config.grid.cells()
            if cell.x in (0, config.grid.width - 1)
            or cell.y in (0, config.grid.height - 1)
        )
        attempts = [port_cells, port_areas, port_areas | boundary]
        last_error: Optional[RoutingError] = None
        for blocked in attempts:
            try:
                mapping, iterations = self._map_with_storage_repair(
                    tasks, storage_plan, mapper, blocked
                )
                devices: Dict[str, DynamicDevice] = {}
                for task in tasks:
                    devices[task.name] = DynamicDevice(
                        operation=task.name,
                        placement=mapping.placements[task.name],
                        start=task.start,
                        end=task.end,
                        mix_start=task.mix_start,
                    )
                # L10-L19: routing.
                events = build_transport_events(graph, schedule, chip)
                router = Router(
                    RoutingContext(
                        chip=chip,
                        devices=devices,
                        free_space=storage_plan.free_space,
                    )
                )
                routes = router.route_all(events)
                break
            except RoutingError as error:
                last_error = error
        else:
            raise SynthesisError(
                f"routing failed even with reserved port corridors: "
                f"{last_error}"
            )

        # L20 + evaluation: actuation accounting for both settings; the
        # non-actuated virtual valves simply never appear in the grids.
        grid1 = ActuationAccountant(
            config.grid, AccountingPolicy(setting=1)
        ).run(devices.values(), routes)
        grid2 = ActuationAccountant(
            config.grid, AccountingPolicy(setting=2)
        ).run(devices.values(), routes)

        metrics = SynthesisMetrics(
            setting1=SettingMetrics(
                1, grid1.max_total_actuations, grid1.max_peristaltic_actuations
            ),
            setting2=SettingMetrics(
                2, grid2.max_total_actuations, grid2.max_peristaltic_actuations
            ),
            used_valves=grid1.used_valve_count,
            role_changing_valves=len(grid1.role_changing_valves()),
            mapping_objective=mapping.objective,
            mapper=mapping.mapper,
            algorithm_iterations=iterations,
            wall_time=time.monotonic() - start_time,
        )
        return SynthesisResult(
            graph=graph,
            schedule=schedule,
            chip=chip,
            devices=devices,
            routes=routes,
            storage_plan=storage_plan,
            grid_setting1=grid1,
            grid_setting2=grid2,
            metrics=metrics,
        )
