"""Algorithm 1: the full reliability-aware synthesis pipeline.

Resilience (DESIGN.md §9): ``SynthesisConfig.time_budget`` turns into a
:class:`repro.resilience.Deadline` that bounds the whole run — the
mapping stage gets ``mapping_budget_fraction`` of it (propagated into
every window/ILP solver time limit), routing keeps the remainder (the
rip-up loop polls the parent deadline).  Stage failures descend the
:class:`repro.resilience.DegradationLadder` instead of aborting; every
rung taken is recorded in the :class:`ResilienceReport` attached to
``SynthesisResult.resilience``, and a degraded run emits one
:class:`DegradedResultWarning`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import (
    CertificationError,
    DegradedResultWarning,
    RoutingError,
    SolverError,
    SynthesisError,
    TimeLimitError,
)
from repro.geometry import GridSpec
from repro.assay.schedule import Schedule
from repro.assay.sequencing_graph import SequencingGraph
from repro.architecture.chip import Chip
from repro.architecture.device import DynamicDevice
from repro.architecture.health import ChipHealth
from repro.architecture.port import ChipPort
from repro.core.actuation import AccountingPolicy, ActuationAccountant
from repro.core.events import build_transport_events
from repro.core.anytime import AnytimeMapper
from repro.core.mappers import (
    BaseMapper,
    GreedyMapper,
    ILPMapper,
    WindowedILPMapper,
)
from repro.core.mapping_model import MappingSpec, Pair
from repro.core.result import SettingMetrics, SynthesisMetrics, SynthesisResult
from repro.core.storage import StoragePlan
from repro.core.tasks import MappingTask, build_tasks
from repro.resilience import (
    CheckpointJournal,
    Deadline,
    DegradationLadder,
    ResilienceReport,
    WorkerSupervisor,
)
from repro.routing.router import Router, RoutingContext


@dataclass
class SynthesisConfig:
    """Tunable parameters of the synthesis.

    ``mapper=None`` selects automatically: the monolithic ILP up to
    ``ilp_task_limit`` mixing operations, the rolling-horizon windowed
    ILP beyond (see DESIGN.md §3.2) — unless ``time_budget`` is finite,
    in which case the anytime race tier
    (:class:`~repro.core.anytime.AnytimeMapper`, DESIGN.md §13) becomes
    the default mapping engine.
    """

    grid: GridSpec
    mapper: Optional[BaseMapper] = None
    ports: Optional[List[ChipPort]] = None
    anchor_stride: int = 1
    distance_limit: Optional[int] = None
    routing_convenient: bool = True
    allow_storage_overlap: bool = True
    ilp_task_limit: int = 8
    ilp_backend: str = "scipy"
    window_size: int = 5
    max_algorithm_iterations: int = 25
    #: whole-run wall-clock budget in seconds (None = unbounded).  The
    #: budget covers mapping, storage repair and routing together; when
    #: it runs short the pipeline degrades (greedy windows, relaxed
    #: routing) instead of overrunning.
    time_budget: Optional[float] = None
    #: share of the remaining budget the mapping stage may spend; the
    #: rest is kept back for routing and actuation accounting.
    mapping_budget_fraction: float = 0.85
    #: certification level (DESIGN.md §10): ``"off"`` (default),
    #: ``"audit"`` (attach an :class:`~repro.certify.AuditReport` to the
    #: result), or ``"strict"`` (additionally raise
    #: :class:`~repro.errors.CertificationError` on any violation).
    certify: str = "off"
    #: hardware health mask (DESIGN.md §12): dead valve cells / channel
    #: edges are hard exclusions for mapping and routing.  None means a
    #: fully healthy chip; the fault-adaptive lifetime engine
    #: (:mod:`repro.resilience.remap`) re-synthesizes with the current
    #: mask after every detected failure.
    health: Optional[ChipHealth] = None
    #: pre-existing per-cell load added into the mapping objective
    #: (eq. 2's p_i terms).  The lifetime engine passes the chip's
    #: accumulated wear here, so every remap *levels* wear: new
    #: placements prefer fresh cells over nearly-exhausted ones.
    base_load: Optional[Dict] = None
    #: run exact mapping solves in watched subprocesses (DESIGN.md §14):
    #: a heartbeat watchdog SIGKILLs hung/oversized workers and retries
    #: with seeded exponential backoff before degrading in-process.
    supervised: bool = False
    #: directory of the crash-safe checkpoint journal (DESIGN.md §14);
    #: window solutions are appended (fsync'd, CRC-guarded) as they are
    #: proven, and a re-run against the same directory replays every
    #: certified record instead of re-solving.  None disables.
    checkpoint: Optional[str] = None

    def resolve_mapper(self, n_tasks: int) -> BaseMapper:
        if self.mapper is not None:
            return self.mapper
        if self.time_budget is not None:
            # A finite budget selects the anytime tier (DESIGN.md §13):
            # a heuristic lane races the exact ILP so budget expiry
            # degrades to the best certified incumbent instead of a
            # lost solve.  The tier picks its own lane backends —
            # incumbent injection needs the pure-python branch & bound;
            # ``ilp_backend`` keeps governing the non-anytime mappers.
            return AnytimeMapper(
                ilp_task_limit=self.ilp_task_limit,
                window_size=self.window_size,
            )
        if n_tasks <= self.ilp_task_limit:
            return ILPMapper(backend=self.ilp_backend)
        return WindowedILPMapper(
            window_size=self.window_size, backend=self.ilp_backend
        )


class ReliabilitySynthesizer:
    """Maps a scheduled bioassay onto the valve-centered architecture.

    Implements Algorithm 1: repeated dynamic-device mapping until every
    in-situ storage overlap fits the available free space (L4–L9),
    transport routing with storage pass-through and rip-up (L10–L19),
    and removal of non-actuated virtual valves (L20) via the actuation
    accounting.
    """

    def __init__(self, config: SynthesisConfig) -> None:
        self.config = config

    def _map_with_storage_repair(
        self,
        tasks: List[MappingTask],
        storage_plan: StoragePlan,
        mapper: BaseMapper,
        blocked: frozenset,
        routing_convenient: bool,
        deadline: Optional[Deadline] = None,
        ladder: Optional[DegradationLadder] = None,
    ):
        """Algorithm 1 L3-L9: map, check storage overlaps, repair."""
        config = self.config
        forbidden: Set[Pair] = set()
        iterations = 0
        while iterations < config.max_algorithm_iterations:
            iterations += 1
            spec = MappingSpec(
                grid=config.grid,
                tasks=tasks,
                base_load=dict(config.base_load or {}),
                forbidden_overlaps=set(forbidden),
                blocked_cells=blocked,
                anchor_stride=config.anchor_stride,
                distance_limit=config.distance_limit,
                routing_convenient=routing_convenient,
                allow_storage_overlap=config.allow_storage_overlap,
                health=config.health,
            )
            mapping = self._map_once(spec, mapper, deadline, ladder)
            violations = storage_plan.overlap_violations(mapping.placements)
            fresh = violations - forbidden
            if not fresh:
                return mapping, iterations
            forbidden |= fresh
        raise SynthesisError(
            "storage-overlap repair did not converge within "
            f"{config.max_algorithm_iterations} iterations"
        )

    @staticmethod
    def _map_once(
        spec: MappingSpec,
        mapper: BaseMapper,
        deadline: Optional[Deadline],
        ladder: Optional[DegradationLadder],
    ):
        """One mapping solve, with the greedy balancer as the last rung.

        The windowed mapper degrades internally; this covers the
        monolithic :class:`ILPMapper` (solver fault, budget expiry,
        infeasible-at-this-reservation), whose failure used to abort
        the run outright.
        """
        try:
            return mapper.map_tasks(spec, deadline=deadline, ladder=ladder)
        except (SynthesisError, SolverError) as error:
            if isinstance(mapper, GreedyMapper):
                raise  # already at the bottom of the ladder
            if ladder is not None:
                ladder.engage(
                    "mapping", DegradationLadder.MAPPING_GREEDY, str(error)
                )
            return GreedyMapper().map_tasks(
                spec, deadline=deadline, ladder=ladder
            )

    def synthesize(
        self,
        graph: SequencingGraph,
        schedule: Schedule,
        deadline: Optional[Deadline] = None,
    ) -> SynthesisResult:
        start_time = time.monotonic()
        config = self.config
        if config.certify not in ("off", "audit", "strict"):
            raise SynthesisError(
                f"unknown certify level {config.certify!r}; expected "
                "off/audit/strict"
            )
        if deadline is None and config.time_budget is not None:
            deadline = Deadline(config.time_budget)
        report = ResilienceReport(
            budget=deadline.budget if deadline is not None else None
        )
        ladder = DegradationLadder(report, deadline)
        # The mapping stage (including storage repair) gets a fraction
        # of the budget; routing runs against a 1.1x grace deadline, so
        # a mapping stage that spends its full share can never starve
        # routing completely, while the whole run stays within 1.1x the
        # configured budget.
        mapping_deadline = (
            deadline.sub(config.mapping_budget_fraction)
            if deadline is not None
            else None
        )
        routing_deadline = (
            Deadline(deadline.budget * 1.1) if deadline is not None else None
        )
        # L1-L2: read inputs, build the virtual valve architecture.
        graph.validate()
        schedule.validate()
        chip = Chip(config.grid, config.ports, config.health)
        tasks = build_tasks(graph, schedule)
        if not tasks:
            raise SynthesisError("the assay has no mixing operations to map")
        storage_plan = StoragePlan(graph, schedule)
        mapper = config.resolve_mapper(len(tasks))

        # Crash-safety wiring (DESIGN.md §14): the checkpoint journal
        # and/or worker supervisor attach to whatever mapper resolved,
        # and detach afterwards so a caller-owned mapper instance is
        # returned exactly as it came in.
        journal = None
        supervisor = None
        if config.checkpoint is not None:
            journal = CheckpointJournal(config.checkpoint, ladder=ladder)
        if config.supervised:
            supervisor = WorkerSupervisor(ladder=ladder, site="synthesis")
        crash_safe = journal is not None or supervisor is not None
        if crash_safe:
            mapper.journal = journal
            mapper.supervisor = supervisor
        try:
            return self._synthesize_stages(
                graph, schedule, chip, tasks, storage_plan, mapper,
                journal, deadline, mapping_deadline, routing_deadline,
                ladder, report, start_time,
            )
        finally:
            if crash_safe:
                mapper.journal = None
                mapper.supervisor = None
            if journal is not None:
                journal.close()

    def _synthesize_stages(
        self,
        graph: SequencingGraph,
        schedule: Schedule,
        chip: Chip,
        tasks: List[MappingTask],
        storage_plan: StoragePlan,
        mapper: BaseMapper,
        journal: Optional[CheckpointJournal],
        deadline: Optional[Deadline],
        mapping_deadline: Optional[Deadline],
        routing_deadline: Optional[Deadline],
        ladder: DegradationLadder,
        report: ResilienceReport,
        start_time: float,
    ) -> SynthesisResult:
        config = self.config

        # Escalating placement reservations: 1) only the port cells;
        # 2) the full port neighborhoods (an enclosed port gets a
        # corridor); 3) the whole chip boundary ring (a guaranteed
        # ring corridor connecting every region and port).  Most runs
        # succeed on the first attempt with the best wear numbers; the
        # later attempts trade placement freedom for routability when a
        # mapper builds solid walls.
        port_cells = frozenset(p.position for p in chip.ports.values())
        port_areas = frozenset(
            cell
            for p in chip.ports.values()
            for cell in [p.position, *p.position.neighbors8()]
            if config.grid.in_bounds(cell)
        )
        boundary = frozenset(
            cell
            for cell in config.grid.cells()
            if cell.x in (0, config.grid.width - 1)
            or cell.y in (0, config.grid.height - 1)
        )
        attempts = [port_cells, port_areas, port_areas | boundary]
        try:
            mapping, iterations, devices, routes = self._pipeline_with_grace(
                graph, schedule, chip, tasks, storage_plan, mapper,
                attempts, config.routing_convenient,
                routing_deadline, mapping_deadline, ladder,
            )
        except RoutingError as error:
            if not config.routing_convenient:
                raise SynthesisError(
                    f"routing failed even with reserved port corridors: "
                    f"{error}"
                )
            # Last ladder rung: re-synthesize without the
            # routing-convenient distance constraints — the mapper gains
            # placement freedom it can spend on routability.
            ladder.engage(
                "routing", DegradationLadder.ROUTING_RELAXED, str(error)
            )
            try:
                mapping, iterations, devices, routes = (
                    self._pipeline_with_grace(
                        graph, schedule, chip, tasks, storage_plan,
                        mapper, attempts, False,
                        routing_deadline, mapping_deadline, ladder,
                    )
                )
            except RoutingError as relaxed_error:
                raise SynthesisError(
                    f"routing failed even with reserved port corridors "
                    f"and relaxed routing-convenient constraints: "
                    f"{relaxed_error}"
                )

        if journal is not None:
            for key, value in journal.stats().items():
                mapping.stats[f"checkpoint_{key}"] = value

        # L20 + evaluation: actuation accounting for both settings; the
        # non-actuated virtual valves simply never appear in the grids.
        grid1 = ActuationAccountant(
            config.grid, AccountingPolicy(setting=1)
        ).run(devices.values(), routes)
        grid2 = ActuationAccountant(
            config.grid, AccountingPolicy(setting=2)
        ).run(devices.values(), routes)

        metrics = SynthesisMetrics(
            setting1=SettingMetrics(
                1, grid1.max_total_actuations, grid1.max_peristaltic_actuations
            ),
            setting2=SettingMetrics(
                2, grid2.max_total_actuations, grid2.max_peristaltic_actuations
            ),
            used_valves=grid1.used_valve_count,
            role_changing_valves=len(grid1.role_changing_valves()),
            mapping_objective=mapping.objective,
            mapper=mapping.mapper,
            algorithm_iterations=iterations,
            wall_time=time.monotonic() - start_time,
        )
        if report.degraded:
            warnings.warn(
                DegradedResultWarning(
                    f"synthesis of {graph.name!r} degraded: "
                    f"{report.summary()}"
                ),
                stacklevel=2,
            )
        result = SynthesisResult(
            graph=graph,
            schedule=schedule,
            chip=chip,
            devices=devices,
            routes=routes,
            storage_plan=storage_plan,
            grid_setting1=grid1,
            grid_setting2=grid2,
            metrics=metrics,
            resilience=report,
        )
        if config.certify != "off":
            from repro.certify import audit as run_audit

            result.audit = run_audit(result)
            if config.certify == "strict" and not result.audit.ok:
                raise CertificationError(
                    f"design audit of {graph.name!r} failed: "
                    f"{result.audit.summary()}"
                )
        return result

    def _pipeline_with_grace(
        self,
        graph: SequencingGraph,
        schedule: Schedule,
        chip: Chip,
        tasks: List[MappingTask],
        storage_plan: StoragePlan,
        mapper: BaseMapper,
        attempts: List[frozenset],
        routing_convenient: bool,
        routing_deadline: Optional[Deadline],
        mapping_deadline: Optional[Deadline],
        ladder: Optional[DegradationLadder],
    ) -> Tuple:
        """:meth:`_attempt_pipeline`, absorbing a routing budget overrun.

        Routing cannot return a partial result, so when even the 1.1x
        grace deadline expires mid-route the only honest options are to
        abort the whole run or to finish routing over budget.  We finish:
        the overrun becomes a ``routing_overrun`` ladder rung and the
        pipeline re-runs with unbounded routing (mapping, by then, is
        greedy-fast because its own deadline has long expired).
        """
        try:
            return self._attempt_pipeline(
                graph, schedule, chip, tasks, storage_plan, mapper,
                attempts, routing_convenient,
                routing_deadline, mapping_deadline, ladder,
            )
        except TimeLimitError as error:
            if ladder is not None:
                ladder.engage(
                    "routing", DegradationLadder.ROUTING_OVERRUN, str(error)
                )
            return self._attempt_pipeline(
                graph, schedule, chip, tasks, storage_plan, mapper,
                attempts, routing_convenient,
                None, mapping_deadline, ladder,
            )

    def _attempt_pipeline(
        self,
        graph: SequencingGraph,
        schedule: Schedule,
        chip: Chip,
        tasks: List[MappingTask],
        storage_plan: StoragePlan,
        mapper: BaseMapper,
        attempts: List[frozenset],
        routing_convenient: bool,
        routing_deadline: Optional[Deadline],
        mapping_deadline: Optional[Deadline],
        ladder: Optional[DegradationLadder],
    ) -> Tuple:
        """Map + route under one routing-convenient setting.

        Walks the escalating placement reservations; raises the last
        :class:`RoutingError` when every attempt fails, so the caller
        can decide whether another relaxation rung remains.
        """
        last_error: Optional[RoutingError] = None
        for blocked in attempts:
            try:
                mapping, iterations = self._map_with_storage_repair(
                    tasks, storage_plan, mapper, blocked,
                    routing_convenient, mapping_deadline, ladder,
                )
                devices: Dict[str, DynamicDevice] = {}
                for task in tasks:
                    devices[task.name] = DynamicDevice(
                        operation=task.name,
                        placement=mapping.placements[task.name],
                        start=task.start,
                        end=task.end,
                        mix_start=task.mix_start,
                    )
                # L10-L19: routing.
                events = build_transport_events(graph, schedule, chip)
                router = Router(
                    RoutingContext(
                        chip=chip,
                        devices=devices,
                        free_space=storage_plan.free_space,
                    ),
                    deadline=routing_deadline,
                )
                routes = router.route_all(events)
                return mapping, iterations, devices, routes
            except RoutingError as error:
                last_error = error
        raise last_error if last_error is not None else RoutingError(
            "no placement reservation attempts were made"
        )
