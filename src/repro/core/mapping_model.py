"""The dynamic-device mapping ILP (Sections 3.2–3.4).

Transcription of the paper's model:

* binary selection variables ``s[x,y,k,i]`` — operation *i* mapped to
  device type *k* at corner ``(x,y)`` (one placement variable per
  candidate, eq. 1 forces exactly one per operation);
* per-valve pump load ``v[x,y] = sum p_i * s[..]`` over placements whose
  circulation ring covers the valve (eq. 2), bounded by the objective
  variable ``w`` (eqs. 9–10);
* big-M non-overlap disjunctions (eqs. 3–8) between operations whose
  device lifetimes intersect, with the auxiliary ``c5`` relaxation
  (eq. 12) for in-situ-storage / parent-device pairs;
* routing-convenient distance constraints (eqs. 13–16) between parent
  and child devices.

The boundary coordinates ``b_le/b_ri/b_up/b_do`` are not extra integer
variables: with the one-hot selection row they are exact linear
expressions of the selection variables, which keeps the model smaller
than the paper's literal formulation without changing its feasible set.

The builder also supports **committed placements** (constants) and a
**base load** per valve, which is how the rolling-horizon windowed
mapper re-uses the same model for large cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import SynthesisError
from repro.geometry import GridSpec, Point
from repro.architecture.device import DynamicDevice, Placement
from repro.architecture.device_types import min_device_dimension, types_for_volume
from repro.architecture.health import ChipHealth
from repro.ilp import Constraint, LinExpr, Model, Var, quicksum
from repro.core.tasks import MappingTask

Pair = Tuple[str, str]

#: Memoized candidate enumerations.  A placement candidate set depends
#: only on (grid, anchor stride, blocked cells, volume class) — not on
#: the task identity — and the windowed mapper rebuilds a fresh
#: ``MappingSpec`` for every window/refinement probe, so a module-level
#: cache turns the repeated grid sweeps into one enumeration per shape.
_CANDIDATE_CACHE: Dict[Tuple, Tuple[Placement, ...]] = {}


def _enumerate_candidates(
    grid: GridSpec,
    anchor_stride: int,
    blocked_cells: FrozenSet[Point],
    volume: int,
    health: Optional[ChipHealth] = None,
) -> Tuple[Placement, ...]:
    if health is not None and health.is_healthy:
        health = None  # one cache entry for every fully-healthy mask
    key = (grid, anchor_stride, blocked_cells, volume, health)
    cached = _CANDIDATE_CACHE.get(key)
    if cached is None:
        candidates: List[Placement] = []
        for dtype in types_for_volume(volume):
            for rect in grid.placements(dtype.width, dtype.height):
                if rect.x % anchor_stride or rect.y % anchor_stride:
                    continue
                if blocked_cells and any(
                    rect.contains(c) for c in blocked_cells
                ):
                    continue
                if health is not None and health.blocks_rect(rect):
                    continue
                candidates.append(Placement(dtype, rect.corner))
        cached = _CANDIDATE_CACHE[key] = tuple(candidates)
    return cached


@dataclass
class MappingSpec:
    """One dynamic-device mapping problem instance."""

    grid: GridSpec
    tasks: List[MappingTask]
    #: devices already committed (rolling-horizon mode); their rectangles
    #: are constants for this solve.
    fixed: Dict[str, DynamicDevice] = field(default_factory=dict)
    #: pump load already accumulated on each valve by committed devices.
    base_load: Dict[Point, int] = field(default_factory=dict)
    #: (parent, child) pairs whose storage/parent overlap Algorithm 1 has
    #: forbidden (c5 pinned to 0).
    forbidden_overlaps: Set[Pair] = field(default_factory=set)
    #: cells no device may cover (chip ports must stay reachable).
    blocked_cells: FrozenSet[Point] = frozenset()
    #: cells the objective softly avoids pumping on (refinement uses the
    #: currently worst-loaded valves here to escape plateaus where many
    #: valves tie at the maximum).
    discouraged_cells: FrozenSet[Point] = frozenset()
    #: candidate anchors every ``anchor_stride`` cells (1 = every valve).
    anchor_stride: int = 1
    #: the constant d of Section 3.4; None means "use the default"
    #: (the minimum device dimension).
    distance_limit: Optional[int] = None
    #: global switch for the c5 relaxation (eq. 12).
    allow_storage_overlap: bool = True
    #: global switch for the routing-convenient constraints (13)-(16).
    routing_convenient: bool = True
    #: every (parent, child) mix-operation pair of the whole assay; kept
    #: explicitly so parent/child relations survive when one side is a
    #: committed device.  Derived from the tasks when left empty.
    parent_pairs: Set[Pair] = field(default_factory=set)
    #: hardware health mask: candidates touching a dead valve cell or a
    #: dead channel edge are excluded outright (fault-adaptive remapping,
    #: DESIGN.md §12).  None means fully healthy.
    health: Optional[ChipHealth] = None

    def __post_init__(self) -> None:
        if not self.parent_pairs:
            self.parent_pairs = {
                (parent, task.name)
                for task in self.tasks
                for parent in task.mix_parents
            }

    def storage_pair(self, a: str, b: str) -> Optional[Pair]:
        """Orient (parent, child) when one is the other's mix parent."""
        if (a, b) in self.parent_pairs:
            return (a, b)
        if (b, a) in self.parent_pairs:
            return (b, a)
        return None

    def resolved_distance_limit(self) -> Optional[int]:
        if not self.routing_convenient:
            return None
        if self.distance_limit is None:
            return min_device_dimension()
        return self.distance_limit

    def candidate_placements(self, task: MappingTask) -> Tuple[Placement, ...]:
        """All legal placements of one task on the grid (memoized)."""
        candidates = _enumerate_candidates(
            self.grid, self.anchor_stride, self.blocked_cells, task.volume,
            self.health,
        )
        if not candidates:
            dead = (
                f" with {self.health.dead_count} dead resources"
                if self.health is not None and not self.health.is_healthy
                else ""
            )
            raise SynthesisError(
                f"{task.name}: no feasible placement on the "
                f"{self.grid.width}x{self.grid.height} grid{dead}"
            )
        return candidates


@dataclass
class _Disjunction:
    """One big-M non-overlap disjunction, kept for solution completion.

    ``terms`` are the original (un-relaxed) boundary comparisons — they
    are *not* model rows; :meth:`Model.add_big_m_disjunction` only adds
    their relaxed twins.  ``aux`` are the ``c1..c4`` binaries in term
    order, ``relax`` the optional ``c5`` overlap permission.
    """

    terms: List[Constraint]
    aux: List[Var]
    relax: Optional[Var]


@dataclass
class BuiltMapping:
    """The ILP plus the metadata needed to read a solution back."""

    model: Model
    spec: MappingSpec
    w: Var
    selections: Dict[str, List[Tuple[Placement, Var]]]
    c5_vars: Dict[Pair, Var]
    #: recorded big-M disjunctions, per-cell load expressions (selection
    #: terms plus the cell's base-load constant) and the committed-load
    #: residual: everything :func:`complete_solution` needs to lift a
    #: geometric placement assignment to a full variable-value vector.
    disjunctions: List[_Disjunction] = field(default_factory=list)
    load_exprs: List[LinExpr] = field(default_factory=list)
    load_residual: int = 0

    def extract_placements(self, solution) -> Dict[str, Placement]:
        """Chosen placement per task from a solved model."""
        placements: Dict[str, Placement] = {}
        for name, options in self.selections.items():
            chosen = [p for p, var in options if solution.value(var) > 0.5]
            if len(chosen) != 1:  # pragma: no cover - eq.1 guarantees this
                raise SynthesisError(
                    f"{name}: expected exactly one selected placement, got "
                    f"{len(chosen)}"
                )
            placements[name] = chosen[0]
        return placements

    def extract_overlaps(self, solution) -> List[Pair]:
        """(parent, child) pairs that used the c5 overlap permission."""
        return [
            pair
            for pair, var in sorted(self.c5_vars.items())
            if solution.value(var) > 0.5
        ]


class MappingModelBuilder:
    """Builds the ILP of Section 3.2 for a :class:`MappingSpec`."""

    def __init__(self, spec: MappingSpec) -> None:
        self.spec = spec

    # -- model construction ------------------------------------------------

    def build(self) -> BuiltMapping:
        spec = self.spec
        model = Model("dynamic-device-mapping")
        w = model.add_integer("w", lb=0)

        selections: Dict[str, List[Tuple[Placement, Var]]] = {}
        for task in spec.tasks:
            options: List[Tuple[Placement, Var]] = []
            for placement in spec.candidate_placements(task):
                var = model.add_binary(
                    f"s[{placement.corner.x},{placement.corner.y},"
                    f"{placement.device_type.index},{task.name}]"
                )
                options.append((placement, var))
            selections[task.name] = options
            # eq. (1): every operation mapped to exactly one device.
            model.add_constr(
                quicksum(var for _, var in options) == 1,
                name=f"one_device[{task.name}]",
            )

        load_exprs, load_residual = self._add_load_constraints(
            model, w, selections
        )
        c5_vars, disjunctions = self._add_non_overlap(model, selections)
        self._add_routing_convenient(model, selections)

        # Primary objective: the largest pump load (eq. 10).  When
        # refinement supplies discouraged cells, a tiny secondary term
        # steers ties away from re-loading them; the weight keeps the
        # total strictly below 1, so the integral primary objective is
        # never traded off.
        objective = w.to_expr()
        penalty_terms = []
        if spec.discouraged_cells:
            for options in selections.values():
                for placement, var in options:
                    covered = sum(
                        1
                        for cell in placement.pump_cells()
                        if cell in spec.discouraged_cells
                    )
                    if covered:
                        penalty_terms.append((covered, var))
        if penalty_terms:
            weight = 0.9 / sum(c for c, _ in penalty_terms)
            objective = objective + quicksum(
                weight * c * var for c, var in penalty_terms
            )
        model.minimize(objective)
        return BuiltMapping(
            model, spec, w, selections, c5_vars,
            disjunctions=disjunctions,
            load_exprs=load_exprs,
            load_residual=load_residual,
        )

    # -- eq. (2) + (9): pump loads ------------------------------------------

    def _add_load_constraints(
        self,
        model: Model,
        w: Var,
        selections: Dict[str, List[Tuple[Placement, Var]]],
    ) -> Tuple[List[LinExpr], int]:
        spec = self.spec
        rate = {task.name: task.pump_rate for task in spec.tasks}
        cell_terms: Dict[Point, List[Tuple[int, Var]]] = {}
        for name, options in selections.items():
            for placement, var in options:
                for cell in placement.pump_cells():
                    cell_terms.setdefault(cell, []).append((rate[name], var))
        load_exprs: List[LinExpr] = []
        for cell, terms in sorted(cell_terms.items()):
            load = quicksum(r * var for r, var in terms) + spec.base_load.get(
                cell, 0
            )
            load_exprs.append(load)
            model.add_constr(
                load <= w, name=f"load[{cell.x},{cell.y}]"
            )
        # Valves loaded only by committed devices still bound w.
        residual = max(
            (
                load
                for cell, load in spec.base_load.items()
                if cell not in cell_terms
            ),
            default=0,
        )
        if residual:
            model.add_constr(w >= residual, name="load[committed]")
        return load_exprs, residual

    # -- eqs. (3)-(8) + (12): non-overlap -------------------------------------

    def _boundaries(
        self,
        name: str,
        selections: Dict[str, List[Tuple[Placement, Var]]],
    ) -> Tuple[LinExpr, LinExpr, LinExpr, LinExpr]:
        """(b_le, b_ri, b_do, b_up) as linear expressions or constants."""
        if name in selections:
            options = selections[name]
            b_le = quicksum(p.rect.left * v for p, v in options)
            b_ri = quicksum(p.rect.right * v for p, v in options)
            b_do = quicksum(p.rect.bottom * v for p, v in options)
            b_up = quicksum(p.rect.top * v for p, v in options)
            return b_le, b_ri, b_do, b_up
        rect = self.spec.fixed[name].rect
        return (
            LinExpr({}, rect.left),
            LinExpr({}, rect.right),
            LinExpr({}, rect.bottom),
            LinExpr({}, rect.top),
        )

    def _interval(self, name: str) -> Tuple[int, int]:
        for task in self.spec.tasks:
            if task.name == name:
                return task.interval
        device = self.spec.fixed[name]
        return (device.start, device.end)

    def _add_non_overlap(
        self,
        model: Model,
        selections: Dict[str, List[Tuple[Placement, Var]]],
    ) -> Tuple[Dict[Pair, Var], List[_Disjunction]]:
        spec = self.spec
        big_m = spec.grid.width + spec.grid.height
        c5_vars: Dict[Pair, Var] = {}
        disjunctions: List[_Disjunction] = []

        names = [t.name for t in spec.tasks]
        fixed_names = sorted(spec.fixed)
        task_pairs = [
            (names[i], names[j])
            for i in range(len(names))
            for j in range(i + 1, len(names))
        ]
        mixed_pairs = [(f, t) for f in fixed_names for t in names]

        for a, b in task_pairs + mixed_pairs:
            sa, ea = self._interval(a)
            sb, eb = self._interval(b)
            if not (sa < eb and sb < ea):
                continue  # lifetimes disjoint: may share area freely
            relax: Optional[Var] = None
            pair = spec.storage_pair(a, b)
            if (
                pair is not None
                and spec.allow_storage_overlap
                and pair not in spec.forbidden_overlaps
            ):
                relax = model.add_binary(f"c5[{pair[0]},{pair[1]}]")
                c5_vars[pair] = relax
            a_le, a_ri, a_do, a_up = self._boundaries(a, selections)
            b_le, b_ri, b_do, b_up = self._boundaries(b, selections)
            terms = [
                a_ri <= b_le,  # a left of b
                b_ri <= a_le,  # b left of a
                a_up <= b_do,  # a below b
                b_up <= a_do,  # b below a
            ]
            aux = model.add_big_m_disjunction(
                terms,
                big_m=big_m,
                name=f"no_overlap[{a},{b}]",
                relax_var=relax,
            )
            disjunctions.append(_Disjunction(terms, aux, relax))
        return c5_vars, disjunctions

    # -- eqs. (13)-(16): routing-convenient mapping -----------------------------

    def _add_routing_convenient(
        self,
        model: Model,
        selections: Dict[str, List[Tuple[Placement, Var]]],
    ) -> None:
        spec = self.spec
        d = spec.resolved_distance_limit()
        if d is None:
            return
        known = set(selections) | set(spec.fixed)
        for parent, child in sorted(spec.parent_pairs):
            if parent not in known or child not in known:
                continue
            if parent not in selections and child not in selections:
                continue  # both committed: nothing left to constrain
            c_le, c_ri, c_do, c_up = self._boundaries(child, selections)
            p_le, p_ri, p_do, p_up = self._boundaries(parent, selections)
            # Strict inequalities over integers: "> x - d" == ">= x-d+1".
            name = f"near[{parent},{child}]"
            model.add_constr(c_ri - p_le >= 1 - d, f"{name}.ri")
            model.add_constr(c_le - p_ri <= d - 1, f"{name}.le")
            model.add_constr(c_up - p_do >= 1 - d, f"{name}.up")
            model.add_constr(c_do - p_up <= d - 1, f"{name}.do")


def complete_solution(
    built: BuiltMapping, placements: Dict[str, Placement]
) -> Optional[Dict[Var, float]]:
    """Lift a geometric placement assignment to full model values.

    The heuristic lanes of the anytime mapper (DESIGN.md §13) produce
    placements, not variable vectors; the B&B incumbent injection and
    the MILP replay certificate both need every model variable valued.
    This derives them mechanically: selections become the one-hot
    indicators, each non-overlap disjunction activates its first
    geometrically satisfied term (falling back to the ``c5`` overlap
    permission when no side separates the pair), and ``w`` is the
    maximum pump load the placements actually induce.

    Returns None when the placements cannot satisfy the model — a task
    placed outside its candidate set (e.g. the greedy fallback tier
    dropped the anchor stride or the distance limit) or an overlap with
    no ``c5`` permission.  A non-None result is *mechanically* complete
    but deliberately not trusted: callers re-validate with
    :meth:`Model.check_solution` (the near rows, for one, are not
    examined here) and certify by exact MILP replay before the vector
    reaches a solver.
    """
    values: Dict[Var, float] = {}
    for name, options in built.selections.items():
        chosen = placements.get(name)
        if chosen is None:
            return None
        hit = False
        for placement, var in options:
            selected = placement == chosen
            values[var] = 1.0 if selected else 0.0
            hit = hit or selected
        if not hit:
            return None
    for disjunction in built.disjunctions:
        satisfied = next(
            (
                k
                for k, term in enumerate(disjunction.terms)
                if term.satisfied_by(values)
            ),
            None,
        )
        if satisfied is None:
            if disjunction.relax is None:
                return None  # true overlap with no storage permission
            values[disjunction.relax] = 1.0
            for aux in disjunction.aux:
                values[aux] = 1.0  # eq. 8 with c5 = 1: all rows off
        else:
            if disjunction.relax is not None:
                values[disjunction.relax] = 0.0
            for k, aux in enumerate(disjunction.aux):
                values[aux] = 0.0 if k == satisfied else 1.0
    w_value = built.load_residual
    for expr in built.load_exprs:
        w_value = max(w_value, int(round(expr.evaluate(values))))
    values[built.w] = float(w_value)
    return values
