"""Pump actuation rates for the two evaluation settings (Section 4).

A dedicated mixer's peristaltic pump has 3 valves actuated 40 times per
mixing operation, i.e. a **total** of 120 pump actuations per operation.
A dynamic mixer's circulation ring uses *all* ring valves as pump
valves, so the paper evaluates two settings:

* **setting 1** (conservative): every ring valve is still actuated 40
  times per operation, exactly like a dedicated pump valve;
* **setting 2**: the per-valve count is scaled so the mixer total stays
  120 — e.g. a ring of 8 valves pumps 120/8 = 15 times each.
"""

from __future__ import annotations

from repro.errors import SynthesisError
from repro.baseline.dedicated import (
    PUMP_ACTUATIONS_PER_OP,
    PUMP_VALVES_PER_DEDICATED_MIXER,
)

#: Total pump actuations of one mixing operation on a dedicated mixer
#: (3 valves x 40 actuations).
DEDICATED_MIXER_TOTAL_ACTUATIONS: int = (
    PUMP_ACTUATIONS_PER_OP * PUMP_VALVES_PER_DEDICATED_MIXER
)


def pump_rate_setting1(ring_size: int) -> int:
    """Per-valve pump actuations per operation under setting 1 (= 40)."""
    if ring_size <= 0:
        raise SynthesisError(f"ring size must be positive, got {ring_size}")
    return PUMP_ACTUATIONS_PER_OP


def pump_rate_setting2(ring_size: int) -> int:
    """Per-valve pump actuations per operation under setting 2.

    ``120 / ring`` — 15 for a ring of 8 (the paper's example), 12 for a
    ring of 10, 20 for 6, 30 for 4.  All four mixer volumes divide 120,
    so the division is exact.
    """
    if ring_size <= 0:
        raise SynthesisError(f"ring size must be positive, got {ring_size}")
    if DEDICATED_MIXER_TOTAL_ACTUATIONS % ring_size != 0:
        raise SynthesisError(
            f"ring size {ring_size} does not divide the dedicated total "
            f"{DEDICATED_MIXER_TOTAL_ACTUATIONS}"
        )
    return DEDICATED_MIXER_TOTAL_ACTUATIONS // ring_size
