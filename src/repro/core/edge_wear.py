"""Channel-edge wear analysis (the physically exact valve view).

The primary accounting keys valves by grid cell (what Figure 10 draws);
on a fabricated chip each valve controls a *channel segment* between
two adjacent cells (see :mod:`repro.architecture.channel_edges`).  This
module replays a synthesis result at edge granularity:

* a mixing operation wears every segment of its circulation ring by the
  per-valve pump rate;
* a transport wears every segment its path flows through by one cycle.

Because rotated rings use disjoint segments even where they share cells
(Figure 5(d)), edge wear is a *lower bound* on the cell-keyed wear: the
cell view conservatively merges any segments that meet in a cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.architecture.channel_edges import ChannelEdge, path_edges, ring_edges
from repro.architecture.device import DynamicDevice
from repro.core.actuation import AccountingPolicy
from repro.core.result import SynthesisResult
from repro.routing.path import RoutedPath


@dataclass
class EdgeWearReport:
    """Per-channel-segment actuation counts of one synthesis result."""

    pump: Dict[ChannelEdge, int] = field(default_factory=dict)
    control: Dict[ChannelEdge, int] = field(default_factory=dict)

    def total(self, edge: ChannelEdge) -> int:
        return self.pump.get(edge, 0) + self.control.get(edge, 0)

    @property
    def edges_used(self) -> int:
        """Channel valves the design actually needs (edge-view #v)."""
        return len(set(self.pump) | set(self.control))

    @property
    def max_total(self) -> int:
        edges = set(self.pump) | set(self.control)
        return max((self.total(e) for e in edges), default=0)

    @property
    def max_pump(self) -> int:
        return max(self.pump.values(), default=0)

    def role_changing_edges(self) -> List[ChannelEdge]:
        """Segments that both pumped and carried transport."""
        return sorted(set(self.pump) & set(self.control))


def edge_wear(
    result: SynthesisResult, setting: int = 1
) -> EdgeWearReport:
    """Replay a synthesis result at channel-edge granularity."""
    policy = AccountingPolicy(setting=setting)
    report = EdgeWearReport()
    _account_devices(report, result.devices.values(), policy)
    _account_routes(report, result.routes, policy)
    return report


def _account_devices(
    report: EdgeWearReport,
    devices: Iterable[DynamicDevice],
    policy: AccountingPolicy,
) -> None:
    for device in devices:
        rate = policy.pump_rate(device.volume)
        for edge in ring_edges(device.rect):
            report.pump[edge] = report.pump.get(edge, 0) + rate
            if policy.device_formation:
                report.control[edge] = (
                    report.control.get(edge, 0) + policy.device_formation
                )


def _account_routes(
    report: EdgeWearReport,
    routes: Iterable[RoutedPath],
    policy: AccountingPolicy,
) -> None:
    if not policy.path_use:
        return
    for route in routes:
        for edge in path_edges(route.cells):
            report.control[edge] = report.control.get(edge, 0) + policy.path_use
