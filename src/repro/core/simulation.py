"""Execution simulation: replay a synthesis result on a virtual chip.

The mapping model and router enforce their constraints statically; this
module *executes* the synthesized assay step by step and verifies that
the chip state stays physically consistent throughout:

* a region is formed before fluid arrives and holds exactly the
  products the schedule says it holds;
* every transport moves a product along its routed path while the path
  cells are free (source, target and pass-through storages excluded);
* two alive devices never hold overlapping cells unless one is the
  other's parent (the c5 permission) — and then only while the
  overlapped storage has room;
* every mixing operation sees all of its input products before it
  starts, and the final products reach the output port.

The simulator raises :class:`SimulationError` on the first violation,
with the time step and the conflicting entities — the dynamic
equivalent of a waveform checker in hardware verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.geometry import Point
from repro.architecture.device import DeviceKind
from repro.core.result import SynthesisResult
from repro.routing.path import RoutedPath


class SimulationError(ReproError):
    """A physical inconsistency found while replaying the synthesis."""


@dataclass
class SimulationEvent:
    """One thing that happened during the replay (the simulation log)."""

    time: int
    kind: str  # "form" | "transport" | "mix" | "dissolve" | "output"
    subject: str
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"t={self.time:>3} {self.kind:<9} {self.subject} {self.detail}"


@dataclass
class SimulationReport:
    """Outcome of a full replay."""

    events: List[SimulationEvent] = field(default_factory=list)
    products_delivered: int = 0
    transports_executed: int = 0
    peak_occupied_cells: int = 0

    @property
    def ok(self) -> bool:
        return True  # a report only exists when the replay succeeded

    def log(self) -> str:
        return "\n".join(str(e) for e in self.events)


class ChipSimulator:
    """Replays a :class:`SynthesisResult` and checks consistency."""

    def __init__(self, result: SynthesisResult) -> None:
        self.result = result
        self.graph = result.graph
        self.schedule = result.schedule

    # -- public API --------------------------------------------------------

    def run(self) -> SimulationReport:
        """Execute the whole assay; raises :class:`SimulationError`."""
        result = self.result
        report = SimulationReport()

        # Products currently sitting in each operation's region.
        holdings: Dict[str, Set[str]] = {name: set() for name in result.devices}
        delivered_out: Set[str] = set()

        timeline = self._timeline()
        for t in timeline:
            self._check_spatial_consistency(t)
            for device in result.devices.values():
                if device.start == t:
                    report.events.append(
                        SimulationEvent(t, "form", device.operation,
                                        f"at {device.placement}")
                    )
            for route in [r for r in result.routes if r.time == t]:
                self._execute_transport(route, holdings, delivered_out, report)
            for device in result.devices.values():
                if device.mix_start == t:
                    self._check_inputs_present(device.operation, holdings)
                    report.events.append(
                        SimulationEvent(t, "mix", device.operation)
                    )
                if device.end == t:
                    report.events.append(
                        SimulationEvent(t, "dissolve", device.operation)
                    )
            occupied = sum(
                d.rect.area for d in result.devices.values() if d.alive_at(t)
            )
            report.peak_occupied_cells = max(report.peak_occupied_cells, occupied)

        self._check_all_products_accounted(delivered_out)
        report.products_delivered = len(delivered_out)
        report.transports_executed = len(result.routes)
        return report

    # -- timeline ------------------------------------------------------------

    def _timeline(self) -> List[int]:
        times: Set[int] = set()
        for device in self.result.devices.values():
            times.update((device.start, device.mix_start, device.end))
        for route in self.result.routes:
            times.add(route.time)
        return sorted(times)

    # -- checks ---------------------------------------------------------------

    def _check_spatial_consistency(self, t: int) -> None:
        alive = [d for d in self.result.devices.values() if d.alive_at(t)]
        for i, a in enumerate(alive):
            for b in alive[i + 1:]:
                if not a.rect.overlaps(b.rect):
                    continue
                pair = self._parent_child(a.operation, b.operation)
                if pair is None:
                    raise SimulationError(
                        f"t={t}: unrelated devices {a.operation} and "
                        f"{b.operation} overlap at "
                        f"{a.rect.intersection(b.rect)}"
                    )
                parent, child = pair
                child_device = self.result.devices[child]
                if child_device.kind_at(t) is not DeviceKind.STORAGE:
                    raise SimulationError(
                        f"t={t}: {child} overlaps its parent {parent} "
                        "while mixing (only the storage phase may overlap)"
                    )
                overlap = a.rect.overlap_area(b.rect)
                free = self.result.storage_plan.free_space(child, t)
                stored = self._stored_volume(child, t)
                capacity = child_device.volume
                if overlap > capacity - stored:
                    raise SimulationError(
                        f"t={t}: storage {child} has {capacity - stored} "
                        f"free units but overlaps {parent} by {overlap}"
                    )

    def _execute_transport(
        self,
        route: RoutedPath,
        holdings: Dict[str, Set[str]],
        delivered_out: Set[str],
        report: SimulationReport,
    ) -> None:
        event = route.event
        t = route.time
        # The path must stay clear of every unrelated alive device.
        for device in self.result.devices.values():
            if not device.alive_at(t):
                continue
            if device.operation in (event.source, event.target):
                continue
            passable = device.kind_at(t) is DeviceKind.STORAGE
            blocked_cells = [
                c
                for c in route.cells
                if device.rect.contains(c)
                and c not in self._endpoint_cells(event)
            ]
            if blocked_cells and not passable:
                raise SimulationError(
                    f"t={t}: transport {event.label} crosses the active "
                    f"mixer {device.operation} at {blocked_cells[0]}"
                )
        # Bookkeeping: what moved where.
        if event.source_is_port:
            holdings[event.target].add(f"input:{event.source}@{t}")
        elif event.target_is_port:
            delivered_out.add(event.source)
            holdings[event.source].clear()
        else:
            holdings[event.source].clear()
            holdings[event.target].add(event.source)
        report.events.append(
            SimulationEvent(t, "transport", event.label,
                            f"{len(route.cells)} cells")
        )

    def _check_inputs_present(
        self, operation: str, holdings: Dict[str, Set[str]]
    ) -> None:
        expected = {
            p.name for p in self.graph.mix_parents(operation)
        }
        have = {h for h in holdings[operation] if not h.startswith("input:")}
        if not expected <= have:
            raise SimulationError(
                f"{operation} starts mixing without products "
                f"{sorted(expected - have)}"
            )
        n_input_parents = sum(
            1 for p in self.graph.parents(operation) if p.is_input
        )
        n_loaded = sum(
            1 for h in holdings[operation] if h.startswith("input:")
        )
        if n_loaded < n_input_parents:
            raise SimulationError(
                f"{operation} starts mixing with only {n_loaded} of "
                f"{n_input_parents} input loadings"
            )

    def _check_all_products_accounted(self, delivered_out: Set[str]) -> None:
        for op in self.graph.mix_operations():
            children = self.graph.children(op.name)
            if not any(c.is_mix for c in children):
                if op.name not in delivered_out:
                    raise SimulationError(
                        f"final product of {op.name} never reached an "
                        "output port"
                    )

    # -- helpers ----------------------------------------------------------------

    def _parent_child(self, a: str, b: str) -> Optional[Tuple[str, str]]:
        if b in {p.name for p in self.graph.mix_parents(a)}:
            return (b, a)
        if a in {p.name for p in self.graph.mix_parents(b)}:
            return (a, b)
        return None

    def _stored_volume(self, child: str, t: int) -> int:
        info = self.result.storage_plan.storage(child)
        return info.stored_volume(t) if info else 0

    def _endpoint_cells(self, event) -> Set[Point]:
        cells: Set[Point] = set()
        for name, is_port in (
            (event.source, event.source_is_port),
            (event.target, event.target_is_port),
        ):
            if is_port:
                cells.add(self.result.chip.port(name).position)
            elif name in self.result.devices:
                cells.update(
                    self.result.devices[name].placement.port_cells()
                )
        return cells


def simulate(result: SynthesisResult) -> SimulationReport:
    """Replay ``result``; raises :class:`SimulationError` on violations."""
    return ChipSimulator(result).run()
