"""Cross-contamination analysis and wash planning (extension).

On a flow-based chip, different fluids travelling through the same
channel cells leave residue: a later transport through a cell an
earlier, *unrelated* fluid touched risks cross-contamination unless the
shared cells are washed in between.  (Transports belonging to the same
product lineage — a parent's product flowing toward its consumer — are
compatible by construction.)

This module post-processes a synthesis result:

* :func:`find_conflicts` lists every (earlier, later) transport pair
  that shares cells across lineages, with the shared cells;
* :func:`plan_washes` turns the conflicts into a minimal per-time-step
  wash plan (one wash flush covers all conflicted cells of that step)
  and reports the extra valve actuations washing costs — wear the
  paper's accounting does not include.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Set

from repro.geometry import Point
from repro.routing.path import RoutedPath

if TYPE_CHECKING:  # pragma: no cover - avoids a routing<->core cycle
    from repro.core.result import SynthesisResult


@dataclass(frozen=True)
class Conflict:
    """Two transports of unrelated fluids sharing channel cells."""

    earlier: str  # event label
    later: str
    time_earlier: int
    time_later: int
    shared_cells: FrozenSet[Point]

    @property
    def severity(self) -> int:
        return len(self.shared_cells)


@dataclass
class WashPlan:
    """Wash flushes required before given time steps."""

    #: time step -> cells that must be washed before it
    flushes: Dict[int, Set[Point]] = field(default_factory=dict)

    @property
    def wash_count(self) -> int:
        return len(self.flushes)

    @property
    def washed_cells_total(self) -> int:
        return sum(len(cells) for cells in self.flushes.values())

    def extra_actuations(self) -> int:
        """One open-close cycle per washed cell per flush."""
        return self.washed_cells_total


def _lineage(result: SynthesisResult) -> Dict[str, Set[str]]:
    """operation -> its ancestor mix operations (inclusive)."""
    graph = result.graph
    ancestors: Dict[str, Set[str]] = {}
    for op in graph.topological_order():
        if not op.is_mix:
            continue
        own: Set[str] = {op.name}
        for parent in graph.mix_parents(op.name):
            own |= ancestors.get(parent.name, {parent.name})
        ancestors[op.name] = own
    return ancestors


def _fluids_compatible(
    a: RoutedPath, b: RoutedPath, ancestors: Dict[str, Set[str]]
) -> bool:
    """Whether two transports carry related fluids (no wash needed)."""

    def lineage_of(path: RoutedPath) -> Set[str]:
        event = path.event
        names = set()
        for name, is_port in (
            (event.source, event.source_is_port),
            (event.target, event.target_is_port),
        ):
            if not is_port:
                names |= ancestors.get(name, {name})
        return names

    return bool(lineage_of(a) & lineage_of(b))


def find_conflicts(result: SynthesisResult) -> List[Conflict]:
    """All cross-lineage cell-sharing transport pairs, by time."""
    ancestors = _lineage(result)
    routes = sorted(result.routes, key=lambda r: (r.time, r.event.label))
    conflicts: List[Conflict] = []
    for i, earlier in enumerate(routes):
        earlier_cells = set(earlier.cells)
        for later in routes[i + 1:]:
            if later.time < earlier.time:
                continue  # sorted, but be explicit
            shared = earlier_cells & set(later.cells)
            if not shared:
                continue
            if _fluids_compatible(earlier, later, ancestors):
                continue
            conflicts.append(
                Conflict(
                    earlier=earlier.event.label,
                    later=later.event.label,
                    time_earlier=earlier.time,
                    time_later=later.time,
                    shared_cells=frozenset(shared),
                )
            )
    return conflicts


def plan_washes(result: SynthesisResult) -> WashPlan:
    """One wash flush per affected time step, covering its conflicts.

    All conflicts whose *later* transport runs at time t are resolved by
    flushing their shared cells just before t; a single flush per step
    suffices because washing clears residue for every fluid.
    """
    plan = WashPlan()
    for conflict in find_conflicts(result):
        cells = plan.flushes.setdefault(conflict.time_later, set())
        cells.update(conflict.shared_cells)
    return plan


def contamination_report(result: SynthesisResult) -> str:
    """Human-readable summary of conflicts and the wash plan."""
    conflicts = find_conflicts(result)
    plan = plan_washes(result)
    lines = [
        f"cross-contamination analysis for assay {result.graph.name!r}:",
        f"  transports: {len(result.routes)}",
        f"  cross-lineage conflicts: {len(conflicts)}",
        f"  wash flushes needed: {plan.wash_count} "
        f"({plan.washed_cells_total} cell-washes, "
        f"+{plan.extra_actuations()} actuations)",
    ]
    for conflict in conflicts[:10]:
        lines.append(
            f"    t={conflict.time_later}: {conflict.later} reuses "
            f"{conflict.severity} cell(s) of {conflict.earlier} "
            f"(t={conflict.time_earlier})"
        )
    return "\n".join(lines)
