"""Routing substrate (Sections 3.4 / 3.5).

Transport paths between devices and chip ports are found with
Dijkstra's shortest-path algorithm over the valve grid; concurrently
routed paths repel each other through congestion costs so samples can
travel in parallel; in-situ storages with free space may be passed
through, and when a path would exceed a storage's free space the path
is ripped up and re-routed with the storage as an obstacle
(Algorithm 1, L10–L19).
"""

from repro.routing.path import RoutedPath, TransportEvent
from repro.routing.dijkstra import dijkstra_path
from repro.routing.router import Router, RoutingContext
from repro.routing.contamination import (
    Conflict,
    WashPlan,
    contamination_report,
    find_conflicts,
    plan_washes,
)

__all__ = [
    "RoutedPath",
    "TransportEvent",
    "dijkstra_path",
    "Router",
    "RoutingContext",
    "Conflict",
    "WashPlan",
    "contamination_report",
    "find_conflicts",
    "plan_washes",
]
